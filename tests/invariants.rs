//! Property-based invariant tests across the whole stack: page
//! accounting, list membership, device byte conservation, and placement
//! invariants hold under randomized workloads and policy churn.

use proptest::prelude::*;

use hemem_repro::baselines::{AnyBackend, BackendKind};
use hemem_repro::core::backend::AccessBatch;
use hemem_repro::core::machine::MachineConfig;
use hemem_repro::core::runtime::{Event, Sim};
use hemem_repro::sim::Ns;
use hemem_repro::vmm::PageState;

const GIB: u64 = 1 << 30;

fn build(kind: BackendKind, seed: u64) -> Sim<AnyBackend> {
    let mut mc = MachineConfig::small(2, 8);
    mc.seed = seed;
    let backend = kind.build(&mc);
    Sim::new(mc, backend)
}

/// Checks global conservation: every mapped page's physical frame is
/// accounted in exactly one pool's allocated count, and pools never leak.
fn check_accounting(sim: &Sim<AnyBackend>) {
    let mut dram_mapped = 0u64;
    let mut nvm_mapped = 0u64;
    for region in sim.m.space.regions() {
        if region.kind() != hemem_repro::vmm::RegionKind::ManagedHeap {
            continue;
        }
        for i in 0..region.page_count() {
            match region.state(i) {
                PageState::Mapped {
                    tier: hemem_repro::vmm::Tier::Dram,
                    ..
                } => dram_mapped += 1,
                PageState::Mapped {
                    tier: hemem_repro::vmm::Tier::Nvm,
                    ..
                } => nvm_mapped += 1,
                PageState::Mapped {
                    tier: hemem_repro::vmm::Tier::Ssd,
                    ..
                } => {}
                PageState::Unmapped | PageState::Swapped { .. } => {}
            }
        }
    }
    // In-flight migrations hold a destination frame in addition to the
    // mapped source frame.
    let in_flight = sim.m.stats.migrations_started - sim.m.stats.migrations_done;
    let dram_alloc = sim.m.dram_pool.allocated_pages();
    let nvm_alloc = sim.m.nvm_pool.allocated_pages();
    assert!(
        dram_alloc + nvm_alloc <= dram_mapped + nvm_mapped + 2 * in_flight,
        "allocated {dram_alloc}+{nvm_alloc} vs mapped {dram_mapped}+{nvm_mapped} (+{in_flight} in flight)"
    );
    assert!(
        dram_alloc >= dram_mapped.min(sim.m.dram_pool.total_pages()),
        "DRAM pool lost frames: alloc {dram_alloc} < mapped {dram_mapped}"
    );
    // Fenwick residency indices agree with the raw page states.
    for region in sim.m.space.regions() {
        let mut dram = 0;
        let mut mapped = 0;
        for i in 0..region.page_count() {
            if let PageState::Mapped { tier, .. } = region.state(i) {
                mapped += 1;
                if tier == hemem_repro::vmm::Tier::Dram {
                    dram += 1;
                }
            }
        }
        assert_eq!(region.dram_pages(), dram, "dram index out of sync");
        assert_eq!(region.mapped_pages(), mapped, "mapped index out of sync");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn page_accounting_survives_random_churn(
        seed in 0u64..1000,
        region_gib in 1u64..6,
        write_frac in 0.0f64..1.0,
        rounds in 5usize..30,
    ) {
        let mut sim = build(BackendKind::HeMem, seed);
        let id = sim.mmap(region_gib * GIB);
        sim.populate(id, true);
        sim.set_app_threads(2);
        let pages = sim.m.space.region(id).page_count();
        for round in 0..rounds {
            // Alternate between a narrow hot slice and broad traffic.
            let (lo, hi) = if round % 2 == 0 {
                let lo = (round as u64 * 7) % pages.saturating_sub(8).max(1);
                (lo, (lo + 8).min(pages))
            } else {
                (0, pages)
            };
            let batch = AccessBatch::uniform(
                id, lo, hi, 100_000, 8, write_frac, region_gib * GIB,
            );
            sim.submit_batch(0, &batch);
            loop {
                match sim.step() {
                    Some((_, Event::ThreadReady(_))) | None => break,
                    Some(_) => {}
                }
            }
        }
        sim.advance(Ns::millis(500));
        check_accounting(&sim);
        prop_assert!(sim.m.stats.migrations_started >= sim.m.stats.migrations_done);
    }

    #[test]
    fn device_byte_counters_are_monotone_and_consistent(
        seed in 0u64..1000,
        count in 1_000u64..500_000,
        write_frac in 0.0f64..1.0,
    ) {
        let mut sim = build(BackendKind::MemoryMode, seed);
        let id = sim.mmap(2 * GIB);
        sim.populate(id, true);
        let pages = sim.m.space.region(id).page_count();
        let before_r = sim.m.nvm.stats().media_bytes_read;
        let before_w = sim.m.nvm.stats().media_bytes_written;
        let batch = AccessBatch::uniform(id, 0, pages, count, 64, write_frac, 2 * GIB);
        sim.submit_batch(0, &batch);
        loop {
            match sim.step() {
                Some((_, Event::ThreadReady(_))) | None => break,
                Some(_) => {}
            }
        }
        // Media traffic never shrinks and is at least app-visible traffic.
        let s = sim.m.nvm.stats();
        prop_assert!(s.media_bytes_read >= before_r);
        prop_assert!(s.media_bytes_written >= before_w);
        prop_assert!(s.media_bytes_read >= s.bytes_read);
        prop_assert!(s.media_bytes_written >= s.bytes_written);
    }

    #[test]
    fn munmap_returns_every_frame(
        seed in 0u64..1000,
        region_gib in 1u64..4,
    ) {
        let mut sim = build(BackendKind::HeMem, seed);
        let free_dram0 = sim.m.dram_pool.free_pages();
        let free_nvm0 = sim.m.nvm_pool.free_pages();
        let id = sim.mmap(region_gib * GIB);
        sim.populate(id, true);
        // Let any migrations drain before unmapping.
        sim.advance(Ns::secs(1));
        sim.munmap(id);
        prop_assert_eq!(sim.m.dram_pool.free_pages(), free_dram0);
        prop_assert_eq!(sim.m.nvm_pool.free_pages(), free_nvm0);
    }

    #[test]
    fn static_backends_never_migrate(
        seed in 0u64..1000,
        kind_idx in 0usize..3,
    ) {
        let kind = [BackendKind::XMem, BackendKind::DramOnly, BackendKind::NvmOnly][kind_idx];
        let mut sim = build(kind, seed);
        let id = sim.mmap(2 * GIB);
        sim.populate(id, true);
        let pages = sim.m.space.region(id).page_count();
        let batch = AccessBatch::uniform(id, 0, pages, 200_000, 8, 0.5, 2 * GIB);
        sim.submit_batch(0, &batch);
        loop {
            match sim.step() {
                Some((_, Event::ThreadReady(_))) | None => break,
                Some(_) => {}
            }
        }
        sim.advance(Ns::secs(1));
        prop_assert_eq!(sim.m.stats.migrations_started, 0);
    }
}
