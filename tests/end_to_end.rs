//! Cross-crate integration tests: full machine + backend + workload
//! scenarios asserting the paper's qualitative results hold end to end.

use hemem_repro::baselines::{AnyBackend, BackendKind};
use hemem_repro::core::hemem::{HeMem, HeMemConfig};
use hemem_repro::core::machine::MachineConfig;
use hemem_repro::core::runtime::Sim;
use hemem_repro::sim::Ns;
use hemem_repro::workloads::{
    run_gups, run_kvs, run_silo, Bc, GraphConfig, GupsConfig, Kvs, KvsConfig, SiloConfig,
};

const GIB: u64 = 1 << 30;

fn sim_for(kind: BackendKind) -> Sim<AnyBackend> {
    let mut mc = MachineConfig::small(8, 32);
    // Keep per-page sampling dynamics equivalent to the paper's machine
    // (24x fewer pages than the testbed at the same access rates).
    mc.pebs.sample_period *= 24;
    let backend = kind.build(&mc);
    Sim::new(mc, backend)
}

fn quick_gups(ws: u64, hot: u64) -> GupsConfig {
    let mut c = GupsConfig::paper(ws, hot);
    c.threads = 8;
    c.warmup = Ns::secs(15);
    c.duration = Ns::secs(5);
    c
}

#[test]
fn gups_uniform_in_dram_is_equal_across_tiering_systems() {
    // Figure 5, left side: when the working set fits in DRAM, HeMem and
    // the DRAM reference are within a few percent.
    let dram = run_gups(&mut sim_for(BackendKind::DramOnly), quick_gups(4 * GIB, 0)).gups;
    let hemem = run_gups(&mut sim_for(BackendKind::HeMem), quick_gups(4 * GIB, 0)).gups;
    assert!(
        (hemem - dram).abs() / dram < 0.05,
        "HeMem {hemem} vs DRAM {dram}"
    );
}

#[test]
fn gups_hot_set_hemem_beats_mm_and_nvm() {
    // Figure 6: hot set fits in DRAM; HeMem finds it and leads MM, and
    // both crush the all-NVM placement.
    let mut cfg = quick_gups(16 * GIB, 2 * GIB);
    // Classification needs several cooling epochs at this hot-set size
    // (the paper warms up for minutes of wall-clock).
    cfg.warmup = Ns::secs(45);
    let hemem = run_gups(&mut sim_for(BackendKind::HeMem), cfg.clone()).gups;
    let mm = run_gups(&mut sim_for(BackendKind::MemoryMode), cfg.clone()).gups;
    let nvm = run_gups(&mut sim_for(BackendKind::NvmOnly), cfg).gups;
    assert!(hemem > mm, "HeMem {hemem} vs MM {mm}");
    assert!(mm > nvm, "MM {mm} vs NVM {nvm}");
    assert!(hemem > 2.0 * nvm, "HeMem {hemem} vs NVM {nvm}");
}

#[test]
fn mm_degrades_as_working_set_approaches_dram_capacity() {
    // Figure 5's conflict-miss cliff: MM loses much more than HeMem when
    // the uniform working set nears DRAM size.
    let small_mm = run_gups(
        &mut sim_for(BackendKind::MemoryMode),
        quick_gups(2 * GIB, 0),
    )
    .gups;
    let big_mm = run_gups(
        &mut sim_for(BackendKind::MemoryMode),
        quick_gups(7 * GIB, 0),
    )
    .gups;
    let small_he = run_gups(&mut sim_for(BackendKind::HeMem), quick_gups(2 * GIB, 0)).gups;
    let big_he = run_gups(&mut sim_for(BackendKind::HeMem), quick_gups(7 * GIB, 0)).gups;
    let mm_loss = small_mm / big_mm;
    let he_loss = small_he / big_he;
    assert!(
        mm_loss > 1.5 * he_loss,
        "MM loss {mm_loss:.2}x vs HeMem loss {he_loss:.2}x"
    );
}

#[test]
fn write_skew_hemem_keeps_write_heavy_pages_in_dram() {
    // Table 2: with a write-only hot subset, HeMem's write-priority
    // migration makes far fewer NVM writes than memory mode.
    let mut cfg = quick_gups(16 * GIB, 8 * GIB);
    cfg.write_only_bytes = 4 * GIB;
    cfg.warmup = Ns::secs(40);
    let he = run_gups(&mut sim_for(BackendKind::HeMem), cfg.clone());
    let mm = run_gups(&mut sim_for(BackendKind::MemoryMode), cfg);
    assert!(he.gups > mm.gups, "HeMem {} vs MM {}", he.gups, mm.gups);
    assert!(
        he.nvm_writes < mm.nvm_writes,
        "HeMem wear {} vs MM wear {}",
        he.nvm_writes,
        mm.nvm_writes
    );
}

#[test]
fn silo_knee_at_dram_capacity() {
    // Figure 13: throughput at a working set inside DRAM is far higher
    // than past the knee.
    let mk = |wh| {
        let mut c = SiloConfig::paper(wh);
        c.threads = 8;
        c.warmup = Ns::secs(3);
        c.duration = Ns::secs(3);
        c
    };
    let inside = run_silo(&mut sim_for(BackendKind::HeMem), mk(18)).tps;
    let outside = run_silo(&mut sim_for(BackendKind::HeMem), mk(72)).tps;
    assert!(
        inside > 1.5 * outside,
        "inside {inside} vs outside {outside}"
    );
}

#[test]
fn kvs_hemem_beats_mm_when_store_exceeds_dram() {
    // Table 3, 700 GB column (scaled): throughput and tail latency.
    let mk = || {
        let mut c = KvsConfig::paper(24 * GIB);
        c.threads = 4;
        c.warmup = Ns::secs(12);
        c.duration = Ns::secs(5);
        c.load = 0.3;
        c
    };
    let he = run_kvs(&mut sim_for(BackendKind::HeMem), mk());
    let mm = run_kvs(&mut sim_for(BackendKind::MemoryMode), mk());
    assert!(
        he.latency_us(0.9) <= mm.latency_us(0.9),
        "p90: HeMem {} vs MM {}",
        he.latency_us(0.9),
        mm.latency_us(0.9)
    );
}

#[test]
fn bc_wear_hemem_order_of_magnitude_below_mm() {
    // Figure 16: steady-state NVM writes per iteration.
    let run = |kind| {
        let mut sim = sim_for(kind);
        let mut cfg = GraphConfig::paper(25);
        cfg.threads = 8;
        cfg.iterations = 6;
        let bc = Bc::setup(&mut sim, cfg);
        sim.advance(Ns::secs(1));
        bc.run(&mut sim)
    };
    let he = run(BackendKind::HeMem);
    let mm = run(BackendKind::MemoryMode);
    let he_last = he.iterations.last().expect("iters").nvm_writes;
    let mm_last = mm.iterations.last().expect("iters").nvm_writes;
    assert!(
        he_last * 5 < mm_last,
        "HeMem {he_last} vs MM {mm_last} NVM bytes/iteration"
    );
    // And HeMem's runtime converges below MM's.
    let he_rt = he.iterations.last().expect("iters").runtime;
    let mm_rt = mm.iterations.last().expect("iters").runtime;
    assert!(he_rt < mm_rt, "HeMem {he_rt} vs MM {mm_rt}");
}

#[test]
fn priority_pinning_isolates_under_pressure() {
    // Table 4's mechanism end to end.
    let mc = MachineConfig::small(4, 16);
    let hc = HeMemConfig::scaled_for(&mc);
    let mut sim = Sim::new(mc, HeMem::new(hc));
    sim.backend.set_priority(true);
    let mut pcfg = KvsConfig::paper(GIB / 2);
    pcfg.threads = 2;
    pcfg.warmup = Ns::secs(2);
    pcfg.duration = Ns::secs(2);
    let prio = Kvs::setup(&mut sim, pcfg);
    sim.backend.set_priority(false);
    let mut rcfg = KvsConfig::paper(8 * GIB);
    rcfg.threads = 4;
    rcfg.warmup = Ns::secs(2);
    rcfg.duration = Ns::secs(4);
    let regular = Kvs::setup(&mut sim, rcfg);
    regular.run(&mut sim);
    let pr = sim.m.space.region(prio.log_region());
    assert_eq!(
        pr.dram_pages(),
        pr.mapped_pages(),
        "priority store stayed in DRAM"
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let mut sim = sim_for(BackendKind::HeMem);
        let r = run_gups(&mut sim, quick_gups(8 * GIB, GIB));
        (
            r.updates,
            sim.m.stats.migrations_done,
            sim.m.nvm_wear_bytes(),
        )
    };
    assert_eq!(
        run(),
        run(),
        "same seed must reproduce bit-identical results"
    );
}

#[test]
fn every_backend_survives_a_full_workload_round() {
    for kind in BackendKind::ALL {
        let mut sim = sim_for(kind);
        let mut cfg = quick_gups(4 * GIB, GIB);
        cfg.warmup = Ns::secs(3);
        cfg.duration = Ns::secs(2);
        let r = run_gups(&mut sim, cfg);
        assert!(r.gups > 0.0, "{}: zero throughput", kind.label());
    }
}
