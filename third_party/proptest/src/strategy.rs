//! Value-generation strategies: ranges, tuples, `any`, `Just`, map, union.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// Generates values of an associated type from a deterministic stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical unconstrained strategy, used by [`any`].
pub trait Arbitrary {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps a non-empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}
