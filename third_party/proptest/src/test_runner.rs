//! Deterministic RNG, run configuration, and case failure type.

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property case, carrying the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// xorshift64* stream seeded from the test name, so every run of a given
/// test generates the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an FNV-1a hash of `name`.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // xorshift state must be nonzero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
