//! Offline stub for `proptest`: a minimal, fully deterministic
//! property-testing harness covering the subset of the API this
//! workspace's test suites use.
//!
//! Inputs are generated from a seeded xorshift stream keyed on the test
//! function's name, so every run of a given test sees the same case
//! sequence and failures reproduce exactly. There is no shrinking: the
//! failing case's index and message are reported as-is.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]` and one or
/// more `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    let __result = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case with
/// a formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!(
                    "assertion failed: {}",
                    stringify!($cond)
                )),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strat)),+
        ])
    };
}
