//! The commonly imported surface: `use proptest::prelude::*;`.

pub use crate::strategy::{any, Arbitrary, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

/// Namespaced strategy constructors (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection::vec;
    }
}
