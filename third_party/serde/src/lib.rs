//! Offline stub for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its stats and
//! config types as a forward-compat marker but never serializes them, so
//! the traits here are empty markers satisfied by blanket impls and the
//! derive macros (re-exported from the stub `serde_derive`) expand to
//! nothing. Swapping the real serde back in requires no source changes.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
