//! No-op derive macros for the offline `serde` stub.
//!
//! The repo uses `#[derive(serde::Serialize, serde::Deserialize)]` purely
//! as a forward-compat marker; the traits are satisfied by blanket impls
//! in the `serde` stub, so the derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` stub's blanket impl covers the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` stub's blanket impl covers the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
