//! Offline stub for `criterion`.
//!
//! Covers the subset the bench targets use (`criterion_group!`,
//! `criterion_main!`, `bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BatchSize`). Each routine is smoke-run a
//! small fixed number of iterations and a rough ns/iter is printed, so
//! the benches stay compiled, linted, and runnable offline — this is a
//! sanity harness, not a statistics engine.

use std::time::Instant;

/// Iterations per `Bencher::iter` smoke run; tiny so `cargo bench`
/// completes in seconds even for end-to-end simulation benches.
const ITERS: u32 = 16;

/// Hint for per-iteration input size in `iter_batched`; ignored here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Runs one benchmark routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    nanos: u128,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.iters += ITERS as u64;
        self.nanos += start.elapsed().as_nanos();
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time
    /// excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERS.min(4) {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.iters += 1;
            self.nanos += start.elapsed().as_nanos();
        }
    }
}

/// Registry of benchmark functions; prints results to stdout.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` once with a fresh [`Bencher`] and reports ns/iter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        let per_iter = if b.iters == 0 {
            0
        } else {
            b.nanos / b.iters as u128
        };
        println!("bench {id:<40} ~{per_iter:>10} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
