//! # hemem-repro
//!
//! Umbrella crate for the HeMem (SOSP 2021) reproduction. Re-exports the
//! workspace crates under one roof so examples and downstream users can
//! depend on a single package.

#![warn(missing_docs)]

pub use hemem_baselines as baselines;
pub use hemem_core as core;
pub use hemem_memdev as memdev;
pub use hemem_pebs as pebs;
pub use hemem_sim as sim;
pub use hemem_vmm as vmm;
pub use hemem_workloads as workloads;
