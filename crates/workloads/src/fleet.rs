//! Fleet-scale tenant churn: a seeded open-loop arrival process over
//! the slot-pooled control plane.
//!
//! Where [`crate::churn`] drives a handful of hand-written tenant specs
//! through one join/kill/balloon schedule, fleet runs model a *host in
//! a fleet*: hundreds to thousands of short-lived tenant instances
//! arriving on a Poisson process with heavy-tailed (Pareto) lifetimes —
//! the canonical serverless/μ-service shape, where most instances die
//! young but a fat tail lives orders of magnitude longer. Every arrival
//! claims a slot from the manager's [`hemem_core::SlotPool`]
//! (admission = claim + deterministic reset), runs demand-paged batches
//! until its sampled lifetime expires, is killed, drained, and its slot
//! scrubbed and recycled for a later arrival.
//!
//! Determinism: the whole arrival/lifetime schedule is pre-generated
//! from one seeded [`hemem_sim::Rng`] *before* the event loop starts,
//! so the machine's own RNG streams are untouched and a same-seed
//! replay is byte-identical. Arrivals that find no free slot (or no
//! admittable quota) are shed open-loop — counted, never queued — so
//! occupancy feedback cannot leak timing into the schedule.
//!
//! The driver charges each spawn a simulated setup latency from
//! [`hemem_core::spawn_cost_ns`] between admission and first touch;
//! the cost model is a config knob *separate from* the pool's spawn
//! mechanism so `fleetbench` can flip the mechanism while charging both
//! runs the same cost (identity gate) or flip both together
//! (speedup gate).

use hemem_core::backend::{AccessBatch, SegmentAccess};
use hemem_core::hemem::HeMem;
use hemem_core::runtime::{Event, Sim};
use hemem_core::spawn_cost_ns;
use hemem_memdev::Pattern;
use hemem_sim::{Histogram, Ns, Rng};
use hemem_vmm::TenantId;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// A fleet scenario: the arrival process, the lifetime distribution,
/// and the per-instance workload shape.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Seed for the schedule generator (independent of the machine's
    /// seed; two runs with equal seeds get byte-identical schedules).
    pub seed: u64,
    /// Tenant instance arrivals to generate (offered load; admitted can
    /// be lower under shedding).
    pub arrivals: u64,
    /// Poisson arrival rate, instances per simulated second.
    pub arrivals_per_sec: f64,
    /// Pareto lifetime scale `x_m` — the minimum lifetime.
    pub lifetime_scale: Ns,
    /// Pareto tail index α (1 < α < 2 gives the heavy tail where a few
    /// instances live orders of magnitude past the median).
    pub lifetime_alpha: f64,
    /// Lifetime clamp so one tail sample cannot dominate the run.
    pub lifetime_cap: Ns,
    /// Per-instance working set, bytes (demand paged on first touch).
    pub working_set: u64,
    /// Per-instance hot set, bytes (`0` = uniform).
    pub hot_set: u64,
    /// Updates per batch.
    pub batch_ops: u64,
    /// Store fraction of the access mix.
    pub write_fraction: f64,
    /// Which spawn *cost* to charge between admission and first touch
    /// (decoupled from the pool's spawn mechanism; see module docs).
    pub charge_pooled_cost: bool,
    /// Slot working-set pages used by the scratch-spawn cost model.
    pub slot_pages: u64,
}

impl FleetConfig {
    /// The default fleetbench scenario at a given offered-arrival count.
    pub fn gate(arrivals: u64) -> FleetConfig {
        FleetConfig {
            seed: 0xF1EE7,
            arrivals,
            arrivals_per_sec: 400.0,
            lifetime_scale: Ns::millis(20),
            lifetime_alpha: 1.3,
            lifetime_cap: Ns::secs(2),
            working_set: 128 << 20,
            hot_set: 32 << 20,
            batch_ops: 20_000,
            write_fraction: 0.3,
            charge_pooled_cost: true,
            slot_pages: 4096,
        }
    }
}

/// One tenant instance's outcome.
#[derive(Debug, Clone, Copy)]
pub struct LifetimeOutcome {
    /// The slot the instance occupied.
    pub slot: TenantId,
    /// The slot generation it ran as.
    pub generation: u32,
    /// Arrival (admission) time.
    pub arrival: Ns,
    /// Admission → first demand-paging touch of the working set
    /// (includes the charged spawn cost).
    pub spawn_to_first_touch: Ns,
    /// Operations completed over the lifetime.
    pub ops: u64,
    /// Major faults (tier-3 swap-ins) served for this generation.
    pub major_faults: u64,
    /// p99 major-fault service time, ns (`0` when none occurred).
    pub major_p99_ns: u64,
}

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Arrivals generated (offered load).
    pub offered: u64,
    /// Arrivals admitted (slot claimed, quota granted).
    pub admitted: u64,
    /// Arrivals shed (no free slot / quota floor unsatisfiable).
    pub shed: u64,
    /// Operations completed across every instance.
    pub total_ops: u64,
    /// End of the last lifetime (run length for throughput math).
    pub end: Ns,
    /// Order-sensitive FNV-1a hash over admissions, sheds, and every
    /// submitted batch — the run's replay identity.
    pub fingerprint: u64,
    /// Admission → first touch latency distribution over admitted
    /// instances.
    pub spawn_hist: Histogram,
    /// Per-instance outcomes, in admission order.
    pub lifetimes: Vec<LifetimeOutcome>,
}

impl FleetResult {
    /// Aggregate throughput in operations per simulated second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.end.as_nanos() as f64 / 1e9;
        if secs <= 0.0 {
            0.0
        } else {
            self.total_ops as f64 / secs
        }
    }

    /// Worst per-instance major-fault p99 across the fleet, ns.
    pub fn worst_major_p99_ns(&self) -> u64 {
        self.lifetimes
            .iter()
            .map(|l| l.major_p99_ns)
            .max()
            .unwrap_or(0)
    }
}

/// One pre-generated arrival.
#[derive(Debug, Clone, Copy)]
struct Planned {
    at: Ns,
    lifetime: Ns,
}

/// Per-admitted-instance driver state.
struct Instance {
    slot: TenantId,
    generation: u32,
    arrival: Ns,
    region: Option<hemem_vmm::RegionId>,
    total_pages: u64,
    hot_pages: u64,
    first_touch: Option<Ns>,
    ops: u64,
}

/// Generates the arrival schedule: exponential interarrivals at
/// `arrivals_per_sec`, Pareto(α, x_m) lifetimes clamped to the cap.
fn schedule(cfg: &FleetConfig) -> Vec<Planned> {
    let mut rng = Rng::new(cfg.seed);
    let mut at = 0u64;
    (0..cfg.arrivals)
        .map(|_| {
            let gap = rng.exponential(1e9 / cfg.arrivals_per_sec).round() as u64;
            at += gap.max(1);
            // Inverse-CDF Pareto: x_m * U^(-1/α).
            let u = rng.gen_f64().max(1e-12);
            let life = cfg.lifetime_scale.as_nanos() as f64 * u.powf(-1.0 / cfg.lifetime_alpha);
            let life = (life.round() as u64).min(cfg.lifetime_cap.as_nanos());
            Planned {
                at: Ns(at),
                lifetime: Ns(life.max(1)),
            }
        })
        .collect()
}

fn batch_for(inst: &Instance, cfg: &FleetConfig) -> AccessBatch {
    let region = inst.region.expect("batch after start");
    let mut segments = Vec::with_capacity(2);
    if cfg.hot_set > 0 && inst.hot_pages > 0 {
        let hot_lo = (inst.total_pages - inst.hot_pages) / 3;
        segments.push(SegmentAccess {
            region,
            lo_page: hot_lo,
            hi_page: hot_lo + inst.hot_pages,
            weight: 0.9,
            llc_footprint: cfg.hot_set.max(1),
            write_fraction: None,
        });
        segments.push(SegmentAccess {
            region,
            lo_page: 0,
            hi_page: inst.total_pages,
            weight: 0.1,
            llc_footprint: cfg.working_set,
            write_fraction: None,
        });
    } else {
        segments.push(SegmentAccess {
            region,
            lo_page: 0,
            hi_page: inst.total_pages,
            weight: 1.0,
            llc_footprint: cfg.working_set,
            write_fraction: None,
        });
    }
    AccessBatch {
        segments,
        count: cfg.batch_ops * 2, // each update = read + write
        object_size: 8,
        write_fraction: cfg.write_fraction,
        pattern: Pattern::Random,
        cpu_ns_per_access: 2.0,
        mlp: 4.0,
        sweep: false,
    }
}

// Custom-event tags: (instance index << 2) | kind.
const KIND_ARRIVAL: u64 = 0;
const KIND_START: u64 = 1;
const KIND_DEPART: u64 = 2;

/// Runs the fleet scenario over `sim`. The backend must have been built
/// with deferred slots ([`HeMem::churn`]) — every arrival goes through
/// admission control and the slot pool. Each admitted instance runs one
/// driver thread whose id is its admission index, so a recycled slot's
/// next occupant never aliases its predecessor's in-flight rounds.
pub fn run_fleet(sim: &mut Sim<HeMem>, cfg: &FleetConfig) -> FleetResult {
    run_fleet_with(sim, cfg, |_| {})
}

/// [`run_fleet`] with an observer called after every simulation event —
/// the hook for periodic samplers ([`hemem_core::telemetry`]) that need
/// to watch a fleet run without perturbing it.
pub fn run_fleet_with(
    sim: &mut Sim<HeMem>,
    cfg: &FleetConfig,
    mut observe: impl FnMut(&Sim<HeMem>),
) -> FleetResult {
    assert!(cfg.arrivals > 0, "need at least one arrival");
    let plan = schedule(cfg);
    let mut fingerprint = FNV_OFFSET;

    // Arrival events carry the *plan* index; start/depart events carry
    // the *admission* index (an instance only exists once admitted).
    let mut op_count = 0usize;
    for (k, p) in plan.iter().enumerate() {
        sim.schedule_custom(p.at, ((k as u64) << 2) | KIND_ARRIVAL);
        op_count += 1;
    }

    let mut instances: Vec<Instance> = Vec::new();
    // Admission index currently running on each slot (drives thread
    // retirement: a round whose instance lost its slot retires).
    let mut occupant: Vec<Option<usize>> = vec![None; sim.backend.slot_pool().len()];
    let mut shed = 0u64;
    let mut live_threads = 0u32;
    let mut end = Ns::ZERO;

    while live_threads > 0 || op_count > 0 {
        let Some((now, ev)) = sim.step() else {
            break;
        };
        end = end.max(now);
        match ev {
            Event::Custom(tag) => {
                op_count -= 1;
                let idx = (tag >> 2) as usize;
                match tag & 3 {
                    KIND_ARRIVAL => {
                        let Some(t) = sim.backend.slot_pool().next_free() else {
                            shed += 1;
                            fnv1a(&mut fingerprint, format!("shed|{idx}").as_bytes());
                            continue;
                        };
                        if sim.backend.admit_tenant(&mut sim.m, t, now).is_err() {
                            shed += 1;
                            fnv1a(&mut fingerprint, format!("shed|{idx}").as_bytes());
                            continue;
                        }
                        let a = instances.len();
                        let generation = sim.m.space.tenant_generation(t);
                        instances.push(Instance {
                            slot: t,
                            generation,
                            arrival: now,
                            region: None,
                            total_pages: 0,
                            hot_pages: 0,
                            first_touch: None,
                            ops: 0,
                        });
                        occupant[t.0 as usize] = Some(a);
                        fnv1a(
                            &mut fingerprint,
                            format!("admit|{idx}|{a}|{}|{generation}", t.0).as_bytes(),
                        );
                        // The spawn cost separates admission from first
                        // touch: slot claim vs from-scratch rebuild.
                        let cost = spawn_cost_ns(cfg.charge_pooled_cost, cfg.slot_pages);
                        sim.schedule_custom(
                            Ns(now.as_nanos() + cost),
                            ((a as u64) << 2) | KIND_START,
                        );
                        // The lifetime clock starts at admission.
                        sim.schedule_custom(
                            Ns(now.as_nanos() + cost + plan[idx].lifetime.as_nanos()),
                            ((a as u64) << 2) | KIND_DEPART,
                        );
                        op_count += 2;
                    }
                    KIND_START => {
                        let inst = &mut instances[idx];
                        sim.set_active_tenant(inst.slot);
                        let region = sim.mmap(cfg.working_set);
                        let (page_bytes, total_pages) = {
                            let r = sim.m.space.region(region);
                            (r.page_size().bytes(), r.page_count())
                        };
                        inst.region = Some(region);
                        inst.total_pages = total_pages;
                        inst.hot_pages = cfg.hot_set.div_ceil(page_bytes).min(total_pages);
                        sim.schedule_thread(now, idx as u32);
                        live_threads += 1;
                        sim.set_app_threads(live_threads);
                    }
                    KIND_DEPART => {
                        let inst = &instances[idx];
                        if occupant[inst.slot.0 as usize] == Some(idx)
                            && sim.backend.tenant_is_live(inst.slot)
                        {
                            sim.inject_tenant_kill(inst.slot);
                        }
                    }
                    _ => unreachable!("two-bit kind"),
                }
            }
            Event::ThreadReady(tid) => {
                let idx = tid as usize;
                let inst = &mut instances[idx];
                if inst.first_touch.is_none() {
                    inst.first_touch = Some(Ns(now.as_nanos() - inst.arrival.as_nanos()));
                }
                // Retire the thread once the instance lost its slot
                // (killed and possibly already recycled to a successor).
                if occupant[inst.slot.0 as usize] != Some(idx)
                    || !sim.backend.tenant_is_live(inst.slot)
                {
                    live_threads -= 1;
                    sim.set_app_threads(live_threads.max(1));
                    continue;
                }
                let b = batch_for(inst, cfg);
                let repr = format!("{idx}|{b:?}");
                fnv1a(&mut fingerprint, repr.as_bytes());
                sim.submit_batch(tid, &b);
                instances[idx].ops += cfg.batch_ops;
            }
            _ => unreachable!("step only returns workload events"),
        }
        observe(sim);
    }
    // Let the tail of kills finish their DMA-quiescence drains so the
    // final audit sees a fully recycled pool.
    sim.run_until(Ns(end.as_nanos() + Ns::millis(100).as_nanos()));

    let mut spawn_hist = Histogram::new();
    let lifetimes: Vec<LifetimeOutcome> = instances
        .iter()
        .map(|inst| {
            let first = inst.first_touch.unwrap_or(Ns::ZERO);
            if inst.first_touch.is_some() {
                spawn_hist.record_ns(first);
            }
            let hist = sim
                .m
                .tenant_major_faults
                .get(&(inst.slot.0, inst.generation));
            LifetimeOutcome {
                slot: inst.slot,
                generation: inst.generation,
                arrival: inst.arrival,
                spawn_to_first_touch: first,
                ops: inst.ops,
                major_faults: hist.map_or(0, |h| h.count()),
                major_p99_ns: hist.map_or(0, |h| h.quantile(0.99)),
            }
        })
        .collect();
    let admitted = lifetimes.len() as u64;
    let total_ops = lifetimes.iter().map(|l| l.ops).sum();
    FleetResult {
        offered: cfg.arrivals,
        admitted,
        shed,
        total_ops,
        end,
        fingerprint,
        spawn_hist,
        lifetimes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::arbiter::ArbiterPolicy;
    use hemem_core::hemem::HeMemConfig;
    use hemem_core::machine::MachineConfig;
    use hemem_memdev::GIB;

    fn fleet_sim(slots: usize) -> Sim<HeMem> {
        let mut mc = MachineConfig::small(2, 8).with_tier3(32 * GIB);
        mc.pebs.sample_period *= 96;
        let hc = HeMemConfig::scaled_for(&mc);
        let mut backend = HeMem::churn(hc, slots, ArbiterPolicy::GreedyMissRatio);
        backend.set_slot_pages(64);
        Sim::new(mc, backend)
    }

    fn small_cfg() -> FleetConfig {
        let mut cfg = FleetConfig::gate(48);
        cfg.working_set = 64 << 20;
        cfg.hot_set = 16 << 20;
        cfg.batch_ops = 5_000;
        cfg
    }

    #[test]
    fn fleet_run_recycles_slots_and_replays_byte_identically() {
        let mut a_sim = fleet_sim(8);
        let a = run_fleet(&mut a_sim, &small_cfg());
        let mut b_sim = fleet_sim(8);
        let b = run_fleet(&mut b_sim, &small_cfg());
        assert_eq!(a.fingerprint, b.fingerprint, "replay fingerprint");
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.total_ops, b.total_ops);
        // More admissions than slots proves slots were recycled.
        assert!(
            a.admitted > 8,
            "only {} admissions over 8 slots: no recycling",
            a.admitted
        );
        let stats = a_sim.backend.slot_pool().stats();
        assert!(stats.recycles > 0, "no slot was recycled");
        assert_eq!(stats.spawns, a.admitted);
        assert_eq!(a_sim.run_audit(false), Vec::new(), "fleet audit silent");
    }

    #[test]
    fn charged_spawn_cost_separates_pooled_from_scratch_first_touch() {
        let mut cfg = small_cfg();
        cfg.arrivals = 12;
        let mut pooled_sim = fleet_sim(8);
        let pooled = run_fleet(&mut pooled_sim, &cfg);
        cfg.charge_pooled_cost = false;
        let mut scratch_sim = fleet_sim(8);
        scratch_sim.backend.set_fleet_pooling(false);
        let scratch = run_fleet(&mut scratch_sim, &cfg);
        let (p, s) = (
            pooled.spawn_hist.quantile(0.99),
            scratch.spawn_hist.quantile(0.99),
        );
        assert!(s >= 5 * p, "scratch first-touch p99 {s} not ≥5x pooled {p}");
    }
}
