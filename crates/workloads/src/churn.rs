//! Tenant-churn scenarios: open-loop arrival, seeded kills, and
//! mid-run ballooning over one simulated machine.
//!
//! Where [`crate::colo`] sets every tenant up before the event loop
//! starts, churn runs model a host whose tenant set is a *schedule*:
//! slots join mid-run through the manager's admission control
//! ([`hemem_core::hemem::HeMem::admit_tenant`]), die on the fault
//! plan's seeded kill schedule
//! ([`hemem_sim::FaultPlanConfig::tenant_kill_at`]), and shrink under
//! balloon pressure ([`hemem_core::hemem::HeMem::balloon_tenant`]).
//!
//! Arriving tenants are **demand paged**: setup maps the region but
//! does not populate it, so the tenant's first rounds of batches fault
//! their pages in through the normal first-touch path while the
//! neighbours keep running — exactly what a freshly exec'd process
//! does, and it keeps the shared event loop free of the bulk-fill
//! fast-forwarding that solo setup uses.
//!
//! Determinism matches the colocation contract: every tenant's batch
//! stream is a pure function of its spec, arrival and kill times come
//! from explicit schedules (no RNG stream is consumed), and
//! [`ChurnResult::fingerprint`] hashes the global submission stream so
//! a same-seed replay can be asserted byte-identical.

use hemem_core::backend::{AccessBatch, SegmentAccess};
use hemem_core::hemem::HeMem;
use hemem_core::runtime::{Event, Sim};
use hemem_memdev::Pattern;
use hemem_sim::Ns;
use hemem_vmm::TenantId;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// A scheduled quota shrink for one tenant.
#[derive(Debug, Clone, Copy)]
pub struct BalloonOp {
    /// When the balloon is requested.
    pub at: Ns,
    /// Target quota, in managed pages.
    pub target_pages: u64,
    /// Drain deadline, relative to `at`; past it the manager escalates
    /// to forced swap-out.
    pub grace: Ns,
}

/// One tenant slot in a churn schedule. Slot `i` of the spec vector is
/// [`TenantId`] `i`; kills are configured separately on the machine's
/// fault plan so the kill path is exercised end to end (event,
/// quarantine, DMA quiescence, drain).
#[derive(Debug, Clone)]
pub struct ChurnTenantSpec {
    /// Display label.
    pub label: String,
    /// When the tenant arrives (admission + mmap; demand paging after).
    pub arrive: Ns,
    /// Optional mid-run quota shrink.
    pub balloon: Option<BalloonOp>,
    /// Working-set bytes.
    pub working_set: u64,
    /// Hot-set bytes (`0` = uniform).
    pub hot_set: u64,
    /// Worker threads.
    pub threads: u32,
    /// Updates per batch per thread.
    pub batch_ops: u64,
    /// Store fraction of the access mix.
    pub write_fraction: f64,
}

/// A churn scenario: the slot schedule and the shared run window.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Tenant slots in [`TenantId`] order.
    pub tenants: Vec<ChurnTenantSpec>,
    /// End of the run; threads retire at the first round boundary past
    /// it.
    pub end: Ns,
}

/// Per-tenant outcome of a churn run.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// The tenant's slot id.
    pub tenant: TenantId,
    /// The spec label.
    pub label: String,
    /// Whether admission control accepted the slot.
    pub admitted: bool,
    /// Whether the tenant was still live (not killed) at the end.
    pub survived: bool,
    /// Operations completed between arrival and kill/end.
    pub ops: u64,
    /// Order-sensitive FNV-1a hash over the tenant's submitted batches.
    pub stream_hash: u64,
    /// Major faults (tier-3 swap-ins) this tenant served.
    pub major_faults: u64,
    /// p99 major-fault service time, ns (`0` when none occurred).
    pub major_p99_ns: u64,
}

/// Outcome of a churn run.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// Per-tenant outcomes, in slot order.
    pub per_tenant: Vec<ChurnOutcome>,
    /// FNV-1a hash over the global submission stream — the whole run's
    /// replay identity.
    pub fingerprint: u64,
}

/// Per-tenant driver state once arrived: region geometry and per-thread
/// partitions (a GUPS-style hot/cold split; pure batch generation).
struct Arrived {
    region: hemem_vmm::RegionId,
    per: u64,
    total_pages: u64,
    hot_pages_per: u64,
}

impl Arrived {
    fn batch_for(&self, spec: &ChurnTenantSpec, local: u32) -> AccessBatch {
        let t = local as u64;
        let lo = t * self.per;
        let hi = if t == spec.threads as u64 - 1 {
            self.total_pages
        } else {
            lo + self.per
        };
        let hot_lo = lo + (self.per.saturating_sub(self.hot_pages_per)) / 3;
        let hot_hi = (hot_lo + self.hot_pages_per).min(hi);
        let mut segments = Vec::with_capacity(2);
        if spec.hot_set > 0 && hot_hi > hot_lo {
            segments.push(SegmentAccess {
                region: self.region,
                lo_page: hot_lo,
                hi_page: hot_hi,
                weight: 0.9,
                llc_footprint: spec.hot_set.max(1),
                write_fraction: None,
            });
            segments.push(SegmentAccess {
                region: self.region,
                lo_page: lo,
                hi_page: hi,
                weight: 0.1,
                llc_footprint: spec.working_set,
                write_fraction: None,
            });
        } else {
            segments.push(SegmentAccess {
                region: self.region,
                lo_page: lo,
                hi_page: hi,
                weight: 1.0,
                llc_footprint: spec.working_set,
                write_fraction: None,
            });
        }
        AccessBatch {
            segments,
            count: spec.batch_ops * 2, // each update = read + write
            object_size: 8,
            write_fraction: spec.write_fraction,
            pattern: Pattern::Random,
            cpu_ns_per_access: 2.0,
            mlp: 4.0,
            sweep: false,
        }
    }
}

/// Runs the churn schedule over `sim`. Kills must already be planted in
/// the machine's fault plan (`tenant_kill_at`); this runner notices them
/// by polling tenant liveness at round boundaries and retiring the dead
/// tenant's threads. The backend must have been built with spare slots
/// ([`HeMem::churn`]) or admission will reject every arrival.
pub fn run_churn(sim: &mut Sim<HeMem>, cfg: &ChurnConfig) -> ChurnResult {
    assert!(!cfg.tenants.is_empty(), "need at least one tenant slot");
    let n = cfg.tenants.len();
    // Global thread-id ranges are fixed by the spec, not arrival order.
    let mut bases = Vec::with_capacity(n);
    let mut total_threads = 0u32;
    for spec in &cfg.tenants {
        bases.push(total_threads);
        total_threads += spec.threads;
    }
    let owner = |tid: u32| -> usize {
        match bases.binary_search(&tid) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };

    // Schedule arrivals and balloons as workload timer events; the tag
    // encodes (slot, op kind).
    let mut op_count = 0usize;
    for (i, spec) in cfg.tenants.iter().enumerate() {
        sim.schedule_custom(spec.arrive, (i as u64) << 1);
        op_count += 1;
        if let Some(b) = &spec.balloon {
            assert!(b.at >= spec.arrive, "balloon before arrival");
            sim.schedule_custom(b.at, ((i as u64) << 1) | 1);
            op_count += 1;
        }
    }

    let mut arrived: Vec<Option<Arrived>> = (0..n).map(|_| None).collect();
    let mut admitted = vec![false; n];
    let mut ops = vec![0u64; n];
    let mut stream = vec![FNV_OFFSET; n];
    let mut fingerprint = FNV_OFFSET;
    let mut round_ops = vec![0u64; total_threads as usize];
    let mut live_threads = 0u32;

    while live_threads > 0 || op_count > 0 {
        let Some((now, ev)) = sim.step() else {
            break;
        };
        match ev {
            Event::Custom(tag) => {
                op_count -= 1;
                let i = (tag >> 1) as usize;
                let t = TenantId(i as u32);
                let spec = &cfg.tenants[i];
                if tag & 1 == 0 {
                    // Arrival: admission, then a bare mmap — pages fault
                    // in on first touch from the batches below.
                    match sim.backend.admit_tenant(&mut sim.m, t, now) {
                        Ok(_granted) => {}
                        Err(_) => continue, // rejected; slot never runs
                    }
                    admitted[i] = true;
                    sim.set_active_tenant(t);
                    let region = sim.mmap(spec.working_set);
                    let (page_bytes, total_pages) = {
                        let r = sim.m.space.region(region);
                        (r.page_size().bytes(), r.page_count())
                    };
                    let threads = spec.threads.max(1) as u64;
                    let per = total_pages / threads;
                    let hot_pages_per = (spec.hot_set / threads).div_ceil(page_bytes).min(per);
                    arrived[i] = Some(Arrived {
                        region,
                        per,
                        total_pages,
                        hot_pages_per,
                    });
                    for local in 0..spec.threads {
                        sim.schedule_thread(now, bases[i] + local);
                    }
                    live_threads += spec.threads;
                    sim.set_app_threads(live_threads);
                } else if admitted[i] && sim.backend.tenant_is_live(t) {
                    let deadline =
                        Ns(now.as_nanos() + spec.balloon.expect("scheduled").grace.as_nanos());
                    sim.backend.balloon_tenant(
                        &mut sim.m,
                        t,
                        spec.balloon.expect("scheduled").target_pages,
                        deadline,
                        now,
                    );
                }
            }
            Event::ThreadReady(tid) => {
                let i = owner(tid);
                let t = tid as usize;
                ops[i] += round_ops[t];
                round_ops[t] = 0;
                // A killed tenant's threads retire at the next round
                // boundary; so does everyone once the window closes.
                if now >= cfg.end || !sim.backend.tenant_is_live(TenantId(i as u32)) {
                    live_threads -= 1;
                    sim.set_app_threads(live_threads.max(1));
                    continue;
                }
                let spec = &cfg.tenants[i];
                let a = arrived[i].as_ref().expect("ready implies arrived");
                let b = a.batch_for(spec, tid - bases[i]);
                let repr = format!("{i}|{tid}|{b:?}");
                fnv1a(&mut stream[i], repr.as_bytes());
                fnv1a(&mut fingerprint, repr.as_bytes());
                sim.submit_batch(tid, &b);
                round_ops[t] = spec.batch_ops;
            }
            _ => unreachable!("step only returns workload events"),
        }
    }

    let per_tenant = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let t = TenantId(i as u32);
            let generation = sim.m.space.tenant_generation(t);
            let hist = sim.m.tenant_major_faults.get(&(i as u32, generation));
            ChurnOutcome {
                tenant: t,
                label: spec.label.clone(),
                admitted: admitted[i],
                survived: admitted[i] && sim.backend.tenant_is_live(t),
                ops: ops[i],
                stream_hash: stream[i],
                major_faults: hist.map_or(0, |h| h.count()),
                major_p99_ns: hist.map_or(0, |h| h.quantile(0.99)),
            }
        })
        .collect();
    ChurnResult {
        per_tenant,
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::arbiter::ArbiterPolicy;
    use hemem_core::hemem::HeMemConfig;
    use hemem_core::machine::MachineConfig;
    use hemem_memdev::GIB;
    use hemem_sim::TenantKill;

    fn spec(label: &str, arrive: Ns, ws: u64) -> ChurnTenantSpec {
        ChurnTenantSpec {
            label: label.to_string(),
            arrive,
            balloon: None,
            working_set: ws,
            hot_set: ws / 4,
            threads: 2,
            batch_ops: 50_000,
            write_fraction: 0.5,
        }
    }

    fn churn_sim(slots: usize) -> Sim<HeMem> {
        let mut mc = MachineConfig::small(2, 8).with_tier3(32 * GIB);
        mc.pebs.sample_period *= 96;
        mc.chaos.tenant_kill_at = vec![TenantKill {
            tenant: 1,
            at: Ns::secs(2),
        }];
        let hc = HeMemConfig::scaled_for(&mc);
        Sim::new(mc, HeMem::churn(hc, slots, ArbiterPolicy::GreedyMissRatio))
    }

    fn plan() -> ChurnConfig {
        let mut victim = spec("victim", Ns::millis(500), GIB);
        victim.balloon = None;
        let mut ballooned = spec("ballooned", Ns::millis(200), GIB);
        ballooned.balloon = Some(BalloonOp {
            at: Ns::secs(1),
            target_pages: 64,
            grace: Ns::millis(500),
        });
        ChurnConfig {
            tenants: vec![spec("anchor", Ns::ZERO, GIB), victim, ballooned],
            end: Ns::secs(4),
        }
    }

    #[test]
    fn churn_run_replays_byte_identically_and_drains_the_killed_tenant() {
        let mut a_sim = churn_sim(3);
        let a = run_churn(&mut a_sim, &plan());
        let mut b_sim = churn_sim(3);
        let b = run_churn(&mut b_sim, &plan());
        assert_eq!(a.fingerprint, b.fingerprint, "replay fingerprint");
        for (x, y) in a.per_tenant.iter().zip(&b.per_tenant) {
            assert_eq!(x.stream_hash, y.stream_hash, "{} stream", x.label);
            assert_eq!(x.ops, y.ops, "{} ops", x.label);
        }
        // The seeded kill removed tenant 1 and reclaimed its frames.
        assert!(a.per_tenant[0].survived && a.per_tenant[2].survived);
        assert!(!a.per_tenant[1].survived, "victim was killed at 2 s");
        assert!(a_sim.backend.tenant_is_retired(TenantId(1)));
        let tf = a_sim.m.space.tenant_frames(TenantId(1));
        assert_eq!(
            tf.dram_pages + tf.nvm_pages + tf.ssd_pages,
            0,
            "no frames leaked past the drain"
        );
        // Survivors made progress before and after the kill.
        assert!(a.per_tenant[0].ops > 0 && a.per_tenant[2].ops > 0);
        assert_eq!(a_sim.run_audit(false), Vec::new());
    }
}
