//! Silo-style in-memory transactional database running TPC-C (§5.2.1,
//! Figure 13).
//!
//! Silo (Tu et al., SOSP'13) keeps all tables and indexes in memory and
//! executes serializable transactions with an OCC protocol over a
//! Masstree-like ordered index. TPC-C models a retail operation: most
//! transactions touch a home warehouse, ~1% of new-order items and ~15%
//! of payments go remote. The paper scales the working set by the
//! warehouse count (864 warehouses fill the 192 GB DRAM) and notes the
//! resulting access pattern is "random with little read and write reuse"
//! — there is no stable page-level hot set in the row data, only the
//! index upper levels are hot.
//!
//! The driver replays that trace: index-node walks (hot, cache-friendly
//! upper levels; cold leaf levels), row reads/writes uniform over the
//! home warehouse's rows, remote accesses uniform over all warehouses,
//! and a sequential redo-log append per transaction.

use hemem_core::backend::{AccessBatch, SegmentAccess, TieredBackend};
use hemem_core::runtime::{Event, Sim};
use hemem_memdev::Pattern;
use hemem_sim::Ns;
use hemem_vmm::RegionId;

/// Bytes of row + index data per TPC-C warehouse (sized so the paper's
/// 864-warehouse maximum fills 192 GB of DRAM).
pub const BYTES_PER_WAREHOUSE: u64 = 222 << 20;

/// Fraction of the footprint that is ordered-index nodes.
const INDEX_FRACTION: f64 = 0.12;

/// Silo/TPC-C configuration.
#[derive(Debug, Clone)]
pub struct SiloConfig {
    /// Warehouse count (paper sweeps 16-1728).
    pub warehouses: u32,
    /// Worker threads (paper: 16).
    pub threads: u32,
    /// Measurement duration.
    pub duration: Ns,
    /// Warm-up before measurement.
    pub warmup: Ns,
    /// Transactions per submitted batch per thread.
    pub batch_txns: u64,
}

impl SiloConfig {
    /// Paper setup at a warehouse count.
    pub fn paper(warehouses: u32) -> SiloConfig {
        SiloConfig {
            warehouses,
            threads: 16,
            duration: Ns::secs(10),
            warmup: Ns::secs(5),
            batch_txns: 20_000,
        }
    }

    /// Total working set in bytes.
    pub fn working_set(&self) -> u64 {
        self.warehouses as u64 * BYTES_PER_WAREHOUSE
    }
}

/// Result of a Silo run.
#[derive(Debug, Clone, Copy)]
pub struct SiloResult {
    /// Transactions per second.
    pub tps: f64,
    /// Transactions completed in the measurement phase.
    pub txns: u64,
}

/// The Silo/TPC-C driver.
pub struct Silo {
    cfg: SiloConfig,
    data: RegionId,
    log: RegionId,
    index_pages: u64,
    total_pages: u64,
    page_bytes: u64,
}

impl Silo {
    /// Maps and loads the database.
    pub fn setup<B: TieredBackend>(sim: &mut Sim<B>, cfg: SiloConfig) -> Silo {
        let data = sim.mmap(cfg.working_set());
        // Redo log buffer: small, recycled, write-hot; stays in DRAM under
        // every size-aware policy.
        let log = sim.mmap(256 << 20);
        sim.populate_shuffled(data, true);
        sim.populate(log, true);
        sim.set_app_threads(cfg.threads);
        let r = sim.m.space.region(data);
        let total_pages = r.page_count();
        let page_bytes = r.page_size().bytes();
        let index_pages = ((total_pages as f64 * INDEX_FRACTION) as u64).max(1);
        Silo {
            cfg,
            data,
            log,
            index_pages,
            total_pages,
            page_bytes,
        }
    }

    /// The table/index region.
    pub fn data_region(&self) -> RegionId {
        self.data
    }

    /// The redo-log region.
    pub fn log_region(&self) -> RegionId {
        self.log
    }

    /// One thread's transaction batch.
    pub(crate) fn batch_for(&self, tid: u32, log_pages: u64) -> (AccessBatch, AccessBatch) {
        let cfg = &self.cfg;
        let txns = cfg.batch_txns;
        // Home-warehouse page span for this thread.
        let rows_lo = self.index_pages;
        let row_pages = self.total_pages - self.index_pages;
        let per = (row_pages / cfg.threads as u64).max(1);
        let home_lo = rows_lo + tid as u64 * per;
        let home_hi = (home_lo + per).min(self.total_pages);
        // Per TPC-C transaction (weighted new-order/payment mix):
        //   ~12 index-node touches, ~14 home-row reads, ~9 home-row
        //   writes, ~0.3 remote-row touches.
        let idx_acc = txns * 12;
        let home_reads = txns * 14;
        let home_writes = txns * 9;
        let remote = txns * 3 / 10;
        let total = idx_acc + home_reads + home_writes + remote;
        let write_frac = home_writes as f64 / total as f64;
        let index_bytes = self.index_pages * self.page_bytes;
        let segments = vec![
            // Index: upper levels are tiny and LLC-resident; the effective
            // footprint competing for cache is the index itself.
            SegmentAccess {
                region: self.data,
                lo_page: 0,
                hi_page: self.index_pages,
                weight: idx_acc as f64 / total as f64,
                llc_footprint: index_bytes,
                write_fraction: None,
            },
            // Home rows: uniform, no reuse.
            SegmentAccess {
                region: self.data,
                lo_page: home_lo,
                hi_page: home_hi,
                weight: (home_reads + home_writes) as f64 / total as f64,
                llc_footprint: cfg.working_set(),
                write_fraction: None,
            },
            // Remote rows: uniform over everything.
            SegmentAccess {
                region: self.data,
                lo_page: rows_lo,
                hi_page: self.total_pages,
                weight: remote as f64 / total as f64,
                llc_footprint: cfg.working_set(),
                write_fraction: None,
            },
        ];
        let data_batch = AccessBatch {
            segments,
            count: total,
            object_size: 64,
            write_fraction: write_frac,
            pattern: Pattern::Random,
            cpu_ns_per_access: 6.0,
            mlp: 3.0,
            sweep: false,
        };
        // Redo log: one ~600 B sequential append per transaction.
        let log_batch = AccessBatch {
            segments: vec![SegmentAccess {
                region: self.log,
                lo_page: 0,
                hi_page: log_pages,
                weight: 1.0,
                llc_footprint: 256 << 20,
                write_fraction: None,
            }],
            count: txns,
            object_size: 600,
            write_fraction: 1.0,
            pattern: Pattern::Sequential,
            cpu_ns_per_access: 1.0,
            mlp: 8.0,
            sweep: false,
        };
        (data_batch, log_batch)
    }

    /// Runs warm-up and measurement; returns throughput.
    pub fn run<B: TieredBackend>(&self, sim: &mut Sim<B>) -> SiloResult {
        let cfg = &self.cfg;
        let log_pages = sim.m.space.region(self.log).page_count();
        // Each thread's round = one data batch + one log batch; the round
        // completes when both ready events have fired.
        for tid in 0..cfg.threads {
            sim.schedule_thread(sim.now(), tid);
        }
        let warm_end = sim.now() + cfg.warmup;
        let t_end = warm_end + cfg.duration;
        // completions[t]: outstanding batch completions before the round
        // ends. Initial kick counts as a completed round of zero txns.
        let mut remaining = vec![1u32; cfg.threads as usize];
        let mut in_round = vec![false; cfg.threads as usize];
        let mut live = cfg.threads;
        let mut txns = 0u64;
        while live > 0 {
            let Some((now, ev)) = sim.step() else { break };
            let Event::ThreadReady(tid) = ev else {
                continue;
            };
            let t = tid as usize;
            remaining[t] = remaining[t].saturating_sub(1);
            if remaining[t] > 0 {
                continue;
            }
            // Round complete.
            if in_round[t] && now > warm_end {
                txns += cfg.batch_txns;
            }
            in_round[t] = false;
            if now >= t_end {
                live -= 1;
                continue;
            }
            let (d, l) = self.batch_for(tid, log_pages);
            sim.submit_batch(tid, &d);
            sim.submit_batch(tid, &l);
            remaining[t] = 2;
            in_round[t] = true;
        }
        let secs = sim.now().saturating_sub(warm_end).as_secs_f64().max(1e-9);
        SiloResult {
            tps: txns as f64 / secs,
            txns,
        }
    }
}

/// Convenience: set up and run Silo/TPC-C on a fresh simulation.
pub fn run_silo<B: TieredBackend>(sim: &mut Sim<B>, cfg: SiloConfig) -> SiloResult {
    let s = Silo::setup(sim, cfg);
    s.run(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::hemem::{HeMem, HeMemConfig};
    use hemem_core::machine::MachineConfig;

    fn quick(warehouses: u32, threads: u32) -> SiloConfig {
        SiloConfig {
            warehouses,
            threads,
            duration: Ns::secs(3),
            warmup: Ns::secs(1),
            batch_txns: 5_000,
        }
    }

    fn hemem_sim(dram_gib: u64, nvm_gib: u64) -> Sim<HeMem> {
        let mc = MachineConfig::small(dram_gib, nvm_gib);
        let hc = HeMemConfig::scaled_for(&mc);
        Sim::new(mc, HeMem::new(hc))
    }

    #[test]
    fn working_set_scales_with_warehouses() {
        assert_eq!(SiloConfig::paper(2).working_set(), 2 * BYTES_PER_WAREHOUSE);
        // The paper's DRAM-capacity knee: 864 warehouses ~ 187 GiB.
        let knee = SiloConfig::paper(864).working_set() >> 30;
        assert!((180..=195).contains(&knee), "864 WH = {knee} GiB");
    }

    #[test]
    fn throughput_positive_and_deterministic() {
        let r1 = run_silo(&mut hemem_sim(2, 8), quick(4, 4));
        let r2 = run_silo(&mut hemem_sim(2, 8), quick(4, 4));
        assert!(r1.tps > 0.0);
        assert_eq!(r1.txns, r2.txns, "same seed, same result");
    }

    #[test]
    fn in_dram_beats_spilled() {
        // 4 warehouses (~0.9 GiB) in a 2 GiB machine vs 12 warehouses
        // (~2.7 GiB) in the same machine: per-transaction cost rises once
        // rows spill to NVM.
        let fit = run_silo(&mut hemem_sim(2, 16), quick(4, 4));
        let spill = run_silo(&mut hemem_sim(2, 16), quick(12, 4));
        assert!(
            fit.tps > 1.2 * spill.tps,
            "fit {} vs spill {}",
            fit.tps,
            spill.tps
        );
    }

    #[test]
    fn log_stays_in_dram() {
        let mut sim = hemem_sim(2, 8);
        let s = Silo::setup(&mut sim, quick(4, 4));
        s.run(&mut sim);
        let log = sim.m.space.region(s.log_region());
        assert_eq!(log.dram_pages(), log.mapped_pages(), "log region in DRAM");
    }
}

#[cfg(test)]
mod growth_tests {
    use super::*;
    use hemem_core::hemem::{HeMem, HeMemConfig};
    use hemem_core::machine::MachineConfig;

    /// §3.3: HeMem tracks the growth of memory regions — a database that
    /// keeps allocating moderately-sized segments is adopted into managed
    /// memory once cumulative growth crosses the threshold.
    #[test]
    fn growing_database_gets_adopted_into_managed_memory() {
        let mc = MachineConfig::small(2, 8);
        let hc = HeMemConfig::scaled_for(&mc);
        let threshold = hc.manage_threshold;
        let mut sim = Sim::new(mc, HeMem::new(hc));
        // Simulate a database growing via 8 MiB segment allocations.
        let seg = 8 << 20;
        let mut adopted_at = None;
        for i in 0..64u64 {
            let id = sim.mmap(seg);
            let kind = sim.m.space.region(id).kind();
            if kind == hemem_vmm::RegionKind::ManagedHeap && adopted_at.is_none() {
                adopted_at = Some(i);
            }
        }
        let adopted = adopted_at.expect("growth crossed the manage threshold");
        assert!(
            adopted * seg >= threshold.saturating_sub(seg),
            "adoption near the threshold: segment {adopted}"
        );
        assert!(adopted > 0, "first small allocation must be forwarded");
    }
}
