//! FlexKVS-style key-value store (§5.2.2, Tables 3 and 4).
//!
//! FlexKVS is Memcached-compatible but uses a segmented log for items
//! (reducing synchronization: SETs append sequentially) and a block-chain
//! hash table (minimizing cache-coherence traffic on lookup). The paper's
//! client mix: 4 KB values, 90% GET / 10% SET, 20% of keys hot and
//! receiving 90% of the traffic.
//!
//! The driver replays that trace over two regions — the item log (large,
//! skewed) and the hash table (small, uniformly hot) — and samples per-
//! operation latency from the live machine state (tier residency, device
//! queue depths) into an HDR histogram for the percentile columns of
//! Tables 3-4. The priority experiment runs two instances; under HeMem
//! the high-priority instance's regions are pinned to DRAM.

use hemem_core::backend::{AccessBatch, SegmentAccess, TieredBackend};
use hemem_core::runtime::{Event, Sim};
use hemem_memdev::{MemOp, Pattern};
use hemem_sim::{Histogram, Ns};
use hemem_vmm::{RegionId, Tier};

/// KVS configuration.
#[derive(Debug, Clone)]
pub struct KvsConfig {
    /// Aggregate value bytes (the paper sweeps 16 GB / 128 GB / 700 GB).
    pub working_set: u64,
    /// Value size (paper: 4 KB).
    pub value_size: u32,
    /// Server worker threads (paper: 8).
    pub threads: u32,
    /// GET fraction (paper: 0.9).
    pub get_ratio: f64,
    /// Fraction of keys that are hot (paper: 0.2); 0 disables skew.
    pub hot_keys: f64,
    /// Fraction of traffic the hot keys receive (paper: 0.9).
    pub hot_traffic: f64,
    /// Offered load as a fraction of saturation; <1 models the paper's
    /// 30%-load latency measurement.
    pub load: f64,
    /// Measurement duration.
    pub duration: Ns,
    /// Warm-up.
    pub warmup: Ns,
    /// Operations per batch per thread.
    pub batch_ops: u64,
    /// Latency probes sampled per batch.
    pub probes_per_batch: u32,
}

impl KvsConfig {
    /// Paper setup at a working-set size.
    pub fn paper(working_set: u64) -> KvsConfig {
        KvsConfig {
            working_set,
            value_size: 4096,
            threads: 8,
            get_ratio: 0.9,
            hot_keys: 0.2,
            hot_traffic: 0.9,
            load: 1.0,
            duration: Ns::secs(10),
            warmup: Ns::secs(5),
            batch_ops: 50_000,
            probes_per_batch: 32,
        }
    }
}

/// KVS run result.
#[derive(Debug, Clone)]
pub struct KvsResult {
    /// Operations per second (Mops in Table 3 = this / 1e6).
    pub ops_per_sec: f64,
    /// Operations completed during measurement.
    pub ops: u64,
    /// Per-operation latency histogram (nanoseconds).
    pub latency: Histogram,
}

impl KvsResult {
    /// Latency percentile in microseconds (Table 3/4 rows).
    pub fn latency_us(&self, quantile: f64) -> f64 {
        self.latency.quantile(quantile) as f64 / 1_000.0
    }
}

/// The FlexKVS driver (one server instance).
pub struct Kvs {
    cfg: KvsConfig,
    log: RegionId,
    table: RegionId,
    hot_pages: u64,
    log_pages: u64,
    table_pages: u64,
}

impl Kvs {
    /// Maps and loads the store.
    pub fn setup<B: TieredBackend>(sim: &mut Sim<B>, cfg: KvsConfig) -> Kvs {
        let log = sim.mmap(cfg.working_set);
        // Hash table: one 16 B bucket head + chain entry per value.
        let table_bytes = (cfg.working_set / cfg.value_size as u64) * 16;
        let table = sim.mmap(table_bytes.max(1 << 20));
        sim.populate_shuffled(log, true);
        sim.populate(table, true);
        let log_pages = sim.m.space.region(log).page_count();
        let table_pages = sim.m.space.region(table).page_count();
        let hot_pages = ((log_pages as f64 * cfg.hot_keys) as u64).clamp(1, log_pages);
        Kvs {
            cfg,
            log,
            table,
            hot_pages,
            log_pages,
            table_pages,
        }
    }

    /// The item-log region.
    pub fn log_region(&self) -> RegionId {
        self.log
    }

    /// The hash-table region.
    pub fn table_region(&self) -> RegionId {
        self.table
    }

    /// The configuration in effect.
    pub fn config(&self) -> &KvsConfig {
        &self.cfg
    }

    /// Both batches of one server round (value traffic, hash traffic) —
    /// public so multi-instance experiments (Table 4) can drive several
    /// stores from one loop.
    pub fn batches(&self) -> (AccessBatch, AccessBatch) {
        (self.value_batch(), self.table_batch())
    }

    /// Samples one operation's latency (public for multi-instance runs).
    pub fn sample_latency<B: TieredBackend>(
        &self,
        sim: &mut Sim<B>,
        is_get: bool,
        rho: &TierRho,
    ) -> Ns {
        self.probe_latency(sim, is_get, rho)
    }

    /// Value traffic batch: GETs read values (hot-skewed); SETs append
    /// (sequential writes into the hot portion — freshly written keys are
    /// the hot ones in a segmented log).
    fn value_batch(&self) -> AccessBatch {
        let cfg = &self.cfg;
        let hot_w = if cfg.hot_keys > 0.0 {
            cfg.hot_traffic
        } else {
            0.0
        };
        let mut segments = Vec::with_capacity(2);
        if hot_w > 0.0 {
            segments.push(SegmentAccess {
                region: self.log,
                lo_page: 0,
                hi_page: self.hot_pages,
                weight: hot_w,
                llc_footprint: (cfg.working_set as f64 * cfg.hot_keys) as u64,
                write_fraction: None,
            });
        }
        segments.push(SegmentAccess {
            region: self.log,
            lo_page: if hot_w > 0.0 { self.hot_pages } else { 0 },
            hi_page: self.log_pages,
            weight: 1.0 - hot_w,
            llc_footprint: cfg.working_set,
            write_fraction: None,
        });
        AccessBatch {
            segments,
            count: cfg.batch_ops,
            object_size: cfg.value_size,
            write_fraction: 1.0 - cfg.get_ratio,
            pattern: Pattern::Random,
            // Pace each server thread so that aggregate offered value
            // traffic is `load` x the DRAM random-read service rate
            // (~146 ns per 4 KB value): at load=1 the store saturates
            // whichever device holds the values; at 0.3 queues stay short.
            cpu_ns_per_access: 146.0 * cfg.threads as f64 / cfg.load.max(0.05),
            mlp: 2.0,
            sweep: false,
        }
    }

    /// Hash-table traffic: ~1.5 bucket probes per op, uniformly hot.
    fn table_batch(&self) -> AccessBatch {
        let cfg = &self.cfg;
        AccessBatch {
            segments: vec![SegmentAccess {
                region: self.table,
                lo_page: 0,
                hi_page: self.table_pages,
                weight: 1.0,
                llc_footprint: self.table_pages * (2 << 20),
                write_fraction: None,
            }],
            count: cfg.batch_ops * 3 / 2,
            object_size: 16,
            write_fraction: 1.0 - cfg.get_ratio,
            pattern: Pattern::Random,
            cpu_ns_per_access: 5.0,
            mlp: 2.0,
            sweep: false,
        }
    }

    /// Samples one operation's latency from live machine state: hash
    /// probe plus value access, each resolved through LLC / DRAM / NVM.
    /// Queueing is modelled from recent device utilization (M/M/1 waiting
    /// on top of the base service latency) rather than raw batch backlog,
    /// which would charge an op the entire in-flight bulk window.
    fn probe_latency<B: TieredBackend>(&self, sim: &mut Sim<B>, is_get: bool, rho: &TierRho) -> Ns {
        let mut total = Ns::nanos(1_500); // request parsing/NIC handoff
                                          // Hash probe: the table is small; mostly LLC.
        let table_bytes = self.table_pages * (2 << 20);
        let table_hit = sim.m.llc.hit_fraction(table_bytes);
        total += if sim.m.rng.bernoulli(table_hit) {
            sim.m.llc.hit_latency()
        } else {
            self.tier_latency(sim, self.table, 0, self.table_pages, MemOp::Read, rho)
        };
        // Value access: pick hot/cold segment per the traffic skew.
        let hot = self.cfg.hot_keys > 0.0 && sim.m.rng.bernoulli(self.cfg.hot_traffic);
        let (lo, hi) = if hot {
            (0, self.hot_pages)
        } else {
            (self.hot_pages, self.log_pages)
        };
        let op = if is_get { MemOp::Read } else { MemOp::Write };
        // A 4 KB value crosses several cache lines: charge the device
        // latency once plus a transfer-time tail per extra line batch.
        let first = self.tier_latency(sim, self.log, lo, hi, op, rho);
        total += first + Ns::nanos(self.cfg.value_size as u64 / 16);
        total
    }

    fn tier_latency<B: TieredBackend>(
        &self,
        sim: &mut Sim<B>,
        region: RegionId,
        lo: u64,
        hi: u64,
        op: MemOp,
        rho: &TierRho,
    ) -> Ns {
        let r = sim.m.space.region(region);
        let mapped = r.mapped_pages_in(lo, hi).max(1);
        let dram = r.dram_pages_in(lo, hi);
        let tier = if sim.m.rng.bernoulli(dram as f64 / mapped as f64) {
            Tier::Dram
        } else {
            Tier::Nvm
        };
        let service = sim.m.device(tier).latency(op);
        let u = rho.get(tier).min(0.98);
        // Exponential service-time jitter plus M/M/1 queueing.
        let jitter = Ns::from_nanos_f64(sim.m.rng.exponential(service.as_nanos() as f64 * 0.3));
        let wait =
            Ns::from_nanos_f64(service.as_nanos() as f64 * u / (1.0 - u)).min(Ns::micros(60));
        service + jitter + wait
    }

    /// Runs the instance; returns throughput and latency.
    pub fn run<B: TieredBackend>(&self, sim: &mut Sim<B>) -> KvsResult {
        let cfg = &self.cfg;
        sim.set_app_threads(cfg.threads);
        for tid in 0..cfg.threads {
            sim.schedule_thread(sim.now(), tid);
        }
        let warm_end = sim.now() + cfg.warmup;
        let t_end = warm_end + cfg.duration;
        let mut remaining = vec![1u32; cfg.threads as usize];
        let mut in_round = vec![false; cfg.threads as usize];
        let mut live = cfg.threads;
        let mut ops = 0u64;
        let mut latency = Histogram::new();
        let mut rho = TierRho::default();
        let mut last_busy = (sim.m.dram.stats().busy, sim.m.nvm.stats().busy, sim.now());
        while live > 0 {
            let Some((now, ev)) = sim.step() else { break };
            let Event::ThreadReady(tid) = ev else {
                continue;
            };
            let t = tid as usize;
            remaining[t] = remaining[t].saturating_sub(1);
            if remaining[t] > 0 {
                continue;
            }
            if in_round[t] && now > warm_end {
                ops += cfg.batch_ops;
            }
            in_round[t] = false;
            // Refresh the utilization window every few milliseconds.
            let dt = now.saturating_sub(last_busy.2);
            if dt > Ns::millis(5) {
                let d = sim.m.dram.stats().busy.saturating_sub(last_busy.0);
                let n = sim.m.nvm.stats().busy.saturating_sub(last_busy.1);
                let span = dt.as_nanos() as f64;
                rho.dram = (d.as_nanos() as f64 / span).min(1.0);
                rho.nvm = (n.as_nanos() as f64 / span).min(1.0);
                last_busy = (sim.m.dram.stats().busy, sim.m.nvm.stats().busy, now);
            }
            if now >= t_end {
                live -= 1;
                continue;
            }
            // Latency probes against current machine state.
            if now > warm_end {
                for _ in 0..cfg.probes_per_batch {
                    let is_get = sim.m.rng.bernoulli(cfg.get_ratio);
                    let l = self.probe_latency(sim, is_get, &rho);
                    latency.record_ns(l);
                }
            }
            let v = self.value_batch();
            let h = self.table_batch();
            sim.submit_batch(tid, &v);
            sim.submit_batch(tid, &h);
            remaining[t] = 2;
            in_round[t] = true;
        }
        let secs = sim.now().saturating_sub(warm_end).as_secs_f64().max(1e-9);
        KvsResult {
            ops_per_sec: ops as f64 / secs,
            ops,
            latency,
        }
    }
}

/// Recent utilization of each tier's device (queueing estimate input).
#[derive(Debug, Clone, Copy, Default)]
pub struct TierRho {
    /// DRAM utilization in [0, 1].
    pub dram: f64,
    /// NVM utilization in [0, 1].
    pub nvm: f64,
}

impl TierRho {
    fn get(&self, tier: Tier) -> f64 {
        match tier {
            Tier::Dram => self.dram,
            Tier::Nvm => self.nvm,
            // KVS values never live on the block tier; an SSD-resident
            // page contributes a major fault, not device utilization.
            Tier::Ssd => 0.0,
        }
    }

    /// Measures utilization over the window since `last` and updates it.
    /// `last` is `(dram busy, nvm busy, time)` from the previous call.
    pub fn refresh<B: TieredBackend>(&mut self, sim: &Sim<B>, last: &mut (Ns, Ns, Ns)) {
        let now = sim.now();
        let dt = now.saturating_sub(last.2);
        if dt <= Ns::millis(5) {
            return;
        }
        let d = sim.m.dram.stats().busy.saturating_sub(last.0);
        let n = sim.m.nvm.stats().busy.saturating_sub(last.1);
        let span = dt.as_nanos() as f64;
        self.dram = (d.as_nanos() as f64 / span).min(1.0);
        self.nvm = (n.as_nanos() as f64 / span).min(1.0);
        *last = (sim.m.dram.stats().busy, sim.m.nvm.stats().busy, now);
    }
}

/// Convenience: set up and run one KVS instance.
pub fn run_kvs<B: TieredBackend>(sim: &mut Sim<B>, cfg: KvsConfig) -> KvsResult {
    let k = Kvs::setup(sim, cfg);
    k.run(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::hemem::{HeMem, HeMemConfig};
    use hemem_core::machine::MachineConfig;
    use hemem_memdev::GIB;

    fn quick(ws: u64) -> KvsConfig {
        let mut c = KvsConfig::paper(ws);
        c.threads = 4;
        c.warmup = Ns::secs(2);
        c.duration = Ns::secs(3);
        c
    }

    fn hemem_sim(dram_gib: u64, nvm_gib: u64) -> Sim<HeMem> {
        let mc = MachineConfig::small(dram_gib, nvm_gib);
        let hc = HeMemConfig::scaled_for(&mc);
        Sim::new(mc, HeMem::new(hc))
    }

    #[test]
    fn fits_in_dram_all_dram_latency() {
        // Latency is measured at 30% load, like the paper's Table 3 runs.
        let mut sim = hemem_sim(4, 16);
        let mut cfg = quick(GIB);
        cfg.load = 0.3;
        let res = run_kvs(&mut sim, cfg);
        assert!(res.ops_per_sec > 0.0);
        // Median latency must be DRAM-class (well under NVM read latency
        // plus queueing).
        let p50 = res.latency_us(0.5);
        assert!(p50 < 8.0, "median {p50}us");
    }

    #[test]
    fn oversized_store_converges_hot_values_to_dram() {
        let mut sim = hemem_sim(1, 16);
        let cfg = quick(4 * GIB);
        let k = Kvs::setup(&mut sim, cfg);
        let res = k.run(&mut sim);
        let r = sim.m.space.region(k.log_region());
        let hot_dram = r.dram_pages_in(0, k.hot_pages);
        let frac = hot_dram as f64 / k.hot_pages as f64;
        assert!(frac > 0.5, "hot value pages in DRAM: {frac:.2}");
        assert!(res.ops > 0);
    }

    #[test]
    fn tail_latency_orders_percentiles() {
        let mut sim = hemem_sim(1, 16);
        let mut cfg = quick(4 * GIB);
        cfg.load = 0.3;
        let res = run_kvs(&mut sim, cfg);
        let p50 = res.latency_us(0.5);
        let p90 = res.latency_us(0.9);
        let p999 = res.latency_us(0.999);
        assert!(p50 <= p90 && p90 <= p999, "{p50} {p90} {p999}");
        assert!(res.latency.count() > 1_000);
    }

    #[test]
    fn pinned_priority_instance_stays_in_dram() {
        // Table 4: the priority instance's regions are pinned; a larger
        // regular instance shares the remaining tiered memory.
        let mc = MachineConfig::small(2, 16);
        let hc = HeMemConfig::scaled_for(&mc);
        let mut sim = Sim::new(mc, HeMem::new(hc));
        sim.backend.set_priority(true);
        let prio = Kvs::setup(&mut sim, quick(GIB / 2));
        sim.backend.set_priority(false);
        let regular = Kvs::setup(&mut sim, quick(6 * GIB));
        let _ = regular.run(&mut sim);
        let pr = sim.m.space.region(prio.log_region());
        assert_eq!(
            pr.dram_pages(),
            pr.mapped_pages(),
            "priority log pinned to DRAM"
        );
        let rr = sim.m.space.region(regular.log_region());
        assert!(
            rr.dram_pages() < rr.mapped_pages(),
            "regular instance is tiered"
        );
    }
}
