//! # hemem-workloads
//!
//! The paper's workloads, implemented as access-trace drivers over the
//! simulated machine: raw device streams ([`stream`], Figures 1-2), the
//! GUPS microbenchmark in all its §5.1 variants ([`gups`]), GAP
//! betweenness centrality on Kronecker graphs ([`graph`], Figures 14-16),
//! Silo running TPC-C ([`silo`], Figure 13), and the FlexKVS key-value
//! store ([`kvs`], Tables 3-4).

#![warn(missing_docs)]

pub mod churn;
pub mod colo;
pub mod fleet;
pub mod graph;
pub mod gups;
pub mod kvs;
pub mod silo;
pub mod stream;

pub use colo::{
    run_colo, run_colo_with, ColoConfig, ColoResult, TenantKind, TenantOutcome, TenantSpec,
};
pub use fleet::{run_fleet, run_fleet_with, FleetConfig, FleetResult, LifetimeOutcome};
pub use graph::{Bc, BcResult, GraphConfig};
pub use gups::{run_gups, Gups, GupsConfig, GupsResult};
pub use kvs::{run_kvs, Kvs, KvsConfig, KvsResult, TierRho};
pub use silo::{run_silo, Silo, SiloConfig, SiloResult};
pub use stream::{run_stream, StreamConfig, StreamResult};
