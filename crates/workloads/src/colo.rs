//! Mixed-tenant colocation scenarios.
//!
//! Several application drivers — GUPS, FlexKVS, Silo, BC — run
//! concurrently over one simulated machine, each as its own *tenant*:
//! its regions are tagged with a [`TenantId`], its PEBS samples feed its
//! own tracker, and its DRAM share is governed by the global arbiter
//! (`hemem_core::arbiter`). The builder assigns each tenant a contiguous
//! global thread-id range and multiplexes one event loop over all of
//! them, dispatching each `ThreadReady` back to the owning tenant's
//! driver for the next batch round.
//!
//! Determinism: every driver's batch generation is a pure function of
//! its configuration and the region geometry captured at setup — no RNG,
//! no residency reads — so a tenant's operation stream does not depend
//! on what its neighbours do, and a same-seed replay of a whole
//! colocated run is byte-identical. [`ColoResult`] carries per-tenant
//! stream hashes and a whole-run fingerprint so tests and benches can
//! assert both properties cheaply.

use hemem_core::backend::{AccessBatch, TieredBackend};
use hemem_core::runtime::{Event, Sim};
use hemem_sim::Ns;
use hemem_vmm::TenantId;

use crate::graph::{Bc, GraphConfig};
use crate::gups::{Gups, GupsConfig};
use crate::kvs::{Kvs, KvsConfig};
use crate::silo::{Silo, SiloConfig};

/// Which application a tenant runs.
#[derive(Debug, Clone)]
pub enum TenantKind {
    /// GUPS with the given configuration (hot-set or uniform).
    Gups(GupsConfig),
    /// FlexKVS. The colocated driver submits value/table rounds but
    /// skips the per-op latency probes (they draw machine RNG, which
    /// would entangle tenants' random streams).
    Kvs(KvsConfig),
    /// Silo/TPC-C.
    Silo(SiloConfig),
    /// GAP betweenness centrality, free-running chunk rounds.
    Bc(GraphConfig),
}

impl TenantKind {
    /// Worker threads this tenant contributes.
    pub fn threads(&self) -> u32 {
        match self {
            TenantKind::Gups(c) => c.threads,
            TenantKind::Kvs(c) => c.threads,
            TenantKind::Silo(c) => c.threads,
            TenantKind::Bc(c) => c.threads,
        }
    }

    /// Short label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            TenantKind::Gups(_) => "gups",
            TenantKind::Kvs(_) => "kvs",
            TenantKind::Silo(_) => "silo",
            TenantKind::Bc(_) => "bc",
        }
    }
}

/// One tenant in a colocation scenario.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display label (CSV rows, trace spans).
    pub label: String,
    /// The application and its configuration.
    pub kind: TenantKind,
}

impl TenantSpec {
    /// Creates a spec with the kind's default label.
    pub fn new(kind: TenantKind) -> TenantSpec {
        TenantSpec {
            label: kind.label().to_string(),
            kind,
        }
    }
}

/// A colocation scenario: the tenant mix and the shared run window.
#[derive(Debug, Clone)]
pub struct ColoConfig {
    /// The tenants, in [`TenantId`] order.
    pub tenants: Vec<TenantSpec>,
    /// Warm-up before measurement starts.
    pub warmup: Ns,
    /// Measurement window.
    pub duration: Ns,
}

/// Per-tenant outcome of a colocated run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// The tenant's id.
    pub tenant: TenantId,
    /// The spec label.
    pub label: String,
    /// Operations completed during measurement (workload-specific
    /// units: GUPS updates, KVS ops, Silo txns, BC accesses).
    pub ops: u64,
    /// Operations per second over the measurement window.
    pub ops_per_sec: f64,
    /// Order-sensitive FNV-1a hash over every batch this tenant
    /// submitted — the tenant's operation stream identity.
    pub stream_hash: u64,
}

/// Outcome of a colocated run.
#[derive(Debug, Clone)]
pub struct ColoResult {
    /// Per-tenant outcomes, in tenant order.
    pub per_tenant: Vec<TenantOutcome>,
    /// FNV-1a hash over the global submission stream (tenant, thread,
    /// batch) in submission order — the whole run's replay identity.
    pub fingerprint: u64,
}

impl ColoResult {
    /// Sum of per-tenant ops (meaningful when the tenants share units,
    /// e.g. an all-GUPS mix).
    pub fn aggregate_ops(&self) -> u64 {
        self.per_tenant.iter().map(|t| t.ops).sum()
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// One instantiated tenant: driver plus thread-range bookkeeping.
enum Driver {
    Gups(Gups),
    Kvs(Kvs),
    Silo { silo: Silo, log_pages: u64 },
    Bc { bc: Bc, csr_pages: u64 },
}

impl Driver {
    /// Runs `kind`'s setup (region mapping, populate) on `sim` and
    /// captures the geometry later rounds need.
    fn setup<B: TieredBackend>(sim: &mut Sim<B>, kind: &TenantKind) -> Driver {
        match kind {
            TenantKind::Gups(c) => Driver::Gups(Gups::setup(sim, c.clone())),
            TenantKind::Kvs(c) => Driver::Kvs(Kvs::setup(sim, c.clone())),
            TenantKind::Silo(c) => {
                let silo = Silo::setup(sim, c.clone());
                let log_pages = sim.m.space.region(silo.log_region()).page_count();
                Driver::Silo { silo, log_pages }
            }
            TenantKind::Bc(c) => {
                let bc = Bc::setup(sim, c.clone());
                let csr_pages = sim.m.space.region(bc.csr_region()).page_count();
                Driver::Bc { bc, csr_pages }
            }
        }
    }

    /// The batches of one round for `local` (tenant-local thread id),
    /// and how many operations the round completes. Pure — see the
    /// module docs.
    fn round(&self, local: u32) -> (Vec<AccessBatch>, u64) {
        match self {
            Driver::Gups(g) => {
                let b = g.batch_for(local);
                let ops = b.count / 2; // each update = read + write
                (vec![b], ops)
            }
            Driver::Kvs(k) => {
                let (v, h) = k.batches();
                let ops = v.count;
                (vec![v, h], ops)
            }
            Driver::Silo { silo, log_pages } => {
                let (d, l) = silo.batch_for(local, *log_pages);
                let ops = l.count; // one log append per transaction
                (vec![d, l], ops)
            }
            Driver::Bc { bc, csr_pages } => {
                let batches = bc.round_batches(*csr_pages);
                let ops = batches.iter().map(|b| b.count).sum();
                (batches, ops)
            }
        }
    }
}

/// Sets up every tenant (regions tagged with its [`TenantId`]) and runs
/// the shared event loop for `warmup + duration`.
///
/// Thread ids: tenant `i` owns the contiguous global range
/// `[base_i, base_i + threads_i)` where `base_i` is the sum of earlier
/// tenants' thread counts. Each tenant's setup phase runs under
/// [`Sim::set_active_tenant`], so unmodified driver code tags its
/// regions; a `tenant_span` trace instant marks each tenant's range for
/// trace viewers.
pub fn run_colo<B: TieredBackend>(sim: &mut Sim<B>, cfg: &ColoConfig) -> ColoResult {
    run_colo_with(sim, cfg, |_| {})
}

/// [`run_colo`] with an observer called after every simulation event —
/// the hook for periodic samplers ([`hemem_core::telemetry`]) that need
/// to watch a colocated run without perturbing it.
pub fn run_colo_with<B: TieredBackend>(
    sim: &mut Sim<B>,
    cfg: &ColoConfig,
    mut observe: impl FnMut(&Sim<B>),
) -> ColoResult {
    assert!(!cfg.tenants.is_empty(), "need at least one tenant");
    // Setup phase, one tenant at a time.
    let mut drivers = Vec::with_capacity(cfg.tenants.len());
    let mut bases = Vec::with_capacity(cfg.tenants.len());
    let mut total_threads = 0u32;
    for (i, spec) in cfg.tenants.iter().enumerate() {
        sim.set_active_tenant(TenantId(i as u32));
        let driver = Driver::setup(sim, &spec.kind);
        bases.push(total_threads);
        total_threads += spec.kind.threads();
        drivers.push(driver);
    }
    sim.set_app_threads(total_threads);
    let now = sim.now();
    for (i, spec) in cfg.tenants.iter().enumerate() {
        sim.m.trace.instant(
            now,
            "tenant_span",
            "colo",
            &[
                ("tenant", i as u64),
                ("base_tid", bases[i] as u64),
                ("threads", spec.kind.threads() as u64),
            ],
        );
    }

    // Shared event loop.
    let owner = |tid: u32| -> usize {
        match bases.binary_search(&tid) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };
    for tid in 0..total_threads {
        sim.schedule_thread(now, tid);
    }
    let warm_end = now + cfg.warmup;
    let t_end = warm_end + cfg.duration;
    let n = cfg.tenants.len();
    let mut remaining = vec![0u32; total_threads as usize];
    let mut round_ops = vec![0u64; total_threads as usize];
    let mut ops = vec![0u64; n];
    let mut stream = vec![FNV_OFFSET; n];
    let mut fingerprint = FNV_OFFSET;
    let mut live = total_threads;
    while live > 0 {
        let Some((step_now, ev)) = sim.step() else {
            break;
        };
        observe(sim);
        let Event::ThreadReady(tid) = ev else {
            continue;
        };
        let t = tid as usize;
        remaining[t] = remaining[t].saturating_sub(1);
        if remaining[t] > 0 {
            continue;
        }
        let ten = owner(tid);
        if round_ops[t] > 0 && step_now > warm_end {
            ops[ten] += round_ops[t];
        }
        round_ops[t] = 0;
        if step_now >= t_end {
            live -= 1;
            continue;
        }
        let local = tid - bases[ten];
        let (batches, completes) = drivers[ten].round(local);
        for b in &batches {
            let repr = format!("{ten}|{tid}|{b:?}");
            fnv1a(&mut stream[ten], repr.as_bytes());
            fnv1a(&mut fingerprint, repr.as_bytes());
            sim.submit_batch(tid, b);
        }
        remaining[t] = batches.len() as u32;
        round_ops[t] = completes;
    }

    let secs = sim.now().saturating_sub(warm_end).as_secs_f64().max(1e-9);
    let per_tenant = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(i, spec)| TenantOutcome {
            tenant: TenantId(i as u32),
            label: spec.label.clone(),
            ops: ops[i],
            ops_per_sec: ops[i] as f64 / secs,
            stream_hash: stream[i],
        })
        .collect();
    ColoResult {
        per_tenant,
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::arbiter::ArbiterPolicy;
    use hemem_core::hemem::{HeMem, HeMemConfig};
    use hemem_core::machine::MachineConfig;
    use hemem_memdev::GIB;

    fn quick_gups(ws: u64, hot: u64) -> GupsConfig {
        let mut c = GupsConfig::paper(ws, hot);
        c.threads = 2;
        c.warmup = Ns::ZERO;
        c.duration = Ns::ZERO;
        c.batch_ops = 50_000;
        c
    }

    fn colo_cfg(tenants: Vec<TenantSpec>) -> ColoConfig {
        ColoConfig {
            tenants,
            warmup: Ns::millis(500),
            duration: Ns::secs(2),
        }
    }

    fn machine() -> MachineConfig {
        let mut mc = MachineConfig::small(2, 8);
        mc.pebs.sample_period *= 96;
        mc
    }

    fn run(policy: ArbiterPolicy, tenants: Vec<TenantSpec>) -> ColoResult {
        let mc = machine();
        let hc = HeMemConfig::scaled_for(&mc);
        let n = tenants.len();
        let mut sim = Sim::new(mc, HeMem::multi_tenant(hc, n, policy));
        run_colo(&mut sim, &colo_cfg(tenants))
    }

    #[test]
    fn two_tenant_run_replays_byte_identically() {
        let mix = || {
            vec![
                TenantSpec::new(TenantKind::Gups(quick_gups(GIB, 256 << 20))),
                TenantSpec::new(TenantKind::Kvs({
                    let mut c = KvsConfig::paper(GIB);
                    c.threads = 2;
                    c
                })),
            ]
        };
        let a = run(ArbiterPolicy::StaticShares, mix());
        let b = run(ArbiterPolicy::StaticShares, mix());
        assert_eq!(a.fingerprint, b.fingerprint, "replay fingerprints");
        for (x, y) in a.per_tenant.iter().zip(&b.per_tenant) {
            assert_eq!(x.stream_hash, y.stream_hash, "{} stream", x.label);
            assert_eq!(x.ops, y.ops, "{} ops", x.label);
        }
        assert!(a.per_tenant.iter().all(|t| t.ops > 0), "both made progress");
    }

    #[test]
    fn mixed_three_tenant_scenario_runs_clean() {
        let mut silo = SiloConfig::paper(2);
        silo.threads = 2;
        silo.warmup = Ns::ZERO;
        silo.duration = Ns::ZERO;
        let mut bc = GraphConfig::paper(20);
        bc.threads = 2;
        let tenants = vec![
            TenantSpec::new(TenantKind::Gups(quick_gups(GIB, 128 << 20))),
            TenantSpec::new(TenantKind::Silo(silo)),
            TenantSpec::new(TenantKind::Bc(bc)),
        ];
        let mc = machine();
        let hc = HeMemConfig::scaled_for(&mc);
        let mut sim = Sim::new(
            mc,
            HeMem::multi_tenant(hc, 3, ArbiterPolicy::GreedyMissRatio),
        );
        let res = run_colo(&mut sim, &colo_cfg(tenants));
        assert_eq!(res.per_tenant.len(), 3);
        assert!(res.per_tenant.iter().all(|t| t.ops > 0));
        // Every region belongs to exactly one tenant and the tenant-scoped
        // audit is clean.
        assert_eq!(sim.run_audit(false), Vec::new());
        let tenants_seen = sim.m.space.tenants();
        assert_eq!(tenants_seen.len(), 3);
    }

    /// Canonical form of a batch sequence with region ids replaced by
    /// first-seen ordinals, so the same driver's stream compares equal
    /// across address spaces laid out differently (alone vs colocated).
    fn canon(batches: &[AccessBatch]) -> String {
        let mut ords: std::collections::HashMap<u32, usize> = Default::default();
        let mut out = String::new();
        for b in batches {
            for s in &b.segments {
                let next = ords.len();
                let ord = *ords.entry(s.region.0).or_insert(next);
                out.push_str(&format!(
                    "r{ord}[{}..{}]w{:.6}l{}f{:?};",
                    s.lo_page, s.hi_page, s.weight, s.llc_footprint, s.write_fraction
                ));
            }
            out.push_str(&format!(
                "c{}o{}w{:.6}p{:?}cpu{:.3}m{:.3}s{}|",
                b.count,
                b.object_size,
                b.write_fraction,
                b.pattern,
                b.cpu_ns_per_access,
                b.mlp,
                b.sweep
            ));
        }
        out
    }

    fn test_kinds() -> Vec<TenantKind> {
        let mut kvs = KvsConfig::paper(GIB);
        kvs.threads = 2;
        let mut silo = SiloConfig::paper(2);
        silo.threads = 2;
        silo.warmup = Ns::ZERO;
        silo.duration = Ns::ZERO;
        let mut bc = GraphConfig::paper(20);
        bc.threads = 2;
        vec![
            TenantKind::Kvs(kvs),
            TenantKind::Silo(silo),
            TenantKind::Bc(bc),
        ]
    }

    /// First-round batches for `kind` set up alone on a fresh solo
    /// machine (both worker threads).
    fn solo_rounds(kind: &TenantKind) -> Vec<AccessBatch> {
        let mc = machine();
        let hc = HeMemConfig::scaled_for(&mc);
        let mut sim = Sim::new(mc, HeMem::new(hc));
        let d = Driver::setup(&mut sim, kind);
        let mut all = d.round(0).0;
        all.extend(d.round(1).0);
        all
    }

    #[test]
    fn seeded_driver_streams_replay_identically() {
        for kind in test_kinds() {
            let a = solo_rounds(&kind);
            let b = solo_rounds(&kind);
            // Same seed, same config: identical down to the raw Debug
            // form, region ids included.
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{} stream differs across identical runs",
                kind.label()
            );
        }
    }

    #[test]
    fn tenant_batch_content_is_isolated_under_static_shares() {
        for kind in test_kinds() {
            let alone = canon(&solo_rounds(&kind));
            // Same driver as tenant 1 behind a GUPS neighbour under a
            // static-share arbiter: different address-space layout and
            // contended DRAM, same operation stream.
            let mc = machine();
            let hc = HeMemConfig::scaled_for(&mc);
            let mut sim = Sim::new(mc, HeMem::multi_tenant(hc, 2, ArbiterPolicy::StaticShares));
            sim.set_active_tenant(TenantId(0));
            let _gups = Driver::setup(&mut sim, &TenantKind::Gups(quick_gups(GIB, 256 << 20)));
            sim.set_active_tenant(TenantId(1));
            let d = Driver::setup(&mut sim, &kind);
            let mut colocated = d.round(0).0;
            colocated.extend(d.round(1).0);
            assert_eq!(
                alone,
                canon(&colocated),
                "{} stream changed when colocated",
                kind.label()
            );
        }
    }
}
