//! Raw memory-access microbenchmark (§2.2, Figures 1 and 2).
//!
//! Mirrors the paper's characterization tool: a configurable number of
//! threads access one device in 256 B blocks (or a swept size), either
//! sequentially or at random, reads or writes, and we report aggregate
//! throughput. This exercises the device models directly — no tiering
//! backend involved — and regenerates the curves that motivated HeMem's
//! design (asymmetric NVM bandwidth, early write saturation, media-
//! granularity penalties).

use hemem_memdev::{Device, DeviceConfig, MemOp, Pattern};
use hemem_sim::Ns;

/// One microbenchmark configuration point.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Device under test.
    pub device: DeviceConfig,
    /// Concurrent threads.
    pub threads: u32,
    /// Read or write stream.
    pub op: MemOp,
    /// Sequential or random.
    pub pattern: Pattern,
    /// Bytes per access.
    pub access_size: u64,
    /// Virtual time to run for.
    pub duration: Ns,
    /// Per-thread memory-level parallelism (outstanding accesses).
    pub mlp: f64,
}

impl StreamConfig {
    /// The paper's default: 256 B cached accesses.
    pub fn paper_default(device: DeviceConfig, threads: u32, op: MemOp, pattern: Pattern) -> Self {
        StreamConfig {
            device,
            threads,
            op,
            pattern,
            access_size: 256,
            duration: Ns::millis(200),
            mlp: 10.0,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy)]
pub struct StreamResult {
    /// Aggregate throughput in bytes/second.
    pub bytes_per_sec: f64,
    /// Accesses completed.
    pub accesses: u64,
}

impl StreamResult {
    /// Throughput in GB/s (decimal).
    pub fn gb_per_sec(&self) -> f64 {
        self.bytes_per_sec / 1e9
    }
}

/// Runs the microbenchmark: `threads` simulated threads issue batches of
/// accesses back to back until `duration` elapses.
pub fn run_stream(cfg: &StreamConfig) -> StreamResult {
    let mut dev = Device::new(cfg.device.clone());
    let latency = dev.latency(cfg.op);
    // Per-thread issue interval: bounded both by how much latency the
    // thread's MLP can hide and by the single-thread bandwidth the device
    // sustains (prefetch depth, fill buffers, write-combining).
    let media = cfg.device.media_bytes(cfg.access_size, cfg.pattern) as f64;
    let bw_limited = media / cfg.device.thread_bandwidth(cfg.op, cfg.pattern) * 1e9;
    let lat_limited = latency.as_nanos() as f64 / cfg.mlp.max(1.0) + 2.0;
    let per_access = bw_limited.max(lat_limited);
    let batch = 4096u64;
    let mut done = vec![Ns::ZERO; cfg.threads as usize];
    let mut accesses = 0u64;
    let mut t_end = Ns::ZERO;
    loop {
        // Find the thread that frees up earliest.
        let (idx, &start) = done
            .iter()
            .enumerate()
            .min_by_key(|&(_, t)| t)
            .expect("at least one thread");
        if start >= cfg.duration {
            break;
        }
        let issue_limited = Ns::from_nanos_f64(batch as f64 * per_access);
        let res = dev.reserve(start, cfg.op, cfg.pattern, cfg.access_size, batch);
        let complete = res.finish.max(start + issue_limited);
        done[idx] = complete;
        accesses += batch;
        t_end = t_end.max(complete);
    }
    let bytes = accesses * cfg.access_size;
    StreamResult {
        bytes_per_sec: bytes as f64 / t_end.as_secs_f64(),
        accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_memdev::GIB;

    fn dram() -> DeviceConfig {
        DeviceConfig::ddr4_dram(192 * GIB)
    }

    fn nvm() -> DeviceConfig {
        DeviceConfig::optane_dc(768 * GIB)
    }

    fn gbps(d: DeviceConfig, t: u32, op: MemOp, p: Pattern) -> f64 {
        run_stream(&StreamConfig::paper_default(d, t, op, p)).gb_per_sec()
    }

    #[test]
    fn nvm_write_saturates_with_few_threads() {
        // Figure 1: Optane write bandwidth is saturated by ~4 threads.
        let w4 = gbps(nvm(), 4, MemOp::Write, Pattern::Sequential);
        let w16 = gbps(nvm(), 16, MemOp::Write, Pattern::Sequential);
        assert!((w16 - w4) / w4 < 0.15, "4thr {w4} vs 16thr {w16}");
        assert!(w16 < 6.0, "NVM seq write capped near 4.85 GB/s: {w16}");
    }

    #[test]
    fn dram_scales_with_threads() {
        let r1 = gbps(dram(), 1, MemOp::Read, Pattern::Random);
        let r16 = gbps(dram(), 16, MemOp::Read, Pattern::Random);
        assert!(r16 > 4.0 * r1, "1thr {r1} vs 16thr {r16}");
    }

    #[test]
    fn paper_ratios_at_scale() {
        // At 16+ threads the Figure 1 ratios must hold.
        let d_rw = gbps(dram(), 24, MemOp::Write, Pattern::Random);
        let n_rw = gbps(nvm(), 24, MemOp::Write, Pattern::Random);
        let ratio = d_rw / n_rw;
        assert!(
            (9.0..12.5).contains(&ratio),
            "rand write gap {ratio} (paper: 10.7x)"
        );
        let d_sw = gbps(dram(), 24, MemOp::Write, Pattern::Sequential);
        let n_sw = gbps(nvm(), 24, MemOp::Write, Pattern::Sequential);
        let ratio = d_sw / n_sw;
        assert!(
            (15.0..18.0).contains(&ratio),
            "seq write gap {ratio} (paper: 16.5x)"
        );
        let d_rr = gbps(dram(), 24, MemOp::Read, Pattern::Random);
        let n_rr = gbps(nvm(), 24, MemOp::Read, Pattern::Random);
        let ratio = d_rr / n_rr;
        assert!(
            (2.3..3.1).contains(&ratio),
            "rand read gap {ratio} (paper: 2.7x)"
        );
        // Optane sequential read beats DRAM random read by ~14%.
        let n_sr = gbps(nvm(), 24, MemOp::Read, Pattern::Sequential);
        let ratio = n_sr / d_rr;
        assert!((1.05..1.25).contains(&ratio), "seq-NVM/rand-DRAM {ratio}");
    }

    #[test]
    fn small_random_nvm_reads_pay_amplification() {
        // Figure 2: random reads below the 256 B media granularity are slow
        // on Optane; at/above it the gap to sequential closes.
        let mut c = StreamConfig::paper_default(nvm(), 16, MemOp::Read, Pattern::Random);
        c.access_size = 64;
        let small = run_stream(&c).gb_per_sec();
        c.access_size = 4096;
        let big = run_stream(&c).gb_per_sec();
        assert!(big > 2.5 * small, "64B {small} vs 4K {big}");
    }

    #[test]
    fn sequential_insensitive_to_access_size_on_nvm() {
        let mut c = StreamConfig::paper_default(nvm(), 16, MemOp::Read, Pattern::Sequential);
        c.access_size = 256;
        let a = run_stream(&c).gb_per_sec();
        c.access_size = 8192;
        let b = run_stream(&c).gb_per_sec();
        assert!((a - b).abs() / a < 0.15, "256B {a} vs 8K {b}");
    }
}
