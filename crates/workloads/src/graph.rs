//! GAP betweenness centrality on Kronecker power-law graphs (§5.2.3,
//! Figures 14-16).
//!
//! The GAP benchmark generates a Kronecker (RMAT) graph with average
//! degree 16 and runs 15 iterations of Brandes-style betweenness
//! centrality from random sources. Two properties drive tiered-memory
//! behaviour:
//!
//! - **Power-law locality**: vertex traversal frequency grows with
//!   degree, and neighbours of a vertex share pages, so the per-vertex
//!   auxiliary arrays (depth / path counts / dependency scores) have a
//!   strongly skewed, *write-intensive* hot set. We derive the per-page
//!   access weights analytically from the RMAT bit probabilities: a page
//!   of the score arrays whose index has `k` one-bits out of `n` carries
//!   weight `p^k (1-p)^(n-k)` (vertices sampled bit-by-bit).
//! - **Small accesses**: neighbour lists average 16 entries (128 B), below
//!   Optane's 256 B media granularity, so streaming the CSR from NVM pays
//!   amplification (§5.2.3: "BC accesses the graph using small accesses").
//!
//! The driver replays the per-iteration access trace of BC: CSR neighbour
//! scans, offset lookups, skewed read/write traffic on the auxiliary
//! arrays, and successor-list appends/reads for the backward pass.

use hemem_core::backend::{AccessBatch, SegmentAccess, TieredBackend};
use hemem_core::runtime::{Event, Sim};
use hemem_memdev::Pattern;
use hemem_sim::Ns;
use hemem_vmm::RegionId;

/// Graph/BC configuration.
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// log2 of the vertex count (paper: 28 and 29).
    pub scale: u32,
    /// Average out-degree (paper: 16).
    pub edge_factor: u64,
    /// Worker threads.
    pub threads: u32,
    /// BC iterations (paper: 15).
    pub iterations: u32,
    /// RMAT per-bit probability of the "1" half (GAP params give ~0.24
    /// per endpoint bit; 0.25 is the standard approximation).
    pub rmat_p: f64,
}

impl GraphConfig {
    /// Paper configuration at a given scale.
    pub fn paper(scale: u32) -> GraphConfig {
        GraphConfig {
            scale,
            edge_factor: 16,
            threads: 16,
            iterations: 15,
            rmat_p: 0.25,
        }
    }

    /// Vertices.
    pub fn vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Directed edge entries stored (both directions).
    pub fn edge_entries(&self) -> u64 {
        2 * self.edge_factor * self.vertices()
    }

    /// Bytes of the CSR structure (neighbour arrays + offsets + successor
    /// lists for the backward pass).
    pub fn csr_bytes(&self) -> u64 {
        let neighbors = self.edge_entries() * 8;
        let offsets = 2 * (self.vertices() + 1) * 8;
        let successors = self.edge_factor * self.vertices() * 8;
        neighbors + offsets + successors
    }

    /// Bytes of the per-vertex auxiliary arrays (depth, sigma, delta, bc).
    pub fn aux_bytes(&self) -> u64 {
        4 * self.vertices() * 8
    }

    /// Total working set.
    pub fn total_bytes(&self) -> u64 {
        self.csr_bytes() + self.aux_bytes()
    }
}

/// Per-iteration measurements.
#[derive(Debug, Clone, Copy)]
pub struct IterationResult {
    /// Iteration wall time.
    pub runtime: Ns,
    /// NVM media bytes written during the iteration (Figure 16's wear
    /// metric).
    pub nvm_writes: u64,
}

/// Whole-run result.
#[derive(Debug, Clone)]
pub struct BcResult {
    /// Per-iteration runtimes and wear.
    pub iterations: Vec<IterationResult>,
}

impl BcResult {
    /// Total runtime across iterations.
    pub fn total_runtime(&self) -> Ns {
        Ns(self.iterations.iter().map(|i| i.runtime.as_nanos()).sum())
    }

    /// Mean iteration runtime.
    pub fn mean_runtime(&self) -> Ns {
        if self.iterations.is_empty() {
            return Ns::ZERO;
        }
        Ns(self.total_runtime().as_nanos() / self.iterations.len() as u64)
    }
}

/// The BC driver.
pub struct Bc {
    cfg: GraphConfig,
    csr: RegionId,
    aux: RegionId,
    /// Skew segments over the aux region: `(lo_page, hi_page, weight)`.
    aux_segments: Vec<(u64, u64, f64)>,
}

fn binomial_coeff(n: u32, k: u32) -> f64 {
    let mut c = 1.0;
    for i in 0..k {
        c = c * (n - i) as f64 / (i + 1) as f64;
    }
    c
}

impl Bc {
    /// Maps the graph and populates it (the from-disk load phase).
    pub fn setup<B: TieredBackend>(sim: &mut Sim<B>, cfg: GraphConfig) -> Bc {
        let csr = sim.mmap(cfg.csr_bytes());
        let aux = sim.mmap(cfg.aux_bytes());
        sim.populate(csr, true);
        sim.populate(aux, true);
        sim.set_app_threads(cfg.threads);

        // Degree-skew segments over the aux region. Pages sorted by
        // popularity class: the page index's high bits are RMAT endpoint
        // bits; GAP's degree-aware relabeling clusters hot vertices, which
        // we model by laying classes out hottest-first.
        let aux_pages = sim.m.space.region(aux).page_count();
        let n_bits = (aux_pages.max(2) as f64).log2().ceil() as u32;
        let p = cfg.rmat_p;
        let mut classes: Vec<(f64, f64)> = (0..=n_bits)
            .map(|k| {
                let pages = binomial_coeff(n_bits, k);
                let w = p.powi(k as i32) * (1.0 - p).powi((n_bits - k) as i32);
                (pages, w * pages)
            })
            .collect();
        // Hottest class first = highest per-page weight first (k = 0 has
        // the highest (1-p)^n... no: weight per page for k ones is
        // p^k (1-p)^(n-k); with p < 0.5 smaller k is hotter).
        let total_w: f64 = classes.iter().map(|c| c.1).sum();
        for c in &mut classes {
            c.1 /= total_w;
        }
        let mut aux_segments = Vec::new();
        let mut cursor = 0u64;
        let scale = aux_pages as f64 / classes.iter().map(|c| c.0).sum::<f64>();
        for (pages, w) in classes {
            let count = ((pages * scale).round() as u64).max(1);
            let hi = (cursor + count).min(aux_pages);
            if hi > cursor {
                aux_segments.push((cursor, hi, w));
            }
            cursor = hi;
            if cursor >= aux_pages {
                break;
            }
        }
        // Any rounding remainder joins the last (coldest) segment.
        if cursor < aux_pages {
            if let Some(last) = aux_segments.last_mut() {
                last.1 = aux_pages;
            }
        }
        Bc {
            cfg,
            csr,
            aux,
            aux_segments,
        }
    }

    /// The CSR region.
    pub fn csr_region(&self) -> RegionId {
        self.csr
    }

    /// The auxiliary-array region.
    pub fn aux_region(&self) -> RegionId {
        self.aux
    }

    /// Aux-region skew segments (for tests/inspection).
    pub fn aux_segments(&self) -> &[(u64, u64, f64)] {
        &self.aux_segments
    }

    fn aux_batch(&self, accesses: u64, write_fraction: f64, footprint: u64) -> AccessBatch {
        let segments = self
            .aux_segments
            .iter()
            .map(|&(lo, hi, w)| SegmentAccess {
                region: self.aux,
                lo_page: lo,
                hi_page: hi,
                weight: w,
                llc_footprint: footprint,
                write_fraction: None,
            })
            .collect();
        AccessBatch {
            segments,
            count: accesses,
            object_size: 8,
            write_fraction,
            pattern: Pattern::Random,
            cpu_ns_per_access: 3.0,
            mlp: 4.0,
            sweep: false,
        }
    }

    fn csr_batch(
        &self,
        pages: (u64, u64),
        accesses: u64,
        size: u32,
        wf: f64,
        pat: Pattern,
    ) -> AccessBatch {
        AccessBatch {
            segments: vec![SegmentAccess {
                region: self.csr,
                lo_page: pages.0,
                hi_page: pages.1,
                weight: 1.0,
                llc_footprint: self.cfg.csr_bytes(),
                write_fraction: None,
            }],
            count: accesses,
            object_size: size,
            write_fraction: wf,
            pattern: pat,
            cpu_ns_per_access: 2.0,
            mlp: 6.0,
            // CSR traversals visit each edge/vertex once per iteration.
            sweep: true,
        }
    }

    /// One thread's share of a BC iteration chunk, as the four batch
    /// kinds [`Bc::run_iteration`] submits — for the colocation driver,
    /// which runs chunks as free-running rounds instead of barriered
    /// levels. Pure: depends only on the configuration and the region
    /// geometry captured at setup.
    pub(crate) fn round_batches(&self, csr_pages: u64) -> Vec<AccessBatch> {
        const CHUNKS: u64 = 8;
        let cfg = &self.cfg;
        let v = cfg.vertices();
        let e = cfg.edge_entries();
        let threads = cfg.threads as u64;
        vec![
            self.csr_batch(
                (0, csr_pages),
                e / 16 / threads / CHUNKS,
                128,
                0.0,
                Pattern::Random,
            ),
            self.csr_batch(
                (0, csr_pages),
                v / threads / CHUNKS,
                8,
                0.0,
                Pattern::Random,
            ),
            self.csr_batch(
                (0, csr_pages),
                e / 2 / threads / CHUNKS,
                8,
                0.5,
                Pattern::Sequential,
            ),
            self.aux_batch(2 * e / threads / CHUNKS, 0.55, cfg.aux_bytes()),
        ]
    }

    /// Runs one BC iteration (forward BFS + backward accumulation),
    /// returning its wall time.
    pub fn run_iteration<B: TieredBackend>(&self, sim: &mut Sim<B>) -> IterationResult {
        let cfg = &self.cfg;
        let t0 = sim.now();
        let wear0 = sim.m.nvm_wear_bytes();
        let v = cfg.vertices();
        let e = cfg.edge_entries();
        let threads = cfg.threads as u64;
        let csr_pages = sim.m.space.region(self.csr).page_count();
        // Per-thread slices of work, issued in chunks so migration
        // decisions landing mid-iteration affect later chunks.
        const CHUNKS: u64 = 8;
        for chunk in 0..CHUNKS {
            let mut outstanding = 0u32;
            for tid in 0..threads {
                // Forward pass: neighbour-list scans. Average run length is
                // 16 entries * 8 B = 128 B, below NVM media granularity.
                let scans = e / 16 / threads / CHUNKS;
                let b = self.csr_batch((0, csr_pages), scans, 128, 0.0, Pattern::Random);
                sim.submit_batch(tid as u32, &b);
                outstanding += 1;
                // Offset lookups: one 8 B random read per vertex visited.
                let b = self.csr_batch(
                    (0, csr_pages),
                    v / threads / CHUNKS,
                    8,
                    0.0,
                    Pattern::Random,
                );
                sim.submit_batch(tid as u32, &b);
                outstanding += 1;
                // Successor-list appends (forward) and reads (backward):
                // sequential halves of the CSR region tail.
                let b = self.csr_batch(
                    (0, csr_pages),
                    e / 2 / threads / CHUNKS,
                    8,
                    0.5,
                    Pattern::Sequential,
                );
                sim.submit_batch(tid as u32, &b);
                outstanding += 1;
                // Aux arrays: 2 endpoint updates per edge, write-heavy
                // (sigma increments, delta accumulation, depth stores).
                let b = self.aux_batch(2 * e / threads / CHUNKS, 0.55, cfg.aux_bytes());
                sim.submit_batch(tid as u32, &b);
                outstanding += 1;
            }
            // Barrier: BFS levels synchronize threads.
            while outstanding > 0 {
                match sim.step() {
                    Some((_, Event::ThreadReady(_))) => outstanding -= 1,
                    Some(_) => {}
                    None => break,
                }
            }
            let _ = chunk;
        }
        IterationResult {
            runtime: sim.now().saturating_sub(t0),
            nvm_writes: sim.m.nvm_wear_bytes() - wear0,
        }
    }

    /// Runs the full benchmark: `iterations` BC iterations.
    pub fn run<B: TieredBackend>(&self, sim: &mut Sim<B>) -> BcResult {
        let iterations = (0..self.cfg.iterations)
            .map(|_| self.run_iteration(sim))
            .collect();
        BcResult { iterations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::hemem::{HeMem, HeMemConfig};
    use hemem_core::machine::MachineConfig;

    #[test]
    fn paper_sizes_bracket_dram() {
        // Figure 14 vs 15: scale 28 fits in 192 GB, scale 29 exceeds it.
        let small = GraphConfig::paper(28);
        let big = GraphConfig::paper(29);
        let dram = 192u64 << 30;
        assert!(
            small.total_bytes() < dram,
            "2^28: {} GiB",
            small.total_bytes() >> 30
        );
        assert!(
            big.total_bytes() > dram,
            "2^29: {} GiB",
            big.total_bytes() >> 30
        );
    }

    #[test]
    fn aux_segments_cover_region_and_sum_to_one() {
        let mc = MachineConfig::small(2, 16);
        let mut sim = Sim::new(mc.clone(), HeMem::new(HeMemConfig::scaled_for(&mc)));
        let mut cfg = GraphConfig::paper(21); // tiny: 2M vertices
        cfg.threads = 2;
        let bc = Bc::setup(&mut sim, cfg);
        let aux_pages = sim.m.space.region(bc.aux_region()).page_count();
        let segs = bc.aux_segments();
        assert_eq!(segs.first().expect("segments").0, 0);
        assert_eq!(segs.last().expect("segments").1, aux_pages);
        for w in segs.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous coverage");
            assert!(
                w[0].2 / ((w[0].1 - w[0].0) as f64) >= w[1].2 / ((w[1].1 - w[1].0) as f64) * 0.99,
                "hottest-first layout"
            );
        }
        let total: f64 = segs.iter().map(|s| s.2).sum();
        assert!((total - 1.0).abs() < 1e-6, "weights sum to 1: {total}");
    }

    #[test]
    fn skew_concentrates_traffic() {
        let mc = MachineConfig::small(2, 16);
        let mut sim = Sim::new(mc.clone(), HeMem::new(HeMemConfig::scaled_for(&mc)));
        let mut cfg = GraphConfig::paper(21);
        cfg.threads = 2;
        let bc = Bc::setup(&mut sim, cfg);
        // The hottest 20% of pages must carry well over half the weight.
        let aux_pages = sim.m.space.region(bc.aux_region()).page_count();
        let cutoff = aux_pages / 5;
        let hot_w: f64 = bc
            .aux_segments()
            .iter()
            .map(|&(lo, hi, w)| {
                let covered = hi.min(cutoff).saturating_sub(lo);
                if hi > lo {
                    w * covered as f64 / (hi - lo) as f64
                } else {
                    0.0
                }
            })
            .sum();
        assert!(hot_w > 0.55, "top 20% of pages carry {hot_w:.2} of traffic");
    }

    #[test]
    fn iterations_speed_up_as_hemem_converges() {
        // Small machine, graph exceeding DRAM: later iterations must be
        // faster than the first as the hot aux pages reach DRAM (Fig. 15).
        let mc = MachineConfig::small(1, 16);
        let mut sim = Sim::new(mc.clone(), HeMem::new(HeMemConfig::scaled_for(&mc)));
        let mut cfg = GraphConfig::paper(22); // ~5.6 GiB total
        cfg.threads = 4;
        cfg.iterations = 6;
        let bc = Bc::setup(&mut sim, cfg);
        let res = bc.run(&mut sim);
        let first = res.iterations[0].runtime;
        let last = res.iterations.last().expect("iterations").runtime;
        assert!(last < first, "convergence: first {first} vs last {last}");
        assert!(sim.m.stats.migrations_done > 0);
    }

    #[test]
    fn wear_decreases_once_write_hot_pages_reach_dram() {
        let mc = MachineConfig::small(1, 16);
        let mut sim = Sim::new(mc.clone(), HeMem::new(HeMemConfig::scaled_for(&mc)));
        let mut cfg = GraphConfig::paper(22);
        cfg.threads = 4;
        cfg.iterations = 6;
        let bc = Bc::setup(&mut sim, cfg);
        let res = bc.run(&mut sim);
        let first = res.iterations[0].nvm_writes;
        let last = res.iterations.last().expect("iterations").nvm_writes;
        assert!(
            (last as f64) < 0.8 * first as f64,
            "wear drops: first {first} vs last {last}"
        );
    }
}
