//! GUPS (giga-updates per second) microbenchmark, §5.1.
//!
//! Parallel read-modify-write operations on 8-byte objects over a large
//! working set. Each thread owns an exclusive partition. Variants match
//! the paper's experiments:
//!
//! - **uniform** random over the whole working set (system-overhead test,
//!   Figure 5);
//! - **hot set**: 90% of each thread's operations hit a configurable hot
//!   slice of its partition (Figure 6);
//! - **dynamic hot set**: the hot slice shifts mid-run (Figure 9);
//! - **write-skew**: part of the hot set is write-only, the rest of the
//!   working set read-only (Table 2).

use hemem_core::backend::{AccessBatch, SegmentAccess, TieredBackend};
use hemem_core::runtime::{Event, Sim};
use hemem_memdev::Pattern;
use hemem_sim::{Ns, RateSeries};
use hemem_vmm::RegionId;

/// GUPS configuration.
#[derive(Debug, Clone)]
pub struct GupsConfig {
    /// Worker threads (paper default 16).
    pub threads: u32,
    /// Aggregate working-set size in bytes.
    pub working_set: u64,
    /// Aggregate hot-set size in bytes; `0` = uniform access.
    pub hot_set: u64,
    /// Fraction of operations that hit the hot set (paper: 0.9).
    pub hot_fraction: f64,
    /// Bytes per object (paper: 8).
    pub object_size: u32,
    /// Virtual run time of the measurement phase.
    pub duration: Ns,
    /// Virtual warm-up time before measurement starts.
    pub warmup: Ns,
    /// Updates per submitted batch per thread.
    pub batch_ops: u64,
    /// Write-skew mode (Table 2): this many bytes of the hot set are
    /// write-only while everything else is read-only. `0` disables.
    pub write_only_bytes: u64,
    /// Instantaneous-rate window for the time series (Figure 9).
    pub rate_window: Ns,
    /// Populate hot pages first so they land in DRAM ("Opt" manual
    /// placement in the Figure 8 overhead breakdown). Default: shuffled
    /// first-touch order (parallel load phase).
    pub hot_first_populate: bool,
    /// Zipf skew exponent over pages instead of the two-level hot/cold
    /// split; `None` uses the paper's hot-set model. With `Some(theta)`,
    /// page popularity follows a power law (page ranks laid out
    /// hottest-first within each partition).
    pub zipf_theta: Option<f64>,
}

impl GupsConfig {
    /// Paper-default GUPS: 16 threads, 8-byte objects, 90/10 hot split.
    pub fn paper(working_set: u64, hot_set: u64) -> GupsConfig {
        GupsConfig {
            threads: 16,
            working_set,
            hot_set,
            hot_fraction: 0.9,
            object_size: 8,
            duration: Ns::secs(10),
            warmup: Ns::secs(5),
            batch_ops: 200_000,
            write_only_bytes: 0,
            rate_window: Ns::secs(1),
            hot_first_populate: false,
            zipf_theta: None,
        }
    }
}

/// GUPS results.
#[derive(Debug, Clone)]
pub struct GupsResult {
    /// Updates per second during the measurement phase, in giga-updates
    /// (the GUPS metric).
    pub gups: f64,
    /// Instantaneous updates/second over time (measurement phase),
    /// `(window end, updates per second)`.
    pub timeseries: Vec<(Ns, f64)>,
    /// Total updates completed during measurement.
    pub updates: u64,
    /// NVM media writes during measurement (wear).
    pub nvm_writes: u64,
}

/// Internal driver state: per-thread hot slice bounds, in pages.
struct Partition {
    lo: u64,
    hi: u64,
    hot_lo: u64,
    hot_hi: u64,
}

/// A running GUPS instance over a simulation.
pub struct Gups {
    cfg: GupsConfig,
    region: RegionId,
    parts: Vec<Partition>,
    page_bytes: u64,
}

impl Gups {
    /// Maps and populates the working set; computes per-thread partitions.
    pub fn setup<B: TieredBackend>(sim: &mut Sim<B>, cfg: GupsConfig) -> Gups {
        assert!(cfg.threads > 0, "need at least one thread");
        let region = sim.mmap(cfg.working_set);
        let (page_bytes, total_pages) = {
            let r = sim.m.space.region(region);
            (r.page_size().bytes(), r.page_count())
        };
        let per = total_pages / cfg.threads as u64;
        // Parallel initialization: all threads fill their partitions
        // concurrently and the paper's hot set is a *random* subset of
        // objects, so first-touch order — and therefore which pages ended
        // up in DRAM before it filled — is effectively random with respect
        // to any given slice. Faulting in shuffled order gives every page
        // range a proportional share of DRAM residency, matching that.
        let now = sim.now();
        let threads = cfg.threads as u64;
        let hot_pages_per_t = (cfg.hot_set / threads).div_ceil(page_bytes).min(per);
        let mut order: Vec<u64> = (0..total_pages).collect();
        let mut rng = sim.m.rng.fork(0x47555053); // "GUPS"
        rng.shuffle(&mut order);
        if cfg.hot_first_populate && cfg.hot_set > 0 {
            // Hot slices first: they are touched first and fill DRAM.
            order.sort_by_key(|&idx| {
                let t = (idx / per).min(threads - 1);
                let lo = t * per + (per.saturating_sub(hot_pages_per_t)) / 3;
                let hi = lo + hot_pages_per_t;
                u64::from(!(idx >= lo && idx < hi))
            });
        }
        let mut fill_cost = Ns::ZERO;
        for idx in order {
            fill_cost += sim.fault_page(
                hemem_vmm::PageId { region, index: idx },
                true,
                now + fill_cost,
            );
        }
        // Advance past the zero-fill device traffic (the load-from-disk
        // warm-up in the paper); otherwise its bulk backlog stalls every
        // later migration.
        let mut drain = Ns::ZERO;
        for &tier in sim.m.tiers() {
            drain = drain.max(sim.m.tier_bulk_queue_delay(
                now + fill_cost,
                tier,
                hemem_memdev::MemOp::Write,
            ));
        }
        sim.run_until(Ns(now.as_nanos() + fill_cost.as_nanos() + drain.as_nanos()));
        let hot_pages_per = (cfg.hot_set / cfg.threads as u64)
            .div_ceil(page_bytes)
            .min(per);
        let parts = (0..cfg.threads as u64)
            .map(|t| {
                let lo = t * per;
                let hi = if t == cfg.threads as u64 - 1 {
                    total_pages
                } else {
                    lo + per
                };
                // The paper makes a *random* subset of objects hot; at page
                // granularity we model it as a slice at an arbitrary offset
                // within the partition (contiguity does not matter to any
                // backend: MM scatters by hash, HeMem tracks per page).
                let hot_lo = lo + (per.saturating_sub(hot_pages_per)) / 3;
                let hot_hi = hot_lo + hot_pages_per;
                Partition {
                    lo,
                    hi,
                    hot_lo,
                    hot_hi,
                }
            })
            .collect();
        sim.set_app_threads(cfg.threads);
        Gups {
            cfg,
            region,
            parts,
            page_bytes,
        }
    }

    /// The backing region.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Current hot slices as `(lo_page, hi_page)` per thread (empty pairs
    /// when running uniform).
    pub fn hot_slices(&self) -> Vec<(u64, u64)> {
        self.parts.iter().map(|p| (p.hot_lo, p.hot_hi)).collect()
    }

    /// Shifts every thread's hot slice by `shift_bytes` (the Figure 9 /
    /// Figure 12 dynamic hot-set experiment: part of the hot set goes
    /// cold, an equal amount of previously-cold data becomes hot).
    pub fn shift_hot_set(&mut self, shift_bytes: u64) {
        let shift_pages = shift_bytes / self.cfg.threads as u64 / self.page_bytes;
        for p in &mut self.parts {
            let width = p.hot_hi - p.hot_lo;
            p.hot_lo = (p.hot_lo + shift_pages).min(p.hi.saturating_sub(width));
            p.hot_hi = p.hot_lo + width;
        }
    }

    /// Builds power-law segments over one partition: geometric rank bands,
    /// each carrying its integrated Zipf mass (hottest band first).
    fn zipf_segments(&self, lo: u64, hi: u64, theta: f64, all_foot: u64) -> Vec<SegmentAccess> {
        let pages = hi - lo;
        debug_assert!(pages > 0);
        // Integral of r^-theta over a rank band [a, b).
        let mass = |a: f64, b: f64| -> f64 {
            if (theta - 1.0).abs() < 1e-9 {
                (b / a).ln()
            } else {
                (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
            }
        };
        let total = mass(1.0, pages as f64 + 1.0);
        let mut segments = Vec::new();
        let mut band_lo = 0u64;
        let mut width = 1u64;
        while band_lo < pages {
            let band_hi = (band_lo + width).min(pages);
            let w = mass(band_lo as f64 + 1.0, band_hi as f64 + 1.0) / total;
            segments.push(SegmentAccess {
                region: self.region,
                lo_page: lo + band_lo,
                hi_page: lo + band_hi,
                weight: w,
                llc_footprint: all_foot,
                write_fraction: None,
            });
            band_lo = band_hi;
            width *= 4;
        }
        segments
    }

    pub(crate) fn batch_for(&self, tid: u32) -> AccessBatch {
        let p = &self.parts[tid as usize];
        let cfg = &self.cfg;
        // Each update is a read plus a write to the same object.
        let accesses = cfg.batch_ops * 2;
        let mut segments = Vec::with_capacity(3);
        let hot_foot = cfg.hot_set.max(1);
        let all_foot = cfg.working_set;
        if let Some(theta) = cfg.zipf_theta {
            return AccessBatch {
                segments: self.zipf_segments(p.lo, p.hi, theta, all_foot),
                count: accesses,
                object_size: cfg.object_size,
                write_fraction: 0.5,
                pattern: Pattern::Random,
                cpu_ns_per_access: 2.0,
                mlp: 4.0,
                sweep: false,
            };
        }
        if cfg.write_only_bytes > 0 && p.hot_hi > p.hot_lo {
            // Table 2 skew: the hot set splits into a write-only span and a
            // read-hot span (hot traffic divides evenly between them); the
            // remaining 10% of accesses read uniformly over the partition.
            let wo_pages = (cfg.write_only_bytes / cfg.threads as u64 / self.page_bytes)
                .min(p.hot_hi - p.hot_lo)
                .max(1);
            let wo_hi = (p.hot_lo + wo_pages).min(p.hot_hi);
            let segments = vec![
                SegmentAccess {
                    region: self.region,
                    lo_page: p.hot_lo,
                    hi_page: wo_hi,
                    weight: cfg.hot_fraction / 2.0,
                    llc_footprint: cfg.write_only_bytes,
                    write_fraction: Some(1.0),
                },
                SegmentAccess {
                    region: self.region,
                    lo_page: wo_hi,
                    hi_page: p.hot_hi.max(wo_hi + 1).min(p.hi),
                    weight: cfg.hot_fraction / 2.0,
                    llc_footprint: cfg.hot_set,
                    write_fraction: Some(0.0),
                },
                SegmentAccess {
                    region: self.region,
                    lo_page: p.lo,
                    hi_page: p.hi,
                    weight: 1.0 - cfg.hot_fraction,
                    llc_footprint: all_foot,
                    write_fraction: Some(0.0),
                },
            ];
            return AccessBatch {
                segments,
                count: accesses,
                object_size: cfg.object_size,
                write_fraction: cfg.hot_fraction / 2.0,
                pattern: Pattern::Random,
                cpu_ns_per_access: 2.0,
                mlp: 4.0,
                sweep: false,
            };
        }
        if cfg.hot_set > 0 && p.hot_hi > p.hot_lo {
            segments.push(SegmentAccess {
                region: self.region,
                lo_page: p.hot_lo,
                hi_page: p.hot_hi,
                weight: cfg.hot_fraction,
                llc_footprint: hot_foot,
                write_fraction: None,
            });
            segments.push(SegmentAccess {
                region: self.region,
                lo_page: p.lo,
                hi_page: p.hi,
                weight: 1.0 - cfg.hot_fraction,
                llc_footprint: all_foot,
                write_fraction: None,
            });
        } else {
            segments.push(SegmentAccess {
                region: self.region,
                lo_page: p.lo,
                hi_page: p.hi,
                weight: 1.0,
                llc_footprint: all_foot,
                write_fraction: None,
            });
        }
        AccessBatch {
            segments,
            count: accesses,
            object_size: cfg.object_size,
            write_fraction: 0.5,
            pattern: Pattern::Random,
            cpu_ns_per_access: 2.0,
            mlp: 4.0,
            sweep: false,
        }
    }

    /// Runs warm-up then measurement; returns the GUPS metric.
    pub fn run<B: TieredBackend>(&mut self, sim: &mut Sim<B>) -> GupsResult {
        self.run_with_events(sim, &[], |_, _| {})
    }

    /// Runs with scheduled custom events (tag, at); `on_event` fires for
    /// each (e.g. to shift the hot set mid-run). Event times are relative
    /// to the start of the *measurement* phase.
    pub fn run_with_events<B: TieredBackend>(
        &mut self,
        sim: &mut Sim<B>,
        events: &[(u64, Ns)],
        mut on_event: impl FnMut(&mut Gups, u64),
    ) -> GupsResult {
        let cfg = self.cfg.clone();
        // One token per thread flows through warm-up and measurement; a
        // thread whose batch completes after `t_end` retires its token.
        for tid in 0..cfg.threads {
            sim.schedule_thread(sim.now(), tid);
        }
        let warm_end = sim.now() + cfg.warmup;
        let t_end = warm_end + cfg.duration;
        for (tag, at) in events {
            sim.schedule_custom(warm_end + *at, *tag);
        }
        let mut pending = vec![0u64; cfg.threads as usize];
        let mut live = cfg.threads;
        let mut updates = 0u64;
        let mut wear0: Option<u64> = None;
        let mut series = RateSeries::new(cfg.rate_window);
        while live > 0 {
            let Some((now, ev)) = sim.step() else { break };
            match ev {
                Event::ThreadReady(tid) => {
                    let t = tid as usize;
                    if now > warm_end {
                        if wear0.is_none() {
                            wear0 = Some(sim.m.nvm_wear_bytes());
                        }
                        if pending[t] > 0 {
                            updates += pending[t];
                            series.add(now.saturating_sub(warm_end), pending[t] as f64);
                        }
                    }
                    pending[t] = 0;
                    if now >= t_end {
                        live -= 1;
                        continue;
                    }
                    let b = self.batch_for(tid);
                    sim.submit_batch(tid, &b);
                    pending[t] = cfg.batch_ops;
                }
                Event::Custom(tag) => on_event(self, tag),
                _ => unreachable!("step only returns workload events"),
            }
        }
        let elapsed = sim.now().saturating_sub(warm_end);
        let secs = elapsed.as_secs_f64().max(1e-9);
        GupsResult {
            gups: updates as f64 / secs / 1e9,
            timeseries: series.finish(elapsed),
            updates,
            nvm_writes: sim.m.nvm_wear_bytes() - wear0.unwrap_or_else(|| sim.m.nvm_wear_bytes()),
        }
    }
}

/// Convenience: set up and run GUPS on a fresh simulation.
pub fn run_gups<B: TieredBackend>(sim: &mut Sim<B>, cfg: GupsConfig) -> GupsResult {
    let mut g = Gups::setup(sim, cfg);
    g.run(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_core::hemem::{HeMem, HeMemConfig};
    use hemem_core::machine::MachineConfig;
    use hemem_memdev::GIB;

    fn hemem_sim(dram_gib: u64, nvm_gib: u64) -> Sim<HeMem> {
        let mut mc = MachineConfig::small(dram_gib, nvm_gib);
        // Keep per-page sampling dynamics equivalent to the paper's
        // 192 GB testbed (fewer pages at the same access rates would
        // otherwise make every page look proportionally hotter).
        mc.pebs.sample_period *= 192 / dram_gib;
        let hc = HeMemConfig::scaled_for(&mc);
        Sim::new(mc, HeMem::new(hc))
    }

    fn quick(working_set: u64, hot: u64) -> GupsConfig {
        let mut c = GupsConfig::paper(working_set, hot);
        c.threads = 4;
        c.warmup = Ns::secs(2);
        c.duration = Ns::secs(3);
        c
    }

    #[test]
    fn fits_in_dram_runs_at_dram_speed() {
        // Working set below DRAM: no NVM access at all after placement.
        let mut sim = hemem_sim(4, 16);
        let r = run_gups(&mut sim, quick(2 * GIB, 0));
        assert!(r.gups > 0.0);
        let nvm_reads = sim.m.nvm.stats().bytes_read;
        assert_eq!(nvm_reads, 0, "no NVM reads for DRAM-resident set");
    }

    #[test]
    fn hot_set_migrates_into_dram_and_beats_unmanaged() {
        // Working set 4x DRAM, hot set fits in DRAM: HeMem must converge
        // to serving most accesses from DRAM.
        let mut sim = hemem_sim(1, 8);
        let mut cfg = quick(4 * GIB, 512 << 20);
        // At paper-equivalent sampling rates classification takes tens of
        // virtual seconds (the paper warms up for minutes).
        cfg.warmup = Ns::secs(120);
        let mut g = Gups::setup(&mut sim, cfg.clone());
        let res = g.run(&mut sim);
        // After convergence the hot slices must be DRAM-resident.
        let region = sim.m.space.region(g.region());
        let mut hot_dram = 0u64;
        let mut hot_total = 0u64;
        for p in &g.parts {
            hot_dram += region.dram_pages_in(p.hot_lo, p.hot_hi);
            hot_total += p.hot_hi - p.hot_lo;
        }
        let frac = hot_dram as f64 / hot_total as f64;
        assert!(
            frac > 0.8,
            "hot set in DRAM: {frac:.2} ({hot_dram}/{hot_total})"
        );
        assert!(res.gups > 0.0);
    }

    #[test]
    fn uniform_beyond_dram_is_slower_than_in_dram() {
        let mut sim_small = hemem_sim(8, 32);
        let in_dram = run_gups(&mut sim_small, quick(2 * GIB, 0)).gups;
        let mut sim_big = hemem_sim(1, 32);
        let beyond = run_gups(&mut sim_big, quick(8 * GIB, 0)).gups;
        assert!(
            in_dram > 1.5 * beyond,
            "in-DRAM {in_dram} vs beyond-DRAM {beyond}"
        );
    }

    #[test]
    fn dynamic_shift_recovers() {
        let mut sim = hemem_sim(1, 8);
        let mut cfg = quick(4 * GIB, 256 << 20);
        cfg.warmup = Ns::secs(60);
        // Recovery needs several cooling epochs (8 s each) to demote the
        // stale hot set and classify the new one.
        cfg.duration = Ns::secs(60);
        cfg.rate_window = Ns::secs(1);
        let mut g = Gups::setup(&mut sim, cfg);
        let res = g.run_with_events(&mut sim, &[(1, Ns::secs(10))], |g, _| {
            g.shift_hot_set(128 << 20);
        });
        assert!(res.timeseries.len() >= 40);
        // Steady rate at the end must be within 40% of the pre-shift rate.
        let pre = res.timeseries[2].1;
        let post = res.timeseries.last().expect("points").1;
        assert!(post > 0.6 * pre, "pre {pre} post {post}");
    }

    #[test]
    fn timeseries_sums_to_updates() {
        let mut sim = hemem_sim(2, 8);
        let cfg = quick(GIB, 0);
        let window = cfg.rate_window;
        let _ = window;
        let mut g = Gups::setup(&mut sim, cfg);
        let res = g.run(&mut sim);
        // Integrate rate over each window's actual span (the final window
        // may be partial).
        let mut prev = Ns::ZERO;
        let mut from_series = 0.0;
        for &(t, rate) in &res.timeseries {
            from_series += rate * (t.saturating_sub(prev)).as_secs_f64();
            prev = t;
        }
        let err = (from_series - res.updates as f64).abs() / res.updates as f64;
        assert!(
            err < 0.05,
            "series {} vs {} updates",
            from_series,
            res.updates
        );
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;
    use hemem_core::hemem::{HeMem, HeMemConfig};
    use hemem_core::machine::MachineConfig;
    use hemem_memdev::GIB;

    #[test]
    fn zipf_segments_cover_partition_and_sum_to_one() {
        let mc = MachineConfig::small(2, 8);
        let mut sim = Sim::new(mc.clone(), HeMem::new(HeMemConfig::scaled_for(&mc)));
        let mut cfg = GupsConfig::paper(2 * GIB, 0);
        cfg.threads = 2;
        cfg.zipf_theta = Some(0.99);
        let g = Gups::setup(&mut sim, cfg);
        let b = g.batch_for(0);
        assert!(b.segments.len() > 3, "several rank bands");
        let total: f64 = b.segments.iter().map(|s| s.weight).sum();
        assert!((total - 1.0).abs() < 1e-6, "weights sum to {total}");
        // Coverage: contiguous, starting at the partition start.
        for w in b.segments.windows(2) {
            assert_eq!(w[0].hi_page, w[1].lo_page);
        }
        assert_eq!(b.segments[0].lo_page, g.parts[0].lo);
        assert_eq!(b.segments.last().expect("bands").hi_page, g.parts[0].hi);
        // Skew: the first band (1 page) carries far more than uniform share.
        let first = &b.segments[0];
        let uniform =
            (first.hi_page - first.lo_page) as f64 / (g.parts[0].hi - g.parts[0].lo) as f64;
        assert!(
            first.weight > 20.0 * uniform,
            "head weight {}",
            first.weight
        );
    }

    #[test]
    fn zipf_gups_converges_head_pages_to_dram() {
        let mc = MachineConfig::small(1, 8);
        let mut sim = Sim::new(mc.clone(), HeMem::new(HeMemConfig::scaled_for(&mc)));
        let mut cfg = GupsConfig::paper(4 * GIB, 0);
        cfg.threads = 4;
        cfg.zipf_theta = Some(0.99);
        cfg.warmup = Ns::secs(15);
        cfg.duration = Ns::secs(5);
        let mut g = Gups::setup(&mut sim, cfg);
        let res = g.run(&mut sim);
        assert!(res.gups > 0.0);
        // The head band of each partition must be DRAM-resident.
        let region = sim.m.space.region(g.region());
        let mut head_dram = 0;
        let mut head_total = 0;
        for p in &g.parts {
            head_dram += region.dram_pages_in(p.lo, p.lo + 16);
            head_total += 16;
        }
        assert!(
            head_dram * 10 >= head_total * 7,
            "hot head in DRAM: {head_dram}/{head_total}"
        );
    }
}
