//! Online invariant auditor.
//!
//! A cheap structural audit over the machine's metadata: page
//! conservation in each pool, agreement between the address space and
//! the pools (every allocated frame is referenced exactly once, by a
//! mapping or by an in-flight journal entry), no double-mapped frames,
//! and journal quiescence when the machine is idle. Violations are typed
//! values, not panics, so a long chaos or recovery run can count them in
//! telemetry and fail at the end with evidence.
//!
//! The audit walks every managed page, so its cost is linear in mapped
//! memory: cheap enough for every policy tick in tests, meant for a
//! coarse interval in benches (see `MachineConfig::audit_period`).

use std::collections::HashMap;

use hemem_vmm::{PageState, PhysPage, RegionKind, Tier};

use crate::journal::TxnState;
use crate::machine::MachineCore;

/// One invariant violation found by the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditViolation {
    /// A pool's books do not balance: `total != free + allocated +
    /// retired`.
    PoolImbalance {
        /// The tier whose pool is imbalanced.
        tier: Tier,
        /// Total pages in the pool.
        total: u64,
        /// Pages on the free list.
        free: u64,
        /// Pages recorded as allocated.
        allocated: u64,
        /// Pages on the poisoned list.
        retired: u64,
    },
    /// One physical frame is referenced by two owners (two mappings, or
    /// a mapping and an in-flight migration destination).
    DoubleMappedFrame {
        /// The tier of the frame.
        tier: Tier,
        /// The frame referenced twice.
        phys: PhysPage,
    },
    /// A pool's allocated count disagrees with the number of frames
    /// actually referenced by mappings and journal entries.
    AllocationMismatch {
        /// The tier whose books disagree.
        tier: Tier,
        /// Pages the pool believes are allocated.
        allocated: u64,
        /// Frames actually referenced.
        referenced: u64,
    },
    /// The migration journal holds entries although the machine is
    /// supposed to be quiescent.
    JournalNotQuiescent {
        /// Outstanding journal entries.
        outstanding: u64,
    },
    /// A backend's tracker disagrees with the address space about where
    /// a page lives (reported through `TieredBackend::audit`).
    TrackerMismatch {
        /// The page in disagreement.
        page: hemem_vmm::PageId,
        /// Tier the tracker believes the page is on (`None`: untracked /
        /// not resident).
        tracked: Option<Tier>,
        /// Tier the address space maps the page on (`None`: unmapped or
        /// swapped).
        mapped: Option<Tier>,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditViolation::PoolImbalance {
                tier,
                total,
                free,
                allocated,
                retired,
            } => write!(
                f,
                "{tier:?} pool imbalance: total {total} != free {free} + allocated {allocated} + retired {retired}"
            ),
            AuditViolation::DoubleMappedFrame { tier, phys } => {
                write!(f, "{tier:?} frame {phys:?} referenced twice")
            }
            AuditViolation::AllocationMismatch {
                tier,
                allocated,
                referenced,
            } => write!(
                f,
                "{tier:?} pool says {allocated} allocated but {referenced} frames are referenced"
            ),
            AuditViolation::JournalNotQuiescent { outstanding } => {
                write!(f, "journal holds {outstanding} entries at quiescence")
            }
            AuditViolation::TrackerMismatch {
                page,
                tracked,
                mapped,
            } => write!(
                f,
                "tracker places {page:?} on {tracked:?} but the space maps it on {mapped:?}"
            ),
        }
    }
}

impl std::error::Error for AuditViolation {}

/// Audits the machine's structural invariants; returns every violation
/// found (empty = clean). With `expect_quiescent`, outstanding journal
/// entries are also violations.
pub fn audit_machine(m: &MachineCore, expect_quiescent: bool) -> Vec<AuditViolation> {
    let mut v = Vec::new();

    // 1. Page conservation per pool.
    for tier in [Tier::Dram, Tier::Nvm] {
        let p = m.pool(tier);
        if !p.conserved() {
            v.push(AuditViolation::PoolImbalance {
                tier,
                total: p.total_pages(),
                free: p.free_pages(),
                allocated: p.allocated_pages(),
                retired: p.retired_pages(),
            });
        }
    }

    // 2. Every pool frame referenced at most once, counting mappings and
    // in-flight migration destinations. SmallAnon regions are
    // kernel-backed and do not draw from the tiered pools.
    let mut refs: HashMap<(Tier, PhysPage), u64> = HashMap::new();
    for region in m.space.regions() {
        if region.kind() != RegionKind::ManagedHeap {
            continue;
        }
        for i in 0..region.page_count() {
            if let PageState::Mapped { tier, phys, .. } = region.state(i) {
                *refs.entry((tier, phys)).or_insert(0) += 1;
            }
        }
    }
    for (_, e) in m.journal.entries() {
        if e.state == TxnState::Prepared {
            *refs.entry((e.dst_tier, e.dst_phys)).or_insert(0) += 1;
        }
    }
    let mut doubled: Vec<(Tier, PhysPage)> = refs
        .iter()
        .filter(|&(_, &n)| n > 1)
        .map(|(&k, _)| k)
        .collect();
    doubled.sort_by_key(|&(tier, phys)| (tier == Tier::Nvm, phys.0));
    for (tier, phys) in doubled {
        v.push(AuditViolation::DoubleMappedFrame { tier, phys });
    }

    // 3. Allocated counts agree with the reference walk.
    for tier in [Tier::Dram, Tier::Nvm] {
        let referenced = refs.keys().filter(|&&(t, _)| t == tier).count() as u64;
        let allocated = m.pool(tier).allocated_pages();
        if referenced != allocated {
            v.push(AuditViolation::AllocationMismatch {
                tier,
                allocated,
                referenced,
            });
        }
    }

    // 4. Journal quiescence.
    if expect_quiescent && !m.journal.is_empty() {
        let outstanding = m.journal.entries().count() as u64;
        v.push(AuditViolation::JournalNotQuiescent { outstanding });
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use hemem_vmm::{PageId, PageSize, RegionId};

    fn machine() -> MachineCore {
        MachineCore::new(MachineConfig::small(1, 4))
    }

    fn map_one(m: &mut MachineCore) -> (RegionId, PhysPage) {
        let id = m.space.mmap(4 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let phys = m.dram_pool.alloc().expect("frame");
        m.space.region_mut(id).map_page(0, Tier::Dram, phys);
        (id, phys)
    }

    #[test]
    fn clean_machine_audits_clean() {
        let mut m = machine();
        map_one(&mut m);
        assert_eq!(audit_machine(&m, true), Vec::new());
    }

    #[test]
    fn double_mapped_frame_is_flagged() {
        let mut m = machine();
        let (id, phys) = map_one(&mut m);
        // Map a second page onto the same frame without allocating.
        m.space.region_mut(id).map_page(1, Tier::Dram, phys);
        let v = audit_machine(&m, true);
        assert!(v.contains(&AuditViolation::DoubleMappedFrame {
            tier: Tier::Dram,
            phys
        }));
        // One distinct frame referenced and one allocated, so the double
        // reference is the only violation.
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn leaked_frame_is_an_allocation_mismatch() {
        let mut m = machine();
        map_one(&mut m);
        let _leak = m.dram_pool.alloc().expect("frame"); // never mapped
        let v = audit_machine(&m, true);
        assert_eq!(
            v,
            vec![AuditViolation::AllocationMismatch {
                tier: Tier::Dram,
                allocated: 2,
                referenced: 1,
            }]
        );
    }

    #[test]
    fn prepared_journal_entry_accounts_for_its_frame() {
        let mut m = machine();
        let (id, src_phys) = map_one(&mut m);
        let dst = m.nvm_pool.alloc().expect("frame");
        let page = PageId {
            region: id,
            index: 0,
        };
        m.journal
            .prepare(0, page, Tier::Dram, src_phys, Tier::Nvm, dst);
        // Non-quiescent audit: the in-flight destination frame balances
        // the NVM pool's allocated count.
        assert_eq!(audit_machine(&m, false), Vec::new());
        // Quiescent audit: the outstanding entry itself is the violation.
        assert_eq!(
            audit_machine(&m, true),
            vec![AuditViolation::JournalNotQuiescent { outstanding: 1 }]
        );
    }
}
