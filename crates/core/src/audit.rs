//! Online invariant auditor.
//!
//! A cheap structural audit over the machine's metadata: page
//! conservation in each pool, agreement between the address space and
//! the pools (every allocated frame is referenced exactly once, by a
//! mapping or by an in-flight journal entry), no double-mapped frames,
//! and journal quiescence when the machine is idle. Violations are typed
//! values, not panics, so a long chaos or recovery run can count them in
//! telemetry and fail at the end with evidence.
//!
//! The audit walks every managed page, so its cost is linear in mapped
//! memory: cheap enough for every policy tick in tests, meant for a
//! coarse interval in benches (see `MachineConfig::audit_period`).

use std::collections::HashMap;

use hemem_vmm::{PageState, PhysPage, RegionKind, TenantId, Tier};

use crate::journal::TxnState;
use crate::machine::MachineCore;

/// One invariant violation found by the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditViolation {
    /// A pool's books do not balance: `total != free + allocated +
    /// retired`.
    PoolImbalance {
        /// The tier whose pool is imbalanced.
        tier: Tier,
        /// Total pages in the pool.
        total: u64,
        /// Pages on the free list.
        free: u64,
        /// Pages recorded as allocated.
        allocated: u64,
        /// Pages on the poisoned list.
        retired: u64,
    },
    /// One physical frame is referenced by two owners (two mappings, or
    /// a mapping and an in-flight migration destination).
    DoubleMappedFrame {
        /// The tier of the frame.
        tier: Tier,
        /// The frame referenced twice.
        phys: PhysPage,
    },
    /// A pool's allocated count disagrees with the number of frames
    /// actually referenced by mappings and journal entries.
    AllocationMismatch {
        /// The tier whose books disagree.
        tier: Tier,
        /// Pages the pool believes are allocated.
        allocated: u64,
        /// Frames actually referenced.
        referenced: u64,
    },
    /// The migration journal holds entries although the machine is
    /// supposed to be quiescent.
    JournalNotQuiescent {
        /// Outstanding journal entries.
        outstanding: u64,
    },
    /// A backend's tracker disagrees with the address space about where
    /// a page lives (reported through `TieredBackend::audit`).
    TrackerMismatch {
        /// The page in disagreement.
        page: hemem_vmm::PageId,
        /// Tier the tracker believes the page is on (`None`: untracked /
        /// not resident).
        tracked: Option<Tier>,
        /// Tier the address space maps the page on (`None`: unmapped or
        /// swapped).
        mapped: Option<Tier>,
    },
    /// One physical frame is referenced by regions (or in-flight
    /// migrations) of two different tenants — tenant isolation is broken
    /// at the frame level.
    CrossTenantFrame {
        /// The tier of the shared frame.
        tier: Tier,
        /// The frame referenced by both tenants.
        phys: PhysPage,
        /// The first tenant observed referencing the frame.
        first: TenantId,
        /// The second, different tenant referencing the same frame.
        second: TenantId,
    },
    /// A tenant holds more resident DRAM than its arbiter quota allows,
    /// beyond the grace window for in-flight demotions after a quota cut
    /// (reported through `TieredBackend::audit`).
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: TenantId,
        /// DRAM pages the tenant has resident (mapped + in-flight into
        /// DRAM).
        resident_pages: u64,
        /// The tenant's current quota, in pages.
        quota_pages: u64,
        /// Pages of transient overshoot the auditor tolerates (one
        /// reallocation step plus the in-flight migration cap).
        grace_pages: u64,
    },
    /// A backend tracker's per-tenant residency totals disagree with the
    /// address space's per-tenant frame accounting (reported through
    /// `TieredBackend::audit`).
    TenantFrameMismatch {
        /// The tenant whose books disagree.
        tenant: TenantId,
        /// The tier being counted.
        tier: Tier,
        /// Pages the address space maps for this tenant on this tier.
        space_pages: u64,
        /// Pages the tracker believes are resident there.
        tracked_pages: u64,
    },
    /// A retired tenant still holds resident frames on some tier, or
    /// in-flight journal entries — teardown reclamation leaked memory
    /// (reported through `TieredBackend::audit`).
    FrameLeakAfterRetire {
        /// The retired tenant that still owns memory.
        tenant: TenantId,
        /// The tier the leaked frames live on.
        tier: Tier,
        /// Frames (or journal entries, for the journal pseudo-count)
        /// still attributed to the tenant.
        leaked_pages: u64,
    },
    /// A retired tenant still holds a nonzero DRAM quota in the arbiter —
    /// its share was never returned to the live set (reported through
    /// `TieredBackend::audit`).
    ZombieTenantQuota {
        /// The retired tenant.
        tenant: TenantId,
        /// The quota it still holds, in pages.
        quota_pages: u64,
    },
    /// An offline tier whose evacuation reported completion still has
    /// frames referenced by mappings or in-flight journal entries.
    FramesOnOfflineTier {
        /// The offline tier.
        tier: Tier,
        /// Frames still referenced there.
        frames: u64,
    },
    /// An offline, fully-evacuated tier's pool still records allocated
    /// frames that nothing references — the evacuation leaked frames on
    /// the dead device instead of freeing them.
    EvacuationLeak {
        /// The offline tier.
        tier: Tier,
        /// Allocated-but-unreferenced frames left behind.
        allocated: u64,
    },
    /// A page holds an NVM shadow frame but its primary mapping is not
    /// DRAM-resident — the shadow should have been dropped (or consumed
    /// by a remap demotion) when the primary moved.
    StaleShadowMapped {
        /// The page with the stale shadow.
        page: hemem_vmm::PageId,
        /// Tier the primary actually lives on (`None`: unmapped or
        /// swapped out).
        primary: Option<Tier>,
    },
    /// The NVM pool's shadow-held sub-count disagrees with the number of
    /// shadow frames the address space actually records.
    ShadowFrameLeak {
        /// Shadow frames the pool believes it holds.
        pool_held: u64,
        /// Shadow frames summed over every region's shadow map.
        mapped: u64,
    },
    /// One page has two outstanding migration-journal entries — a
    /// conflicting concurrent promote+demote that recovery cannot
    /// reconcile in a defined order.
    DoubleJournaledPage {
        /// The doubly-journaled page.
        page: hemem_vmm::PageId,
        /// Outstanding entries referencing it.
        entries: u64,
    },
    /// The migration journal has counted protocol violations (duplicate
    /// prepares or retires of non-committed entries) since the last
    /// drain.
    JournalProtocolViolation {
        /// Violations the journal has counted.
        count: u64,
    },
    /// A tier's pool and the machine's health ledger disagree about how
    /// much capacity degradation has retired.
    DegradedCapacityMismatch {
        /// The tier in disagreement.
        tier: Tier,
        /// Health-retired pages the pool holds.
        pool_retired: u64,
        /// Health-retired pages the machine's ledger records.
        recorded: u64,
    },
    /// A region tracker's span tiling does not cover its region exactly:
    /// a gap, overlap, or misaligned span at `at` (reported through
    /// `TieredBackend::audit`).
    RegionCoverageGap {
        /// The region whose tiling is broken.
        region: hemem_vmm::RegionId,
        /// Page offset where the walk first disagreed with the tiling.
        at: u64,
    },
    /// A span's cached residency summary disagrees with a recount of the
    /// per-page state inside it (reported through
    /// `TieredBackend::audit`).
    RegionTemperatureMismatch {
        /// The region holding the span.
        region: hemem_vmm::RegionId,
        /// The span's head page offset.
        start: u64,
        /// DRAM pages the span caches.
        cached_dram: u64,
        /// DRAM pages actually inside per the page metadata.
        actual_dram: u64,
        /// NVM pages the span caches.
        cached_nvm: u64,
        /// NVM pages actually inside per the page metadata.
        actual_nvm: u64,
    },
    /// Split/merge bookkeeping leaked: the incremental span/coverage
    /// accounting disagrees with the span map, or spans stay pinned with
    /// no journal entry in flight to justify the pin (reported through
    /// `TieredBackend::audit`).
    SplitMergeLeak {
        /// The region with broken accounting.
        region: hemem_vmm::RegionId,
        /// Spans the incremental counter believes are live.
        live_spans: u64,
        /// Spans actually in the map.
        actual_spans: u64,
        /// Pages the incremental coverage counter believes are tiled.
        covered: u64,
        /// Pages the region actually has.
        pages: u64,
        /// Pins outstanding with an empty migration journal.
        orphan_pins: u64,
    },
    /// A managed region is stamped with a slot generation older than its
    /// tenant's current one: a mapping from a previous occupant of a
    /// recycled slot survived the teardown drain.
    StaleSlotFrame {
        /// The stale region.
        region: hemem_vmm::RegionId,
        /// The tenant slot it is attributed to.
        tenant: TenantId,
        /// Generation the region was mapped under.
        region_generation: u32,
        /// The slot's current generation.
        current_generation: u32,
    },
    /// A parked (free-list) slot still carries occupant state — tracker
    /// pages, load counters, balloon, or PEBS stream history — that
    /// would bleed into the slot's next generation (reported through
    /// `TieredBackend::audit`).
    SlotGenerationLeak {
        /// The dirty parked slot.
        tenant: TenantId,
        /// The generation of the occupant that left the state behind.
        generation: u32,
    },
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditViolation::PoolImbalance {
                tier,
                total,
                free,
                allocated,
                retired,
            } => write!(
                f,
                "{tier:?} pool imbalance: total {total} != free {free} + allocated {allocated} + retired {retired}"
            ),
            AuditViolation::DoubleMappedFrame { tier, phys } => {
                write!(f, "{tier:?} frame {phys:?} referenced twice")
            }
            AuditViolation::AllocationMismatch {
                tier,
                allocated,
                referenced,
            } => write!(
                f,
                "{tier:?} pool says {allocated} allocated but {referenced} frames are referenced"
            ),
            AuditViolation::JournalNotQuiescent { outstanding } => {
                write!(f, "journal holds {outstanding} entries at quiescence")
            }
            AuditViolation::TrackerMismatch {
                page,
                tracked,
                mapped,
            } => write!(
                f,
                "tracker places {page:?} on {tracked:?} but the space maps it on {mapped:?}"
            ),
            AuditViolation::CrossTenantFrame {
                tier,
                phys,
                first,
                second,
            } => write!(
                f,
                "{tier:?} frame {phys:?} referenced by both {first} and {second}"
            ),
            AuditViolation::QuotaExceeded {
                tenant,
                resident_pages,
                quota_pages,
                grace_pages,
            } => write!(
                f,
                "{tenant} holds {resident_pages} DRAM pages over quota {quota_pages} (+{grace_pages} grace)"
            ),
            AuditViolation::TenantFrameMismatch {
                tenant,
                tier,
                space_pages,
                tracked_pages,
            } => write!(
                f,
                "{tenant} {tier:?}: space maps {space_pages} pages but tracker holds {tracked_pages}"
            ),
            AuditViolation::FrameLeakAfterRetire {
                tenant,
                tier,
                leaked_pages,
            } => write!(
                f,
                "retired {tenant} still holds {leaked_pages} pages on {tier:?}"
            ),
            AuditViolation::ZombieTenantQuota {
                tenant,
                quota_pages,
            } => write!(
                f,
                "retired {tenant} still holds a {quota_pages}-page DRAM quota"
            ),
            AuditViolation::FramesOnOfflineTier { tier, frames } => {
                write!(f, "offline {tier:?} still holds {frames} referenced frames after evacuation")
            }
            AuditViolation::EvacuationLeak { tier, allocated } => {
                write!(f, "offline {tier:?} pool leaks {allocated} allocated frames nothing references")
            }
            AuditViolation::StaleShadowMapped { page, primary } => write!(
                f,
                "{page:?} holds an NVM shadow but its primary maps on {primary:?}"
            ),
            AuditViolation::ShadowFrameLeak { pool_held, mapped } => write!(
                f,
                "NVM pool holds {pool_held} shadow frames but regions record {mapped}"
            ),
            AuditViolation::DoubleJournaledPage { page, entries } => {
                write!(f, "{page:?} has {entries} outstanding journal entries")
            }
            AuditViolation::StaleSlotFrame {
                region,
                tenant,
                region_generation,
                current_generation,
            } => write!(
                f,
                "{region:?} of {tenant} maps generation {region_generation} but the slot is at {current_generation}"
            ),
            AuditViolation::SlotGenerationLeak { tenant, generation } => write!(
                f,
                "parked slot {tenant} still carries generation-{generation} occupant state"
            ),
            AuditViolation::JournalProtocolViolation { count } => {
                write!(f, "journal counted {count} protocol violations")
            }
            AuditViolation::DegradedCapacityMismatch {
                tier,
                pool_retired,
                recorded,
            } => write!(
                f,
                "{tier:?} pool health-retired {pool_retired} pages but the ledger records {recorded}"
            ),
            AuditViolation::RegionCoverageGap { region, at } => {
                write!(f, "{region:?} span tiling breaks at page {at}")
            }
            AuditViolation::RegionTemperatureMismatch {
                region,
                start,
                cached_dram,
                actual_dram,
                cached_nvm,
                actual_nvm,
            } => write!(
                f,
                "{region:?} span@{start} caches dram {cached_dram}/nvm {cached_nvm} but pages count dram {actual_dram}/nvm {actual_nvm}"
            ),
            AuditViolation::SplitMergeLeak {
                region,
                live_spans,
                actual_spans,
                covered,
                pages,
                orphan_pins,
            } => write!(
                f,
                "{region:?} split/merge leak: {live_spans} counted vs {actual_spans} actual spans, {covered}/{pages} pages covered, {orphan_pins} orphan pins"
            ),
        }
    }
}

impl std::error::Error for AuditViolation {}

/// Audits the machine's structural invariants; returns every violation
/// found (empty = clean). With `expect_quiescent`, outstanding journal
/// entries are also violations.
pub fn audit_machine(m: &MachineCore, expect_quiescent: bool) -> Vec<AuditViolation> {
    let mut v = Vec::new();

    // 1. Page conservation per pool, over however many tiers the machine
    // has configured.
    for &tier in m.tiers() {
        let p = m.pool(tier);
        if !p.conserved() {
            v.push(AuditViolation::PoolImbalance {
                tier,
                total: p.total_pages(),
                free: p.free_pages(),
                allocated: p.allocated_pages(),
                retired: p.retired_pages(),
            });
        }
    }

    // 2. Every pool frame referenced at most once, counting mappings and
    // in-flight migration destinations. SmallAnon regions are
    // kernel-backed and do not draw from the tiered pools.
    let mut refs: HashMap<(Tier, PhysPage), u64> = HashMap::new();
    let mut owners: HashMap<(Tier, PhysPage), TenantId> = HashMap::new();
    let mut crossed: Vec<(Tier, PhysPage, TenantId, TenantId)> = Vec::new();
    let mut note_owner = |key: (Tier, PhysPage), tenant: TenantId| match owners.entry(key) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(tenant);
        }
        std::collections::hash_map::Entry::Occupied(e) => {
            let first = *e.get();
            if first != tenant {
                crossed.push((key.0, key.1, first, tenant));
            }
        }
    };
    let mut stale_shadows: Vec<(hemem_vmm::PageId, Option<Tier>)> = Vec::new();
    let mut shadow_mapped = 0u64;
    let mut stale_slots: Vec<AuditViolation> = Vec::new();
    for region in m.space.regions() {
        if region.kind() != RegionKind::ManagedHeap {
            continue;
        }
        // Slot-generation agreement: a region must have been mapped by
        // the slot's *current* occupant. Machines without a fleet (no
        // generation bumps) stamp and expect zero, so the check is free.
        let current = m.space.tenant_generation(region.tenant());
        if region.generation() != current {
            stale_slots.push(AuditViolation::StaleSlotFrame {
                region: region.id(),
                tenant: region.tenant(),
                region_generation: region.generation(),
                current_generation: current,
            });
        }
        for i in 0..region.page_count() {
            if let PageState::Mapped { tier, phys, .. } = region.state(i) {
                *refs.entry((tier, phys)).or_insert(0) += 1;
                note_owner((tier, phys), region.tenant());
            }
        }
        // Shadow frames are the third reference class (alongside
        // mappings and in-flight destinations); a shadow's primary must
        // be DRAM-resident or the shadow is stale.
        for (i, phys) in region.shadows() {
            shadow_mapped += 1;
            *refs.entry((Tier::Nvm, phys)).or_insert(0) += 1;
            note_owner((Tier::Nvm, phys), region.tenant());
            let primary = match region.state(i) {
                PageState::Mapped { tier, .. } => Some(tier),
                _ => None,
            };
            if primary != Some(Tier::Dram) {
                stale_shadows.push((
                    hemem_vmm::PageId {
                        region: region.id(),
                        index: i,
                    },
                    primary,
                ));
            }
        }
    }
    for (page, primary) in stale_shadows {
        v.push(AuditViolation::StaleShadowMapped { page, primary });
    }
    v.extend(stale_slots);
    let pool_held = m.nvm_pool.shadow_held_pages();
    if pool_held != shadow_mapped {
        v.push(AuditViolation::ShadowFrameLeak {
            pool_held,
            mapped: shadow_mapped,
        });
    }
    let mut journaled: HashMap<hemem_vmm::PageId, u64> = HashMap::new();
    for (_, e) in m.journal.entries() {
        if e.state == TxnState::Prepared {
            *refs.entry((e.dst_tier, e.dst_phys)).or_insert(0) += 1;
            note_owner((e.dst_tier, e.dst_phys), e.tenant);
        }
        *journaled.entry(e.page).or_insert(0) += 1;
    }
    let mut doubled_pages: Vec<(hemem_vmm::PageId, u64)> =
        journaled.into_iter().filter(|&(_, n)| n > 1).collect();
    doubled_pages.sort_by_key(|&(p, _)| (p.region, p.index));
    for (page, entries) in doubled_pages {
        v.push(AuditViolation::DoubleJournaledPage { page, entries });
    }
    if m.journal.protocol_errors() > 0 {
        v.push(AuditViolation::JournalProtocolViolation {
            count: m.journal.protocol_errors(),
        });
    }
    let mut doubled: Vec<(Tier, PhysPage)> = refs
        .iter()
        .filter(|&(_, &n)| n > 1)
        .map(|(&k, _)| k)
        .collect();
    doubled.sort_by_key(|&(tier, phys)| (tier.rank(), phys.0));
    for (tier, phys) in doubled {
        v.push(AuditViolation::DoubleMappedFrame { tier, phys });
    }

    // 2b. No frame shared across tenants, counting both mappings and
    // in-flight migration destinations.
    crossed.sort_by_key(|&(tier, phys, ..)| (tier.rank(), phys.0));
    for (tier, phys, first, second) in crossed {
        v.push(AuditViolation::CrossTenantFrame {
            tier,
            phys,
            first,
            second,
        });
    }

    // 3. Allocated counts agree with the reference walk.
    for &tier in m.tiers() {
        let referenced = refs.keys().filter(|&&(t, _)| t == tier).count() as u64;
        let allocated = m.pool(tier).allocated_pages();
        if referenced != allocated {
            v.push(AuditViolation::AllocationMismatch {
                tier,
                allocated,
                referenced,
            });
        }
    }

    // 4. Journal quiescence.
    if expect_quiescent && !m.journal.is_empty() {
        let outstanding = m.journal.entries().count() as u64;
        v.push(AuditViolation::JournalNotQuiescent { outstanding });
    }

    // 5. Failure-domain invariants. A tier whose evacuation has reported
    // completion must be truly drained — nothing referencing its frames
    // and nothing allocated in its pool — and every tier's pool must
    // agree with the machine's health ledger on degraded capacity.
    for &tier in m.tiers() {
        let rank = tier.rank();
        if m.tier_health(tier) == crate::machine::TierHealth::Offline && m.health.evac_done[rank] {
            let referenced = refs.keys().filter(|&&(t, _)| t == tier).count() as u64;
            let allocated = m.pool(tier).allocated_pages();
            if referenced > 0 {
                v.push(AuditViolation::FramesOnOfflineTier {
                    tier,
                    frames: referenced,
                });
            } else if allocated > 0 {
                v.push(AuditViolation::EvacuationLeak { tier, allocated });
            }
        }
        let pool_retired = m.pool(tier).health_retired_pages();
        let recorded = m.health.health_retired[rank];
        if pool_retired != recorded {
            v.push(AuditViolation::DegradedCapacityMismatch {
                tier,
                pool_retired,
                recorded,
            });
        }
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use hemem_vmm::{PageId, PageSize, RegionId};

    fn machine() -> MachineCore {
        MachineCore::new(MachineConfig::small(1, 4))
    }

    fn map_one(m: &mut MachineCore) -> (RegionId, PhysPage) {
        let id = m
            .space
            .mmap(4 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let phys = m.dram_pool.alloc().expect("frame");
        m.space.region_mut(id).map_page(0, Tier::Dram, phys);
        (id, phys)
    }

    #[test]
    fn clean_machine_audits_clean() {
        let mut m = machine();
        map_one(&mut m);
        assert_eq!(audit_machine(&m, true), Vec::new());
    }

    #[test]
    fn double_mapped_frame_is_flagged() {
        let mut m = machine();
        let (id, phys) = map_one(&mut m);
        // Map a second page onto the same frame without allocating.
        m.space.region_mut(id).map_page(1, Tier::Dram, phys);
        let v = audit_machine(&m, true);
        assert!(v.contains(&AuditViolation::DoubleMappedFrame {
            tier: Tier::Dram,
            phys
        }));
        // One distinct frame referenced and one allocated, so the double
        // reference is the only violation.
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn leaked_frame_is_an_allocation_mismatch() {
        let mut m = machine();
        map_one(&mut m);
        let _leak = m.dram_pool.alloc().expect("frame"); // never mapped
        let v = audit_machine(&m, true);
        assert_eq!(
            v,
            vec![AuditViolation::AllocationMismatch {
                tier: Tier::Dram,
                allocated: 2,
                referenced: 1,
            }]
        );
    }

    #[test]
    fn cross_tenant_frame_is_flagged() {
        let mut m = machine();
        let (_, phys) = map_one(&mut m);
        // A second tenant's region mapped onto the same frame: both a
        // double reference and a tenant-isolation breach.
        let other = m.space.mmap_tagged(
            4 << 21,
            PageSize::Huge2M,
            RegionKind::ManagedHeap,
            TenantId(1),
        );
        m.space.region_mut(other).map_page(0, Tier::Dram, phys);
        let v = audit_machine(&m, true);
        assert!(v.contains(&AuditViolation::DoubleMappedFrame {
            tier: Tier::Dram,
            phys
        }));
        assert!(v.contains(&AuditViolation::CrossTenantFrame {
            tier: Tier::Dram,
            phys,
            first: TenantId::SOLO,
            second: TenantId(1),
        }));
    }

    #[test]
    fn clean_shadow_on_a_dram_page_audits_clean() {
        let mut m = machine();
        let (id, _) = map_one(&mut m);
        let shadow = m.nvm_pool.alloc().expect("frame");
        m.space.region_mut(id).set_shadow(0, shadow);
        m.nvm_pool.note_shadow();
        assert_eq!(audit_machine(&m, true), Vec::new());
    }

    #[test]
    fn shadow_without_a_dram_primary_is_stale() {
        let mut m = machine();
        let (id, _) = map_one(&mut m);
        // Shadow on a page that was never mapped: primary is None.
        let shadow = m.nvm_pool.alloc().expect("frame");
        m.space.region_mut(id).set_shadow(1, shadow);
        m.nvm_pool.note_shadow();
        let v = audit_machine(&m, true);
        assert!(v.contains(&AuditViolation::StaleShadowMapped {
            page: PageId {
                region: id,
                index: 1
            },
            primary: None,
        }));
    }

    #[test]
    fn shadow_count_disagreement_is_a_leak() {
        let mut m = machine();
        let (id, _) = map_one(&mut m);
        // Shadow recorded in the space but never counted by the pool.
        let shadow = m.nvm_pool.alloc().expect("frame");
        m.space.region_mut(id).set_shadow(0, shadow);
        let v = audit_machine(&m, true);
        assert!(v.contains(&AuditViolation::ShadowFrameLeak {
            pool_held: 0,
            mapped: 1,
        }));
    }

    #[test]
    fn two_outstanding_entries_for_one_page_are_flagged() {
        let mut m = machine();
        let (id, src_phys) = map_one(&mut m);
        let page = PageId {
            region: id,
            index: 0,
        };
        let d1 = m.nvm_pool.alloc().expect("frame");
        let d2 = m.nvm_pool.alloc().expect("frame");
        m.journal
            .prepare(0, page, TenantId::SOLO, Tier::Dram, src_phys, Tier::Nvm, d1);
        m.journal
            .prepare(1, page, TenantId::SOLO, Tier::Dram, src_phys, Tier::Nvm, d2);
        let v = audit_machine(&m, false);
        assert!(v.contains(&AuditViolation::DoubleJournaledPage { page, entries: 2 }));
    }

    #[test]
    fn journal_protocol_errors_surface_in_the_audit() {
        let mut m = machine();
        let (id, src_phys) = map_one(&mut m);
        let page = PageId {
            region: id,
            index: 0,
        };
        let dst = m.nvm_pool.alloc().expect("frame");
        m.journal.prepare(
            7,
            page,
            TenantId::SOLO,
            Tier::Dram,
            src_phys,
            Tier::Nvm,
            dst,
        );
        assert!(m
            .journal
            .try_prepare(
                7,
                page,
                TenantId::SOLO,
                Tier::Dram,
                src_phys,
                Tier::Nvm,
                dst,
                crate::journal::ShadowIntent::Drop,
            )
            .is_err());
        let v = audit_machine(&m, false);
        assert!(v.contains(&AuditViolation::JournalProtocolViolation { count: 1 }));
    }

    #[test]
    fn prepared_journal_entry_accounts_for_its_frame() {
        let mut m = machine();
        let (id, src_phys) = map_one(&mut m);
        let dst = m.nvm_pool.alloc().expect("frame");
        let page = PageId {
            region: id,
            index: 0,
        };
        m.journal.prepare(
            0,
            page,
            TenantId::SOLO,
            Tier::Dram,
            src_phys,
            Tier::Nvm,
            dst,
        );
        // Non-quiescent audit: the in-flight destination frame balances
        // the NVM pool's allocated count.
        assert_eq!(audit_machine(&m, false), Vec::new());
        // Quiescent audit: the outstanding entry itself is the violation.
        assert_eq!(
            audit_machine(&m, true),
            vec![AuditViolation::JournalNotQuiescent { outstanding: 1 }]
        );
    }
}
