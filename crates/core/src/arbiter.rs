//! Global DRAM arbiter for multi-tenant colocation.
//!
//! When several tenants share one machine, the fast tier is the
//! contended resource: each tenant's HeMem instance would happily grow
//! its DRAM-resident set to the watermark, and whichever tenant faults
//! first wins the pool. The arbiter owns the DRAM tier's capacity and
//! hands each tenant a *quota* — an upper bound on the DRAM pages the
//! tenant may have resident (mapped plus in-flight promotions). Each
//! tenant's policy pass then runs against its quota instead of the raw
//! pool, so placement and demotion decisions stay per-tenant while the
//! capacity split is global.
//!
//! Quotas are reallocated periodically from two per-tenant demand
//! signals, in the style of MaxMem's miss-ratio arbitration:
//!
//! * the **hot-set size** the tenant's tracker currently observes, and
//! * the **DRAM miss rate** — the fraction of the tenant's loads served
//!   from NVM since the last reallocation.
//!
//! Three policies are selectable per run ([`ArbiterPolicy`]): fixed
//! equal shares, shares proportional to hot-set size, and a greedy
//! stepper that moves one quota step per period from the tenant with the
//! lowest miss rate to the tenant with the highest. All arithmetic is
//! integer (miss rates compare cross-multiplied), reallocation order is
//! index-deterministic, and the quota sum is preserved exactly, so a
//! multi-tenant run replays byte-identically. A single-tenant arbiter
//! always assigns the whole tier to the tenant, under every policy —
//! that degenerate case is what keeps the arbitrated path byte-identical
//! to the solo path.
//!
//! Tenants are a *lifecycle*, not a constant: slots can be admitted and
//! retired mid-run ([`DramArbiter::admit`] / [`DramArbiter::retire`]),
//! and a live tenant can be ballooned down to release pages back to a
//! host reserve ([`DramArbiter::balloon`]). The quota floor is always
//! recomputed from the live tenant set, admission is rejected when the
//! floor would be unsatisfiable, and the conservation invariant extends
//! to `sum(quotas) + unassigned == total` with every retired slot at
//! zero — which is what the `ZombieTenantQuota` audit checks.
//!
//! Under fleet churn (hundreds of admit/retire events per second) the
//! lifecycle ops must not rescan the slot table. Three running
//! aggregates make them O(1) amortized: a cached live count, a
//! conservative `min_guard` (a lower bound on every live quota and
//! balloon cap) that lets [`DramArbiter::retire`] skip the floor
//! top-up scan when no survivor can be below the raised floor, and a
//! `releasable` sub-account of the host reserve where reclaimed quota
//! is banked instead of being equal-split eagerly; the next periodic
//! reallocation distributes it in one batch. Only when a survivor might
//! actually sit below the new floor (a balloon pinned it there) does
//! retire fall back to the O(n) repair scan.

use hemem_vmm::TenantId;

/// Why an [`DramArbiter::admit`] call was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The slot index is outside the arbiter's capacity.
    NoSuchSlot,
    /// The slot is already live.
    AlreadyLive,
    /// Admitting one more tenant would make the per-tenant quota floor
    /// unsatisfiable (`floor * live > total_pages`).
    FloorUnsatisfiable,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::NoSuchSlot => write!(f, "tenant slot out of range"),
            AdmitError::AlreadyLive => write!(f, "tenant already live"),
            AdmitError::FloorUnsatisfiable => {
                write!(f, "quota floor unsatisfiable for the grown live set")
            }
        }
    }
}

/// How the arbiter divides the DRAM tier among tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterPolicy {
    /// Fixed equal shares, set at startup and never moved.
    StaticShares,
    /// Shares proportional to each tenant's observed hot-set size,
    /// recomputed every reallocation period.
    ProportionalShares,
    /// MaxMem-style greedy stepper: each period, move one quota step
    /// from the tenant with the lowest DRAM miss rate to the tenant
    /// with the highest.
    GreedyMissRatio,
}

impl ArbiterPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [ArbiterPolicy; 3] = [
        ArbiterPolicy::StaticShares,
        ArbiterPolicy::ProportionalShares,
        ArbiterPolicy::GreedyMissRatio,
    ];

    /// Short stable label for CSV columns and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            ArbiterPolicy::StaticShares => "static",
            ArbiterPolicy::ProportionalShares => "proportional",
            ArbiterPolicy::GreedyMissRatio => "greedy",
        }
    }

    /// Parses a CLI label; the inverse of [`ArbiterPolicy::label`].
    pub fn parse(s: &str) -> Option<ArbiterPolicy> {
        ArbiterPolicy::ALL.into_iter().find(|p| p.label() == s)
    }
}

/// Per-tenant demand signals a reallocation reads. The manager
/// accumulates the load counters between reallocations and resets them
/// after each one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantSignal {
    /// Bytes the tenant's tracker currently considers hot.
    pub hot_bytes: u64,
    /// Loads served from DRAM since the last reallocation.
    pub dram_loads: u64,
    /// Loads served from NVM since the last reallocation — the tenant's
    /// DRAM misses.
    pub nvm_loads: u64,
}

impl TenantSignal {
    /// Miss rate as an exact rational `(numerator, denominator)`;
    /// `(0, 1)` when the tenant issued no loads. Comparing
    /// cross-multiplied keeps the arbiter free of floating point.
    fn miss_ratio(&self) -> (u128, u128) {
        let total = self.dram_loads as u128 + self.nvm_loads as u128;
        if total == 0 {
            (0, 1)
        } else {
            (self.nvm_loads as u128, total)
        }
    }
}

/// Compares two miss ratios without floats: `a > b`?
fn ratio_gt(a: (u128, u128), b: (u128, u128)) -> bool {
    a.0 * b.1 > b.0 * a.1
}

/// The global DRAM arbiter: owns the fast tier's page capacity and the
/// per-tenant quota vector. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct DramArbiter {
    policy: ArbiterPolicy,
    total_pages: u64,
    quotas: Vec<u64>,
    /// Liveness per slot: retired (or not-yet-admitted) slots hold zero
    /// quota and are skipped by reallocation.
    live: Vec<bool>,
    /// Pages held by the host reserve rather than any tenant — the
    /// destination of ballooned-out quota and the first source for
    /// admission grants.
    unassigned: u64,
    /// Per-slot quota ceiling (`u64::MAX` = uncapped). A balloon pins
    /// the cap at its target so periodic reallocation cannot regrow the
    /// tenant past it; admit/retire reset the slot's cap.
    caps: Vec<u64>,
    /// Cached `live.iter().filter(..).count()` so floor math and the
    /// lifecycle fast paths never rescan the slot table.
    live_count: usize,
    /// Conservative lower bound on every live tenant's quota *and*
    /// balloon cap (`u64::MAX` while nothing is live). Retire may skip
    /// its floor-repair scan whenever `min_guard` already clears the
    /// raised floor; staleness only ever errs low, forcing a harmless
    /// slow path, never an unsound fast path.
    min_guard: u64,
    /// Pages of `unassigned` banked by retirements and owed back to the
    /// survivors: the next periodic reallocation splits them equally
    /// (cap-respecting) instead of retire doing an O(n) split per event.
    releasable: u64,
    /// Quota moved per greedy reallocation, in pages.
    realloc_step_pages: u64,
    /// Reallocation period in simulated nanoseconds.
    realloc_period_ns: u64,
    next_realloc_ns: u64,
    reallocations: u64,
}

impl DramArbiter {
    /// Default reallocation period: 100 ms, ten policy ticks.
    pub const DEFAULT_REALLOC_PERIOD_NS: u64 = 100_000_000;

    /// Creates an arbiter over `total_pages` of DRAM split among
    /// `tenants` tenants, starting from equal shares (the first
    /// `total_pages % tenants` tenants absorb the remainder). A
    /// single-tenant arbiter holds the whole tier under every policy.
    pub fn new(policy: ArbiterPolicy, total_pages: u64, tenants: usize) -> DramArbiter {
        assert!(tenants > 0, "arbiter needs at least one tenant");
        let n = tenants as u64;
        let base = total_pages / n;
        let rem = total_pages % n;
        let quotas = (0..n).map(|i| base + u64::from(i < rem)).collect();
        DramArbiter {
            policy,
            total_pages,
            quotas,
            live: vec![true; tenants],
            unassigned: 0,
            caps: vec![u64::MAX; tenants],
            live_count: tenants,
            // Equal split: the smallest share is the base (no remainder).
            min_guard: base,
            releasable: 0,
            realloc_step_pages: (total_pages / 64).max(1),
            realloc_period_ns: DramArbiter::DEFAULT_REALLOC_PERIOD_NS,
            next_realloc_ns: DramArbiter::DEFAULT_REALLOC_PERIOD_NS,
            reallocations: 0,
        }
    }

    /// Creates an arbiter with `capacity` tenant slots, none of them
    /// live: every page sits in the host reserve until slots are
    /// admitted one by one. This is the entry point for churny runs
    /// where tenants arrive on a schedule rather than at construction.
    pub fn deferred(policy: ArbiterPolicy, total_pages: u64, capacity: usize) -> DramArbiter {
        assert!(capacity > 0, "arbiter needs at least one tenant slot");
        DramArbiter {
            policy,
            total_pages,
            quotas: vec![0; capacity],
            live: vec![false; capacity],
            unassigned: total_pages,
            caps: vec![u64::MAX; capacity],
            live_count: 0,
            min_guard: u64::MAX,
            releasable: 0,
            realloc_step_pages: (total_pages / 64).max(1),
            realloc_period_ns: DramArbiter::DEFAULT_REALLOC_PERIOD_NS,
            next_realloc_ns: DramArbiter::DEFAULT_REALLOC_PERIOD_NS,
            reallocations: 0,
        }
    }

    /// The policy this arbiter reallocates with.
    pub fn policy(&self) -> ArbiterPolicy {
        self.policy
    }

    /// Total DRAM pages under arbitration.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Number of tenant slots (live or retired) the arbiter tracks.
    pub fn tenants(&self) -> usize {
        self.quotas.len()
    }

    /// Number of currently live tenants (cached; O(1)).
    pub fn live_tenants(&self) -> usize {
        self.live_count
    }

    /// Pages the live set holds above its collective floor — derived in
    /// O(1) from conservation (`sum(live quotas) == total - unassigned`)
    /// and the cached live count, this is the running above-floor sum
    /// the admission shave can draw from.
    pub fn above_floor_pages(&self) -> u64 {
        (self.total_pages - self.unassigned)
            .saturating_sub(self.live_count as u64 * self.floor_pages())
    }

    /// Pages of the host reserve banked by retirements and pending
    /// redistribution at the next reallocation period.
    pub fn releasable_pages(&self) -> u64 {
        self.releasable
    }

    /// True while tenant `t` is live (admitted and not retired).
    pub fn is_live(&self, t: TenantId) -> bool {
        self.live.get(t.0 as usize).copied().unwrap_or(false)
    }

    /// Pages currently held by the host reserve.
    pub fn unassigned_pages(&self) -> u64 {
        self.unassigned
    }

    /// The per-tenant quota floor, recomputed from the *live* tenant
    /// set: an eighth of an equal share, never below one page. With
    /// every constructed slot live this equals the floor the arbiter
    /// froze at construction before lifecycle support, so steady-state
    /// runs replay byte-identically.
    pub fn floor_pages(&self) -> u64 {
        let n = (self.live_tenants() as u64).max(1);
        (self.total_pages / (8 * n)).max(1)
    }

    /// Tenant `t`'s current DRAM quota, in pages.
    pub fn quota_pages(&self, t: TenantId) -> u64 {
        self.quotas[t.0 as usize]
    }

    /// The full quota vector, indexed by tenant.
    pub fn quotas(&self) -> &[u64] {
        &self.quotas
    }

    /// Pages moved per greedy reallocation step.
    pub fn realloc_step_pages(&self) -> u64 {
        self.realloc_step_pages
    }

    /// Overrides the greedy reallocation step.
    pub fn set_realloc_step_pages(&mut self, pages: u64) {
        self.realloc_step_pages = pages.max(1);
    }

    /// Overrides the reallocation period (simulated nanoseconds).
    pub fn set_realloc_period_ns(&mut self, ns: u64) {
        self.realloc_period_ns = ns.max(1);
        self.next_realloc_ns = self.realloc_period_ns;
    }

    /// Reallocations performed so far.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// True while the quota vector plus the host reserve still sums to
    /// the tier's capacity and every retired slot holds zero quota —
    /// the arbiter's conservation invariant, checked by the audit. Also
    /// validates the O(1) lifecycle aggregates: the cached live count,
    /// the releasable sub-account (never exceeds the reserve), and the
    /// min-guard's soundness (a true lower bound on every live quota
    /// and cap, so the retire fast path can never skip a needed repair).
    pub fn conserved(&self) -> bool {
        self.quotas.iter().sum::<u64>() + self.unassigned == self.total_pages
            && self
                .quotas
                .iter()
                .zip(&self.live)
                .all(|(q, l)| *l || *q == 0)
            && self.live_count == self.live.iter().filter(|l| **l).count()
            && self.releasable <= self.unassigned
            && self
                .quotas
                .iter()
                .zip(&self.caps)
                .zip(&self.live)
                .all(|((q, c), l)| !*l || (self.min_guard <= *q && self.min_guard <= *c))
    }

    /// Re-clamps the releasable sub-account after something else drew
    /// from the host reserve (admission grants, floor repairs, balloon
    /// grows spend reserve pages releasable may have been backing).
    fn clamp_releasable(&mut self) {
        self.releasable = self.releasable.min(self.unassigned);
    }

    /// Admits tenant slot `t` into the live set, returning its granted
    /// quota. The grant targets an equal share of the tier, drawn from
    /// the host reserve first and then by shaving live tenants toward
    /// the recomputed floor in index order. Admission is rejected when
    /// the grown live set could not all sit at the floor.
    pub fn admit(&mut self, t: TenantId) -> Result<u64, AdmitError> {
        let i = t.0 as usize;
        if i >= self.quotas.len() {
            return Err(AdmitError::NoSuchSlot);
        }
        if self.live[i] {
            return Err(AdmitError::AlreadyLive);
        }
        let n_new = self.live_count as u64 + 1;
        let floor = (self.total_pages / (8 * n_new)).max(1);
        match floor.checked_mul(n_new) {
            Some(need) if need <= self.total_pages => {}
            _ => return Err(AdmitError::FloorUnsatisfiable),
        }
        debug_assert_eq!(self.quotas[i], 0, "retired slot held quota");
        let want = self.total_pages / n_new;
        let mut grant = self.unassigned.min(want.max(floor));
        self.unassigned -= grant;
        self.clamp_releasable();
        // The reserve alone may not reach the floor; shave live tenants
        // down toward the floor, lowest index first, stopping as soon as
        // the grant is covered. The admission check above guarantees the
        // loop reaches the floor; in the common fleet case the reserve
        // covers the grant and the loop never runs, keeping admit O(1).
        if grant < floor {
            let mut need = floor - grant;
            for (q, l) in self.quotas.iter_mut().zip(&self.live) {
                if need == 0 {
                    break;
                }
                if !*l {
                    continue;
                }
                let cut = q.saturating_sub(floor).min(need);
                *q -= cut;
                grant += cut;
                need -= cut;
            }
            assert_eq!(need, 0, "admission check let an unsatisfiable join in");
            // Donors were shaved toward (never below) the floor.
            self.min_guard = self.min_guard.min(floor);
        }
        self.quotas[i] = grant;
        self.live[i] = true;
        self.live_count += 1;
        self.caps[i] = u64::MAX;
        self.min_guard = self.min_guard.min(grant);
        debug_assert!(self.conserved(), "admit broke conservation");
        Ok(grant)
    }

    /// Retires tenant `t`: the reclaimed quota is banked in the host
    /// reserve's releasable sub-account and handed back to the
    /// survivors in one equal (cap-respecting) batch at the next
    /// reallocation period, rather than equal-split eagerly per event.
    /// The live-set shrink raises the floor; when the running
    /// `min_guard` already clears the new floor — the common fleet-churn
    /// case — no survivor can be below it and retire is O(1). Only when
    /// a balloon may have pinned a survivor (or its cap) under the new
    /// floor does retire run the O(n) repair scan that lifts every
    /// straggler (and its cap) to the floor, drawing from the reclaimed
    /// pool and then the reserve. Returns the reclaimed quota.
    /// Idempotent on already-retired slots.
    pub fn retire(&mut self, t: TenantId) -> u64 {
        let i = t.0 as usize;
        if i >= self.quotas.len() || !self.live[i] {
            return 0;
        }
        let reclaimed = std::mem::take(&mut self.quotas[i]);
        self.live[i] = false;
        self.live_count -= 1;
        self.caps[i] = u64::MAX;
        if self.live_count == 0 {
            // No survivors: everything returns to the plain reserve.
            self.unassigned += reclaimed;
            self.min_guard = u64::MAX;
            debug_assert!(self.conserved(), "retire broke conservation");
            return reclaimed;
        }
        let floor = self.floor_pages();
        if self.min_guard >= floor {
            // Fast path: every live quota and cap already sits at or
            // above the raised floor; bank the reclaim for the next
            // periodic redistribution.
            self.unassigned += reclaimed;
            self.releasable += reclaimed;
        } else {
            // Slow path: a balloon may hold a survivor below the new
            // floor. Repair floors and caps in one scan and recompute
            // an exact min-guard while we are here.
            let mut pool = reclaimed;
            let mut guard = u64::MAX;
            for j in 0..self.quotas.len() {
                if !self.live[j] {
                    continue;
                }
                // The floor is the tenant's guarantee; a balloon cap
                // below it no longer binds.
                self.caps[j] = self.caps[j].max(floor);
                if self.quotas[j] < floor {
                    let need = floor - self.quotas[j];
                    let take = need.min(pool);
                    pool -= take;
                    let pull = (need - take).min(self.unassigned);
                    self.unassigned -= pull;
                    self.quotas[j] += take + pull;
                }
                guard = guard.min(self.quotas[j]).min(self.caps[j]);
            }
            self.min_guard = guard;
            self.unassigned += pool;
            self.releasable += pool;
            self.clamp_releasable();
        }
        debug_assert!(self.conserved(), "retire broke conservation");
        reclaimed
    }

    /// Splits the releasable reserve equally among the live tenants
    /// (remainder to the lowest indices), respecting balloon caps;
    /// whatever no one can absorb stays in the plain reserve. Runs at
    /// most once per reallocation period, batching the per-retire
    /// splits the old eager path did per event. Returns `true` when any
    /// quota moved.
    fn distribute_releasable(&mut self) -> bool {
        if self.releasable == 0 || self.live_count == 0 {
            return false;
        }
        let pool = std::mem::take(&mut self.releasable);
        let n = self.live_count as u64;
        let base = pool / n;
        let rem = pool % n;
        let mut given = 0u64;
        let mut k = 0u64;
        for j in 0..self.quotas.len() {
            if !self.live[j] {
                continue;
            }
            let give = (base + u64::from(k < rem)).min(self.caps[j].saturating_sub(self.quotas[j]));
            self.quotas[j] += give;
            given += give;
            k += 1;
        }
        // Cap-pinned survivors cannot absorb their share; the remainder
        // stays in the plain host reserve.
        self.unassigned -= given;
        debug_assert!(self.conserved(), "releasable split broke conservation");
        given > 0
    }

    /// Balloons live tenant `t` toward `target_pages`: a shrink releases
    /// the difference to the host reserve, a grow draws from whatever
    /// the reserve holds. The target is clamped to the live-set floor so
    /// ballooning can never starve the tenant below its guarantee, and
    /// it pins the slot's quota cap so periodic reallocation cannot
    /// quietly regrow the tenant past it ([`DramArbiter::unballoon`]
    /// lifts the cap). Returns the quota actually in effect afterwards.
    pub fn balloon(&mut self, t: TenantId, target_pages: u64) -> u64 {
        let i = t.0 as usize;
        if i >= self.quotas.len() || !self.live[i] {
            return 0;
        }
        let target = target_pages.max(self.floor_pages());
        let q = self.quotas[i];
        if target < q {
            self.unassigned += q - target;
            self.quotas[i] = target;
        } else if target > q {
            let take = (target - q).min(self.unassigned);
            self.unassigned -= take;
            self.clamp_releasable();
            self.quotas[i] += take;
        }
        self.caps[i] = if target_pages == u64::MAX {
            u64::MAX
        } else {
            target
        };
        // The new quota and pinned cap both bound the guard from below.
        self.min_guard = self.min_guard.min(self.quotas[i]).min(self.caps[i]);
        debug_assert!(self.conserved(), "balloon broke conservation");
        self.quotas[i]
    }

    /// Lifts tenant `t`'s balloon cap without touching its quota; the
    /// next reallocation may grow it again.
    pub fn unballoon(&mut self, t: TenantId) {
        if let Some(cap) = self.caps.get_mut(t.0 as usize) {
            *cap = u64::MAX;
        }
    }

    /// Tenant `t`'s quota ceiling (`u64::MAX` when uncapped).
    pub fn quota_cap(&self, t: TenantId) -> u64 {
        self.caps[t.0 as usize]
    }

    /// Tenant `t`'s share of a global per-period quantity (migration
    /// byte budget, in-flight page cap, watermark), proportional to its
    /// quota. A single-tenant arbiter returns `global` exactly, which
    /// keeps the solo arbitrated path byte-identical to the unarbitrated
    /// one.
    pub fn share_of(&self, t: TenantId, global: u64) -> u64 {
        if self.quotas.len() == 1 {
            return global;
        }
        (global as u128 * self.quota_pages(t) as u128 / self.total_pages.max(1) as u128) as u64
    }

    /// Runs a reallocation if the period elapsed. Returns `true` when
    /// quotas may have moved. `signals` is indexed by tenant and must
    /// cover every tenant. Quota banked by retirements since the last
    /// period is redistributed here first (under every policy — the old
    /// eager per-retire split also ran under static shares), then the
    /// demand-driven policy runs.
    pub fn maybe_realloc(&mut self, now_ns: u64, signals: &[TenantSignal]) -> bool {
        if now_ns < self.next_realloc_ns {
            return false;
        }
        while self.next_realloc_ns <= now_ns {
            self.next_realloc_ns += self.realloc_period_ns;
        }
        let released = self.distribute_releasable();
        if self.live_count < 2 || self.policy == ArbiterPolicy::StaticShares {
            return released;
        }
        assert_eq!(signals.len(), self.quotas.len(), "one signal per slot");
        match self.policy {
            ArbiterPolicy::StaticShares => unreachable!(),
            ArbiterPolicy::ProportionalShares => self.realloc_proportional(signals),
            ArbiterPolicy::GreedyMissRatio => self.realloc_greedy(signals),
        }
        self.reallocations += 1;
        debug_assert!(self.conserved(), "reallocation changed the quota sum");
        true
    }

    /// Quota proportional to hot-set size, above a common floor. Integer
    /// division remainders go to the lowest-indexed live tenants, so the
    /// sum is preserved exactly and the split is deterministic. Only the
    /// live set participates; the host reserve is never spent here. The
    /// floor is recomputed from the live count and subtracted with
    /// saturating arithmetic, so a live set churned down to one tenant
    /// cannot underflow `spendable`.
    fn realloc_proportional(&mut self, signals: &[TenantSignal]) {
        let live: Vec<usize> = (0..self.quotas.len()).filter(|&i| self.live[i]).collect();
        let n = live.len() as u64;
        let assignable = self.total_pages - self.unassigned;
        let floor = self.floor_pages().min(assignable / n.max(1));
        let spendable = assignable.saturating_sub(floor * n);
        // +1 keeps the weights non-degenerate when every tenant is cold.
        let weights: Vec<u128> = live
            .iter()
            .map(|&i| signals[i].hot_bytes as u128 + 1)
            .collect();
        let sum: u128 = weights.iter().sum();
        let mut acc = 0u64;
        for (&i, w) in live.iter().zip(&weights) {
            self.quotas[i] = floor + (spendable as u128 * w / sum) as u64;
            acc += self.quotas[i];
        }
        let mut left = assignable - acc;
        let mut i = 0usize;
        let n = live.len();
        while left > 0 {
            self.quotas[live[i % n]] += 1;
            left -= 1;
            i += 1;
        }
        self.apply_caps(&live);
        // Every live quota was rebuilt at or above the floor (and every
        // live cap already clears it), so the floor is the tight sound
        // guard after a full redistribution.
        self.min_guard = floor;
    }

    /// Clamps every live quota to its balloon cap, redistributing the
    /// excess round-robin to live tenants with cap headroom; whatever no
    /// one can absorb goes to the host reserve. A no-op while every cap
    /// is `u64::MAX`, which keeps cap-free runs byte-identical.
    fn apply_caps(&mut self, live: &[usize]) {
        let mut excess = 0u64;
        for &i in live {
            if self.quotas[i] > self.caps[i] {
                excess += self.quotas[i] - self.caps[i];
                self.quotas[i] = self.caps[i];
            }
        }
        while excess > 0 {
            let mut moved = false;
            for &i in live {
                if excess == 0 {
                    break;
                }
                if self.quotas[i] < self.caps[i] {
                    self.quotas[i] += 1;
                    excess -= 1;
                    moved = true;
                }
            }
            if !moved {
                self.unassigned += excess;
                break;
            }
        }
    }

    /// Moves one quota step from the lowest-miss-rate live tenant to the
    /// highest, if the gap is material (≥ 1/64). Ties break toward the
    /// lowest index, so the step is deterministic. The floor protecting
    /// the donor is recomputed from the live set.
    fn realloc_greedy(&mut self, signals: &[TenantSignal]) {
        let live: Vec<usize> = (0..self.quotas.len()).filter(|&i| self.live[i]).collect();
        let ratios: Vec<(u128, u128)> = live.iter().map(|&i| signals[i].miss_ratio()).collect();
        let mut hi = 0usize;
        let mut lo = 0usize;
        for i in 1..ratios.len() {
            if ratio_gt(ratios[i], ratios[hi]) {
                hi = i;
            }
            if ratio_gt(ratios[lo], ratios[i]) {
                lo = i;
            }
        }
        if hi == lo {
            return;
        }
        // Material gap: miss(hi) - miss(lo) >= 1/64, cross-multiplied.
        let (hn, hd) = ratios[hi];
        let (ln, ld) = ratios[lo];
        if 64 * (hn * ld).saturating_sub(ln * hd) < hd * ld {
            return;
        }
        let floor = self.floor_pages();
        let step = self
            .realloc_step_pages
            .min(self.quotas[live[lo]].saturating_sub(floor))
            // A ballooned winner cannot grow past its cap.
            .min(self.caps[live[hi]].saturating_sub(self.quotas[live[hi]]));
        self.quotas[live[lo]] -= step;
        self.quotas[live[hi]] += step;
        self.min_guard = self.min_guard.min(self.quotas[live[lo]]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(hot_bytes: u64) -> TenantSignal {
        TenantSignal {
            hot_bytes,
            ..TenantSignal::default()
        }
    }

    fn misses(dram: u64, nvm: u64) -> TenantSignal {
        TenantSignal {
            hot_bytes: 0,
            dram_loads: dram,
            nvm_loads: nvm,
        }
    }

    #[test]
    fn single_tenant_owns_the_whole_tier_under_every_policy() {
        for policy in ArbiterPolicy::ALL {
            let mut a = DramArbiter::new(policy, 512, 1);
            assert_eq!(a.quota_pages(TenantId::SOLO), 512);
            assert_eq!(a.share_of(TenantId::SOLO, 123_457), 123_457);
            // Reallocation never moves a solo tenant's quota.
            for tick in 1..=20u64 {
                a.maybe_realloc(tick * 100_000_000, &[misses(1, 1_000)]);
            }
            assert_eq!(a.quota_pages(TenantId::SOLO), 512);
            assert!(a.conserved());
        }
    }

    #[test]
    fn equal_split_distributes_the_remainder_deterministically() {
        let a = DramArbiter::new(ArbiterPolicy::StaticShares, 10, 3);
        assert_eq!(a.quotas(), &[4, 3, 3]);
        assert!(a.conserved());
    }

    #[test]
    fn static_shares_never_move() {
        let mut a = DramArbiter::new(ArbiterPolicy::StaticShares, 512, 2);
        let before = a.quotas().to_vec();
        let moved = a.maybe_realloc(1_000_000_000, &[misses(0, 1_000), misses(1_000, 0)]);
        assert!(!moved);
        assert_eq!(a.quotas(), &before[..]);
    }

    #[test]
    fn proportional_shares_follow_hot_set_size() {
        let mut a = DramArbiter::new(ArbiterPolicy::ProportionalShares, 512, 2);
        a.maybe_realloc(100_000_000, &[hot(3 << 30), hot(1 << 30)]);
        assert!(a.conserved());
        assert!(
            a.quota_pages(TenantId(0)) > a.quota_pages(TenantId(1)),
            "hotter tenant gets the larger share: {:?}",
            a.quotas()
        );
        // Neither tenant falls below the floor.
        assert!(a.quota_pages(TenantId(1)) >= 512 / 16);
    }

    #[test]
    fn greedy_moves_quota_toward_the_missing_tenant() {
        let mut a = DramArbiter::new(ArbiterPolicy::GreedyMissRatio, 512, 2);
        let before = a.quota_pages(TenantId(0));
        // Tenant 0 misses half its loads; tenant 1 misses none.
        a.maybe_realloc(100_000_000, &[misses(500, 500), misses(1_000, 0)]);
        assert!(a.conserved());
        assert_eq!(a.quota_pages(TenantId(0)), before + a.realloc_step_pages());
        // A negligible gap does not move quota.
        let held = a.quotas().to_vec();
        a.maybe_realloc(200_000_000, &[misses(10_000, 1), misses(10_000, 0)]);
        assert_eq!(a.quotas(), &held[..]);
    }

    #[test]
    fn greedy_respects_the_quota_floor() {
        let mut a = DramArbiter::new(ArbiterPolicy::GreedyMissRatio, 512, 2);
        a.set_realloc_step_pages(1 << 20); // absurdly large step
        a.maybe_realloc(100_000_000, &[misses(0, 1_000), misses(1_000, 0)]);
        assert!(a.conserved());
        assert!(a.quota_pages(TenantId(1)) >= 512 / 16);
    }

    #[test]
    fn realloc_fires_once_per_period() {
        let mut a = DramArbiter::new(ArbiterPolicy::GreedyMissRatio, 512, 2);
        let s = [misses(0, 1_000), misses(1_000, 0)];
        assert!(!a.maybe_realloc(50_000_000, &s), "period not elapsed");
        assert!(a.maybe_realloc(100_000_000, &s));
        assert!(!a.maybe_realloc(150_000_000, &s), "already fired");
        assert!(a.maybe_realloc(1_000_000_000, &s), "late tick catches up");
        assert_eq!(a.reallocations(), 2);
    }

    #[test]
    fn share_of_is_quota_proportional_for_multi_tenant() {
        let a = DramArbiter::new(ArbiterPolicy::StaticShares, 512, 2);
        assert_eq!(a.share_of(TenantId(0), 10_000_000_000), 5_000_000_000);
        assert_eq!(a.share_of(TenantId(1), 10_000_000_000), 5_000_000_000);
    }

    #[test]
    fn retire_to_one_tenant_does_not_underflow_proportional() {
        // Regression: the floor used to be frozen at construction, so
        // shrinking the live set to 1 made `total - floor * n`
        // computations fragile. Retire now banks the reclaim in the
        // releasable reserve (O(1) fast path — every survivor already
        // clears the raised floor) and the next reallocation period
        // hands the survivor everything in one batch.
        let mut a = DramArbiter::new(ArbiterPolicy::ProportionalShares, 512, 4);
        for t in 1..4 {
            a.retire(TenantId(t));
        }
        assert_eq!(a.live_tenants(), 1);
        assert_eq!(a.quota_pages(TenantId(0)), 128, "split is deferred");
        assert_eq!(a.releasable_pages(), 384);
        assert!(a.conserved());
        // The periodic reallocation performs the deferred split even
        // though live < 2 short-circuits the demand policy.
        assert!(a.maybe_realloc(100_000_000, &[hot(1); 4]));
        assert_eq!(a.quota_pages(TenantId(0)), 512);
        assert_eq!(a.releasable_pages(), 0);
        assert!(a.conserved());
    }

    #[test]
    fn deferred_split_respects_balloon_caps() {
        // Three live tenants, one capped: the capped slot's share of a
        // retiree's quota cannot regrow it past the cap, and whatever
        // it cannot absorb stays in the host reserve.
        let mut a = DramArbiter::new(ArbiterPolicy::StaticShares, 512, 4);
        a.balloon(TenantId(0), 100);
        assert_eq!(a.quota_pages(TenantId(0)), 100);
        let reclaimed = a.retire(TenantId(3));
        assert_eq!(reclaimed, 128);
        assert!(a.conserved());
        a.maybe_realloc(100_000_000, &[TenantSignal::default(); 4]);
        assert_eq!(a.quota_pages(TenantId(0)), 100, "cap holds");
        assert!(a.conserved());
        // The uncapped survivors absorbed their shares.
        assert!(a.quota_pages(TenantId(1)) > 128);
        assert!(a.quota_pages(TenantId(2)) > 128);
    }

    #[test]
    fn retire_repairs_a_balloon_pinned_survivor_below_the_raised_floor() {
        // Slow-path regression: tenant 1 balloons to the 4-live floor
        // (16 pages); retiring two tenants raises the floor to 32, so
        // the fast path must not fire and the repair scan must lift
        // both the quota and the pinned cap to the new floor.
        let mut a = DramArbiter::new(ArbiterPolicy::GreedyMissRatio, 512, 4);
        let floor4 = a.floor_pages();
        assert_eq!(floor4, 16);
        a.balloon(TenantId(1), 0); // clamps at the floor, pins the cap
        assert_eq!(a.quota_pages(TenantId(1)), 16);
        a.retire(TenantId(2));
        a.retire(TenantId(3));
        let floor2 = a.floor_pages();
        assert_eq!(floor2, 32);
        assert!(a.quota_pages(TenantId(1)) >= floor2, "floor repaired");
        assert!(a.quota_cap(TenantId(1)) >= floor2, "cap lifted");
        assert!(a.conserved());
    }

    #[test]
    fn above_floor_sum_tracks_the_live_set() {
        let mut a = DramArbiter::new(ArbiterPolicy::StaticShares, 512, 4);
        assert_eq!(a.above_floor_pages(), 512 - 4 * 16);
        a.retire(TenantId(3));
        // The reclaim sits in the reserve until the next period; the
        // floor rose to 512 / 24 = 21 for the three survivors.
        assert_eq!(a.above_floor_pages(), 384 - 3 * 21);
        assert!(a.conserved());
    }

    #[test]
    fn admit_retire_at_max_capacity_stays_conserved() {
        // Regression (satellite 1), n = max: fill every slot of a tiny
        // tier where floors bind, then churn it.
        let mut a = DramArbiter::deferred(ArbiterPolicy::ProportionalShares, 64, 8);
        for t in 0..8 {
            a.admit(TenantId(t)).expect("floor is satisfiable");
        }
        assert_eq!(a.live_tenants(), 8);
        assert!(a.conserved());
        assert!(a.maybe_realloc(100_000_000, &[hot(1 << 20); 8]));
        assert!(a.conserved());
        let floor = a.floor_pages();
        for t in 0..8 {
            assert!(a.quota_pages(TenantId(t)) >= floor);
        }
        for t in 0..8 {
            a.retire(TenantId(t));
            assert!(a.conserved());
            assert_eq!(a.quota_pages(TenantId(t)), 0);
        }
        assert_eq!(a.unassigned_pages(), 64);
    }

    #[test]
    fn admission_control_rejects_unsatisfiable_floor() {
        // 4 pages cannot give 5 tenants a one-page floor each.
        let mut a = DramArbiter::deferred(ArbiterPolicy::StaticShares, 4, 6);
        for t in 0..4 {
            assert!(a.admit(TenantId(t)).is_ok());
        }
        assert_eq!(a.admit(TenantId(4)), Err(AdmitError::FloorUnsatisfiable));
        assert_eq!(a.admit(TenantId(2)), Err(AdmitError::AlreadyLive));
        assert_eq!(a.admit(TenantId(9)), Err(AdmitError::NoSuchSlot));
        assert!(a.conserved());
    }

    #[test]
    fn admit_shaves_live_tenants_when_the_reserve_is_empty() {
        let a = DramArbiter::new(ArbiterPolicy::GreedyMissRatio, 512, 2);
        assert_eq!(a.unassigned_pages(), 0);
        // Grow the slot table by retiring nobody: build a deferred one.
        let mut b = DramArbiter::deferred(ArbiterPolicy::GreedyMissRatio, 512, 3);
        b.admit(TenantId(0)).unwrap();
        b.admit(TenantId(1)).unwrap();
        // Balloon tenant 0 up to soak the whole reserve.
        b.balloon(TenantId(0), u64::MAX);
        assert_eq!(b.unassigned_pages(), 0);
        let granted = b.admit(TenantId(2)).unwrap();
        assert!(granted >= b.floor_pages(), "grant sits at or above floor");
        assert!(b.conserved());
        drop(a);
    }

    #[test]
    fn balloon_clamps_at_the_floor_and_returns_pages_to_the_reserve() {
        let mut a = DramArbiter::new(ArbiterPolicy::StaticShares, 512, 2);
        let floor = a.floor_pages();
        let after = a.balloon(TenantId(1), 0);
        assert_eq!(after, floor, "shrink clamps at the live-set floor");
        assert_eq!(a.unassigned_pages(), 256 - floor);
        assert!(a.conserved());
        // Growing back draws from the reserve.
        let regrown = a.balloon(TenantId(1), 256);
        assert_eq!(regrown, 256);
        assert_eq!(a.unassigned_pages(), 0);
        assert!(a.conserved());
    }

    #[test]
    fn realloc_cannot_regrow_a_ballooned_tenant_past_its_cap() {
        let mut a = DramArbiter::new(ArbiterPolicy::ProportionalShares, 512, 2);
        let capped = a.balloon(TenantId(0), 100);
        assert_eq!(capped, 100);
        assert_eq!(a.quota_cap(TenantId(0)), 100);
        // Tenant 0 looks far hotter, but the cap holds.
        a.maybe_realloc(100_000_000, &[hot(8 << 30), hot(1 << 20)]);
        assert!(a.quota_pages(TenantId(0)) <= 100, "{:?}", a.quotas());
        assert!(a.conserved());
        // Greedy, too: a capped winner takes no step beyond the cap.
        let mut g = DramArbiter::new(ArbiterPolicy::GreedyMissRatio, 512, 2);
        g.balloon(TenantId(0), 200);
        g.maybe_realloc(100_000_000, &[misses(0, 1_000), misses(1_000, 0)]);
        assert!(g.quota_pages(TenantId(0)) <= 200);
        assert!(g.conserved());
        // Lifting the cap restores mobility.
        a.unballoon(TenantId(0));
        a.maybe_realloc(200_000_000, &[hot(8 << 30), hot(1 << 20)]);
        assert!(a.quota_pages(TenantId(0)) > 100);
        assert!(a.conserved());
    }

    #[test]
    fn retired_tenants_hold_zero_quota_and_zero_share() {
        let mut a = DramArbiter::new(ArbiterPolicy::GreedyMissRatio, 512, 3);
        a.retire(TenantId(1));
        assert!(!a.is_live(TenantId(1)));
        assert_eq!(a.quota_pages(TenantId(1)), 0);
        assert_eq!(a.share_of(TenantId(1), 1_000_000), 0);
        // Greedy realloc over the survivors never resurrects the slot.
        a.maybe_realloc(
            100_000_000,
            &[misses(0, 1_000), misses(0, 0), misses(1_000, 0)],
        );
        assert_eq!(a.quota_pages(TenantId(1)), 0);
        assert!(a.conserved());
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in ArbiterPolicy::ALL {
            assert_eq!(ArbiterPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(ArbiterPolicy::parse("bogus"), None);
    }
}
