//! Global DRAM arbiter for multi-tenant colocation.
//!
//! When several tenants share one machine, the fast tier is the
//! contended resource: each tenant's HeMem instance would happily grow
//! its DRAM-resident set to the watermark, and whichever tenant faults
//! first wins the pool. The arbiter owns the DRAM tier's capacity and
//! hands each tenant a *quota* — an upper bound on the DRAM pages the
//! tenant may have resident (mapped plus in-flight promotions). Each
//! tenant's policy pass then runs against its quota instead of the raw
//! pool, so placement and demotion decisions stay per-tenant while the
//! capacity split is global.
//!
//! Quotas are reallocated periodically from two per-tenant demand
//! signals, in the style of MaxMem's miss-ratio arbitration:
//!
//! * the **hot-set size** the tenant's tracker currently observes, and
//! * the **DRAM miss rate** — the fraction of the tenant's loads served
//!   from NVM since the last reallocation.
//!
//! Three policies are selectable per run ([`ArbiterPolicy`]): fixed
//! equal shares, shares proportional to hot-set size, and a greedy
//! stepper that moves one quota step per period from the tenant with the
//! lowest miss rate to the tenant with the highest. All arithmetic is
//! integer (miss rates compare cross-multiplied), reallocation order is
//! index-deterministic, and the quota sum is preserved exactly, so a
//! multi-tenant run replays byte-identically. A single-tenant arbiter
//! always assigns the whole tier to the tenant, under every policy —
//! that degenerate case is what keeps the arbitrated path byte-identical
//! to the solo path.

use hemem_vmm::TenantId;

/// How the arbiter divides the DRAM tier among tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterPolicy {
    /// Fixed equal shares, set at startup and never moved.
    StaticShares,
    /// Shares proportional to each tenant's observed hot-set size,
    /// recomputed every reallocation period.
    ProportionalShares,
    /// MaxMem-style greedy stepper: each period, move one quota step
    /// from the tenant with the lowest DRAM miss rate to the tenant
    /// with the highest.
    GreedyMissRatio,
}

impl ArbiterPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [ArbiterPolicy; 3] = [
        ArbiterPolicy::StaticShares,
        ArbiterPolicy::ProportionalShares,
        ArbiterPolicy::GreedyMissRatio,
    ];

    /// Short stable label for CSV columns and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            ArbiterPolicy::StaticShares => "static",
            ArbiterPolicy::ProportionalShares => "proportional",
            ArbiterPolicy::GreedyMissRatio => "greedy",
        }
    }

    /// Parses a CLI label; the inverse of [`ArbiterPolicy::label`].
    pub fn parse(s: &str) -> Option<ArbiterPolicy> {
        ArbiterPolicy::ALL.into_iter().find(|p| p.label() == s)
    }
}

/// Per-tenant demand signals a reallocation reads. The manager
/// accumulates the load counters between reallocations and resets them
/// after each one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantSignal {
    /// Bytes the tenant's tracker currently considers hot.
    pub hot_bytes: u64,
    /// Loads served from DRAM since the last reallocation.
    pub dram_loads: u64,
    /// Loads served from NVM since the last reallocation — the tenant's
    /// DRAM misses.
    pub nvm_loads: u64,
}

impl TenantSignal {
    /// Miss rate as an exact rational `(numerator, denominator)`;
    /// `(0, 1)` when the tenant issued no loads. Comparing
    /// cross-multiplied keeps the arbiter free of floating point.
    fn miss_ratio(&self) -> (u128, u128) {
        let total = self.dram_loads as u128 + self.nvm_loads as u128;
        if total == 0 {
            (0, 1)
        } else {
            (self.nvm_loads as u128, total)
        }
    }
}

/// Compares two miss ratios without floats: `a > b`?
fn ratio_gt(a: (u128, u128), b: (u128, u128)) -> bool {
    a.0 * b.1 > b.0 * a.1
}

/// The global DRAM arbiter: owns the fast tier's page capacity and the
/// per-tenant quota vector. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct DramArbiter {
    policy: ArbiterPolicy,
    total_pages: u64,
    quotas: Vec<u64>,
    /// Floor below which no tenant's quota is cut, in pages.
    min_quota_pages: u64,
    /// Quota moved per greedy reallocation, in pages.
    realloc_step_pages: u64,
    /// Reallocation period in simulated nanoseconds.
    realloc_period_ns: u64,
    next_realloc_ns: u64,
    reallocations: u64,
}

impl DramArbiter {
    /// Default reallocation period: 100 ms, ten policy ticks.
    pub const DEFAULT_REALLOC_PERIOD_NS: u64 = 100_000_000;

    /// Creates an arbiter over `total_pages` of DRAM split among
    /// `tenants` tenants, starting from equal shares (the first
    /// `total_pages % tenants` tenants absorb the remainder). A
    /// single-tenant arbiter holds the whole tier under every policy.
    pub fn new(policy: ArbiterPolicy, total_pages: u64, tenants: usize) -> DramArbiter {
        assert!(tenants > 0, "arbiter needs at least one tenant");
        let n = tenants as u64;
        let base = total_pages / n;
        let rem = total_pages % n;
        let quotas = (0..n).map(|i| base + u64::from(i < rem)).collect();
        DramArbiter {
            policy,
            total_pages,
            quotas,
            min_quota_pages: (total_pages / (8 * n)).max(1),
            realloc_step_pages: (total_pages / 64).max(1),
            realloc_period_ns: DramArbiter::DEFAULT_REALLOC_PERIOD_NS,
            next_realloc_ns: DramArbiter::DEFAULT_REALLOC_PERIOD_NS,
            reallocations: 0,
        }
    }

    /// The policy this arbiter reallocates with.
    pub fn policy(&self) -> ArbiterPolicy {
        self.policy
    }

    /// Total DRAM pages under arbitration.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Number of tenants sharing the tier.
    pub fn tenants(&self) -> usize {
        self.quotas.len()
    }

    /// Tenant `t`'s current DRAM quota, in pages.
    pub fn quota_pages(&self, t: TenantId) -> u64 {
        self.quotas[t.0 as usize]
    }

    /// The full quota vector, indexed by tenant.
    pub fn quotas(&self) -> &[u64] {
        &self.quotas
    }

    /// Pages moved per greedy reallocation step.
    pub fn realloc_step_pages(&self) -> u64 {
        self.realloc_step_pages
    }

    /// Overrides the greedy reallocation step.
    pub fn set_realloc_step_pages(&mut self, pages: u64) {
        self.realloc_step_pages = pages.max(1);
    }

    /// Overrides the reallocation period (simulated nanoseconds).
    pub fn set_realloc_period_ns(&mut self, ns: u64) {
        self.realloc_period_ns = ns.max(1);
        self.next_realloc_ns = self.realloc_period_ns;
    }

    /// Reallocations performed so far.
    pub fn reallocations(&self) -> u64 {
        self.reallocations
    }

    /// True while the quota vector still sums to the tier's capacity —
    /// the arbiter's conservation invariant, checked by the audit.
    pub fn conserved(&self) -> bool {
        self.quotas.iter().sum::<u64>() == self.total_pages
    }

    /// Tenant `t`'s share of a global per-period quantity (migration
    /// byte budget, in-flight page cap, watermark), proportional to its
    /// quota. A single-tenant arbiter returns `global` exactly, which
    /// keeps the solo arbitrated path byte-identical to the unarbitrated
    /// one.
    pub fn share_of(&self, t: TenantId, global: u64) -> u64 {
        if self.quotas.len() == 1 {
            return global;
        }
        (global as u128 * self.quota_pages(t) as u128 / self.total_pages.max(1) as u128) as u64
    }

    /// Runs a reallocation if the period elapsed. Returns `true` when
    /// quotas may have moved. `signals` is indexed by tenant and must
    /// cover every tenant.
    pub fn maybe_realloc(&mut self, now_ns: u64, signals: &[TenantSignal]) -> bool {
        if now_ns < self.next_realloc_ns {
            return false;
        }
        while self.next_realloc_ns <= now_ns {
            self.next_realloc_ns += self.realloc_period_ns;
        }
        if self.quotas.len() < 2 || self.policy == ArbiterPolicy::StaticShares {
            return false;
        }
        assert_eq!(signals.len(), self.quotas.len(), "one signal per tenant");
        match self.policy {
            ArbiterPolicy::StaticShares => unreachable!(),
            ArbiterPolicy::ProportionalShares => self.realloc_proportional(signals),
            ArbiterPolicy::GreedyMissRatio => self.realloc_greedy(signals),
        }
        self.reallocations += 1;
        debug_assert!(self.conserved(), "reallocation changed the quota sum");
        true
    }

    /// Quota proportional to hot-set size, above a common floor. Integer
    /// division remainders go to the lowest-indexed tenants, so the sum
    /// is preserved exactly and the split is deterministic.
    fn realloc_proportional(&mut self, signals: &[TenantSignal]) {
        let n = self.quotas.len() as u64;
        let floor = self.min_quota_pages.min(self.total_pages / n);
        let spendable = self.total_pages - floor * n;
        // +1 keeps the weights non-degenerate when every tenant is cold.
        let weights: Vec<u128> = signals.iter().map(|s| s.hot_bytes as u128 + 1).collect();
        let sum: u128 = weights.iter().sum();
        let mut acc = 0u64;
        for (q, w) in self.quotas.iter_mut().zip(&weights) {
            *q = floor + (spendable as u128 * w / sum) as u64;
            acc += *q;
        }
        let mut left = self.total_pages - acc;
        let mut i = 0usize;
        let n = self.quotas.len();
        while left > 0 {
            self.quotas[i % n] += 1;
            left -= 1;
            i += 1;
        }
    }

    /// Moves one quota step from the lowest-miss-rate tenant to the
    /// highest, if the gap is material (≥ 1/64). Ties break toward the
    /// lowest index, so the step is deterministic.
    fn realloc_greedy(&mut self, signals: &[TenantSignal]) {
        let ratios: Vec<(u128, u128)> = signals.iter().map(|s| s.miss_ratio()).collect();
        let mut hi = 0usize;
        let mut lo = 0usize;
        for i in 1..ratios.len() {
            if ratio_gt(ratios[i], ratios[hi]) {
                hi = i;
            }
            if ratio_gt(ratios[lo], ratios[i]) {
                lo = i;
            }
        }
        if hi == lo {
            return;
        }
        // Material gap: miss(hi) - miss(lo) >= 1/64, cross-multiplied.
        let (hn, hd) = ratios[hi];
        let (ln, ld) = ratios[lo];
        if 64 * (hn * ld).saturating_sub(ln * hd) < hd * ld {
            return;
        }
        let step = self
            .realloc_step_pages
            .min(self.quotas[lo].saturating_sub(self.min_quota_pages));
        self.quotas[lo] -= step;
        self.quotas[hi] += step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(hot_bytes: u64) -> TenantSignal {
        TenantSignal {
            hot_bytes,
            ..TenantSignal::default()
        }
    }

    fn misses(dram: u64, nvm: u64) -> TenantSignal {
        TenantSignal {
            hot_bytes: 0,
            dram_loads: dram,
            nvm_loads: nvm,
        }
    }

    #[test]
    fn single_tenant_owns_the_whole_tier_under_every_policy() {
        for policy in ArbiterPolicy::ALL {
            let mut a = DramArbiter::new(policy, 512, 1);
            assert_eq!(a.quota_pages(TenantId::SOLO), 512);
            assert_eq!(a.share_of(TenantId::SOLO, 123_457), 123_457);
            // Reallocation never moves a solo tenant's quota.
            for tick in 1..=20u64 {
                a.maybe_realloc(tick * 100_000_000, &[misses(1, 1_000)]);
            }
            assert_eq!(a.quota_pages(TenantId::SOLO), 512);
            assert!(a.conserved());
        }
    }

    #[test]
    fn equal_split_distributes_the_remainder_deterministically() {
        let a = DramArbiter::new(ArbiterPolicy::StaticShares, 10, 3);
        assert_eq!(a.quotas(), &[4, 3, 3]);
        assert!(a.conserved());
    }

    #[test]
    fn static_shares_never_move() {
        let mut a = DramArbiter::new(ArbiterPolicy::StaticShares, 512, 2);
        let before = a.quotas().to_vec();
        let moved = a.maybe_realloc(1_000_000_000, &[misses(0, 1_000), misses(1_000, 0)]);
        assert!(!moved);
        assert_eq!(a.quotas(), &before[..]);
    }

    #[test]
    fn proportional_shares_follow_hot_set_size() {
        let mut a = DramArbiter::new(ArbiterPolicy::ProportionalShares, 512, 2);
        a.maybe_realloc(100_000_000, &[hot(3 << 30), hot(1 << 30)]);
        assert!(a.conserved());
        assert!(
            a.quota_pages(TenantId(0)) > a.quota_pages(TenantId(1)),
            "hotter tenant gets the larger share: {:?}",
            a.quotas()
        );
        // Neither tenant falls below the floor.
        assert!(a.quota_pages(TenantId(1)) >= 512 / 16);
    }

    #[test]
    fn greedy_moves_quota_toward_the_missing_tenant() {
        let mut a = DramArbiter::new(ArbiterPolicy::GreedyMissRatio, 512, 2);
        let before = a.quota_pages(TenantId(0));
        // Tenant 0 misses half its loads; tenant 1 misses none.
        a.maybe_realloc(100_000_000, &[misses(500, 500), misses(1_000, 0)]);
        assert!(a.conserved());
        assert_eq!(a.quota_pages(TenantId(0)), before + a.realloc_step_pages());
        // A negligible gap does not move quota.
        let held = a.quotas().to_vec();
        a.maybe_realloc(200_000_000, &[misses(10_000, 1), misses(10_000, 0)]);
        assert_eq!(a.quotas(), &held[..]);
    }

    #[test]
    fn greedy_respects_the_quota_floor() {
        let mut a = DramArbiter::new(ArbiterPolicy::GreedyMissRatio, 512, 2);
        a.set_realloc_step_pages(1 << 20); // absurdly large step
        a.maybe_realloc(100_000_000, &[misses(0, 1_000), misses(1_000, 0)]);
        assert!(a.conserved());
        assert!(a.quota_pages(TenantId(1)) >= 512 / 16);
    }

    #[test]
    fn realloc_fires_once_per_period() {
        let mut a = DramArbiter::new(ArbiterPolicy::GreedyMissRatio, 512, 2);
        let s = [misses(0, 1_000), misses(1_000, 0)];
        assert!(!a.maybe_realloc(50_000_000, &s), "period not elapsed");
        assert!(a.maybe_realloc(100_000_000, &s));
        assert!(!a.maybe_realloc(150_000_000, &s), "already fired");
        assert!(a.maybe_realloc(1_000_000_000, &s), "late tick catches up");
        assert_eq!(a.reallocations(), 2);
    }

    #[test]
    fn share_of_is_quota_proportional_for_multi_tenant() {
        let a = DramArbiter::new(ArbiterPolicy::StaticShares, 512, 2);
        assert_eq!(a.share_of(TenantId(0), 10_000_000_000), 5_000_000_000);
        assert_eq!(a.share_of(TenantId(1), 10_000_000_000), 5_000_000_000);
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in ArbiterPolicy::ALL {
            assert_eq!(ArbiterPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(ArbiterPolicy::parse("bogus"), None);
    }
}
