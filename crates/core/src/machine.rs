//! The simulated machine: devices, caches, TLB, page pools, PEBS, DMA,
//! cores, and a process address space.
//!
//! [`MachineCore`] holds all hardware/OS state shared between the event
//! loop ([`crate::runtime::Sim`]) and the tiered backend. It corresponds
//! to one socket of the paper's evaluation platform (§5): 24 cores,
//! 192 GB DDR4, 768 GB Optane DC, a 100 GbE NIC we do not model, and an
//! I/OAT DMA engine.

use hemem_memdev::{
    Device, DeviceConfig, DmaConfig, DmaEngine, Llc, MemOp, Reservation, SsdConfig, SsdDevice, GIB,
};
use hemem_pebs::{Pebs, PebsConfig, SampleRecord, SampleType};
use hemem_sim::{CoreModel, FaultPlan, FaultPlanConfig, Histogram, Ns, Rng, Tracer};
use hemem_vmm::{
    AddressSpace, FaultConfig, FaultStats, FaultThread, PageId, PageSize, PageState, PhysPool,
    ScanConfig, Tier, Tlb, TlbConfig,
};

use crate::backend::Traffic;
use crate::journal::MigrationJournal;

/// Watchdog supervision parameters (see `crate::runtime::Sim`): a
/// deadline monitor over the policy-thread cadence and the fault-handler
/// thread.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WatchdogConfig {
    /// How often the watchdog checks liveness.
    pub period: Ns,
    /// Consecutive checks without a policy tick before the manager is
    /// declared dead and restarted.
    pub miss_streak: u32,
    /// Fault-thread backlog beyond which the handler is declared wedged
    /// and reset (PR 1's stall injection produces the backlog).
    pub fault_backlog_limit: Ns,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            // Same cadence as the policy thread: a missed 10 ms deadline
            // is visible within one period.
            period: Ns::millis(10),
            miss_streak: 2,
            fault_backlog_limit: Ns::millis(100),
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Cores on the socket.
    pub cores: u32,
    /// DRAM device parameters.
    pub dram: DeviceConfig,
    /// NVM device parameters.
    pub nvm: DeviceConfig,
    /// Shared LLC capacity in bytes.
    pub llc_bytes: u64,
    /// Page size for managed (large heap) regions.
    pub managed_page: PageSize,
    /// TLB cost parameters.
    pub tlb: TlbConfig,
    /// Page-table scan cost parameters.
    pub scan: ScanConfig,
    /// Fault-path cost parameters.
    pub fault: FaultConfig,
    /// PEBS parameters.
    pub pebs: PebsConfig,
    /// DMA engine parameters.
    pub dma: DmaConfig,
    /// Optional swap device behind the memory tiers (§3.4); `None`
    /// disables swapping.
    pub disk: Option<DeviceConfig>,
    /// Optional third capacity tier: a block-style SSD swap device that
    /// pages are *placed on* (they stay mapped, tier `Ssd`), unlike
    /// `disk`, whose pages are unmapped to slots. `None` (the default)
    /// leaves the machine a two-tier DRAM/NVM box with every tier-3 path
    /// unreachable.
    pub ssd: Option<SsdConfig>,
    /// Fault-injection plan; [`FaultPlanConfig::none`] (the default)
    /// injects nothing.
    pub chaos: FaultPlanConfig,
    /// Watchdog supervision; `None` (the default) disables the monitor
    /// unless the fault plan schedules manager kills, which force a
    /// default watchdog so the machine can recover.
    pub watchdog: Option<WatchdogConfig>,
    /// Interval of the online invariant audit; `None` (the default)
    /// disables periodic auditing (it stays available on demand).
    pub audit_period: Option<Ns>,
    /// Capture structured trace events ([`hemem_sim::trace`]); `false`
    /// (the default) leaves the event buffer empty. Latency histograms
    /// and policy attribution counters accumulate either way. Tracing
    /// never touches the RNG or the event queue, so enabling it cannot
    /// change any simulation outcome.
    pub trace: bool,
    /// When a tier goes offline (`FaultPlanConfig::tier_fail_at`), drain
    /// its resident pages out through the journaled migration path
    /// (`true`, the default). `false` skips evacuation and poisons every
    /// resident page immediately — the no-recovery baseline `failbench`
    /// compares against.
    pub evacuate_on_failure: bool,
    /// Critical-path cost of re-materializing a poisoned page: the
    /// application has lost the contents and must re-fetch or recompute
    /// them (the typed poison notification tells it to). Charged to the
    /// faulting thread on every poison fault, on top of the normal fault
    /// cost. Zero poison faults means zero perturbation, so fault-free
    /// runs are untouched by this knob.
    pub poison_recovery: Ns,
    /// Non-exclusive tiering (Nomad-style): when a page is promoted
    /// NVM → DRAM, retain the NVM frame as a clean shadow so an
    /// unmodified page can later demote by remap alone — zero bytes
    /// moved. `false` (the default) is exclusive tiering: with no
    /// shadows ever created, every shadow-handling path is a no-op and
    /// runs are byte-identical to builds that predate the feature.
    pub nvm_shadows: bool,
    /// RNG seed; two runs with the same seed are identical.
    pub seed: u64,
}

impl MachineConfig {
    /// The paper's evaluation socket: 24-core Cascade Lake, 192 GB DRAM,
    /// 768 GB Optane DC.
    pub fn paper_testbed() -> MachineConfig {
        MachineConfig {
            cores: 24,
            dram: DeviceConfig::ddr4_dram(192 * GIB),
            nvm: DeviceConfig::optane_dc(768 * GIB),
            llc_bytes: 33 * 1024 * 1024,
            managed_page: PageSize::Huge2M,
            tlb: TlbConfig::default(),
            scan: ScanConfig::default(),
            fault: FaultConfig::default(),
            pebs: PebsConfig::default(),
            dma: DmaConfig::ioat(),
            disk: None,
            ssd: None,
            chaos: FaultPlanConfig::none(),
            watchdog: None,
            audit_period: None,
            trace: false,
            evacuate_on_failure: true,
            poison_recovery: Ns::millis(10),
            nvm_shadows: false,
            seed: 0x4E564D_48454D45, // "NVM HEME"
        }
    }

    /// Enables non-exclusive tiering (clean NVM shadow pages).
    pub fn with_shadows(mut self) -> MachineConfig {
        self.nvm_shadows = true;
        self
    }

    /// Enables structured trace capture.
    pub fn with_trace(mut self) -> MachineConfig {
        self.trace = true;
        self
    }

    /// Adds an NVMe swap device of `capacity` bytes behind the tiers.
    pub fn with_swap(mut self, capacity: u64) -> MachineConfig {
        self.disk = Some(DeviceConfig::nvme_ssd(capacity));
        self
    }

    /// Adds a third capacity tier: an NVMe swap device of `capacity`
    /// bytes that holds mapped `Tier::Ssd` pages.
    pub fn with_tier3(mut self, capacity: u64) -> MachineConfig {
        self.ssd = Some(SsdConfig::nvme(capacity));
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_chaos(mut self, chaos: FaultPlanConfig) -> MachineConfig {
        self.chaos = chaos;
        self
    }

    /// A smaller machine (capacities in GiB) for fast tests; all ratios
    /// preserved.
    pub fn small(dram_gib: u64, nvm_gib: u64) -> MachineConfig {
        let mut c = MachineConfig::paper_testbed();
        c.dram = DeviceConfig::ddr4_dram(dram_gib * GIB);
        c.nvm = DeviceConfig::optane_dc(nvm_gib * GIB);
        c
    }
}

/// Machine-level cumulative counters.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct MachineStats {
    /// Pages swapped out to disk.
    pub swap_outs: u64,
    /// Pages faulted back in from disk.
    pub swap_ins: u64,
    /// Application accesses completed.
    pub ops: u64,
    /// Writes that stalled on a write-protected (migrating) page.
    pub wp_stalls: u64,
    /// Page migrations started.
    pub migrations_started: u64,
    /// Page migrations completed.
    pub migrations_done: u64,
    /// Bytes moved by completed migrations.
    pub migrated_bytes: u64,
    /// Migrations aborted (no free page on the destination tier).
    pub migrations_aborted: u64,
    /// Migrations started but lost to an injected failure (e.g. a media
    /// error on the destination page); the source mapping stays intact.
    pub migrations_failed: u64,
    /// DMA submissions retried after an injected failure.
    pub dma_retries: u64,
    /// DMA batches that exhausted their retries and fell back to copy
    /// threads.
    pub dma_fallbacks: u64,
    /// NVM pages retired to the poisoned list after media errors.
    pub pages_retired: u64,
}

/// Crash/recovery and supervision counters.
///
/// Kept separate from [`MachineStats`] so clean runs (no kills, no
/// watchdog, no auditing) print byte-identical stats to builds that
/// predate the recovery layer.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct RecoveryStats {
    /// Injected manager kills taken.
    pub manager_kills: u64,
    /// Journal entries replayed during recovery (rollbacks plus
    /// roll-forwards of already-committed transactions).
    pub journal_replays: u64,
    /// Prepared migrations rolled back during recovery.
    pub journal_rollbacks: u64,
    /// In-flight swap-outs rolled back during recovery.
    pub swap_rollbacks: u64,
    /// Components restarted by the watchdog (manager restarts plus
    /// fault-thread resets).
    pub watchdog_restarts: u64,
    /// Invariant-audit violations observed (each violation instance
    /// counts once per audit that sees it).
    pub audit_violations: u64,
    /// Injected tenant kills taken.
    #[serde(default)]
    pub tenant_kills: u64,
    /// Tenants fully drained and retired after a kill or departure.
    #[serde(default)]
    pub tenant_drains: u64,
}

/// Non-exclusive tiering (shadow page) counters.
///
/// Kept separate from [`MachineStats`] so shadow-free runs (the knob
/// off, or simply no shadows created yet) print byte-identical stats to
/// builds that predate the feature.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct ShadowStats {
    /// NVM frames retained as clean shadows at promotion commit.
    pub retained: u64,
    /// Retain intents dirtied by a write inside the protection window
    /// (the promotion committed exclusively).
    pub dirtied_wp: u64,
    /// Clean shadows invalidated by a sampled store to the promoted
    /// page after commit.
    pub invalidated_store: u64,
    /// Zero-copy demotions: pages flipped back onto their clean shadow
    /// frame with no copy, no DMA job, and no journal transaction.
    pub remap_demotions: u64,
    /// Bytes those remap demotions did *not* move (the bandwidth the
    /// exclusive path would have spent).
    pub remap_demoted_bytes: u64,
    /// Shadow frames reclaimed back to the free list under NVM
    /// allocation pressure or the NVM watermark.
    pub reclaimed: u64,
    /// Shadow frames dropped for any other reason (page swapped out,
    /// unmapped, poisoned, tenant drained, tier offline).
    pub dropped: u64,
    /// Stale shadows freed by watchdog recovery's reconcile walk.
    pub reconciled: u64,
}

/// Health lifecycle of one memory device: `Healthy -> Degraded ->
/// Offline -> (readmit) Healthy`. Driven by the seeded
/// `tier_degrade_at` / `tier_fail_at` / `tier_readmit_at` schedules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TierHealth {
    /// Full bandwidth, full capacity.
    #[default]
    Healthy,
    /// Wear-retirement accelerating: bandwidth throttled, part of the
    /// free capacity retired. Still serves resident pages.
    Degraded,
    /// Device dropped off the bus: no allocations, resident pages must
    /// be evacuated or are lost (poisoned).
    Offline,
}

/// Per-device health-lifecycle state and data-loss accounting.
///
/// Kept out of [`MachineStats`] / [`RecoveryStats`] so runs without a
/// tier schedule print byte-identical stats to builds that predate the
/// failure-domain layer. Indexed by [`Tier::rank`].
#[derive(Debug, Clone, Default)]
pub struct HealthState {
    /// Current health of each tier.
    pub health: [TierHealth; 3],
    /// Pages shed from each tier's free list while degraded (mirrors
    /// `PhysPool::health_retired_pages`; audited for conservation).
    pub health_retired: [u64; 3],
    /// Whether an offline tier's evacuation has fully drained it.
    pub evac_done: [bool; 3],
    /// Degrade transitions taken.
    pub degrades: u64,
    /// Offline transitions taken.
    pub offlines: u64,
    /// Readmit transitions taken.
    pub readmits: u64,
    /// Pages moved off a failing tier by the evacuation engine.
    pub evacuated_pages: u64,
    /// Pages lost on a dead device (typed data loss, never silent).
    pub poisoned_pages: u64,
    /// Faults that hit a poisoned page and surfaced the loss to the
    /// owning tenant before remapping a fresh zero page.
    pub poison_faults: u64,
    /// Poisoned-page count per owning tenant slot.
    pub tenant_poisoned: std::collections::BTreeMap<u32, u64>,
}

/// All hardware and OS state of the simulated machine.
pub struct MachineCore {
    /// Static configuration.
    pub cfg: MachineConfig,
    /// DRAM device.
    pub dram: Device,
    /// NVM device.
    pub nvm: Device,
    /// Shared last-level cache.
    pub llc: Llc,
    /// TLB and shootdown model.
    pub tlb: Tlb,
    /// I/OAT DMA engine.
    pub dma: DmaEngine,
    /// DRAM physical page pool (managed-page granularity).
    pub dram_pool: PhysPool,
    /// NVM physical page pool.
    pub nvm_pool: PhysPool,
    /// Tier-3 swap-frame pool. Always present so tier dispatch never
    /// branches on configuration; zero pages when no SSD is configured.
    pub ssd_pool: PhysPool,
    /// The process address space under management.
    pub space: AddressSpace,
    /// PEBS unit.
    pub pebs: Pebs,
    /// Core occupancy model.
    pub cores: CoreModel,
    /// Deterministic random stream.
    pub rng: Rng,
    /// Fault-path costs.
    pub fault_cfg: FaultConfig,
    /// Fault counters.
    pub fault_stats: FaultStats,
    /// The single userfaultfd handler thread (faults queue behind it).
    pub fault_thread: FaultThread,
    /// Machine counters.
    pub stats: MachineStats,
    /// Crash/recovery and supervision counters.
    pub recovery: RecoveryStats,
    /// Write-ahead migration journal: every in-flight migration is a
    /// prepared transaction here until its mapping flip commits.
    pub journal: MigrationJournal,
    /// Optional swap device.
    pub disk: Option<Device>,
    /// Optional tier-3 SSD swap device (queue-depth-limited block model).
    pub ssd: Option<SsdDevice>,
    /// Fault-injection plan (deterministic; its streams are independent
    /// of `rng`, so enabling faults never perturbs the workload draws).
    pub chaos: FaultPlan,
    /// Next free swap slot (slots are never recycled in this model; the
    /// swap file is sized for the worst case).
    pub next_swap_slot: u64,
    /// Structured tracing: span/instant events (when enabled), latency
    /// histograms, and policy decision attribution (always).
    pub trace: Tracer,
    /// Per-tenant major-fault service-time histograms (tier-3 swap-ins),
    /// keyed by (tenant slot, slot generation). The global `trace`
    /// histogram mixes every tenant together; fault-isolation gates need
    /// the survivor's tail separated from a storm-afflicted neighbor's,
    /// and fleet gates need a recycled slot's new occupant separated
    /// from its predecessors. BTreeMap keeps iteration order
    /// deterministic.
    pub tenant_major_faults: std::collections::BTreeMap<(u32, u32), Histogram>,
    /// Per-device health lifecycle and data-loss accounting.
    pub health: HealthState,
    /// Non-exclusive tiering (shadow page) counters.
    pub shadow: ShadowStats,
}

impl MachineCore {
    /// Builds an idle machine from `cfg`.
    pub fn new(cfg: MachineConfig) -> MachineCore {
        let mut rng = Rng::new(cfg.seed);
        MachineCore {
            dram: Device::new(cfg.dram.clone()),
            nvm: Device::new(cfg.nvm.clone()),
            llc: Llc::new(cfg.llc_bytes, Ns::nanos(20)),
            tlb: Tlb::new(cfg.tlb.clone()),
            dma: DmaEngine::new(cfg.dma.clone()),
            dram_pool: PhysPool::new(Tier::Dram, cfg.dram.capacity, cfg.managed_page),
            nvm_pool: PhysPool::new(Tier::Nvm, cfg.nvm.capacity, cfg.managed_page),
            ssd_pool: PhysPool::new(
                Tier::Ssd,
                cfg.ssd.as_ref().map_or(0, |s| s.capacity),
                cfg.managed_page,
            ),
            space: AddressSpace::new(),
            pebs: Pebs::new(cfg.pebs.clone()),
            cores: CoreModel::new(cfg.cores),
            rng: rng.fork(1),
            fault_cfg: cfg.fault.clone(),
            fault_stats: FaultStats::default(),
            fault_thread: FaultThread::new(),
            stats: MachineStats::default(),
            recovery: RecoveryStats::default(),
            journal: MigrationJournal::new(),
            disk: cfg.disk.clone().map(Device::new),
            ssd: cfg.ssd.clone().map(SsdDevice::new),
            chaos: FaultPlan::new(cfg.chaos.clone()),
            next_swap_slot: 0,
            trace: Tracer::new(cfg.trace),
            tenant_major_faults: std::collections::BTreeMap::new(),
            health: HealthState::default(),
            shadow: ShadowStats::default(),
            cfg,
        }
    }

    /// Whether the third capacity tier is configured.
    pub fn has_ssd(&self) -> bool {
        self.ssd.is_some()
    }

    /// The ordered tier vector of this machine, fastest first. Placement
    /// and audit code iterates this instead of naming tiers, so a
    /// two-tier box never even sees `Tier::Ssd`.
    pub fn tiers(&self) -> &'static [Tier] {
        let n = if self.has_ssd() { 3 } else { 2 };
        &Tier::ALL[..n]
    }

    /// Byte-addressable device for a tier. The SSD is block-style and
    /// has no fluid-server model; route its traffic through
    /// [`MachineCore::reserve_tier_bulk`].
    pub fn device(&self, tier: Tier) -> &Device {
        match tier {
            Tier::Dram => &self.dram,
            Tier::Nvm => &self.nvm,
            Tier::Ssd => panic!("SSD is not byte-addressable; use reserve_tier_bulk"),
        }
    }

    /// Mutable byte-addressable device for a tier (see
    /// [`MachineCore::device`] for the SSD caveat).
    pub fn device_mut(&mut self, tier: Tier) -> &mut Device {
        match tier {
            Tier::Dram => &mut self.dram,
            Tier::Nvm => &mut self.nvm,
            Tier::Ssd => panic!("SSD is not byte-addressable; use reserve_tier_bulk"),
        }
    }

    /// Pool for a tier.
    pub fn pool(&self, tier: Tier) -> &PhysPool {
        match tier {
            Tier::Dram => &self.dram_pool,
            Tier::Nvm => &self.nvm_pool,
            Tier::Ssd => &self.ssd_pool,
        }
    }

    /// Mutable pool for a tier.
    pub fn pool_mut(&mut self, tier: Tier) -> &mut PhysPool {
        match tier {
            Tier::Dram => &mut self.dram_pool,
            Tier::Nvm => &mut self.nvm_pool,
            Tier::Ssd => &mut self.ssd_pool,
        }
    }

    /// Reserves a bulk (page-sized) transfer on any tier's device: the
    /// fluid bulk servers for DRAM/NVM, the queue-slot model for the SSD.
    /// `rate_cap` applies only to the byte-addressable tiers.
    pub fn reserve_tier_bulk(
        &mut self,
        now: Ns,
        tier: Tier,
        op: MemOp,
        bytes: u64,
        rate_cap: Option<f64>,
    ) -> Reservation {
        match tier {
            Tier::Dram | Tier::Nvm => self.device_mut(tier).reserve_bulk(now, op, bytes, rate_cap),
            Tier::Ssd => self
                .ssd
                .as_mut()
                .expect("tier-3 transfer without an SSD configured")
                .transfer(now, op, bytes),
        }
    }

    /// Queueing delay a bulk transfer would currently see on a tier.
    pub fn tier_bulk_queue_delay(&self, now: Ns, tier: Tier, op: MemOp) -> Ns {
        match tier {
            Tier::Dram | Tier::Nvm => self.device(tier).bulk_queue_delay(now, op),
            Tier::Ssd => self.ssd.as_ref().map_or(Ns::ZERO, |s| s.queue_delay(now)),
        }
    }

    /// Reserves device service for one traffic class; returns the
    /// reservation (zero-length when the rounded count is zero).
    pub fn reserve_traffic(&mut self, now: Ns, t: &Traffic) -> Reservation {
        let count = self.rng.round_stochastic(t.count);
        self.device_mut(t.tier)
            .reserve(now, t.op, t.pattern, t.size as u64, count)
    }

    /// Mean access latency of one traffic class including current queueing.
    pub fn traffic_latency(&self, now: Ns, t: &Traffic) -> Ns {
        let dev = self.device(t.tier);
        dev.latency(t.op) + dev.queue_delay(now, t.op)
    }

    /// Current health of a tier.
    pub fn tier_health(&self, tier: Tier) -> TierHealth {
        self.health.health[tier.rank()]
    }

    /// Whether a tier accepts allocations and migrations (not offline).
    pub fn tier_online(&self, tier: Tier) -> bool {
        self.tier_health(tier) != TierHealth::Offline
    }

    /// Sets the health-lifecycle bandwidth multiplier on a tier's device.
    pub fn set_tier_throttle(&mut self, tier: Tier, throttle: f64) {
        match tier {
            Tier::Dram | Tier::Nvm => self.device_mut(tier).set_throttle(throttle),
            Tier::Ssd => {
                if let Some(ssd) = self.ssd.as_mut() {
                    ssd.set_throttle(throttle);
                }
            }
        }
    }

    /// NVM media-level write counter (the wear metric of Figure 16).
    pub fn nvm_wear_bytes(&self) -> u64 {
        self.nvm.stats().media_bytes_written
    }

    /// Bytes free in the DRAM pool.
    pub fn dram_free_bytes(&self) -> u64 {
        self.dram_pool.free_bytes()
    }

    /// Zero-copy demotion (non-exclusive tiering): if `page` is
    /// DRAM-resident, not write-protected, and still has a clean NVM
    /// shadow, flip the mapping back onto the shadow frame and free the
    /// DRAM frame — no copy, no DMA job, no journal transaction. The
    /// `wp: false` guard means no journaled migration can be in flight
    /// on the page (prepare write-protects for the whole window).
    /// Returns whether the remap happened.
    pub fn shadow_remap_demote(&mut self, page: PageId) -> bool {
        if !self.tier_online(Tier::Nvm) {
            return false;
        }
        let region = self.space.region_mut(page.region);
        match region.state(page.index) {
            PageState::Mapped {
                tier: Tier::Dram,
                wp: false,
                ..
            } => {}
            _ => return false,
        }
        let Some(shadow) = region.take_shadow(page.index) else {
            return false;
        };
        let bytes = region.page_size().bytes();
        let (old_tier, old_phys) = region.remap_page(page.index, Tier::Nvm, shadow);
        debug_assert_eq!(old_tier, Tier::Dram, "shadowed page not DRAM-resident");
        self.pool_mut(old_tier).free(old_phys);
        self.nvm_pool.note_unshadow();
        // No NVM wear: the frame already holds the bytes. Only the TLB
        // pays, exactly like a journaled remap would.
        let cores = self.cores.cores();
        self.tlb.shootdown(cores);
        self.shadow.remap_demotions += 1;
        self.shadow.remap_demoted_bytes += bytes;
        true
    }

    /// Frees `page`'s clean shadow frame, if any (the page was written,
    /// swapped out, poisoned, or copy-demoted, so the stale NVM copy
    /// must not survive as a demotion target). Callers bump the
    /// [`ShadowStats`] counter matching their reason. Returns whether a
    /// shadow was dropped.
    pub fn drop_shadow_of(&mut self, page: PageId) -> bool {
        let Some(phys) = self.space.region_mut(page.region).take_shadow(page.index) else {
            return false;
        };
        self.nvm_pool.free(phys);
        self.nvm_pool.note_unshadow();
        true
    }

    /// Reclaims up to `want` shadow frames back to the NVM free list,
    /// lowest region id then lowest page index first (deterministic).
    /// Shadow frames are free capacity in disguise: allocation pressure
    /// and the NVM watermark call this before spilling, swapping, or
    /// demoting anything real. Returns how many frames came back.
    pub fn reclaim_shadow_frames(&mut self, want: u64) -> u64 {
        if want == 0 || self.nvm_pool.shadow_held_pages() == 0 {
            return 0;
        }
        let ids: Vec<hemem_vmm::RegionId> = self.space.regions().map(|r| r.id()).collect();
        let mut got = 0;
        'regions: for id in ids {
            while got < want {
                let Some((_, phys)) = self.space.region_mut(id).take_first_shadow() else {
                    break;
                };
                self.nvm_pool.free(phys);
                self.nvm_pool.note_unshadow();
                got += 1;
            }
            if got >= want {
                break 'regions;
            }
        }
        self.shadow.reclaimed += got;
        got
    }

    /// Drops every shadow frame in the machine (the NVM tier went
    /// offline, or a full teardown). Returns how many were freed.
    pub fn drop_all_shadows(&mut self) -> u64 {
        if self.nvm_pool.shadow_held_pages() == 0 {
            return 0;
        }
        let ids: Vec<hemem_vmm::RegionId> = self.space.regions().map(|r| r.id()).collect();
        let mut n = 0;
        for id in ids {
            while let Some((_, phys)) = self.space.region_mut(id).take_first_shadow() {
                self.nvm_pool.free(phys);
                self.nvm_pool.note_unshadow();
                n += 1;
            }
        }
        self.shadow.dropped += n;
        n
    }

    /// PEBS `Store` samples are the only per-page write observations the
    /// host gets, so they drive shadow invalidation: a store to a page
    /// with a committed shadow drops it (DRAM copy diverged), and a store
    /// to a page whose promotion is still in flight dirties the journaled
    /// retain intent before it can become a shadow.
    pub fn invalidate_shadows_on_stores(&mut self, samples: &[SampleRecord]) {
        // Fast path: nothing retained anywhere — the common case with
        // shadows disabled, and the reason this hook costs nothing there.
        if self.nvm_pool.shadow_held_pages() == 0 && self.journal.retained_intents() == 0 {
            return;
        }
        for s in samples {
            if s.kind != SampleType::Store {
                continue;
            }
            let Some(page) = self.space.page_at(hemem_vmm::VirtAddr(s.vaddr)) else {
                continue;
            };
            if self.drop_shadow_of(page) {
                self.shadow.invalidated_store += 1;
                continue;
            }
            let in_flight = self
                .journal
                .entry_for_page(page)
                .filter(|(_, e)| e.shadow == crate::journal::ShadowIntent::Retain)
                .map(|(id, _)| id);
            if let Some(id) = in_flight {
                if self.journal.dirty_shadow(id) {
                    self.shadow.dirtied_wp += 1;
                }
            }
        }
    }
}

/// Charge helper: zero-fill cost when a fresh page is mapped.
pub fn zero_fill(m: &mut MachineCore, now: Ns, tier: Tier, page_bytes: u64) -> Reservation {
    m.reserve_tier_bulk(now, tier, MemOp::Write, page_bytes, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_memdev::Pattern;

    #[test]
    fn paper_testbed_matches_evaluation_platform() {
        let c = MachineConfig::paper_testbed();
        assert_eq!(c.cores, 24);
        assert_eq!(c.dram.capacity, 192 * GIB);
        assert_eq!(c.nvm.capacity, 768 * GIB);
        assert_eq!(c.managed_page, PageSize::Huge2M);
    }

    #[test]
    fn machine_construction_sizes_pools() {
        let m = MachineCore::new(MachineConfig::small(4, 16));
        assert_eq!(m.dram_pool.total_pages(), 4 * 512, "4 GiB of 2 MiB pages");
        assert_eq!(m.nvm_pool.total_pages(), 16 * 512);
        assert_eq!(m.dram_free_bytes(), 4 * GIB);
    }

    #[test]
    fn reserve_traffic_rounds_and_charges() {
        let mut m = MachineCore::new(MachineConfig::small(1, 4));
        let t = Traffic {
            tier: Tier::Nvm,
            op: MemOp::Write,
            pattern: Pattern::Random,
            size: 64,
            count: 1000.0,
        };
        let r = m.reserve_traffic(Ns::ZERO, &t);
        assert!(r.finish > Ns::ZERO);
        assert_eq!(m.nvm.stats().writes, 1000);
        assert_eq!(
            m.nvm_wear_bytes(),
            256_000,
            "amplified to media granularity"
        );
    }

    #[test]
    fn traffic_latency_includes_queueing() {
        let mut m = MachineCore::new(MachineConfig::small(1, 4));
        let t = Traffic {
            tier: Tier::Nvm,
            op: MemOp::Read,
            pattern: Pattern::Random,
            size: 4096,
            count: 100_000.0,
        };
        let idle = m.traffic_latency(Ns::ZERO, &t);
        m.reserve_traffic(Ns::ZERO, &t);
        let queued = m.traffic_latency(Ns::ZERO, &t);
        assert!(queued > idle);
        assert_eq!(idle, Ns::nanos(175));
    }

    #[test]
    fn zero_fill_charges_destination_device() {
        let mut m = MachineCore::new(MachineConfig::small(1, 4));
        zero_fill(&mut m, Ns::ZERO, Tier::Dram, 2 << 20);
        assert_eq!(m.dram.stats().bytes_written, 2 << 20);
    }

    #[test]
    fn two_tier_machine_hides_the_third_tier() {
        let m = MachineCore::new(MachineConfig::small(1, 4));
        assert!(!m.has_ssd());
        assert_eq!(m.tiers(), &[Tier::Dram, Tier::Nvm]);
        assert_eq!(m.pool(Tier::Ssd).total_pages(), 0, "empty placeholder");
        assert_eq!(
            m.tier_bulk_queue_delay(Ns::ZERO, Tier::Ssd, MemOp::Read),
            Ns::ZERO
        );
    }

    #[test]
    fn tier3_machine_exposes_ordered_tier_vector() {
        let mut m = MachineCore::new(MachineConfig::small(1, 4).with_tier3(8 * GIB));
        assert!(m.has_ssd());
        assert_eq!(m.tiers(), Tier::ALL);
        assert_eq!(m.pool(Tier::Ssd).total_pages(), 8 * 512);
        let r = m.reserve_tier_bulk(Ns::ZERO, Tier::Ssd, MemOp::Write, 2 << 20, None);
        assert!(r.finish > Ns::ZERO);
        assert_eq!(m.ssd.as_ref().unwrap().stats().writes, 1);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = MachineCore::new(MachineConfig::small(1, 1));
        let mut b = MachineCore::new(MachineConfig::small(1, 1));
        for _ in 0..10 {
            assert_eq!(a.rng.next_u64(), b.rng.next_u64());
        }
    }
}
