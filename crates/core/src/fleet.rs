//! Fleet control plane: a pool of fixed-size tenant instance slots.
//!
//! The paper's per-process design (§4) gives every tenant its own
//! manager state — tracker arenas, region views, a PEBS demux lane,
//! breaker and balloon state. That is exactly what scales past
//! kernel-level tiering, but it turns tenant spawn into a pile of heap
//! construction and teardown into a pile of frees; under fleet churn
//! (thousands of short-lived instances, ROADMAP north-star) the control
//! plane would spend its time in the allocator and the slot vector
//! would be rebuilt per arrival. Lucet's pooling allocator proved the
//! alternative shape for serverless wasm — fixed-size instance slots
//! over a pre-sized pool, spawn = claim + reset, teardown = scrub +
//! recycle — and HMM-V showed tiered-memory state can be owned
//! per-guest and handed off without rebuilding it. [`SlotPool`] brings
//! both to the tenant control plane:
//!
//! * every slot's containers (tracker arena, queue links, metadata and
//!   page tables, region views) are kept across generations; `spawn`
//!   resets them in place ([`PageTracker::reset`]) and pre-warms
//!   capacity for the slot's working set, so the hot path never
//!   allocates or rebuilds,
//! * `teardown` runs after the runtime's drain (journal rolled back,
//!   frames reclaimed, quota returned): the slot is scrubbed back to a
//!   pristine state and pushed on the free list,
//! * each claim bumps the slot's **generation**; regions are tagged
//!   with the generation they were mapped under, and the
//!   `SlotGenerationLeak` / `StaleSlotFrame` audits prove that nothing
//!   — frames, quota, counters, PEBS stream history — bleeds from one
//!   occupant to the next.
//!
//! The pool is the storage for *every* HeMem configuration (solo,
//! multi-tenant, churn); with pooling disabled the spawn path rebuilds
//! tracker state from scratch exactly like the pre-pool code, which is
//! what `fleetbench`'s recycled-vs-fresh identity reduction compares
//! against.

use crate::arbiter::TenantSignal;
use crate::hemem::{PageTracker, TrackerConfig};
use hemem_sim::Ns;
use hemem_vmm::TenantId;

/// Where a tenant slot is in its lifecycle. The runtime drives the
/// transitions: a seeded kill quarantines the slot, the post-quiescence
/// drain retires it (Live → Quarantined → [drain] → Retired); admission
/// takes a Retired (or never-admitted) slot back to Live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lifecycle {
    /// Scheduled normally.
    Live,
    /// Kill taken: nothing new is scheduled for the tenant while the
    /// runtime rolls back its in-flight work and awaits DMA quiescence.
    Quarantined,
    /// Drained: frames reclaimed, quota returned. Also the starting
    /// state of a deferred slot awaiting admission.
    Retired,
}

/// An in-flight balloon shrink: the quota is already cut; the claim has
/// until `deadline` to drain through watermark demotion before the
/// manager starts forcing pages toward the slowest tier.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BalloonDrain {
    pub(crate) target_pages: u64,
    pub(crate) deadline: Ns,
}

/// One pooled tenant instance slot: the per-tenant manager state the
/// paper gives each process, plus the generation stamp slot reuse is
/// audited by.
#[derive(Debug, Clone)]
pub(crate) struct TenantInstance {
    pub(crate) id: TenantId,
    /// Claim generation: 0 until first (re-)admission, bumped per
    /// spawn. Regions mapped by this occupant carry the same stamp in
    /// the address space, which is what the `StaleSlotFrame` audit
    /// cross-checks.
    pub(crate) generation: u32,
    pub(crate) tracker: PageTracker,
    /// Load mix since the last arbiter reallocation.
    pub(crate) window: TenantSignal,
    /// Cumulative loads, for per-tenant miss-ratio reporting.
    pub(crate) total_dram_loads: u64,
    pub(crate) total_nvm_loads: u64,
    /// Samples this tenant's tracker consumed.
    pub(crate) samples_applied: u64,
    /// Where the slot is in its admit/kill/drain lifecycle.
    pub(crate) lifecycle: Lifecycle,
    /// Consecutive migration aborts feeding the circuit breaker.
    pub(crate) breaker_fails: u32,
    /// Remaining ticks the tripped breaker skips this tenant's pass.
    pub(crate) breaker_skip_ticks: u32,
    /// In-flight balloon shrink, if any.
    pub(crate) balloon: Option<BalloonDrain>,
}

impl TenantInstance {
    fn fresh(id: TenantId, cfg: TrackerConfig, lifecycle: Lifecycle) -> TenantInstance {
        TenantInstance {
            id,
            generation: 0,
            tracker: PageTracker::new(cfg),
            window: TenantSignal::default(),
            total_dram_loads: 0,
            total_nvm_loads: 0,
            samples_applied: 0,
            lifecycle,
            breaker_fails: 0,
            breaker_skip_ticks: 0,
            balloon: None,
        }
    }

    pub(crate) fn note_sample(&mut self, kind: hemem_pebs::SampleType) {
        self.samples_applied += 1;
        match kind {
            hemem_pebs::SampleType::DramLoad => {
                self.window.dram_loads += 1;
                self.total_dram_loads += 1;
            }
            hemem_pebs::SampleType::NvmLoad => {
                self.window.nvm_loads += 1;
                self.total_nvm_loads += 1;
            }
            hemem_pebs::SampleType::Store => {}
        }
    }

    /// Zeroes every per-occupant counter. Shared by spawn (a new
    /// occupant must not see its predecessor's history — re-admission
    /// used to leak `total_*_loads` across generations) and recycle
    /// (a parked slot must audit pristine).
    fn scrub_counters(&mut self) {
        self.window = TenantSignal::default();
        self.total_dram_loads = 0;
        self.total_nvm_loads = 0;
        self.samples_applied = 0;
        self.breaker_fails = 0;
        self.breaker_skip_ticks = 0;
        self.balloon = None;
    }

    /// True when the slot carries no trace of a previous occupant:
    /// pristine tracker, zero counters, no balloon. What the
    /// `SlotGenerationLeak` audit demands of every parked slot.
    pub(crate) fn is_scrubbed(&self) -> bool {
        self.tracker.is_pristine()
            && self.window == TenantSignal::default()
            && self.total_dram_loads == 0
            && self.total_nvm_loads == 0
            && self.samples_applied == 0
            && self.breaker_fails == 0
            && self.breaker_skip_ticks == 0
            && self.balloon.is_none()
    }
}

/// Slot-pool lifecycle counters, exported through
/// `TieredBackend::fleet_stats` into the bench fingerprint (the segment
/// only appears once a spawn happened, keeping pre-fleet baselines
/// byte-identical).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Slot claims (admissions), pooled or not.
    pub spawns: u64,
    /// Spawns served by in-place reset of a recycled slot.
    pub pooled_spawns: u64,
    /// Spawns that rebuilt tracker state from scratch (pooling off).
    pub scratch_spawns: u64,
    /// Slots scrubbed and returned to the free list after a drain.
    pub recycles: u64,
    /// Tracker footprint pages scrubbed across all recycles.
    pub scrubbed_pages: u64,
    /// Sum of all slots' current generations (replay-stable checksum of
    /// the claim history).
    pub generation_sum: u64,
}

/// Simulated cost of a pooled spawn: claim the slot, reset the arenas
/// in place, stamp the generation. Modeled on lucet's pooling
/// allocator, where instance spawn is a free-list pop plus bounded
/// bookkeeping regardless of slot size.
pub const POOLED_SPAWN_NS: u64 = 2_000;
/// Fixed cost of a from-scratch spawn: allocate and wire the tracker,
/// queue links, region view, demux lane, and journal view.
pub const SCRATCH_SPAWN_BASE_NS: u64 = 200_000;
/// Per-page cost of a from-scratch spawn: sizing the arena, metadata,
/// and page tables for the slot's working set.
pub const SCRATCH_SPAWN_PER_PAGE_NS: u64 = 200;

/// Simulated spawn latency the arrival driver charges before a new
/// tenant's first touch: a slot claim when pooled, a full rebuild
/// proportional to the slot's pre-sized working set when not. The cost
/// model is deliberately decoupled from the pooling *mechanism* knob on
/// the backend, so the identity gate can flip the mechanism while
/// charging both runs the same simulated cost.
pub fn spawn_cost_ns(pooled: bool, slot_pages: u64) -> u64 {
    if pooled {
        POOLED_SPAWN_NS
    } else {
        SCRATCH_SPAWN_BASE_NS + SCRATCH_SPAWN_PER_PAGE_NS * slot_pages
    }
}

/// A fixed-capacity pool of tenant instance slots with a free list.
///
/// Spawn is a slot claim plus deterministic reset; teardown is drain →
/// scrub → recycle. The pool is the backing store for every HeMem
/// tenant configuration — slots indexed by `TenantId` — so the manager
/// never grows a `Vec` or rebuilds tracker state in the hot path.
#[derive(Debug, Clone)]
pub struct SlotPool {
    pub(crate) slots: Vec<TenantInstance>,
    /// Free (claimable) slot indices, sorted descending so `pop` yields
    /// the lowest index — keeps claim order deterministic and matches
    /// the pre-pool admission order.
    free: Vec<u32>,
    /// Spawn mechanism: in-place reset of recycled slots (default) or
    /// from-scratch rebuild (the pre-pool behavior, kept for the
    /// recycled-vs-fresh identity reduction).
    pooled: bool,
    tracker_cfg: TrackerConfig,
    /// Pages each slot pre-warms tracker capacity for at claim time.
    slot_pages: u64,
    stats: FleetStats,
}

impl SlotPool {
    /// Builds a pool of `capacity` slots. `live` slots start admitted
    /// (the static multi-tenant construction); otherwise every slot
    /// starts retired on the free list awaiting an arrival
    /// (churn/fleet construction).
    pub(crate) fn new(tracker_cfg: TrackerConfig, capacity: usize, live: bool) -> SlotPool {
        assert!(capacity > 0, "pool needs at least one slot");
        let lifecycle = if live {
            Lifecycle::Live
        } else {
            Lifecycle::Retired
        };
        let slots = (0..capacity as u32)
            .map(|i| TenantInstance::fresh(TenantId(i), tracker_cfg.clone(), lifecycle))
            .collect();
        let free = if live {
            Vec::new()
        } else {
            (0..capacity as u32).rev().collect()
        };
        SlotPool {
            slots,
            free,
            pooled: true,
            tracker_cfg,
            slot_pages: 0,
            stats: FleetStats::default(),
        }
    }

    /// Number of slots (live or parked).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the pool has no slots (never: construction asserts).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of slots currently parked on the free list.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Lowest-indexed claimable slot, if any.
    pub fn next_free(&self) -> Option<TenantId> {
        self.free.last().map(|&i| TenantId(i))
    }

    /// Whether slot `t` is parked on the free list.
    pub fn is_free(&self, t: TenantId) -> bool {
        self.free.contains(&t.0)
    }

    /// Parked slot indices (descending), for the audit's scrub check.
    pub(crate) fn free_list(&self) -> &[u32] {
        &self.free
    }

    /// Spawn mechanism in effect.
    pub fn pooled(&self) -> bool {
        self.pooled
    }

    /// Selects the spawn mechanism: pooled reset-in-place (default) or
    /// from-scratch rebuild.
    pub fn set_pooled(&mut self, pooled: bool) {
        self.pooled = pooled;
    }

    /// Sets the per-slot working-set pre-warm size, in pages.
    pub fn set_slot_pages(&mut self, pages: u64) {
        self.slot_pages = pages;
    }

    /// Lifecycle counters.
    pub fn stats(&self) -> FleetStats {
        let mut s = self.stats;
        s.generation_sum = self.slots.iter().map(|i| i.generation as u64).sum();
        s
    }

    /// Claims slot `t` for a new occupant at `generation`: removes it
    /// from the free list and resets it to a just-constructed state —
    /// in place when pooled, by rebuild when not. The caller (the
    /// manager's admission path) has already secured the quota grant.
    pub(crate) fn claim(&mut self, t: TenantId, generation: u32) {
        let i = t.0 as usize;
        // Deferred slots sit on the free list; slots constructed live
        // (static multi-tenant) are claimed at admission after a drain
        // put them there. Either way membership is removed exactly once.
        if let Some(pos) = self.free.iter().rposition(|&f| f == t.0) {
            self.free.remove(pos);
        }
        let inst = &mut self.slots[i];
        if self.pooled {
            inst.tracker.reset();
            inst.tracker.prewarm(self.slot_pages);
            self.stats.pooled_spawns += 1;
        } else {
            inst.tracker = PageTracker::new(self.tracker_cfg.clone());
            self.stats.scratch_spawns += 1;
        }
        inst.scrub_counters();
        inst.lifecycle = Lifecycle::Live;
        inst.generation = generation;
        self.stats.spawns += 1;
    }

    /// Scrubs a drained slot and parks it on the free list. The runtime
    /// has already rolled back the occupant's journal entries, unmapped
    /// its regions, and returned its quota; what remains is per-slot
    /// state, which must leave no trace for the next generation.
    pub(crate) fn recycle(&mut self, t: TenantId) {
        let i = t.0 as usize;
        let inst = &mut self.slots[i];
        debug_assert_eq!(
            inst.tracker.tracked_pages(),
            0,
            "recycle before the drain unmapped {t}'s regions"
        );
        self.stats.scrubbed_pages += inst.tracker.footprint_pages();
        inst.tracker.reset();
        inst.scrub_counters();
        debug_assert!(inst.is_scrubbed(), "scrub left occupant state behind");
        // Insert keeping the descending order so the next claim still
        // pops the lowest free index deterministically.
        let pos = self
            .free
            .binary_search_by(|&f| t.0.cmp(&f))
            .expect_err("slot recycled twice");
        self.free.insert(pos, t.0);
        self.stats.recycles += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_vmm::PageId;
    use hemem_vmm::RegionId;

    #[test]
    fn deferred_pool_claims_lowest_slot_first() {
        let mut p = SlotPool::new(TrackerConfig::default(), 4, false);
        assert_eq!(p.free_slots(), 4);
        assert_eq!(p.next_free(), Some(TenantId(0)));
        p.claim(TenantId(0), 1);
        assert_eq!(p.next_free(), Some(TenantId(1)));
        p.claim(TenantId(2), 1);
        assert_eq!(p.next_free(), Some(TenantId(1)));
        assert_eq!(p.free_slots(), 2);
        assert_eq!(p.stats().spawns, 2);
    }

    #[test]
    fn recycle_scrubs_and_reinserts_in_order() {
        let mut p = SlotPool::new(TrackerConfig::default(), 3, false);
        for i in 0..3 {
            p.claim(TenantId(i), 1);
        }
        // Dirty slot 1 with a previous occupant's state.
        let inst = &mut p.slots[1];
        inst.tracker.add_region(RegionId(7), 16);
        inst.tracker.record(
            PageId {
                region: RegionId(7),
                index: 3,
            },
            false,
            Ns::ZERO,
        );
        inst.total_nvm_loads = 9;
        inst.samples_applied = 4;
        inst.lifecycle = Lifecycle::Retired;
        p.slots[1].tracker.remove_region(RegionId(7));
        p.recycle(TenantId(1));
        assert!(p.slots[1].is_scrubbed());
        assert_eq!(p.next_free(), Some(TenantId(1)));
        p.claim(TenantId(1), 2);
        assert_eq!(p.slots[1].generation, 2);
        assert_eq!(p.stats().recycles, 1);
        assert_eq!(p.stats().generation_sum, 1 + 2 + 1);
    }

    #[test]
    fn pooled_reset_is_logically_identical_to_scratch_rebuild() {
        // The identity reduction in miniature: drive a recycled slot
        // and a fresh tracker through the same sequence; their
        // observable state must match.
        let mut pooled = SlotPool::new(TrackerConfig::default(), 1, false);
        pooled.set_slot_pages(32);
        pooled.claim(TenantId(0), 1);
        pooled.slots[0].tracker.add_region(RegionId(1), 32);
        for i in 0..32 {
            pooled.slots[0].tracker.record(
                PageId {
                    region: RegionId(1),
                    index: i,
                },
                i % 3 == 0,
                Ns::ZERO,
            );
        }
        pooled.slots[0].tracker.remove_region(RegionId(1));
        pooled.slots[0].lifecycle = Lifecycle::Retired;
        pooled.recycle(TenantId(0));
        pooled.claim(TenantId(0), 2);

        let mut scratch = SlotPool::new(TrackerConfig::default(), 1, false);
        scratch.set_pooled(false);
        scratch.claim(TenantId(0), 2);

        for p in [&mut pooled, &mut scratch] {
            let t = &mut p.slots[0].tracker;
            t.add_region(RegionId(2), 8);
            for i in 0..8 {
                t.record(
                    PageId {
                        region: RegionId(2),
                        index: i,
                    },
                    false,
                    Ns::ZERO,
                );
            }
        }
        let a = &pooled.slots[0].tracker;
        let b = &scratch.slots[0].tracker;
        assert_eq!(a.stats().records, b.stats().records);
        assert_eq!(a.tracked_pages(), b.tracked_pages());
        assert_eq!(a.cool_clock(), b.cool_clock());
    }

    #[test]
    fn spawn_cost_model_separates_pooled_from_scratch() {
        let pages = 4096;
        let pooled = spawn_cost_ns(true, pages);
        let scratch = spawn_cost_ns(false, pages);
        assert!(
            scratch >= 5 * pooled,
            "pooling must buy at least the gated 5x ({pooled} vs {scratch})"
        );
    }
}
