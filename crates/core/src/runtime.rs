//! Deterministic event-loop runtime driving a [`TieredBackend`] under a
//! workload.
//!
//! Workloads own the outer loop: they create regions with [`Sim::mmap`],
//! warm them with [`Sim::populate`], submit [`AccessBatch`]es per
//! simulated thread, and pump [`Sim::step`] — which returns
//! [`Event::ThreadReady`] / [`Event::Custom`] to the workload while
//! handling backend ticks, PEBS drains, and migration completions
//! internally.

use std::collections::HashMap;

use hemem_memdev::{MemOp, Pattern};
use hemem_pebs::{SampleRecord, SampleType};
use hemem_sim::{EventQueue, LatencyClass, Ns};
use hemem_vmm::{FaultKind, FaultThread, PageId, PageSize, PhysPage, RegionId, RegionKind, Tier};

use crate::audit::{audit_machine, AuditViolation};
use crate::backend::{AccessBatch, CopyMechanism, MigrationJob, TieredBackend};
use crate::error::MemError;
use crate::journal::{ShadowIntent, TxnState};
use crate::machine::{zero_fill, MachineConfig, MachineCore, TierHealth, WatchdogConfig};

/// Events visible to (or scheduled by) workload drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A workload thread finished its batch and can submit the next one.
    ThreadReady(u32),
    /// Backend background wake-up (policy thread, scanner).
    BackendTick,
    /// PEBS-thread buffer drain.
    PebsDrain,
    /// A page migration completed.
    MigrationDone(u64),
    /// A page finished swapping out to disk.
    SwapOutDone(u64),
    /// Injected kill of the manager process (its threads stop; the
    /// application and its memory survive).
    ManagerKill,
    /// Watchdog liveness check over the policy cadence and the fault
    /// thread.
    WatchdogCheck,
    /// Manager restart: replay the journal and resynchronize, after the
    /// DMA engine has quiesced.
    ManagerRecover,
    /// Periodic invariant audit.
    AuditTick,
    /// Injected kill of one tenant (by slot index): the tenant is
    /// quarantined — no further policy work is scheduled for it — and a
    /// [`Event::TenantDrain`] is scheduled for after DMA quiescence.
    TenantKill(u32),
    /// The killed tenant's in-flight work has quiesced: roll back its
    /// prepared journal entries, reclaim its frames across every tier,
    /// and return its quota to the arbiter.
    TenantDrain(u32),
    /// Seeded device degradation of the tier at this rank: bandwidth
    /// throttles and wear retirement sheds part of the free capacity.
    TierDegrade(u32),
    /// Seeded device failure of the tier at this rank: the tier is
    /// quarantined against allocations and its resident pages are
    /// evacuated (or poisoned, without an evacuation engine).
    TierOffline(u32),
    /// Seeded re-admission of the tier at this rank: the device returns
    /// empty at full bandwidth and capacity.
    TierReadmit(u32),
    /// Workload-defined timer.
    Custom(u64),
}

/// Bandwidth multiplier applied to a tier's device while Degraded.
pub const DEGRADED_THROTTLE: f64 = 0.25;

/// State of an in-progress evacuation of a failed tier.
struct EvacState {
    /// The offline tier being drained.
    tier: Tier,
    /// Pages still awaiting an evacuation migration, interleaved
    /// round-robin across tenants for fairness.
    queue: std::collections::VecDeque<PageId>,
}

/// Outcome of submitting a batch, for latency accounting.
#[derive(Debug, Clone, Copy)]
pub struct BatchReceipt {
    /// When the thread resumes.
    pub complete_at: Ns,
    /// Mean per-access latency (device + translation + stalls), before
    /// MLP overlap.
    pub mean_access_latency: Ns,
}

/// The simulation: machine + backend + event queue.
pub struct Sim<B: TieredBackend> {
    /// Machine state (public: workloads and experiments read counters).
    pub m: MachineCore,
    /// The tiered memory manager under test.
    pub backend: B,
    queue: EventQueue<Event>,
    pending_swaps: HashMap<u64, (PageId, u64)>,
    next_mig: u64,
    app_threads: u32,
    /// Per-thread TLB shootdown stall already charged (shootdowns stall
    /// every core, so each thread pays each shootdown once).
    shootdown_charged: HashMap<u32, Ns>,
    /// The manager process is down (killed); its threads stop running
    /// until [`Event::ManagerRecover`] restarts them.
    manager_down: bool,
    /// Watchdog configuration, resolved at construction: explicit config,
    /// or the default whenever kills are scheduled. `None` = no watchdog
    /// events at all (the clean-run fast path).
    watchdog: Option<WatchdogConfig>,
    /// When the policy thread promised to tick next (`None`: the backend
    /// declared no cadence). The watchdog treats a deadline far in the
    /// past as a missed-deadline.
    tick_deadline: Option<Ns>,
    /// Consecutive watchdog checks that found the policy deadline blown.
    watchdog_missed: u32,
    /// A [`Event::ManagerRecover`] is already scheduled.
    recover_pending: bool,
    /// Tenant that owns regions created by [`Sim::mmap`] from here on.
    /// [`TenantId::SOLO`] (the default) reproduces the single-process
    /// machine; a colocation driver switches this before each tenant's
    /// setup phase so unmodified workload code tags its regions.
    active_tenant: hemem_vmm::TenantId,
    /// Active evacuation of a failed tier, if any. While set, the
    /// journaled migration path is reserved for jobs off that tier.
    evac: Option<EvacState>,
    /// Pages whose data died with an offline device: the next fault on
    /// one surfaces a typed poisoned-page error to the owning tenant
    /// before a fresh zero page is mapped — never a silent wrong read.
    poisoned: std::collections::BTreeSet<PageId>,
}

impl<B: TieredBackend> Sim<B> {
    /// Creates a simulation and schedules the backend's first tick (and
    /// PEBS drains if the backend samples). Manager-kill instants from the
    /// fault plan, the watchdog, and the periodic auditor are scheduled
    /// here too — none of which exist in a clean default run, keeping the
    /// event stream (and therefore all downstream draws) bit-identical to
    /// a build without them.
    pub fn new(cfg: MachineConfig, backend: B) -> Sim<B> {
        let mut sim = Sim {
            m: MachineCore::new(cfg),
            backend,
            queue: EventQueue::new(),
            pending_swaps: HashMap::new(),
            next_mig: 0,
            app_threads: 0,
            shootdown_charged: HashMap::new(),
            manager_down: false,
            watchdog: None,
            tick_deadline: None,
            watchdog_missed: 0,
            recover_pending: false,
            active_tenant: hemem_vmm::TenantId::SOLO,
            evac: None,
            poisoned: std::collections::BTreeSet::new(),
        };
        sim.queue.push_at(Ns::ZERO, Event::BackendTick);
        if sim.backend.uses_pebs() {
            let iv = sim.m.pebs.config().drain_interval;
            sim.queue.push_at(iv, Event::PebsDrain);
        }
        let kills = sim.m.chaos.kill_times().to_vec();
        sim.watchdog = match (sim.m.cfg.watchdog.clone(), kills.is_empty()) {
            (Some(w), _) => Some(w),
            // Kills without an explicit watchdog get the default one:
            // nothing else in the sim could ever restart the manager.
            (None, false) => Some(WatchdogConfig::default()),
            (None, true) => None,
        };
        for t in kills {
            sim.queue.push_at(t, Event::ManagerKill);
        }
        // Tenant kills are explicit (tenant, instant) pairs; an empty
        // schedule pushes nothing, keeping churn-free runs bit-identical.
        for k in sim.m.chaos.tenant_kills().to_vec() {
            sim.queue.push_at(k.at, Event::TenantKill(k.tenant));
        }
        // Tier health schedules: explicit (tier rank, instant) pairs,
        // validated against this machine's tier vector. Empty schedules
        // push nothing, keeping health-free runs bit-identical.
        let n_tiers = sim.m.tiers().len() as u32;
        for f in sim.m.chaos.tier_degrades().to_vec() {
            assert!(
                f.tier < n_tiers,
                "tier_degrade_at rank {} out of range",
                f.tier
            );
            sim.queue.push_at(f.at, Event::TierDegrade(f.tier));
        }
        for f in sim.m.chaos.tier_fails().to_vec() {
            assert!(
                f.tier < n_tiers,
                "tier_fail_at rank {} out of range",
                f.tier
            );
            assert!(
                f.tier != 0,
                "DRAM (rank 0) is the anchor tier and cannot go offline"
            );
            sim.queue.push_at(f.at, Event::TierOffline(f.tier));
        }
        for f in sim.m.chaos.tier_readmits().to_vec() {
            assert!(
                f.tier < n_tiers,
                "tier_readmit_at rank {} out of range",
                f.tier
            );
            sim.queue.push_at(f.at, Event::TierReadmit(f.tier));
        }
        if let Some(w) = &sim.watchdog {
            sim.queue.push_at(w.period, Event::WatchdogCheck);
        }
        if let Some(p) = sim.m.cfg.audit_period {
            sim.queue.push_at(p, Event::AuditTick);
        }
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> Ns {
        self.queue.now()
    }

    /// Whether the manager process is currently down (killed and not yet
    /// restarted by the watchdog).
    pub fn manager_down(&self) -> bool {
        self.manager_down
    }

    /// Kills the manager immediately (test/bench hook; scheduled kills
    /// come from [`hemem_sim::FaultPlanConfig::manager_kill_at`]). The
    /// watchdog — if configured — detects the dead policy cadence and
    /// restarts the manager; without one the manager stays down.
    pub fn inject_manager_kill(&mut self) {
        let now = self.now();
        self.kill_manager(now);
    }

    /// Declares `n` application threads (for core-contention accounting).
    pub fn set_app_threads(&mut self, n: u32) {
        self.app_threads = n;
    }

    /// Switches the tenant that owns subsequently created regions (see
    /// the field docs; colocation drivers call this around each tenant's
    /// setup).
    pub fn set_active_tenant(&mut self, tenant: hemem_vmm::TenantId) {
        self.active_tenant = tenant;
    }

    /// The tenant new regions are currently attributed to.
    pub fn active_tenant(&self) -> hemem_vmm::TenantId {
        self.active_tenant
    }

    /// Time-dilation factor from core oversubscription: application plus
    /// backend helper threads versus physical cores.
    pub fn dilation(&self) -> f64 {
        let runnable = self.app_threads + self.backend.background_threads();
        if runnable <= self.m.cores.cores() {
            1.0
        } else {
            runnable as f64 / self.m.cores.cores() as f64
        }
    }

    /// Creates a region of `len` bytes. The backend chooses whether to
    /// manage it (huge pages, tiered) or forward it to the kernel (base
    /// pages, plain DRAM).
    pub fn mmap(&mut self, len: u64) -> RegionId {
        let managed = self.backend.wants_to_manage(len);
        let (ps, kind) = if managed {
            (self.m.cfg.managed_page, RegionKind::ManagedHeap)
        } else {
            (PageSize::Base4K, RegionKind::SmallAnon)
        };
        let id = self.m.space.mmap_tagged(len, ps, kind, self.active_tenant);
        self.backend.on_mmap(&mut self.m, id);
        id
    }

    /// Destroys a region, returning its physical pages to the pools.
    pub fn munmap(&mut self, id: RegionId) {
        self.backend.on_munmap(&mut self.m, id);
        let region = self.m.space.munmap(id);
        if region.kind() == RegionKind::ManagedHeap {
            for i in 0..region.page_count() {
                if let hemem_vmm::PageState::Mapped { tier, phys, .. } = region.state(i) {
                    self.m.pool_mut(tier).free(phys);
                }
            }
            for (_, phys) in region.shadows() {
                self.m.nvm_pool.free(phys);
                self.m.nvm_pool.note_unshadow();
                self.m.shadow.dropped += 1;
            }
        }
    }

    /// First-touches every unmapped page of `region` sequentially (the
    /// warm-up fill from disk in the paper's workloads), then advances
    /// virtual time past the fill: the zero-fill device traffic of a
    /// multi-hundred-gigabyte region takes real (virtual) minutes, and
    /// leaving it as backlog would stall every later bulk transfer.
    /// Returns the total warm-up cost.
    pub fn populate(&mut self, region: RegionId, is_write: bool) -> Ns {
        let now = self.now();
        let pages = self.m.space.region(region).page_count();
        let mut total = Ns::ZERO;
        for i in 0..pages {
            if matches!(
                self.m.space.region(region).state(i),
                hemem_vmm::PageState::Unmapped
            ) {
                total += self.fault_page(PageId { region, index: i }, is_write, now + total);
            }
            if i % 2048 == 2047 {
                // Yield to background work mid-fill (policy/swap keep up
                // with the fill instead of facing it all at once).
                total = self.pace_fill(now, total);
            }
        }
        self.drain_fill_backlog(now, total)
    }

    /// Advances the clock to the current fill frontier (faults plus bulk
    /// backlog) so background events interleave with a long fill.
    fn pace_fill(&mut self, start: Ns, fault_cost: Ns) -> Ns {
        let at = Ns(start.as_nanos() + fault_cost.as_nanos());
        let mut drain = Ns::ZERO;
        for &tier in self.m.tiers() {
            drain = drain.max(self.m.tier_bulk_queue_delay(at, tier, MemOp::Write));
        }
        let total = fault_cost + drain;
        self.run_until(Ns(start.as_nanos() + total.as_nanos()));
        total
    }

    /// Advances past any outstanding zero-fill backlog left by a fault
    /// storm; returns the total elapsed warm-up time.
    fn drain_fill_backlog(&mut self, start: Ns, fault_cost: Ns) -> Ns {
        let after = Ns(start.as_nanos() + fault_cost.as_nanos());
        let mut drain = Ns::ZERO;
        for &tier in self.m.tiers() {
            let d = self.m.tier_bulk_queue_delay(after, tier, MemOp::Write);
            drain = drain.max(d);
        }
        let total = fault_cost + drain;
        self.run_until(Ns(start.as_nanos() + total.as_nanos()));
        total
    }

    /// Like [`Sim::populate`], but first-touches pages in random order —
    /// the placement a parallel multi-threaded load phase produces, where
    /// no address range monopolizes the DRAM that fills up first.
    pub fn populate_shuffled(&mut self, region: RegionId, is_write: bool) -> Ns {
        let now = self.now();
        let pages = self.m.space.region(region).page_count();
        let mut order: Vec<u64> = (0..pages).collect();
        let mut rng = self.m.rng.fork(0x504f50); // "POP"
        rng.shuffle(&mut order);
        let mut total = Ns::ZERO;
        for (n, i) in order.into_iter().enumerate() {
            if matches!(
                self.m.space.region(region).state(i),
                hemem_vmm::PageState::Unmapped
            ) {
                total += self.fault_page(PageId { region, index: i }, is_write, now + total);
            }
            if n % 2048 == 2047 {
                total = self.pace_fill(now, total);
            }
        }
        self.drain_fill_backlog(now, total)
    }

    /// Advances virtual time by `delay`, processing any internal events
    /// that fall inside the window.
    pub fn advance(&mut self, delay: Ns) {
        let target = Ns(self.now().as_nanos() + delay.as_nanos());
        self.run_until(target);
    }

    /// Processes internal events until `target`; the clock lands on
    /// `target` exactly. Workload events (`ThreadReady` / `Custom`)
    /// encountered in the window are dropped — use [`Sim::step`] when
    /// workload threads are live.
    pub fn run_until(&mut self, target: Ns) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= target => {
                    if let Some((now, ev)) = self.queue.pop() {
                        self.dispatch_internal(now, ev);
                    }
                }
                _ => break,
            }
        }
        self.queue.push_at(target, Event::Custom(u64::MAX));
        self.queue.pop();
    }

    /// Schedules a workload timer.
    pub fn schedule_custom(&mut self, at: Ns, tag: u64) {
        self.queue.push_at(at, Event::Custom(tag));
    }

    /// Schedules a thread to become ready at `at` (initial kick-off).
    pub fn schedule_thread(&mut self, at: Ns, tid: u32) {
        self.queue.push_at(at, Event::ThreadReady(tid));
    }

    /// Pops events, handling internal ones, until a workload-visible event
    /// (or queue exhaustion).
    pub fn step(&mut self) -> Option<(Ns, Event)> {
        loop {
            let (now, ev) = self.queue.pop()?;
            match ev {
                Event::ThreadReady(_) | Event::Custom(_) => return Some((now, ev)),
                other => self.dispatch_internal(now, other),
            }
        }
    }

    fn dispatch_internal(&mut self, now: Ns, ev: Event) {
        // A killed manager takes its threads with it: policy ticks, PEBS
        // drains, and completion callbacks stop firing (their journal
        // entries stay Prepared for recovery to roll back). Application
        // faults keep working — the kernel resolves them, not the manager.
        if self.manager_down
            && matches!(
                ev,
                Event::BackendTick
                    | Event::PebsDrain
                    | Event::MigrationDone(_)
                    | Event::SwapOutDone(_)
            )
        {
            return;
        }
        match ev {
            Event::BackendTick => {
                let out = self.backend.tick(&mut self.m, now);
                self.m
                    .trace
                    .observe_ns(LatencyClass::PolicyPass, out.cpu_time);
                self.start_migrations(now, &out.migrations);
                self.start_swap_outs(now, &out.swap_outs);
                if let Some(next) = out.next_wake {
                    let next = next.max(Ns(now.as_nanos() + 1));
                    self.tick_deadline = Some(next);
                    self.queue.push_at(next, Event::BackendTick);
                } else {
                    self.tick_deadline = None;
                }
            }
            Event::PebsDrain => {
                // Injected overflow storm: the hardware wrapped the buffer
                // before this drain; the backlog is lost but the tracker
                // keeps classifying on later samples.
                if self.m.chaos.pebs_storm() {
                    self.m.pebs.drop_pending();
                }
                let pending = self.m.pebs.pending() as u64;
                self.m.trace.observe(LatencyClass::PebsBacklog, pending);
                let budget = self.m.pebs.drain_budget();
                let samples = self.m.pebs.drain(budget);
                self.m.trace.instant(
                    now,
                    "pebs_drain",
                    "pebs",
                    &[("pending", pending), ("drained", samples.len() as u64)],
                );
                if !samples.is_empty() {
                    self.m.invalidate_shadows_on_stores(&samples);
                    self.backend.on_samples(&mut self.m, &samples, now);
                }
                // Self-tuning sample period: after each drain the
                // adaptive controller inspects the drop fraction and
                // backlog of the window just drained and may move the
                // period. A decision emits a trace instant so the
                // trajectory is visible alongside the drains.
                if self.m.pebs.is_adaptive() {
                    if let Some(period) = self.m.pebs.adapt_after_drain() {
                        self.m.trace.instant(
                            now,
                            "pebs_adapt",
                            "pebs",
                            &[("sample_period", period)],
                        );
                    }
                }
                let iv = self.m.pebs.config().drain_interval;
                self.queue.push_after(iv, Event::PebsDrain);
            }
            Event::MigrationDone(id) => self.finish_migration(now, id),
            Event::SwapOutDone(id) => self.finish_swap_out(now, id),
            Event::ManagerKill => self.kill_manager(now),
            Event::WatchdogCheck => self.watchdog_check(now),
            Event::ManagerRecover => self.recover_manager(now),
            Event::AuditTick => {
                self.run_audit(false);
                if let Some(p) = self.m.cfg.audit_period {
                    self.queue.push_after(p, Event::AuditTick);
                }
            }
            Event::TenantKill(t) => self.kill_tenant(now, hemem_vmm::TenantId(t)),
            Event::TenantDrain(t) => self.drain_tenant(now, hemem_vmm::TenantId(t)),
            // Device health transitions are machine-level (the device
            // does not care whether the manager process is up); the
            // evacuation pump alone waits for a live manager.
            Event::TierDegrade(r) => self.degrade_tier(now, Tier::ALL[r as usize]),
            Event::TierOffline(r) => self.fail_tier(now, Tier::ALL[r as usize]),
            Event::TierReadmit(r) => self.readmit_tier(now, Tier::ALL[r as usize]),
            Event::ThreadReady(_) | Event::Custom(_) => {
                // Dropped: run_until discards workload events in its window.
            }
        }
    }

    /// Kills the manager process: its policy, PEBS, and completion
    /// handling stop until the watchdog restarts it. The application (and
    /// kernel-side fault handling) keeps running.
    fn kill_manager(&mut self, _now: Ns) {
        if !self.manager_down {
            self.manager_down = true;
            self.m.recovery.manager_kills += 1;
        }
    }

    /// Kills one tenant immediately (test/bench hook; scheduled kills
    /// come from [`hemem_sim::FaultPlanConfig::tenant_kill_at`]).
    pub fn inject_tenant_kill(&mut self, tenant: hemem_vmm::TenantId) {
        let now = self.now();
        self.kill_tenant(now, tenant);
    }

    /// A tenant died: quarantine it (the backend stops scheduling its
    /// policy work, placements, and samples), roll its in-flight
    /// swap-outs back, and schedule the drain for after the DMA engine
    /// has quiesced — its prepared migrations must not have frames
    /// reclaimed under a copy still in flight, mirroring the manager
    /// recovery path.
    fn kill_tenant(&mut self, now: Ns, tenant: hemem_vmm::TenantId) {
        self.m.recovery.tenant_kills += 1;
        self.m.trace.instant(
            now,
            "tenant_kill",
            "lifecycle",
            &[("tenant", tenant.0 as u64)],
        );
        self.backend.tenant_killed(&mut self.m, tenant, now);
        // In-flight swap-outs of the tenant's pages: the owning process
        // is gone, so the copy is abandoned and the page unlocked (the
        // drain reclaims its frame either way).
        let mut swaps: Vec<u64> = self
            .pending_swaps
            .iter()
            .filter(|(_, (page, _))| self.m.space.region(page.region).tenant() == tenant)
            .map(|(&id, _)| id)
            .collect();
        swaps.sort_unstable();
        for id in swaps {
            let (page, _slot) = self.pending_swaps.remove(&id).expect("key just listed");
            let _ = self
                .m
                .space
                .region_mut(page.region)
                .try_set_wp(page.index, false);
            self.m.recovery.swap_rollbacks += 1;
        }
        let at = now.max(self.m.dma.quiesce_at());
        self.queue.push_at(at, Event::TenantDrain(tenant.0));
    }

    /// Completes a killed tenant's teardown once its DMA traffic has
    /// quiesced: rolls back its prepared journal entries, unmaps its
    /// regions and reclaims their frames across every tier, and hands
    /// the backend the final `tenant_drained` notification (which
    /// returns the quota to the arbiter). After this, the
    /// `FrameLeakAfterRetire` / `ZombieTenantQuota` audits must find
    /// nothing attributed to the tenant.
    fn drain_tenant(&mut self, now: Ns, tenant: hemem_vmm::TenantId) {
        // Journal rollback, in transaction order: prepared entries lost
        // their owner; release the destination frame and unlock the
        // source. Entries whose copy already committed flipped the
        // mapping earlier — their frames fall out with the region walk
        // below.
        let ids: Vec<u64> = self
            .m
            .journal
            .entries()
            .filter(|(_, e)| e.tenant == tenant && e.state == TxnState::Prepared)
            .map(|(id, _)| id)
            .collect();
        for id in ids {
            let e = self.m.journal.abort(id).expect("entry just listed");
            let _ = self
                .m
                .space
                .region_mut(e.page.region)
                .try_set_wp(e.page.index, false);
            self.m.pool_mut(e.dst_tier).free(e.dst_phys);
            self.m.recovery.journal_rollbacks += 1;
            self.m
                .trace
                .span_drop(now, "migration", "migration", id, &[("rollback", 1)]);
        }
        // Reclaim the tenant's memory across every tier: unmap each of
        // its regions and return ManagedHeap frames to their pools
        // (SmallAnon pages are kernel-backed and free with the region).
        let regions: Vec<RegionId> = self
            .m
            .space
            .regions()
            .filter(|r| r.tenant() == tenant)
            .map(|r| r.id())
            .collect();
        let mut reclaimed = 0u64;
        for &id in &regions {
            self.backend.on_munmap(&mut self.m, id);
            let region = self.m.space.munmap(id);
            if region.kind() == RegionKind::ManagedHeap {
                for i in 0..region.page_count() {
                    if let hemem_vmm::PageState::Mapped { tier, phys, .. } = region.state(i) {
                        self.m.pool_mut(tier).free(phys);
                        reclaimed += 1;
                    }
                }
                for (_, phys) in region.shadows() {
                    self.m.nvm_pool.free(phys);
                    self.m.nvm_pool.note_unshadow();
                    self.m.shadow.dropped += 1;
                }
            }
        }
        self.backend.tenant_drained(&mut self.m, tenant, now);
        self.m.recovery.tenant_drains += 1;
        self.m.trace.instant(
            now,
            "tenant_drained",
            "lifecycle",
            &[("tenant", tenant.0 as u64), ("reclaimed_pages", reclaimed)],
        );
        // The drain just invalidated every PageId in the dropped regions:
        // purge them from the evacuation queue and the poisoned set, then
        // give the evacuation (if any) a chance to finish — the drain may
        // have freed the last frames it was waiting on.
        if let Some(evac) = self.evac.as_mut() {
            evac.queue.retain(|p| !regions.contains(&p.region));
        }
        self.poisoned.retain(|p| !regions.contains(&p.region));
        if self.evac.is_some() {
            self.pump_evacuation(now);
        }
    }

    /// Current health of each tier, driven by the seeded schedules or the
    /// manual injection hooks below.
    pub fn evacuating(&self) -> Option<Tier> {
        self.evac.as_ref().map(|e| e.tier)
    }

    /// Degrades a tier immediately (test/bench hook; scheduled
    /// degradations come from [`hemem_sim::FaultPlanConfig::tier_degrade_at`]).
    pub fn inject_tier_degrade(&mut self, tier: Tier) {
        let now = self.now();
        self.degrade_tier(now, tier);
    }

    /// Fails a tier immediately (test/bench hook; scheduled failures come
    /// from [`hemem_sim::FaultPlanConfig::tier_fail_at`]).
    pub fn inject_tier_fail(&mut self, tier: Tier) {
        assert!(tier != Tier::Dram, "DRAM is the anchor tier");
        let now = self.now();
        self.fail_tier(now, tier);
    }

    /// Readmits a failed or degraded tier immediately (test/bench hook).
    pub fn inject_tier_readmit(&mut self, tier: Tier) {
        let now = self.now();
        self.readmit_tier(now, tier);
    }

    /// `Healthy -> Degraded`: the device throttles to a quarter of its
    /// bandwidth and wear retirement sheds an eighth of the currently
    /// free capacity (DRAM degrades to the throttle only — DIMMs do not
    /// retire rows in this model).
    fn degrade_tier(&mut self, now: Ns, tier: Tier) {
        if self.m.tier_health(tier) != TierHealth::Healthy {
            return;
        }
        self.m.health.health[tier.rank()] = TierHealth::Degraded;
        self.m.health.degrades += 1;
        self.m.set_tier_throttle(tier, DEGRADED_THROTTLE);
        let shed = if tier == Tier::Dram {
            0
        } else {
            self.m.pool(tier).free_pages() / 8
        };
        let taken = if shed > 0 {
            self.m.pool_mut(tier).retire_free(shed)
        } else {
            0
        };
        self.m.health.health_retired[tier.rank()] += taken;
        self.m.trace.instant(
            now,
            "tier_degrade",
            "health",
            &[("tier", tier.rank() as u64), ("retired_pages", taken)],
        );
    }

    /// `-> Offline`: quarantines the tier against allocations, rolls back
    /// prepared migrations *into* it (their destination frames died with
    /// the device), and either starts the evacuation engine or — without
    /// one — poisons every resident page. Copies already reading *off*
    /// the tier complete: the model is a failed-in-place device that
    /// stays readable (read-only mode) while it drains.
    fn fail_tier(&mut self, now: Ns, tier: Tier) {
        if self.m.tier_health(tier) == TierHealth::Offline {
            return;
        }
        self.m.health.health[tier.rank()] = TierHealth::Offline;
        self.m.health.offlines += 1;
        self.m.trace.instant(
            now,
            "tier_offline",
            "health",
            &[("tier", tier.rank() as u64)],
        );
        // Shadow frames live on NVM; a dead NVM device takes its clean
        // copies with it. They hold no authoritative data, so dropping
        // them loses nothing — the primaries stay mapped in DRAM.
        if tier == Tier::Nvm {
            self.m.drop_all_shadows();
        }
        let ids: Vec<u64> = self
            .m
            .journal
            .entries()
            .filter(|(_, e)| e.state == TxnState::Prepared && e.dst_tier == tier)
            .map(|(id, _)| id)
            .collect();
        for id in ids {
            let e = self.m.journal.abort(id).expect("entry just listed");
            let _ = self
                .m
                .space
                .region_mut(e.page.region)
                .try_set_wp(e.page.index, false);
            self.m.pool_mut(e.dst_tier).free(e.dst_phys);
            self.m.recovery.journal_rollbacks += 1;
            self.m
                .trace
                .span_drop(now, "migration", "migration", id, &[("rollback", 1)]);
            self.backend
                .migration_aborted(&mut self.m, e.page, e.src_tier);
        }
        if self.m.cfg.evacuate_on_failure {
            let queue = self.collect_evacuation_queue(tier);
            self.m.trace.instant(
                now,
                "evacuation_begin",
                "health",
                &[("tier", tier.rank() as u64), ("pages", queue.len() as u64)],
            );
            self.evac = Some(EvacState { tier, queue });
            self.pump_evacuation(now);
        } else {
            self.poison_tier(now, tier);
            self.m.health.evac_done[tier.rank()] = true;
        }
    }

    /// `-> Healthy` again: cancels any evacuation still draining the
    /// tier, restores full bandwidth, and returns health-retired frames
    /// to the free list. The device comes back *empty* — whatever was
    /// evacuated stays where it landed.
    fn readmit_tier(&mut self, now: Ns, tier: Tier) {
        if self.m.tier_health(tier) == TierHealth::Healthy {
            return;
        }
        if self.evac.as_ref().is_some_and(|e| e.tier == tier) {
            self.evac = None;
        }
        self.m.set_tier_throttle(tier, 1.0);
        let restored = self.m.pool_mut(tier).unretire_health();
        self.m.health.health_retired[tier.rank()] = 0;
        self.m.health.health[tier.rank()] = TierHealth::Healthy;
        self.m.health.evac_done[tier.rank()] = false;
        self.m.health.readmits += 1;
        self.m.trace.instant(
            now,
            "tier_readmit",
            "health",
            &[("tier", tier.rank() as u64), ("restored_pages", restored)],
        );
    }

    /// Scans the address space for pages resident on `tier`, interleaved
    /// round-robin across tenants so one large tenant cannot starve the
    /// others' evacuations. Write-protected pages (mid-migration or
    /// mid-swap-out) are skipped; the drain-time rescan picks up whatever
    /// they resolve to.
    fn collect_evacuation_queue(&self, tier: Tier) -> std::collections::VecDeque<PageId> {
        let mut per_tenant: std::collections::BTreeMap<u32, Vec<PageId>> = Default::default();
        for r in self.m.space.regions() {
            if r.kind() != RegionKind::ManagedHeap {
                continue;
            }
            for i in 0..r.page_count() {
                if let hemem_vmm::PageState::Mapped {
                    tier: t, wp: false, ..
                } = r.state(i)
                {
                    if t == tier {
                        per_tenant.entry(r.tenant().0).or_default().push(PageId {
                            region: r.id(),
                            index: i,
                        });
                    }
                }
            }
        }
        let mut lists: Vec<_> = per_tenant.into_values().map(|v| v.into_iter()).collect();
        let mut queue = std::collections::VecDeque::new();
        let mut live = true;
        while live {
            live = false;
            for it in &mut lists {
                if let Some(p) = it.next() {
                    queue.push_back(p);
                    live = true;
                }
            }
        }
        queue
    }

    /// Drives the evacuation forward: starts journaled migrations off the
    /// failed tier up to a bounded in-flight budget, poisons pages with
    /// nowhere to go, and declares the evacuation done once a full rescan
    /// finds the tier empty. Idle while the manager is down — migrations
    /// need its threads — and re-entered from every completion hook.
    fn pump_evacuation(&mut self, now: Ns) {
        const EVAC_MAX_INFLIGHT: usize = 8;
        if self.manager_down {
            return;
        }
        let Some(tier) = self.evac.as_ref().map(|e| e.tier) else {
            return;
        };
        // `progress` guards the rescan: without it, a page locked by an
        // in-flight swap-out would make rescan-pop-skip spin forever.
        let mut progress = true;
        loop {
            let inflight = self.m.journal.prepared_freeing(tier) as usize;
            if inflight >= EVAC_MAX_INFLIGHT {
                return;
            }
            let Some(page) = self.evac.as_mut().and_then(|e| e.queue.pop_front()) else {
                if inflight > 0 || !progress {
                    return; // completions or unlocks will re-pump
                }
                progress = false;
                let queue = self.collect_evacuation_queue(tier);
                if queue.is_empty() {
                    self.m.health.evac_done[tier.rank()] = true;
                    self.m.trace.instant(
                        now,
                        "evacuation_done",
                        "health",
                        &[
                            ("tier", tier.rank() as u64),
                            ("evacuated", self.m.health.evacuated_pages),
                            ("poisoned", self.m.health.poisoned_pages),
                        ],
                    );
                    self.evac = None;
                    return;
                }
                self.evac.as_mut().expect("checked above").queue = queue;
                continue;
            };
            // Pages can move or lock between the scan and this pop.
            match self.m.space.region(page.region).state(page.index) {
                hemem_vmm::PageState::Mapped {
                    tier: t, wp: false, ..
                } if t == tier => {}
                _ => continue,
            }
            match self.backend.evacuation_dst(&mut self.m, page, tier) {
                Some(dst) => {
                    let before = self.m.stats.migrations_started;
                    self.start_migrations(
                        now,
                        &[MigrationJob {
                            page,
                            dst,
                            mechanism: CopyMechanism::Threads(4),
                        }],
                    );
                    if self.m.stats.migrations_started > before {
                        progress = true;
                    }
                }
                None => {
                    // Nowhere to put it: typed data loss to the owner.
                    self.poison_page(now, page);
                    progress = true;
                }
            }
        }
    }

    /// Poisons one resident page: its frame is freed, the data is gone,
    /// and the owning tenant's next fault on it gets a typed
    /// poisoned-page notification instead of a silent wrong read.
    fn poison_page(&mut self, now: Ns, page: PageId) {
        let tenant = self.m.space.region(page.region).tenant();
        // A stale clean copy of lost data must not survive as a
        // demotion target.
        if self.m.drop_shadow_of(page) {
            self.m.shadow.dropped += 1;
        }
        let (tier, phys) = self.m.space.region_mut(page.region).unmap_page(page.index);
        self.m.pool_mut(tier).free(phys);
        self.m.health.poisoned_pages += 1;
        *self.m.health.tenant_poisoned.entry(tenant.0).or_insert(0) += 1;
        self.poisoned.insert(page);
        self.backend.swapped_out(&mut self.m, page);
        self.m.trace.instant(
            now,
            "page_poisoned",
            "health",
            &[("tenant", tenant.0 as u64)],
        );
    }

    /// The no-evacuation baseline: the device died outright. Copies and
    /// swap-outs still reading off it are abandoned (rolled back in
    /// transaction order), then every resident page is poisoned.
    fn poison_tier(&mut self, now: Ns, tier: Tier) {
        let ids: Vec<u64> = self
            .m
            .journal
            .entries()
            .filter(|(_, e)| e.state == TxnState::Prepared && e.src_tier == tier)
            .map(|(id, _)| id)
            .collect();
        for id in ids {
            let e = self.m.journal.abort(id).expect("entry just listed");
            let _ = self
                .m
                .space
                .region_mut(e.page.region)
                .try_set_wp(e.page.index, false);
            self.m.pool_mut(e.dst_tier).free(e.dst_phys);
            self.m.recovery.journal_rollbacks += 1;
            self.m
                .trace
                .span_drop(now, "migration", "migration", id, &[("rollback", 1)]);
        }
        let mut swaps: Vec<u64> = self
            .pending_swaps
            .iter()
            .filter(|(_, (page, _))| {
                matches!(
                    self.m.space.region(page.region).state(page.index),
                    hemem_vmm::PageState::Mapped { tier: t, .. } if t == tier
                )
            })
            .map(|(&id, _)| id)
            .collect();
        swaps.sort_unstable();
        for id in swaps {
            let (page, _slot) = self.pending_swaps.remove(&id).expect("key just listed");
            let _ = self
                .m
                .space
                .region_mut(page.region)
                .try_set_wp(page.index, false);
            self.m.recovery.swap_rollbacks += 1;
        }
        let mut pages = Vec::new();
        for r in self.m.space.regions() {
            if r.kind() != RegionKind::ManagedHeap {
                continue;
            }
            for i in 0..r.page_count() {
                if let hemem_vmm::PageState::Mapped { tier: t, .. } = r.state(i) {
                    if t == tier {
                        pages.push(PageId {
                            region: r.id(),
                            index: i,
                        });
                    }
                }
            }
        }
        for page in pages {
            self.poison_page(now, page);
        }
    }

    /// One watchdog period: checks the policy-tick deadline and the fault
    /// thread, escalating a missed-deadline streak to a manager restart.
    fn watchdog_check(&mut self, now: Ns) {
        let Some(cfg) = self.watchdog.clone() else {
            return;
        };
        // Policy deadline monitor: the backend promised a tick at
        // `tick_deadline`; a full extra period of slack past that counts
        // as one missed deadline (`None` = no cadence, nothing to miss).
        let blown = match self.tick_deadline {
            Some(d) => now.as_nanos() > d.as_nanos() + cfg.period.as_nanos(),
            None => self.manager_down,
        };
        if blown {
            self.watchdog_missed += 1;
        } else {
            self.watchdog_missed = 0;
        }
        if self.watchdog_missed >= cfg.miss_streak && !self.recover_pending {
            // Declare the manager dead (it may already be, after a kill)
            // and schedule the restart — but not before every in-flight
            // DMA descriptor has landed: recovery frees destination
            // frames, and a late DMA write into a recycled frame would
            // corrupt whatever was reallocated there.
            self.manager_down = true;
            self.recover_pending = true;
            let at = now.max(self.m.dma.quiesce_at());
            self.queue.push_at(at, Event::ManagerRecover);
        }
        // Fault-thread supervision: a wedged handler (injected stall) with
        // a backlog past the limit is restarted in place; queued faults
        // re-admit against the fresh thread.
        if self.m.fault_thread.backlog(now) > cfg.fault_backlog_limit {
            self.m.fault_thread = FaultThread::new();
            self.m.recovery.watchdog_restarts += 1;
        }
        self.queue.push_after(cfg.period, Event::WatchdogCheck);
    }

    /// Restarts the manager: rolls uncommitted migrations back from the
    /// journal, rolls in-flight swap-outs back, resynchronizes the backend
    /// from live machine state, and reschedules the management threads.
    fn recover_manager(&mut self, now: Ns) {
        self.recover_pending = false;
        if !self.manager_down {
            return;
        }
        // In-flight swap-outs: the copy died with the manager; unlock the
        // page (it is still fully resident at the source).
        let mut swaps: Vec<u64> = self.pending_swaps.keys().copied().collect();
        swaps.sort_unstable();
        for id in swaps {
            let (page, _slot) = self.pending_swaps.remove(&id).expect("key just listed");
            let _ = self
                .m
                .space
                .region_mut(page.region)
                .try_set_wp(page.index, false);
            self.m.recovery.swap_rollbacks += 1;
        }
        // Journal replay, in transaction order. Prepared entries lost
        // their copy: release the destination frame and unlock the source
        // (which never stopped being the authoritative mapping). Committed
        // entries already flipped the mapping; nothing left to do.
        for (id, e) in self.m.journal.drain() {
            self.m.recovery.journal_replays += 1;
            match e.state {
                TxnState::Prepared => {
                    let _ = self
                        .m
                        .space
                        .region_mut(e.page.region)
                        .try_set_wp(e.page.index, false);
                    self.m.pool_mut(e.dst_tier).free(e.dst_phys);
                    self.m.recovery.journal_rollbacks += 1;
                    // Close the migration span without latency accounting:
                    // the copy never completed.
                    self.m
                        .trace
                        .span_drop(now, "migration", "migration", id, &[("rollback", 1)]);
                }
                TxnState::Committed => {}
            }
        }
        // Shadow/primary reconcile: every shadow step is atomic within
        // one event, so a kill (which lands between events) should never
        // leave a shadow whose primary is not DRAM-mapped — but recovery
        // verifies rather than trusts. Any stale shadow found here is
        // freed; the audit's `StaleShadowMapped` would flag one we
        // missed.
        if self.m.nvm_pool.shadow_held_pages() > 0 {
            let mut stale: Vec<PageId> = Vec::new();
            for r in self.m.space.regions() {
                for (i, _) in r.shadows() {
                    let ok = matches!(
                        r.state(i),
                        hemem_vmm::PageState::Mapped {
                            tier: Tier::Dram,
                            ..
                        }
                    );
                    if !ok {
                        stale.push(PageId {
                            region: r.id(),
                            index: i,
                        });
                    }
                }
            }
            for page in stale {
                if self.m.drop_shadow_of(page) {
                    self.m.shadow.reconciled += 1;
                }
            }
        }
        // Fresh manager process: rebuild backend state from what survives
        // (per-page counters, the address space), restart its threads.
        self.backend.recover(&mut self.m, now);
        self.manager_down = false;
        self.watchdog_missed = 0;
        self.m.recovery.watchdog_restarts += 1;
        let next = Ns(now.as_nanos() + 1);
        self.tick_deadline = Some(next);
        self.queue.push_at(next, Event::BackendTick);
        if self.backend.uses_pebs() {
            let iv = self.m.pebs.config().drain_interval;
            self.queue.push_after(iv, Event::PebsDrain);
        }
        // An evacuation stalled by the dead manager (its completions were
        // dropped, its prepared entries just rolled back) resumes here.
        if self.evac.is_some() {
            self.pump_evacuation(now);
        }
    }

    /// Runs the invariant auditor (machine-level checks plus the
    /// backend's own), counting violations into recovery telemetry.
    /// `expect_quiescent` additionally requires an empty journal.
    pub fn run_audit(&mut self, expect_quiescent: bool) -> Vec<AuditViolation> {
        let mut v = audit_machine(&self.m, expect_quiescent);
        v.extend(self.backend.audit(&self.m));
        self.m.recovery.audit_violations += v.len() as u64;
        v
    }

    /// Starts migration jobs; batches DMA jobs into ioctl groups.
    pub fn start_migrations(&mut self, now: Ns, jobs: &[MigrationJob]) {
        // Group DMA jobs per (channels) for batched ioctls of up to the
        // paper's best batch size of 4.
        const DMA_BATCH: usize = 4;
        let mut dma_group: Vec<(u64, u64, usize)> = Vec::new(); // (mig id, bytes, channels)
        for job in jobs {
            let Some(prep) = self.prepare_migration(now, job) else {
                continue;
            };
            let (id, bytes) = prep;
            match job.mechanism {
                CopyMechanism::Dma { channels } => {
                    dma_group.push((id, bytes, channels));
                    if dma_group.len() == DMA_BATCH {
                        self.flush_dma_group(now, &mut dma_group);
                    }
                }
                CopyMechanism::Threads(n) => {
                    let rate = 3.0e9 * n.max(1) as f64;
                    let service = Ns::from_secs_f64(bytes as f64 / rate);
                    let e = *self.m.journal.entry(id).expect("prepared job is journaled");
                    let cap = Some(10.0e9);
                    let r1 = self
                        .m
                        .reserve_tier_bulk(now, e.src_tier, MemOp::Read, bytes, cap);
                    let r2 = self
                        .m
                        .reserve_tier_bulk(now, e.dst_tier, MemOp::Write, bytes, cap);
                    let done = (now + service).max(r1.finish).max(r2.finish);
                    self.queue.push_at(done, Event::MigrationDone(id));
                }
            }
        }
        if !dma_group.is_empty() {
            self.flush_dma_group(now, &mut dma_group);
        }
    }

    fn flush_dma_group(&mut self, now: Ns, group: &mut Vec<(u64, u64, usize)>) {
        let sizes: Vec<u64> = group.iter().map(|&(_, b, _)| b).collect();
        let mut channels = group.iter().map(|&(_, _, c)| c).max().unwrap_or(1).max(1);
        // Injected channel loss: the batch limps along on one surviving
        // channel instead of the requested stripe width.
        if self.m.chaos.dma_channel_lost() {
            channels = 1;
        }
        let dma_done = match self.submit_dma_with_retry(now, &sizes, channels) {
            Some(done) => {
                self.m
                    .trace
                    .observe_ns(LatencyClass::DmaBatch, done.saturating_sub(now));
                self.m.trace.instant(
                    now,
                    "dma_batch",
                    "dma",
                    &[
                        ("jobs", group.len() as u64),
                        ("bytes", sizes.iter().sum()),
                        ("channels", channels as u64),
                    ],
                );
                done
            }
            None => {
                // Engine gave up: copy the whole group with HeMem's
                // 4-thread fallback (§3.2, used when I/OAT is absent).
                let total: u64 = sizes.iter().sum();
                now + Ns::from_secs_f64(total as f64 / (3.0e9 * 4.0))
            }
        };
        let cap = Some(10.0e9);
        let mut done = dma_done;
        for &(id, bytes, _) in group.iter() {
            let e = *self.m.journal.entry(id).expect("prepared job is journaled");
            let r1 = self
                .m
                .reserve_tier_bulk(now, e.src_tier, MemOp::Read, bytes, cap);
            let r2 = self
                .m
                .reserve_tier_bulk(now, e.dst_tier, MemOp::Write, bytes, cap);
            done = done.max(r1.finish).max(r2.finish);
        }
        for &(id, _, _) in group.iter() {
            self.queue.push_at(done, Event::MigrationDone(id));
        }
        group.clear();
    }

    /// Submits one DMA batch, retrying with exponential ioctl backoff when
    /// fault injection fails the submission. Returns the completion time,
    /// or `None` once retries are exhausted (or the engine is already
    /// degraded) — the caller then falls back to copy threads. The
    /// migration itself is never lost either way.
    fn submit_dma_with_retry(&mut self, now: Ns, sizes: &[u64], channels: usize) -> Option<Ns> {
        const MAX_ATTEMPTS: u32 = 3;
        // A degraded engine short-circuits to the thread fallback — except
        // when the probe knob elects this submission to test whether the
        // engine came back (a success below closes the breaker).
        if self.m.dma.degraded() && !self.m.dma.should_probe() {
            self.m.stats.dma_fallbacks += 1;
            return None;
        }
        let overhead = self.m.dma.config().ioctl_overhead;
        let channels = channels.min(self.m.dma.config().channels as usize).max(1);
        let mut at = now;
        for attempt in 0..MAX_ATTEMPTS {
            if self.m.chaos.dma_submit_fails() {
                self.m.dma.note_submit_failure();
                if self.m.dma.degraded() || attempt + 1 == MAX_ATTEMPTS {
                    break;
                }
                self.m.stats.dma_retries += 1;
                at = Ns(at.as_nanos() + (overhead.as_nanos() << attempt));
                continue;
            }
            match self.m.dma.submit(at, sizes, channels) {
                Ok(done) => return Some(done),
                Err(_) => break, // invalid batch: retrying cannot help
            }
        }
        self.m.stats.dma_fallbacks += 1;
        None
    }

    /// Validates a job, allocates the destination page, write-protects the
    /// source, and journals the transaction (phase one: *prepare* — the
    /// intent and destination frame are recorded before any copy starts,
    /// so an interruption at any later point rolls back from the journal
    /// alone). Returns `(migration id, bytes)`.
    fn prepare_migration(&mut self, now: Ns, job: &MigrationJob) -> Option<(u64, u64)> {
        let region = self.m.space.region(job.page.region);
        let bytes = region.page_size().bytes();
        let tenant = region.tenant();
        let (src_tier, src_phys) = match region.state(job.page.index) {
            hemem_vmm::PageState::Mapped { tier, phys, wp } => {
                if tier == job.dst || wp {
                    return None; // already there / already migrating
                }
                (tier, phys)
            }
            _ => return None, // unmapped or swapped: nothing to migrate
        };
        // An offline tier takes no new frames; and while an evacuation is
        // draining a failed tier it owns the journaled migration path —
        // policy jobs off other tiers abort (and re-enqueue) instead of
        // competing for the bounded in-flight budget.
        let evac_owns = self.evac.as_ref().is_some_and(|e| e.tier != src_tier);
        if !self.m.tier_online(job.dst) || evac_owns {
            self.m.stats.migrations_aborted += 1;
            self.backend
                .migration_aborted(&mut self.m, job.page, src_tier);
            return None;
        }
        // Shadows are free NVM capacity: a demotion that finds the NVM
        // pool exhausted reclaims one shadow frame rather than aborting
        // (and re-aborting forever while shadows park the whole tier).
        let mut dst_phys = self.m.pool_mut(job.dst).alloc();
        if dst_phys.is_none() && job.dst == Tier::Nvm && self.m.reclaim_shadow_frames(1) > 0 {
            dst_phys = self.m.pool_mut(job.dst).alloc();
        }
        let Some(dst_phys) = dst_phys else {
            self.m.stats.migrations_aborted += 1;
            self.backend
                .migration_aborted(&mut self.m, job.page, src_tier);
            return None;
        };
        self.m
            .space
            .region_mut(job.page.region)
            .set_wp(job.page.index, true);
        let id = self.next_mig;
        self.next_mig += 1;
        // Non-exclusive mode: an NVM→DRAM promotion journals the intent to
        // retain the source frame as a clean shadow. Writes that land during
        // the WP window dirty the intent before it ever becomes a shadow.
        let shadow = if self.m.cfg.nvm_shadows && src_tier == Tier::Nvm && job.dst == Tier::Dram {
            ShadowIntent::Retain
        } else {
            ShadowIntent::Drop
        };
        self.m.journal.prepare_shadowed(
            id, job.page, tenant, src_tier, src_phys, job.dst, dst_phys, shadow,
        );
        self.m.stats.migrations_started += 1;
        // The migration span opens at prepare: end-to-end latency is
        // policy issue to mapping flip, not just the copy.
        self.m.trace.span_begin(now, "migration", "migration", id);
        Some((id, bytes))
    }

    fn finish_migration(&mut self, now: Ns, id: u64) {
        let Some(&e) = self.m.journal.entry(id) else {
            return; // rolled back by recovery before the copy landed
        };
        // Injected media error on the destination write (NVM only; its
        // likelihood grows with the frame's wear). The transaction aborts:
        // the destination frame is poisoned and retired, the journal entry
        // is dropped, and the source mapping — never touched — stays
        // authoritative. The page is restored to the backend intact.
        let media_error = match e.dst_tier {
            Tier::Nvm => {
                let wear = self.m.nvm_pool.wear(e.dst_phys);
                self.m.chaos.nvm_media_error(wear)
            }
            // SSD destination: error likelihood grows with the frame's
            // recorded program cycles, mirroring the NVM wear coupling.
            Tier::Ssd => {
                let wear = self.m.ssd_pool.wear(e.dst_phys);
                self.m.chaos.ssd_media_error(wear)
            }
            Tier::Dram => false,
        };
        if media_error {
            self.m.journal.abort(id);
            self.m.pool_mut(e.dst_tier).retire(e.dst_phys);
            self.m.stats.pages_retired += 1;
            self.m.stats.migrations_failed += 1;
            let region = self.m.space.region_mut(e.page.region);
            region.set_wp(e.page.index, false);
            let src_tier = match region.state(e.page.index) {
                hemem_vmm::PageState::Mapped { tier, .. } => tier,
                other => panic!("migrating page {:?} in state {other:?}", e.page),
            };
            self.backend
                .migration_aborted(&mut self.m, e.page, src_tier);
            self.m
                .trace
                .span_drop(now, "migration", "migration", id, &[("aborted", 1)]);
            if self.evac.is_some() {
                self.pump_evacuation(now);
            }
            return;
        }
        // Phase two: *commit* — mark the entry committed, flip the
        // mapping, release the source frame, retire the entry. The whole
        // sequence runs atomically within this event, so a kill (which
        // lands between events) only ever observes Prepared entries.
        // Re-read the entry from the commit: the WP window may have
        // downgraded its shadow intent (Retain → Dirtied) since prepare.
        let e = self
            .m
            .journal
            .mark_committed(id)
            .expect("entry present: looked up above");
        // Any shadow the page held before this migration is stale the
        // moment its mapping flips (e.g. a copy-demotion of a DRAM page
        // whose clean shadow was passed over for remap).
        let stale = self
            .m
            .space
            .region_mut(e.page.region)
            .take_shadow(e.page.index);
        if let Some(stale) = stale {
            self.m.nvm_pool.free(stale);
            self.m.nvm_pool.note_unshadow();
            self.m.shadow.dropped += 1;
        }
        let region = self.m.space.region_mut(e.page.region);
        let bytes = region.page_size().bytes();
        let (old_tier, old_phys) = region.remap_page(e.page.index, e.dst_tier, e.dst_phys);
        region.set_wp(e.page.index, false);
        // Non-exclusive commit: a promotion that stayed clean through the
        // WP window keeps its NVM source frame as a shadow; everything
        // else releases the source as before.
        if e.shadow == ShadowIntent::Retain
            && old_tier == Tier::Nvm
            && self.m.tier_online(Tier::Nvm)
        {
            self.m
                .space
                .region_mut(e.page.region)
                .set_shadow(e.page.index, old_phys);
            self.m.nvm_pool.note_shadow();
            self.m.shadow.retained += 1;
        } else {
            self.m.pool_mut(old_tier).free(old_phys);
        }
        match e.dst_tier {
            Tier::Nvm => {
                // A migration into NVM writes the whole frame once.
                self.m.nvm_pool.note_write(e.dst_phys, 1);
            }
            Tier::Ssd => {
                // A demotion onto the SSD programs the frame once and
                // wears every erase block the frame covers.
                self.m.ssd_pool.note_write(e.dst_phys, 1);
                self.note_ssd_block_write(e.dst_phys, bytes);
            }
            Tier::Dram => {}
        }
        let cores = self.m.cores.cores();
        self.m.tlb.shootdown(cores);
        self.m.stats.migrations_done += 1;
        self.m.stats.migrated_bytes += bytes;
        self.m.journal.retire(id);
        self.m.trace.span_end(
            now,
            LatencyClass::Migration,
            "migration",
            "migration",
            id,
            &[("to_dram", (e.dst_tier == Tier::Dram) as u64)],
        );
        self.backend.migration_done(&mut self.m, e.page, e.dst_tier);
        // Evacuation bookkeeping: a commit off the failing tier is one
        // page saved; either way a completion frees an in-flight slot.
        if let Some(evac_tier) = self.evac.as_ref().map(|ev| ev.tier) {
            if e.src_tier == evac_tier {
                self.m.health.evacuated_pages += 1;
                self.m.trace.instant(
                    now,
                    "evacuation_page",
                    "health",
                    &[("tenant", e.tenant.0 as u64)],
                );
            }
            self.pump_evacuation(now);
        }
    }

    /// Starts paging `pages` out to the swap device (no-op without one).
    pub fn start_swap_outs(&mut self, now: Ns, pages: &[PageId]) {
        if self.m.disk.is_none() || pages.is_empty() {
            return;
        }
        for &page in pages {
            let region = self.m.space.region(page.region);
            let bytes = region.page_size().bytes();
            let src_tier = match region.state(page.index) {
                hemem_vmm::PageState::Mapped {
                    tier, wp: false, ..
                } => tier,
                _ => continue, // migrating, swapped, or gone
            };
            let disk_cap = self.m.disk.as_ref().map_or(0, |d| d.config().capacity);
            if (self.m.next_swap_slot + 1) * bytes > disk_cap {
                continue; // swap file full
            }
            let slot = self.m.next_swap_slot;
            self.m.next_swap_slot += 1;
            // Lock the page (blocks concurrent migration) for the copy.
            self.m
                .space
                .region_mut(page.region)
                .set_wp(page.index, true);
            let r1 = self
                .m
                .device_mut(src_tier)
                .reserve_bulk(now, MemOp::Read, bytes, None);
            let disk = self.m.disk.as_mut().expect("checked above");
            let r2 = disk.reserve_bulk(now, MemOp::Write, bytes, None);
            let done = r1.finish.max(r2.finish);
            let id = self.next_mig;
            self.next_mig += 1;
            self.pending_swaps.insert(id, (page, slot));
            self.queue.push_at(done, Event::SwapOutDone(id));
        }
    }

    fn finish_swap_out(&mut self, now: Ns, id: u64) {
        let Some((page, slot)) = self.pending_swaps.remove(&id) else {
            return;
        };
        // A page leaving the byte-addressable tiers takes its shadow
        // with it (the clean copy is stale once the page swaps back in).
        if self.m.drop_shadow_of(page) {
            self.m.shadow.dropped += 1;
        }
        let region = self.m.space.region_mut(page.region);
        region.set_wp(page.index, false);
        let (tier, phys) = region.swap_out_page(page.index, slot);
        self.m.pool_mut(tier).free(phys);
        let cores = self.m.cores.cores();
        self.m.tlb.shootdown(cores);
        self.m.stats.swap_outs += 1;
        self.backend.swapped_out(&mut self.m, page);
        // The unlock may have unblocked an evacuation waiting on this page.
        if self.evac.is_some() {
            self.pump_evacuation(now);
        }
    }

    /// Allocates a frame from `tier`, retiring NVM frames whose first
    /// write hits an injected media error (the zero-fill or swap-in write
    /// lands on a poisoned frame; the allocator tries the next one).
    /// Returns `None` when the tier is exhausted, including by
    /// retirements.
    fn alloc_frame(&mut self, tier: Tier) -> Option<PhysPage> {
        if !self.m.tier_online(tier) {
            return None; // offline devices take no allocations
        }
        loop {
            let phys = match self.m.pool_mut(tier).alloc() {
                Some(p) => p,
                // Shadows are free capacity: NVM exhaustion reclaims one
                // (the shadow's primary stays mapped in DRAM) rather than
                // spilling or failing the allocation.
                None if tier == Tier::Nvm && self.m.reclaim_shadow_frames(1) > 0 => {
                    self.m.pool_mut(tier).alloc()?
                }
                None => return None,
            };
            match tier {
                Tier::Nvm => {
                    let wear = self.m.nvm_pool.wear(phys);
                    if self.m.chaos.nvm_media_error(wear) {
                        self.m.nvm_pool.retire(phys);
                        self.m.stats.pages_retired += 1;
                        continue;
                    }
                    self.m.nvm_pool.note_write(phys, 1);
                }
                Tier::Ssd => {
                    let wear = self.m.ssd_pool.wear(phys);
                    if self.m.chaos.ssd_media_error(wear) {
                        self.m.ssd_pool.retire(phys);
                        self.m.stats.pages_retired += 1;
                        continue;
                    }
                    self.m.ssd_pool.note_write(phys, 1);
                }
                Tier::Dram => {}
            }
            return Some(phys);
        }
    }

    /// Allocates a frame for an incoming page, direct-reclaiming under
    /// pressure. Tries the desired tier, then the other memory tier, and
    /// only then pays for synchronous reclaim. Reclaim is retried a
    /// bounded number of times: an injected media error can retire the
    /// very frame a reclaim just freed (and a victim popped mid-migration
    /// is skipped as busy), and a single attempt would turn that
    /// recoverable pressure into a machine OOM kill. Genuine exhaustion —
    /// nothing left to reclaim — still surfaces as `OutOfMemory`.
    fn alloc_with_reclaim(
        &mut self,
        desired: Tier,
        now: Ns,
    ) -> Result<(Tier, PhysPage, Ns), MemError> {
        const RECLAIM_RETRIES: u32 = 64;
        if let Some(p) = self.alloc_frame(desired) {
            return Ok((desired, p, Ns::ZERO));
        }
        let other = desired.other();
        if let Some(p) = self.alloc_frame(other) {
            return Ok((other, p, Ns::ZERO));
        }
        let mut extra = Ns::ZERO;
        for _ in 0..RECLAIM_RETRIES {
            match self.direct_reclaim(now) {
                Ok(ns) => extra += ns,
                // The popped victim was already under migration; the next
                // pop yields a different page.
                Err(MemError::ReclaimVictimBusy(_)) => continue,
                Err(e) => return Err(e),
            }
            if let Some(p) = self.alloc_frame(desired) {
                return Ok((desired, p, extra));
            }
            if let Some(p) = self.alloc_frame(other) {
                return Ok((other, p, extra));
            }
        }
        Err(MemError::OutOfMemory)
    }

    /// Records erase-block wear on the SSD device for one page-frame
    /// write (frames are laid out contiguously by index).
    fn note_ssd_block_write(&mut self, phys: PhysPage, page_bytes: u64) {
        if let Some(ssd) = self.m.ssd.as_mut() {
            ssd.note_block_write(phys.0 * page_bytes, page_bytes);
        }
    }

    /// Handles a first-touch fault; returns the faulting thread's stall.
    ///
    /// # Panics
    ///
    /// An unsatisfiable fault — memory exhausted with nothing to reclaim,
    /// or the swap device missing/full — is the machine's OOM kill:
    /// this wrapper panics with the typed cause from
    /// [`Sim::try_fault_page`]. Use that method to observe the error
    /// instead.
    pub fn fault_page(&mut self, page: PageId, is_write: bool, now: Ns) -> Ns {
        self.try_fault_page(page, is_write, now)
            .unwrap_or_else(|e| panic!("fatal fault on {page:?}: {e}"))
    }

    /// Fallible core of [`Sim::fault_page`].
    pub fn try_fault_page(
        &mut self,
        page: PageId,
        is_write: bool,
        now: Ns,
    ) -> Result<Ns, MemError> {
        let region = self.m.space.region(page.region);
        let kind = region.kind();
        let page_bytes = region.page_size().bytes();
        // Managed-region faults funnel through HeMem's single fault
        // thread; storms queue behind it. An injected stall wedges the
        // handler first, so this fault (and any behind it) queues longer.
        let queue = if kind == RegionKind::ManagedHeap {
            let cfg = self.m.fault_cfg.clone();
            if let Some(stall_for) = self.m.chaos.fault_thread_stall() {
                self.m.fault_thread.stall(now, stall_for);
            }
            self.m.fault_thread.admit(now, &cfg)
        } else {
            Ns::ZERO
        };
        let mut stall = self.m.fault_cfg.round_trip() + queue;
        // A fault on a poisoned page surfaces the data loss to its owner
        // as a typed notification — never a silent wrong read — and then
        // falls through to map a fresh zero page. The owner still has to
        // re-materialize the lost contents (re-fetch or recompute), which
        // is the critical-path bill evacuation exists to avoid.
        if self.poisoned.remove(&page) {
            let tenant = self.m.space.region(page.region).tenant();
            self.m.health.poison_faults += 1;
            stall += self.m.cfg.poison_recovery;
            self.m.trace.instant(
                now,
                "poison_fault",
                "health",
                &[("tenant", tenant.0 as u64)],
            );
        }
        // Swapped pages fault back in synchronously: the thread waits for
        // the disk read (swapping is the slowest tier, §3.4).
        if let hemem_vmm::PageState::Swapped { .. } = region.state(page.index) {
            let desired = self.backend.place(&mut self.m, page, is_write);
            let (tier, phys, extra) = self.alloc_with_reclaim(desired, now)?;
            let disk = self.m.disk.as_mut().ok_or(MemError::NoSwapDevice)?;
            let r = disk.reserve_bulk(now, MemOp::Read, page_bytes, None);
            let disk_latency = disk.latency(MemOp::Read);
            self.m
                .space
                .region_mut(page.region)
                .swap_in_page(page.index, tier, phys);
            self.backend.placed(&mut self.m, page, tier);
            self.m.stats.swap_ins += 1;
            self.m.fault_stats.record(FaultKind::Missing, stall);
            let total = stall + extra + r.service + disk_latency;
            self.observe_fault(now, total, 1);
            return Ok(total);
        }
        if kind == RegionKind::SmallAnon {
            // Kernel-managed anonymous memory: always DRAM, outside the
            // tiered pools (the kernel keeps its own reserve).
            self.m.space.region_mut(page.region).map_page(
                page.index,
                Tier::Dram,
                PhysPage(page.index),
            );
            self.m.fault_stats.record(FaultKind::Missing, stall);
            self.observe_fault(now, stall, 0);
            return Ok(stall);
        }
        let desired = self.backend.place(&mut self.m, page, is_write);
        let (tier, phys, extra) = self.alloc_with_reclaim(desired, now)?;
        self.m
            .space
            .region_mut(page.region)
            .map_page(page.index, tier, phys);
        zero_fill(&mut self.m, now, tier, page_bytes);
        if tier == Tier::Ssd {
            self.note_ssd_block_write(phys, page_bytes);
        }
        self.backend.placed(&mut self.m, page, tier);
        self.m.fault_stats.record(FaultKind::Missing, stall);
        let total = stall + extra;
        self.observe_fault(now, total, 0);
        Ok(total)
    }

    /// Records one serviced page fault into the tracer: service latency
    /// into the fault histogram plus (when tracing) an instant event.
    fn observe_fault(&mut self, now: Ns, service: Ns, swap_in: u64) {
        self.m.trace.observe_ns(LatencyClass::Fault, service);
        self.m.trace.instant(
            now,
            "fault",
            "fault",
            &[("service_ns", service.as_nanos()), ("swap_in", swap_in)],
        );
    }

    /// Synchronously frees one frame under memory pressure: onto the
    /// tier-3 SSD when one is configured (the page stays mapped on
    /// `Tier::Ssd`), otherwise out to the legacy swap device.
    fn direct_reclaim(&mut self, now: Ns) -> Result<Ns, MemError> {
        if self.m.has_ssd() && self.m.tier_online(Tier::Ssd) {
            self.try_direct_reclaim_tier3(now)
        } else {
            self.try_direct_reclaim(now)
        }
    }

    /// Synchronously demotes one victim page onto the SSD tier, freeing
    /// its DRAM/NVM frame; returns the stall the faulting thread pays.
    /// Unlike the legacy swap path the page stays mapped — a later access
    /// takes a major fault through the device queue, not a swap-in.
    fn try_direct_reclaim_tier3(&mut self, now: Ns) -> Result<Ns, MemError> {
        let victim = self
            .backend
            .reclaim_victim(&mut self.m)
            .ok_or(MemError::OutOfMemory)?;
        let region = self.m.space.region(victim.region);
        let bytes = region.page_size().bytes();
        let src_tier = match region.state(victim.index) {
            hemem_vmm::PageState::Mapped {
                tier, wp: false, ..
            } if tier != Tier::Ssd => tier,
            _ => return Err(MemError::ReclaimVictimBusy(victim)),
        };
        // Clean-shadow fast path: a DRAM victim whose bytes already sit in
        // its NVM shadow demotes by remap alone — no SSD program, no stall.
        if src_tier == Tier::Dram && self.m.shadow_remap_demote(victim) {
            self.backend.placed(&mut self.m, victim, Tier::Nvm);
            return Ok(Ns::ZERO);
        }
        let ssd_phys = self.alloc_frame(Tier::Ssd).ok_or(MemError::SwapExhausted)?;
        self.m
            .reserve_tier_bulk(now, src_tier, MemOp::Read, bytes, None);
        let r = self
            .m
            .reserve_tier_bulk(now, Tier::Ssd, MemOp::Write, bytes, None);
        self.note_ssd_block_write(ssd_phys, bytes);
        let (old_tier, old_phys) =
            self.m
                .space
                .region_mut(victim.region)
                .remap_page(victim.index, Tier::Ssd, ssd_phys);
        debug_assert_eq!(old_tier, src_tier);
        self.m.pool_mut(old_tier).free(old_phys);
        self.m.stats.swap_outs += 1;
        // `placed`, not `swapped_out`: the page keeps its identity (and
        // its hotness counters) on the SSD tier.
        self.backend.placed(&mut self.m, victim, Tier::Ssd);
        Ok(r.service)
    }

    /// Synchronously swaps one victim out to free a frame; returns the
    /// stall the faulting thread pays.
    fn try_direct_reclaim(&mut self, now: Ns) -> Result<Ns, MemError> {
        let victim = self
            .backend
            .reclaim_victim(&mut self.m)
            .ok_or(MemError::OutOfMemory)?;
        let region = self.m.space.region(victim.region);
        let bytes = region.page_size().bytes();
        let src_tier = match region.state(victim.index) {
            hemem_vmm::PageState::Mapped {
                tier, wp: false, ..
            } => tier,
            _ => return Err(MemError::ReclaimVictimBusy(victim)),
        };
        // Clean-shadow fast path (see `try_direct_reclaim_tier3`).
        if src_tier == Tier::Dram && self.m.shadow_remap_demote(victim) {
            self.backend.placed(&mut self.m, victim, Tier::Nvm);
            return Ok(Ns::ZERO);
        }
        let disk_cap = self
            .m
            .disk
            .as_ref()
            .map(|d| d.config().capacity)
            .ok_or(MemError::NoSwapDevice)?;
        if (self.m.next_swap_slot + 1) * bytes > disk_cap {
            return Err(MemError::SwapExhausted);
        }
        let slot = self.m.next_swap_slot;
        self.m.next_swap_slot += 1;
        self.m
            .device_mut(src_tier)
            .reserve_bulk(now, MemOp::Read, bytes, None);
        let disk = self.m.disk.as_mut().ok_or(MemError::NoSwapDevice)?;
        let r = disk.reserve_bulk(now, MemOp::Write, bytes, None);
        let (tier, phys) = self
            .m
            .space
            .region_mut(victim.region)
            .swap_out_page(victim.index, slot);
        debug_assert_eq!(tier, src_tier);
        self.m.pool_mut(tier).free(phys);
        self.m.stats.swap_outs += 1;
        self.backend.swapped_out(&mut self.m, victim);
        Ok(r.service)
    }

    /// Submits one access batch on behalf of thread `tid`; schedules its
    /// [`Event::ThreadReady`] and returns timing details.
    pub fn submit_batch(&mut self, tid: u32, batch: &AccessBatch) -> BatchReceipt {
        let now = self.now();
        let mut device_finish = now;
        let mut stall = Ns::ZERO;
        // Accumulated (latency * accesses) for the mean-latency estimate.
        let mut lat_weighted: f64 = 0.0;
        let mut pages_touched: u64 = 0;
        let page_size = batch
            .segments
            .first()
            .map(|s| self.m.space.region(s.region).page_size())
            .unwrap_or(PageSize::Huge2M);

        for seg in &batch.segments {
            let count = batch.count as f64 * seg.weight;
            if count <= 0.0 || seg.hi_page <= seg.lo_page {
                continue;
            }
            pages_touched += seg.pages();
            let wf = seg.write_fraction.unwrap_or(batch.write_fraction);
            let writes = count * wf;
            let reads = count - writes;

            stall += self.fault_unmapped(seg, count, now);
            stall += self.fault_ssd_resident(seg, count, now);

            // LLC filtering.
            let hit = match batch.pattern {
                Pattern::Random => self.m.llc.hit_fraction(seg.llc_footprint),
                Pattern::Sequential => self.m.llc.streaming_hit_fraction(),
            };
            let mem_reads = reads * (1.0 - hit);
            let mem_writes = writes * (1.0 - hit);
            lat_weighted += (reads + writes) * hit * self.m.llc.hit_latency().as_nanos() as f64;

            // Deposit accessed/dirty-bit evidence for scanning backends.
            // Random accesses each land on an independent page; a
            // sequential stream touches consecutive addresses, so its
            // page-touch count is bytes/page_size — depositing raw access
            // counts would make a slow scan over a huge array set every
            // accessed bit, when in reality only the pages the stream
            // passed since the last scan are referenced.
            let single_touch = batch.sweep || batch.pattern == Pattern::Sequential;
            let (led_r, led_w) = if single_touch {
                let per_page = page_size.bytes() as f64 / batch.object_size.max(1) as f64;
                (
                    mem_reads / per_page.max(1.0),
                    mem_writes / per_page.max(1.0),
                )
            } else {
                (mem_reads, mem_writes)
            };
            self.m
                .space
                .region_mut(seg.region)
                .ledger
                .add(seg.lo_page, seg.hi_page, led_r, led_w);

            // Tier split and device reservations.
            let split = self.backend.split(
                &mut self.m,
                seg,
                batch.object_size,
                batch.pattern,
                mem_reads,
                mem_writes,
            );
            for t in &split.traffic {
                // Base device latency only: bandwidth queueing is captured
                // by `device_finish` (accesses pipeline through the
                // backlog; charging it per access would double-count).
                let lat = self.m.device(t.tier).latency(t.op);
                lat_weighted += t.count * (lat + split.extra_latency).as_nanos() as f64;
                let res = self.m.reserve_traffic(now, t);
                device_finish = device_finish.max(res.finish);
            }

            // Write-protection stalls: writes landing on migrating pages.
            stall += self.wp_stall(now, seg, mem_writes);

            // PEBS sampling. The batch's samples are generated over its
            // whole service window; estimate that window for burst-drop
            // accounting. PEBS counts *retired instructions*: an access of
            // `object_size` bytes executes one load/store per cache line,
            // so large objects fire proportionally more events.
            if self.backend.uses_pebs() {
                let window = device_finish.saturating_sub(now).max(Ns::micros(10));
                let lines = (batch.object_size as f64 / 64.0).max(1.0);
                self.fire_pebs(
                    seg,
                    mem_reads * lines,
                    split.nvm_load_fraction,
                    writes * lines,
                    window,
                );
            }
        }

        // Translation overhead per access over the touched page set.
        let trans = self.m.tlb.translation_overhead(pages_touched, page_size);
        lat_weighted += batch.count as f64 * trans.as_nanos() as f64;

        // TLB shootdowns since this thread's last batch stalled its core.
        let total_sd = self.m.tlb.stats().shootdown_stall;
        let charged = self.shootdown_charged.entry(tid).or_insert(Ns::ZERO);
        stall += total_sd.saturating_sub(*charged);
        *charged = total_sd;

        let cpu_ns = batch.count as f64 * batch.cpu_ns_per_access;
        let mem_ns = lat_weighted / batch.mlp.max(1.0);
        let thread_time = Ns::from_nanos_f64((cpu_ns + mem_ns) * self.dilation()) + stall;
        let complete_at = (now + thread_time).max(device_finish);
        self.queue.push_at(complete_at, Event::ThreadReady(tid));
        self.m.stats.ops += batch.count;
        let mean = if batch.count > 0 {
            Ns::from_nanos_f64(lat_weighted / batch.count as f64)
        } else {
            Ns::ZERO
        };
        BatchReceipt {
            complete_at,
            mean_access_latency: mean,
        }
    }

    /// Faults the expected number of distinct unmapped pages a batch
    /// touches in `seg`.
    fn fault_unmapped(&mut self, seg: &crate::backend::SegmentAccess, count: f64, now: Ns) -> Ns {
        let region = self.m.space.region(seg.region);
        let pages = seg.pages();
        let unmapped = pages - region.mapped_pages_in(seg.lo_page, seg.hi_page);
        if unmapped == 0 {
            return Ns::ZERO;
        }
        // Expected distinct unmapped pages touched by `count` uniform
        // accesses over `pages` pages.
        let lam = count / pages as f64;
        let expect = unmapped as f64 * (1.0 - (-lam).exp());
        let n = self.m.rng.round_stochastic(expect).min(unmapped);
        let mut stall = Ns::ZERO;
        for _ in 0..n {
            let region = self.m.space.region(seg.region);
            let left = region.page_count() - region.mapped_pages_in(seg.lo_page, seg.hi_page);
            let _ = left;
            let remaining = seg.pages() - region.mapped_pages_in(seg.lo_page, seg.hi_page);
            if remaining == 0 {
                break;
            }
            let k = self.m.rng.gen_range(remaining);
            let Some(idx) = region.kth_unmapped_page_in(seg.lo_page, seg.hi_page, k) else {
                break;
            };
            stall += self.fault_page(
                PageId {
                    region: seg.region,
                    index: idx,
                },
                true,
                now,
            );
        }
        stall
    }

    /// Faults the expected number of distinct SSD-resident pages a batch
    /// touches in `seg` back through the swap device (major faults).
    /// Without an SSD tier no page is ever SSD-resident, so this draws
    /// nothing from the RNG and two-tier runs are unperturbed.
    fn fault_ssd_resident(
        &mut self,
        seg: &crate::backend::SegmentAccess,
        count: f64,
        now: Ns,
    ) -> Ns {
        let region = self.m.space.region(seg.region);
        let ssd = region.ssd_pages_in(seg.lo_page, seg.hi_page);
        if ssd == 0 {
            return Ns::ZERO;
        }
        let pages = seg.pages();
        // Expected distinct SSD-resident pages touched by `count` uniform
        // accesses over `pages` pages (same model as `fault_unmapped`).
        let lam = count / pages as f64;
        let expect = ssd as f64 * (1.0 - (-lam).exp());
        let n = self.m.rng.round_stochastic(expect).min(ssd);
        let mut stall = Ns::ZERO;
        for _ in 0..n {
            let region = self.m.space.region(seg.region);
            let remaining = region.ssd_pages_in(seg.lo_page, seg.hi_page);
            if remaining == 0 {
                break;
            }
            let k = self.m.rng.gen_range(remaining);
            let Some(idx) = region.kth_ssd_page_in(seg.lo_page, seg.hi_page, k) else {
                break;
            };
            stall += self.major_fault_page(
                PageId {
                    region: seg.region,
                    index: idx,
                },
                true,
                now,
            );
        }
        stall
    }

    /// Services a major fault on an SSD-resident page: the thread stalls
    /// synchronously behind the swap device's queue for the page read,
    /// and the page is promoted to whichever byte-addressable tier the
    /// policy picks (or stays put when the policy answers `Ssd`, as the
    /// spill baseline does).
    fn major_fault_page(&mut self, page: PageId, is_write: bool, now: Ns) -> Ns {
        let region = self.m.space.region(page.region);
        let tenant = region.tenant();
        let page_bytes = region.page_size().bytes();
        let ssd_phys = match region.state(page.index) {
            hemem_vmm::PageState::Mapped {
                tier: Tier::Ssd,
                phys,
                wp: false,
            } => phys,
            // Write-protected means a migration already has the page in
            // hand; anything else means we raced a remap. Either way the
            // access is someone else's problem now.
            _ => return Ns::ZERO,
        };
        // Major faults funnel through the same single fault thread as
        // first-touch faults on managed memory.
        let cfg = self.m.fault_cfg.clone();
        if let Some(stall_for) = self.m.chaos.fault_thread_stall() {
            self.m.fault_thread.stall(now, stall_for);
        }
        let queue = self.m.fault_thread.admit(now, &cfg);
        let read = self
            .m
            .reserve_tier_bulk(now, Tier::Ssd, MemOp::Read, page_bytes, None);
        // Queue wait plus the transfer itself: the thread blocks for both.
        let device = read.finish.saturating_sub(now);
        let mut total = self.m.fault_cfg.round_trip() + queue + device;
        let desired = self.backend.place(&mut self.m, page, is_write);
        if desired != Tier::Ssd {
            let frame = match self.alloc_frame(desired) {
                Some(p) => Some((desired, p)),
                None => {
                    let other = desired.other();
                    match self.alloc_frame(other) {
                        Some(p) => Some((other, p)),
                        None => match self.direct_reclaim(now) {
                            Ok(extra) => {
                                total += extra;
                                // N-1 safety net: when the desired tier is
                                // offline (a backend that does not cascade
                                // can still name one), fall through to the
                                // frame the reclaim just freed on the other
                                // tier instead of stranding the page on the
                                // SSD forever. Gated on offline so healthy
                                // runs keep their exact placement sequence.
                                self.alloc_frame(desired).map(|p| (desired, p)).or_else(|| {
                                    if !self.m.tier_online(desired) {
                                        self.alloc_frame(other).map(|p| (other, p))
                                    } else {
                                        None
                                    }
                                })
                            }
                            Err(_) => None,
                        },
                    }
                }
            };
            if let Some((tier, phys)) = frame {
                let w = self
                    .m
                    .reserve_tier_bulk(now, tier, MemOp::Write, page_bytes, None);
                total += w.service;
                let (old_tier, old_phys) = self
                    .m
                    .space
                    .region_mut(page.region)
                    .remap_page(page.index, tier, phys);
                debug_assert_eq!(old_tier, Tier::Ssd);
                debug_assert_eq!(old_phys, ssd_phys);
                self.m.pool_mut(Tier::Ssd).free(old_phys);
                self.m.stats.swap_ins += 1;
                self.backend.placed(&mut self.m, page, tier);
            }
            // No frame even after reclaim: the page stays on the SSD —
            // the access was still served by the device read above.
        }
        self.m.fault_stats.record(FaultKind::Missing, total);
        self.m.trace.observe_ns(LatencyClass::MajorFault, total);
        let generation = self.m.space.tenant_generation(tenant);
        self.m
            .tenant_major_faults
            .entry((tenant.0, generation))
            .or_default()
            .record_ns(total);
        self.m.trace.instant(
            now,
            "major_fault",
            "fault",
            &[
                ("tenant", tenant.0 as u64),
                ("service_ns", total.as_nanos()),
            ],
        );
        total
    }

    fn wp_stall(&mut self, now: Ns, seg: &crate::backend::SegmentAccess, writes: f64) -> Ns {
        let region = self.m.space.region(seg.region);
        if region.wp_pages() == 0 || writes <= 0.0 {
            return Ns::ZERO;
        }
        // Only WP pages inside this segment's span stall this segment's
        // writes (a demoting cold page does not slow hot-segment stores).
        let wp_in = region.wp_pages_in(seg.lo_page, seg.hi_page);
        if wp_in == 0 {
            return Ns::ZERO;
        }
        let frac = wp_in as f64 / seg.pages().max(1) as f64;
        let hits = self.m.rng.round_stochastic(writes * frac);
        if hits == 0 {
            return Ns::ZERO;
        }
        self.m.stats.wp_stalls += hits;
        // A write landing in the WP window of an in-flight promotion means
        // the DRAM copy will diverge from its would-be shadow: downgrade
        // every Retain intent in the stalled span. Conservative (the whole
        // span dirties), but a stale shadow would be a correctness bug
        // while an over-dropped one only costs a future copy.
        let dirtied = self
            .m
            .journal
            .dirty_shadows_in(seg.region, seg.lo_page, seg.hi_page);
        self.m.shadow.dirtied_wp += dirtied;
        // Each stalled write waits a fault round trip plus (on average)
        // half a page-copy time at the migration rate cap.
        let half_copy = Ns::from_secs_f64(region.page_size().bytes() as f64 / 10.0e9 / 2.0);
        let per = self.m.fault_cfg.round_trip() + half_copy;
        // One histogram observation per batch that stalled (the per-stall
        // duration; `hits` rides along in the event args — recording `per`
        // `hits` times would only replicate one value).
        self.m.trace.observe_ns(LatencyClass::WpStall, per);
        self.m.trace.instant(
            now,
            "wp_stall",
            "fault",
            &[("stalls", hits), ("per_ns", per.as_nanos())],
        );
        self.m
            .fault_stats
            .record(FaultKind::WriteProtect, per.scale(hits as f64));
        per.scale(hits as f64)
    }

    /// Generates PEBS records for one segment's traffic.
    fn fire_pebs(
        &mut self,
        seg: &crate::backend::SegmentAccess,
        mem_reads: f64,
        nvm_load_fraction: f64,
        all_stores: f64,
        window: Ns,
    ) {
        // CPU-cost bound on simulated record construction per batch; a
        // batch producing more is thinned (its residual drops are counted,
        // matching a PEBS thread that cannot keep up with the burst).
        const MAX_RECORDS: u64 = 32_768;
        let nvm_loads = mem_reads * nvm_load_fraction;
        let dram_loads = mem_reads - nvm_loads;
        let plan = [
            (SampleType::NvmLoad, nvm_loads),
            (SampleType::DramLoad, dram_loads),
            (SampleType::Store, all_stores),
        ];
        let mut direct = Vec::new();
        for (ty, expect) in plan {
            let events = self.m.rng.round_stochastic(expect);
            let fired = self.m.pebs.events(ty, events);
            let room = self.m.pebs.burst_room(window);
            let kept = fired.min(room).min(MAX_RECORDS);
            self.m.pebs.drop_n(fired - kept);
            // The records are produced across the batch's whole service
            // window. What fits in the buffer right now is queued for the
            // PEBS thread; the remainder — justified by the drain rate
            // over the window — is handed to it directly, as it would be
            // consumed while the batch is still running.
            let buffered = kept.min(self.m.pebs.free_space());
            for _ in 0..buffered {
                if let Some(vaddr) = self.draw_sample_addr(seg, ty) {
                    self.m.pebs.push(SampleRecord { vaddr, kind: ty });
                }
            }
            for _ in 0..kept - buffered {
                if let Some(vaddr) = self.draw_sample_addr(seg, ty) {
                    direct.push(SampleRecord { vaddr, kind: ty });
                }
            }
        }
        if !direct.is_empty() {
            self.m.pebs.record_direct(direct.len() as u64);
            let now = self.now();
            self.m.invalidate_shadows_on_stores(&direct);
            self.backend.on_samples(&mut self.m, &direct, now);
        }
    }

    /// Picks a concrete virtual address within `seg` whose page residency
    /// matches the sample type.
    fn draw_sample_addr(
        &mut self,
        seg: &crate::backend::SegmentAccess,
        ty: SampleType,
    ) -> Option<u64> {
        let region = self.m.space.region(seg.region);
        let (lo, hi) = (seg.lo_page, seg.hi_page);
        let dram = region.dram_pages_in(lo, hi);
        let mapped = region.mapped_pages_in(lo, hi);
        // SSD-resident pages never appear in PEBS records: their accesses
        // trap as major faults before any load/store can retire.
        let ssd = region.ssd_pages_in(lo, hi);
        let idx = match ty {
            SampleType::NvmLoad => {
                let nvm = mapped - dram - ssd;
                if nvm == 0 {
                    return None;
                }
                let k = self.m.rng.gen_range(nvm);
                region.kth_nvm_page_in(lo, hi, k)?
            }
            SampleType::DramLoad => {
                if dram == 0 {
                    return None;
                }
                let k = self.m.rng.gen_range(dram);
                region.kth_dram_page_in(lo, hi, k)?
            }
            SampleType::Store => {
                let sampleable = mapped - ssd;
                if sampleable == 0 {
                    return None;
                }
                // Any byte-addressable mapped page, picked proportionally.
                let k = self.m.rng.gen_range(sampleable);
                if k < dram {
                    region.kth_dram_page_in(lo, hi, k)?
                } else {
                    region.kth_nvm_page_in(lo, hi, k - dram)?
                }
            }
        };
        let region = self.m.space.region(seg.region);
        let base = region.page_addr(idx).0;
        let off = self.m.rng.gen_range(region.page_size().bytes());
        Some(base + off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{TickOutput, TieredBackend};
    use crate::machine::MachineConfig;
    use hemem_memdev::GIB;

    /// Minimal backend: everything managed, placed DRAM-first, no
    /// background work, optional scripted migrations.
    struct TestBackend {
        jobs: Vec<MigrationJob>,
        ticks: u32,
        done: Vec<(PageId, Tier)>,
    }

    impl TestBackend {
        fn new() -> TestBackend {
            TestBackend {
                jobs: Vec::new(),
                ticks: 0,
                done: Vec::new(),
            }
        }
    }

    impl TieredBackend for TestBackend {
        fn name(&self) -> &'static str {
            "test"
        }
        fn wants_to_manage(&self, _len: u64) -> bool {
            true
        }
        fn on_mmap(&mut self, _m: &mut MachineCore, _r: RegionId) {}
        fn on_munmap(&mut self, _m: &mut MachineCore, _r: RegionId) {}
        fn place(&mut self, m: &mut MachineCore, _p: PageId, _w: bool) -> Tier {
            if m.dram_pool.free_pages() > 0 {
                Tier::Dram
            } else {
                Tier::Nvm
            }
        }
        fn placed(&mut self, _m: &mut MachineCore, _p: PageId, _t: Tier) {}
        fn tick(&mut self, _m: &mut MachineCore, now: Ns) -> TickOutput {
            self.ticks += 1;
            TickOutput {
                next_wake: Some(now + Ns::millis(10)),
                migrations: std::mem::take(&mut self.jobs),
                swap_outs: Vec::new(),
                cpu_time: Ns::ZERO,
            }
        }
        fn migration_done(&mut self, _m: &mut MachineCore, page: PageId, dst: Tier) {
            self.done.push((page, dst));
        }
    }

    fn sim() -> Sim<TestBackend> {
        Sim::new(MachineConfig::small(1, 4), TestBackend::new())
    }

    #[test]
    fn mmap_populate_maps_every_page() {
        let mut s = sim();
        let id = s.mmap(GIB / 2);
        let cost = s.populate(id, true);
        assert!(cost > Ns::ZERO);
        let r = s.m.space.region(id);
        assert_eq!(r.mapped_pages(), 256);
        assert_eq!(r.dram_pages(), 256, "fits in DRAM");
    }

    #[test]
    fn populate_spills_to_nvm_when_dram_full() {
        let mut s = sim();
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        let r = s.m.space.region(id);
        assert_eq!(r.dram_pages(), 512);
        assert_eq!(r.mapped_pages(), 1024);
        assert_eq!(s.m.nvm_pool.allocated_pages(), 512);
    }

    #[test]
    fn batch_schedules_thread_ready_and_counts_ops() {
        let mut s = sim();
        let id = s.mmap(GIB / 2);
        s.populate(id, true);
        let b = AccessBatch::uniform(id, 0, 256, 10_000, 8, 0.5, GIB / 2);
        let receipt = s.submit_batch(3, &b);
        assert!(receipt.complete_at > s.now());
        let (t, ev) = s.step().expect("event");
        assert_eq!(ev, Event::ThreadReady(3));
        assert_eq!(t, receipt.complete_at);
        assert_eq!(s.m.stats.ops, 10_000);
    }

    #[test]
    fn batches_on_unmapped_pages_fault_them_in() {
        let mut s = sim();
        let id = s.mmap(GIB / 2);
        // No populate: the batch itself must fault pages.
        let b = AccessBatch::uniform(id, 0, 256, 500_000, 8, 0.5, GIB / 2);
        s.submit_batch(0, &b);
        while let Some((_, ev)) = s.step() {
            if matches!(ev, Event::ThreadReady(_)) {
                break;
            }
        }
        let r = s.m.space.region(id);
        assert!(
            r.mapped_pages() > 200,
            "most pages faulted: {}",
            r.mapped_pages()
        );
        assert!(s.m.fault_stats.missing > 0);
    }

    #[test]
    fn migration_moves_page_and_notifies_backend() {
        let mut s = sim();
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        // Page 600 is NVM-resident; migrate it to DRAM (free a frame first).
        let (t0, p0) = s.m.space.region_mut(id).unmap_page(0);
        s.m.pool_mut(t0).free(p0);
        let page = PageId {
            region: id,
            index: 600,
        };
        s.backend.jobs.push(MigrationJob {
            page,
            dst: Tier::Dram,
            mechanism: crate::backend::CopyMechanism::Dma { channels: 2 },
        });
        s.advance(Ns::millis(50));
        assert_eq!(s.m.stats.migrations_done, 1);
        assert_eq!(s.backend.done, vec![(page, Tier::Dram)]);
        match s.m.space.region(id).state(600) {
            hemem_vmm::PageState::Mapped { tier, wp, .. } => {
                assert_eq!(tier, Tier::Dram);
                assert!(!wp, "write protection cleared");
            }
            other => panic!("page lost: {other:?}"),
        }
        assert_eq!(s.m.tlb.stats().shootdowns, 1, "remap shoots down the TLB");
    }

    #[test]
    fn migration_to_full_tier_aborts_cleanly() {
        let mut s = sim();
        let id = s.mmap(2 * GIB);
        s.populate(id, true); // DRAM completely full
        let page = PageId {
            region: id,
            index: 600,
        };
        s.backend.jobs.push(MigrationJob {
            page,
            dst: Tier::Dram,
            mechanism: crate::backend::CopyMechanism::Threads(4),
        });
        s.advance(Ns::millis(50));
        assert_eq!(s.m.stats.migrations_aborted, 1);
        assert_eq!(s.m.stats.migrations_started, 0);
        match s.m.space.region(id).state(600) {
            hemem_vmm::PageState::Mapped { tier, .. } => assert_eq!(tier, Tier::Nvm),
            other => panic!("page lost: {other:?}"),
        }
    }

    #[test]
    fn duplicate_migration_of_same_page_is_ignored() {
        let mut s = sim();
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        let (t0, p0) = s.m.space.region_mut(id).unmap_page(0);
        s.m.pool_mut(t0).free(p0);
        let (t1, p1) = s.m.space.region_mut(id).unmap_page(1);
        s.m.pool_mut(t1).free(p1);
        let page = PageId {
            region: id,
            index: 700,
        };
        let job = MigrationJob {
            page,
            dst: Tier::Dram,
            mechanism: crate::backend::CopyMechanism::Dma { channels: 1 },
        };
        s.backend.jobs.push(job);
        s.backend.jobs.push(job); // duplicate in the same tick
        s.advance(Ns::millis(50));
        assert_eq!(
            s.m.stats.migrations_done, 1,
            "second job skipped (page was WP)"
        );
    }

    #[test]
    fn backend_ticks_fire_on_schedule() {
        let mut s = sim();
        s.advance(Ns::millis(105));
        // Tick at t=0 plus one every 10 ms.
        assert_eq!(s.backend.ticks, 11);
    }

    #[test]
    fn dilation_counts_app_and_backend_threads() {
        let mut s = sim();
        assert_eq!(s.dilation(), 1.0);
        s.set_app_threads(30);
        assert!((s.dilation() - 30.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn small_region_batches_stay_in_dram_without_pool() {
        // SmallAnon regions are kernel-managed: mapped on fault without
        // touching the tiered pools.
        struct NoManage;
        impl TieredBackend for NoManage {
            fn name(&self) -> &'static str {
                "nomanage"
            }
            fn wants_to_manage(&self, _len: u64) -> bool {
                false
            }
            fn on_mmap(&mut self, _m: &mut MachineCore, _r: RegionId) {}
            fn on_munmap(&mut self, _m: &mut MachineCore, _r: RegionId) {}
            fn place(&mut self, _m: &mut MachineCore, _p: PageId, _w: bool) -> Tier {
                Tier::Dram
            }
            fn placed(&mut self, _m: &mut MachineCore, _p: PageId, _t: Tier) {}
            fn tick(&mut self, _m: &mut MachineCore, _now: Ns) -> TickOutput {
                TickOutput::default()
            }
            fn migration_done(&mut self, _m: &mut MachineCore, _p: PageId, _d: Tier) {}
        }
        let mut s = Sim::new(MachineConfig::small(1, 4), NoManage);
        let id = s.mmap(16 << 20);
        s.populate(id, true);
        let r = s.m.space.region(id);
        assert_eq!(r.kind(), RegionKind::SmallAnon);
        assert_eq!(r.dram_pages(), r.mapped_pages());
        assert_eq!(
            s.m.dram_pool.allocated_pages(),
            0,
            "kernel memory, not pool"
        );
    }

    #[test]
    fn wp_writes_stall_and_are_counted() {
        let mut s = sim();
        let id = s.mmap(GIB);
        s.populate(id, true);
        // Write-protect a slice of pages manually (migration in flight).
        for i in 0..64 {
            s.m.space.region_mut(id).set_wp(i, true);
        }
        let b = AccessBatch::uniform(id, 0, 64, 100_000, 8, 1.0, GIB);
        s.submit_batch(0, &b);
        while let Some((_, ev)) = s.step() {
            if matches!(ev, Event::ThreadReady(_)) {
                break;
            }
        }
        assert!(s.m.stats.wp_stalls > 0);
        assert!(s.m.fault_stats.wp > 0);
    }

    #[test]
    fn killed_manager_rolls_back_inflight_migration_and_recovers() {
        let mut cfg = MachineConfig::small(1, 4);
        cfg.watchdog = Some(crate::machine::WatchdogConfig::default());
        let mut s = Sim::new(cfg, TestBackend::new());
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        let (t0, p0) = s.m.space.region_mut(id).unmap_page(0);
        s.m.pool_mut(t0).free(p0);
        let page = PageId {
            region: id,
            index: 600,
        };
        s.backend.jobs.push(MigrationJob {
            page,
            dst: Tier::Dram,
            mechanism: crate::backend::CopyMechanism::Dma { channels: 2 },
        });
        // Advance in small steps until the tick journals the migration,
        // then kill the manager before its completion event lands.
        let mut guard = 0;
        while s.m.journal.prepared_len() == 0 {
            s.advance(Ns::micros(10));
            guard += 1;
            assert!(guard < 10_000, "migration never prepared");
        }
        let dram_allocated = s.m.dram_pool.allocated_pages();
        s.inject_manager_kill();
        assert!(s.manager_down());
        s.advance(Ns::millis(100));
        // The watchdog detected the dead policy cadence and recovered.
        assert!(!s.manager_down());
        assert_eq!(s.m.recovery.manager_kills, 1);
        assert_eq!(s.m.recovery.journal_rollbacks, 1);
        assert!(s.m.recovery.watchdog_restarts >= 1);
        assert!(s.m.journal.is_empty());
        assert_eq!(s.m.stats.migrations_done, 0, "completion died with it");
        // Rollback: the page never left NVM, its lock is gone, and the
        // reserved DRAM frame was released.
        match s.m.space.region(id).state(600) {
            hemem_vmm::PageState::Mapped { tier, wp, .. } => {
                assert_eq!(tier, Tier::Nvm);
                assert!(!wp, "write protection rolled back");
            }
            other => panic!("page lost: {other:?}"),
        }
        assert_eq!(s.m.dram_pool.allocated_pages(), dram_allocated - 1);
        assert_eq!(s.run_audit(true), Vec::new(), "machine audits clean");
        // The restarted manager's threads are live again.
        let ticks = s.backend.ticks;
        s.advance(Ns::millis(50));
        assert!(s.backend.ticks > ticks, "policy cadence resumed");
    }

    #[test]
    fn kill_without_explicit_watchdog_gets_the_default_one() {
        // Seeded kill in the fault plan, no watchdog in the machine
        // config: Sim::new arms the default watchdog so the run can
        // finish.
        let mut cfg = MachineConfig::small(1, 4);
        cfg.chaos.manager_kill_at = vec![Ns::millis(31)];
        let mut s = Sim::new(cfg, TestBackend::new());
        s.advance(Ns::millis(200));
        assert_eq!(s.m.recovery.manager_kills, 1);
        assert!(s.m.recovery.watchdog_restarts >= 1, "recovered");
        assert!(!s.manager_down());
        assert_eq!(s.run_audit(true), Vec::new());
    }

    #[test]
    fn clean_config_leaves_recovery_stats_untouched() {
        let mut s = sim();
        let id = s.mmap(GIB / 2);
        s.populate(id, true);
        s.advance(Ns::millis(105));
        assert_eq!(
            format!("{:?}", s.m.recovery),
            format!("{:?}", crate::machine::RecoveryStats::default())
        );
    }

    #[test]
    fn periodic_audit_counts_violations() {
        let mut cfg = MachineConfig::small(1, 4);
        cfg.audit_period = Some(Ns::millis(10));
        let mut s = Sim::new(cfg, TestBackend::new());
        let id = s.mmap(GIB / 2);
        s.populate(id, true);
        s.advance(Ns::millis(20));
        assert_eq!(s.m.recovery.audit_violations, 0, "clean machine");
        // Leak a frame: every subsequent audit tick flags the mismatch.
        let _leak = s.m.dram_pool.alloc().expect("frame");
        let before = s.m.recovery.audit_violations;
        s.advance(Ns::millis(25));
        assert!(s.m.recovery.audit_violations > before);
    }

    #[test]
    fn watchdog_restarts_wedged_fault_thread() {
        let mut cfg = MachineConfig::small(1, 4);
        cfg.watchdog = Some(crate::machine::WatchdogConfig::default());
        let mut s = Sim::new(cfg, TestBackend::new());
        s.advance(Ns::millis(5));
        let now = s.now();
        // Wedge the handler far past the 100 ms backlog limit.
        s.m.fault_thread.stall(now, Ns::secs(1));
        s.advance(Ns::millis(30));
        assert!(s.m.recovery.watchdog_restarts >= 1, "thread restarted");
        assert_eq!(s.m.fault_thread.backlog(s.now()), Ns::ZERO);
    }

    #[test]
    fn dma_breaker_reopens_after_probe_success() {
        use hemem_sim::{FaultPlan, FaultPlanConfig};
        let mut cfg = MachineConfig::small(1, 4);
        cfg.dma.probe_after = 2;
        cfg.chaos = FaultPlanConfig {
            dma_submit_fail: 1.0, // every submission fails
            ..FaultPlanConfig::none()
        };
        let mut s = Sim::new(cfg, TestBackend::new());
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        let mut next_page = 0;
        let round = |s: &mut Sim<TestBackend>, next_page: &mut u64| {
            for _ in 0..4 {
                s.backend.jobs.push(MigrationJob {
                    page: PageId {
                        region: id,
                        index: *next_page,
                    },
                    dst: Tier::Nvm,
                    mechanism: crate::backend::CopyMechanism::Dma { channels: 2 },
                });
                *next_page += 1;
            }
            s.advance(Ns::millis(10));
        };
        // Keep submitting until the breaker opens; every migration still
        // completes via the thread fallback (pinning is policy-level).
        let mut guard = 0;
        while !s.m.dma.degraded() {
            round(&mut s, &mut next_page);
            guard += 1;
            assert!(guard < 20, "breaker never opened");
        }
        // A probe while the injection is still active fails and keeps the
        // breaker open (probe_after = 2: every second fallback probes).
        round(&mut s, &mut next_page);
        round(&mut s, &mut next_page);
        assert!(s.m.dma.degraded(), "failed probe leaves it open");
        // The engine comes back: the first successful probe submission
        // closes the breaker and DMA offload resumes.
        s.m.chaos = FaultPlan::none();
        let ioctls_before = s.m.dma.stats().ioctls;
        let mut guard = 0;
        while s.m.dma.degraded() {
            round(&mut s, &mut next_page);
            guard += 1;
            assert!(guard < 10, "breaker never reopened");
        }
        round(&mut s, &mut next_page);
        assert!(
            s.m.dma.stats().ioctls > ioctls_before,
            "offload resumed after the breaker closed"
        );
        assert_eq!(s.run_audit(true), Vec::new());
    }

    #[test]
    fn run_until_lands_exactly_on_target() {
        let mut s = sim();
        s.run_until(Ns::millis(37));
        assert_eq!(s.now(), Ns::millis(37));
        s.advance(Ns::millis(3));
        assert_eq!(s.now(), Ns::millis(40));
    }

    #[test]
    fn munmap_after_population_frees_frames() {
        let mut s = sim();
        let free0 = (s.m.dram_pool.free_pages(), s.m.nvm_pool.free_pages());
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        s.munmap(id);
        assert_eq!(
            (s.m.dram_pool.free_pages(), s.m.nvm_pool.free_pages()),
            free0
        );
    }

    #[test]
    fn degrade_throttles_device_and_sheds_free_capacity() {
        let mut s = sim();
        assert_eq!(s.m.device(Tier::Nvm).throttle(), 1.0);
        s.inject_tier_degrade(Tier::Nvm);
        assert_eq!(
            s.m.tier_health(Tier::Nvm),
            crate::machine::TierHealth::Degraded
        );
        assert_eq!(s.m.device(Tier::Nvm).throttle(), DEGRADED_THROTTLE);
        let total = s.m.nvm_pool.total_pages();
        assert_eq!(s.m.health.health_retired[1], total / 8);
        assert_eq!(s.m.nvm_pool.health_retired_pages(), total / 8);
        assert!(s.m.nvm_pool.conserved());
        assert_eq!(s.m.health.degrades, 1);
        // Degrading again is a no-op: the tier is already degraded.
        s.inject_tier_degrade(Tier::Nvm);
        assert_eq!(s.m.health.degrades, 1);
        assert!(crate::audit::audit_machine(&s.m, true).is_empty());
    }

    #[test]
    fn offline_tier_evacuates_survivors_and_poisons_overflow() {
        let mut s = sim();
        let id = s.mmap(2 * GIB);
        s.populate(id, true); // 512 DRAM + 512 NVM, DRAM full
                              // Free 300 DRAM frames so evacuation has partial headroom.
        for i in 0..300 {
            let (t, p) = s.m.space.region_mut(id).unmap_page(i);
            assert_eq!(t, Tier::Dram);
            s.m.pool_mut(t).free(p);
        }
        s.inject_tier_fail(Tier::Nvm);
        assert_eq!(s.evacuating(), Some(Tier::Nvm));
        s.advance(Ns::secs(2));
        assert_eq!(s.evacuating(), None, "evacuation drained");
        assert_eq!(s.m.health.evacuated_pages, 300);
        assert_eq!(s.m.health.poisoned_pages, 212);
        assert_eq!(s.m.nvm_pool.allocated_pages(), 0, "tier fully drained");
        assert!(s.m.health.evac_done[1]);
        assert!(crate::audit::audit_machine(&s.m, true).is_empty());
        // Touching a poisoned page faults it back in as a fresh zero page
        // (free DRAM headroom first: N-1 operation has nowhere to spill).
        for i in 300..512 {
            let (t, p) = s.m.space.region_mut(id).unmap_page(i);
            assert_eq!(t, Tier::Dram);
            s.m.pool_mut(t).free(p);
        }
        let b = AccessBatch::uniform(id, 512, 1024, 200_000, 8, 0.5, 2 * GIB);
        s.submit_batch(0, &b);
        s.advance(Ns::secs(1));
        assert!(s.m.health.poison_faults > 0);
        assert_eq!(
            s.m.nvm_pool.allocated_pages(),
            0,
            "refaults avoid the dead tier"
        );
    }

    #[test]
    fn offline_without_evacuation_poisons_the_whole_tier() {
        let mut cfg = MachineConfig::small(1, 4);
        cfg.evacuate_on_failure = false;
        let mut s = Sim::new(cfg, TestBackend::new());
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        s.inject_tier_fail(Tier::Nvm);
        assert_eq!(s.evacuating(), None, "baseline never evacuates");
        assert_eq!(s.m.health.poisoned_pages, 512);
        assert_eq!(s.m.health.evacuated_pages, 0);
        assert_eq!(s.m.nvm_pool.allocated_pages(), 0);
        assert!(crate::audit::audit_machine(&s.m, true).is_empty());
    }

    #[test]
    fn readmit_restores_an_empty_healthy_tier() {
        let mut s = sim();
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        s.inject_tier_degrade(Tier::Nvm);
        s.inject_tier_fail(Tier::Nvm);
        s.advance(Ns::secs(2));
        let total = s.m.nvm_pool.total_pages();
        s.inject_tier_readmit(Tier::Nvm);
        assert_eq!(
            s.m.tier_health(Tier::Nvm),
            crate::machine::TierHealth::Healthy
        );
        assert_eq!(s.m.device(Tier::Nvm).throttle(), 1.0);
        assert_eq!(s.m.health.health_retired[1], 0);
        assert_eq!(s.m.nvm_pool.free_pages(), total, "tier comes back empty");
        assert!(!s.m.health.evac_done[1]);
        assert_eq!(s.m.health.readmits, 1);
        assert!(crate::audit::audit_machine(&s.m, true).is_empty());
        // The readmitted tier accepts allocations again.
        let id2 = s.mmap(2 * GIB);
        s.populate(id2, true);
        assert!(s.m.nvm_pool.allocated_pages() > 0);
    }

    #[test]
    fn fail_tier_rolls_back_inflight_migrations_into_it() {
        let mut s = sim();
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        let page = PageId {
            region: id,
            index: 2, // DRAM-resident
        };
        // Prepare the migration but do not let its completion fire, then
        // pull the destination tier out from under it.
        let now = s.now();
        s.start_migrations(
            now,
            &[MigrationJob {
                page,
                dst: Tier::Nvm,
                mechanism: crate::backend::CopyMechanism::Threads(2),
            }],
        );
        assert_eq!(s.m.stats.migrations_started, 1);
        s.inject_tier_fail(Tier::Nvm);
        assert_eq!(s.m.recovery.journal_rollbacks, 1);
        s.advance(Ns::secs(2));
        assert_eq!(s.m.stats.migrations_done, 0);
        match s.m.space.region(id).state(2) {
            hemem_vmm::PageState::Mapped { tier, wp, .. } => {
                assert_eq!(tier, Tier::Dram, "page stays on its source");
                assert!(!wp);
            }
            other => panic!("page lost: {other:?}"),
        }
        assert!(crate::audit::audit_machine(&s.m, true).is_empty());
    }
}
