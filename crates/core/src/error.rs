//! Typed errors for the fallible memory-management paths.
//!
//! The runtime's fault and reclaim paths used to `panic!` on exhaustion;
//! under fault injection these conditions become reachable, so they are
//! typed here and surfaced through `Sim::try_fault_page` /
//! `Sim::try_direct_reclaim`. The infallible `Sim::fault_page` keeps the
//! original semantics — a fault that cannot be satisfied is the machine's
//! OOM kill — by panicking centrally with the typed cause.

use hemem_vmm::PageId;

/// Fatal memory-management failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Both memory tiers are exhausted and the backend has nothing left
    /// to reclaim.
    OutOfMemory,
    /// A swapped page or a reclaim path needs the swap device and none is
    /// configured.
    NoSwapDevice,
    /// The swap file has no free slots left.
    SwapExhausted,
    /// The backend handed a reclaim victim that is not a plain mapped
    /// page (already migrating, swapped, or unmapped).
    ReclaimVictimBusy(PageId),
}

impl core::fmt::Display for MemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemError::OutOfMemory => {
                write!(f, "both memory tiers exhausted and backend cannot reclaim")
            }
            MemError::NoSwapDevice => write!(f, "operation requires a swap device and none exists"),
            MemError::SwapExhausted => write!(f, "swap file exhausted"),
            MemError::ReclaimVictimBusy(p) => {
                write!(f, "reclaim victim {p:?} is not a plain mapped page")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_vmm::RegionId;

    #[test]
    fn errors_render() {
        assert!(MemError::OutOfMemory.to_string().contains("exhausted"));
        assert!(MemError::NoSwapDevice.to_string().contains("swap device"));
        assert!(MemError::SwapExhausted.to_string().contains("swap file"));
        let p = PageId {
            region: RegionId(1),
            index: 7,
        };
        assert!(MemError::ReclaimVictimBusy(p)
            .to_string()
            .contains("victim"));
    }
}
