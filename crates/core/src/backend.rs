//! The tiered-memory backend interface.
//!
//! A [`TieredBackend`] is a memory manager plugged under the simulated
//! machine: HeMem itself, Intel Memory Mode, Linux Nimble, X-Mem static
//! placement, and the page-table-scanning HeMem variants all implement
//! this trait. The machine calls into the backend on `mmap`, on first-touch
//! faults, to split each access batch's traffic across tiers, and on its
//! periodic background wake-ups; the backend returns migration jobs that
//! the machine executes asynchronously over the DMA engine or copy
//! threads.

use hemem_memdev::{MemOp, Pattern};
use hemem_sim::Ns;
use hemem_vmm::{PageId, RegionId, Tier};

use crate::machine::MachineCore;

/// One contiguous, uniformly-accessed span of a batch.
#[derive(Debug, Clone)]
pub struct SegmentAccess {
    /// Region the span lives in.
    pub region: RegionId,
    /// First page index (inclusive).
    pub lo_page: u64,
    /// Last page index (exclusive).
    pub hi_page: u64,
    /// Fraction of the batch's accesses landing in this span.
    pub weight: f64,
    /// Bytes of cache-relevant footprint this span competes with in the
    /// LLC (usually the aggregate size of the structure across threads).
    pub llc_footprint: u64,
    /// Per-segment store fraction override (the Table 2 write-skew
    /// workload has write-only and read-only spans in one batch); `None`
    /// uses the batch-level [`AccessBatch::write_fraction`].
    pub write_fraction: Option<f64>,
}

impl SegmentAccess {
    /// Number of pages in the span.
    pub fn pages(&self) -> u64 {
        self.hi_page - self.lo_page
    }
}

/// A batch of memory accesses issued by one simulated thread.
#[derive(Debug, Clone)]
pub struct AccessBatch {
    /// Where the accesses land.
    pub segments: Vec<SegmentAccess>,
    /// Total accesses in the batch.
    pub count: u64,
    /// Bytes touched per access.
    pub object_size: u32,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
    /// Spatial pattern.
    pub pattern: Pattern,
    /// Non-memory CPU work per access, nanoseconds.
    pub cpu_ns_per_access: f64,
    /// Memory-level parallelism: how many accesses a thread keeps in
    /// flight, hiding latency.
    pub mlp: f64,
    /// This batch is a single pass over its span (each page touched once
    /// per traversal, e.g. a graph scan in frontier order). Affects only
    /// the accessed/dirty-bit evidence scanning backends see: a sweep sets
    /// each page's bit once, not `count / pages` times.
    pub sweep: bool,
}

impl AccessBatch {
    /// Convenience constructor for a uniform batch over one span.
    pub fn uniform(
        region: RegionId,
        lo_page: u64,
        hi_page: u64,
        count: u64,
        object_size: u32,
        write_fraction: f64,
        llc_footprint: u64,
    ) -> AccessBatch {
        AccessBatch {
            segments: vec![SegmentAccess {
                region,
                lo_page,
                hi_page,
                weight: 1.0,
                llc_footprint,
                write_fraction: None,
            }],
            count,
            object_size,
            write_fraction,
            pattern: Pattern::Random,
            cpu_ns_per_access: 2.0,
            mlp: 4.0,
            sweep: false,
        }
    }
}

/// One class of device traffic produced by splitting a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Traffic {
    /// Destination device.
    pub tier: Tier,
    /// Read or write.
    pub op: MemOp,
    /// Spatial pattern at the device.
    pub pattern: Pattern,
    /// Bytes per access.
    pub size: u32,
    /// Number of accesses (fractional; the machine rounds
    /// expectation-preservingly).
    pub count: f64,
}

/// Result of splitting one segment's memory-reaching accesses.
#[derive(Debug, Clone, Default)]
pub struct TierSplit {
    /// Device traffic to reserve.
    pub traffic: Vec<Traffic>,
    /// Fraction of the segment's *loads* served from NVM (drives PEBS
    /// `NvmLoad` vs `DramLoad` classification).
    pub nvm_load_fraction: f64,
    /// Additional latency each access pays beyond device latency (e.g.
    /// memory-mode tag checks).
    pub extra_latency: Ns,
}

/// How a migration moves bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyMechanism {
    /// Offloaded to the I/OAT DMA engine (no CPU cost).
    Dma {
        /// Concurrent channels to stripe over.
        channels: usize,
    },
    /// Copied by `n` parallel migration threads (consumes cores).
    Threads(usize),
}

/// A request to move one page to another tier.
#[derive(Debug, Clone, Copy)]
pub struct MigrationJob {
    /// Page to move.
    pub page: PageId,
    /// Destination tier.
    pub dst: Tier,
    /// Copy mechanism.
    pub mechanism: CopyMechanism,
}

/// What a background tick produced.
#[derive(Debug, Clone, Default)]
pub struct TickOutput {
    /// When to wake the backend next; `None` stops background work.
    pub next_wake: Option<Ns>,
    /// Migrations to start now.
    pub migrations: Vec<MigrationJob>,
    /// Pages to swap out to disk (three-tier configurations only; ignored
    /// when the machine has no swap device).
    pub swap_outs: Vec<PageId>,
    /// CPU time the background thread(s) burned this tick (informational;
    /// steady background threads are modelled via
    /// [`TieredBackend::background_threads`]).
    pub cpu_time: Ns,
}

/// A tiered memory manager under test.
pub trait TieredBackend {
    /// Short name used in experiment reports ("HeMem", "MM", "Nimble"…).
    fn name(&self) -> &'static str;

    /// Whether the backend manages a new mapping of `len` bytes itself
    /// (managed heap) or forwards it to the kernel (small anonymous
    /// memory that stays in DRAM).
    fn wants_to_manage(&self, len: u64) -> bool;

    /// Notification that `region` was created (already inserted into the
    /// machine's address space).
    fn on_mmap(&mut self, m: &mut MachineCore, region: RegionId);

    /// Notification that `region` is being destroyed. Physical pages are
    /// freed by the machine after this returns.
    fn on_munmap(&mut self, m: &mut MachineCore, region: RegionId);

    /// First touch of `page`: choose the tier to place it on. The machine
    /// allocates from that tier's pool, falling back to the other tier if
    /// exhausted, then reports the final placement via
    /// [`TieredBackend::placed`].
    fn place(&mut self, m: &mut MachineCore, page: PageId, is_write: bool) -> Tier;

    /// The machine mapped `page` on `tier` (first touch completed).
    fn placed(&mut self, m: &mut MachineCore, page: PageId, tier: Tier);

    /// Splits one segment's memory-reaching accesses into device traffic.
    ///
    /// `reads`/`writes` count accesses that missed the LLC. The default
    /// implementation splits by actual page residency — correct for every
    /// page-placement backend; Memory Mode overrides it to consult its
    /// cache model.
    fn split(
        &mut self,
        m: &mut MachineCore,
        seg: &SegmentAccess,
        object_size: u32,
        pattern: Pattern,
        reads: f64,
        writes: f64,
    ) -> TierSplit {
        residency_split(m, seg, object_size, pattern, reads, writes)
    }

    /// Whether the machine should generate PEBS samples for this backend.
    fn uses_pebs(&self) -> bool {
        false
    }

    /// Consumes drained PEBS samples (called from the backend's PEBS
    /// thread context during ticks) at virtual time `now`.
    fn on_samples(
        &mut self,
        _m: &mut MachineCore,
        _samples: &[hemem_pebs::SampleRecord],
        _now: Ns,
    ) {
    }

    /// Periodic background work. `now` is the current virtual time.
    fn tick(&mut self, m: &mut MachineCore, now: Ns) -> TickOutput;

    /// A migration finished; internal metadata (lists) should be updated.
    /// The machine has already remapped the page to `dst`.
    fn migration_done(&mut self, m: &mut MachineCore, page: PageId, dst: Tier);

    /// A migration could not start (destination tier exhausted); the page
    /// remains on `current` and should be re-enqueued.
    fn migration_aborted(&mut self, _m: &mut MachineCore, _page: PageId, _current: Tier) {}

    /// A page finished swapping out to disk; the backend should drop it
    /// from its queues (it re-enters via [`TieredBackend::placed`] when
    /// faulted back in).
    fn swapped_out(&mut self, _m: &mut MachineCore, _page: PageId) {}

    /// Direct reclaim: both memory tiers are exhausted and a fault needs a
    /// frame *now*. Return a victim page to swap out synchronously, or
    /// `None` if the backend cannot reclaim (the machine then panics,
    /// matching an OOM kill).
    fn reclaim_victim(&mut self, _m: &mut MachineCore) -> Option<PageId> {
        None
    }

    /// Number of always-runnable helper threads (PEBS reader, policy,
    /// scanner, copy threads); they contend for cores with the
    /// application.
    fn background_threads(&self) -> u32 {
        0
    }

    /// The manager process was restarted after a crash: the machine has
    /// already rolled the journal back, and the backend must rebuild its
    /// internal metadata (hot/cold lists, trackers) from what survives —
    /// the address space and any per-page counters it kept. The default
    /// suits stateless backends.
    fn recover(&mut self, _m: &mut MachineCore, _now: Ns) {}

    /// Backend-specific invariant checks for the online auditor: report
    /// any disagreement between the backend's tracking structures and the
    /// machine's authoritative state. The default (no checks) suits
    /// backends without per-page metadata.
    fn audit(&self, _m: &MachineCore) -> Vec<crate::audit::AuditViolation> {
        Vec::new()
    }

    /// A seeded tenant kill fired: the backend must *quarantine* the
    /// tenant — stop scheduling policy work, placements, and sample
    /// processing for it — so the machine can drain and reclaim its
    /// resources. The machine rolls back the tenant's prepared journal
    /// entries after this returns. The default suits single-tenant
    /// backends, where tenant kills are never scheduled.
    fn tenant_killed(&mut self, _m: &mut MachineCore, _tenant: hemem_vmm::TenantId, _now: Ns) {}

    /// The killed tenant's DMA traffic has quiesced and the machine has
    /// reclaimed its frames across every tier: the backend should drop
    /// remaining per-tenant metadata and return the tenant's quota to
    /// its arbiter, completing the Quarantined → Retired transition.
    fn tenant_drained(&mut self, _m: &mut MachineCore, _tenant: hemem_vmm::TenantId, _now: Ns) {}

    /// Slot-pool lifecycle counters, when the backend runs its tenants
    /// out of a [`crate::fleet::SlotPool`]. `None` (the default) means
    /// the backend has no fleet control plane; the bench fingerprint
    /// omits its segment entirely so non-fleet runs stay byte-identical.
    fn fleet_stats(&self) -> Option<crate::fleet::FleetStats> {
        None
    }

    /// Picks the destination tier for evacuating `page` off the failing
    /// tier `from`: the fastest *online* tier with a free frame. Backends
    /// with admission control (the multi-tenant arbiter) override this to
    /// keep evacuations inside per-tenant fast-tier quotas. `None` means
    /// nowhere to put the page — the evacuation engine stalls and the
    /// page is poisoned if the device dies first.
    fn evacuation_dst(&mut self, m: &mut MachineCore, _page: PageId, from: Tier) -> Option<Tier> {
        m.tiers()
            .iter()
            .copied()
            .find(|&t| t != from && m.tier_online(t) && m.pool(t).free_pages() > 0)
    }
}

/// Residency-proportional split: accesses go to whatever tier their page
/// is on. Shared by every page-placement backend.
pub fn residency_split(
    m: &MachineCore,
    seg: &SegmentAccess,
    object_size: u32,
    pattern: Pattern,
    reads: f64,
    writes: f64,
) -> TierSplit {
    let region = m.space.region(seg.region);
    let pages = seg.pages().max(1);
    let mapped = region.mapped_pages_in(seg.lo_page, seg.hi_page);
    let dram = region.dram_pages_in(seg.lo_page, seg.hi_page);
    // SSD-resident pages produce no byte traffic here: their accesses
    // trap as major faults and are charged on the swap device's queue.
    let ssd = region.ssd_pages_in(seg.lo_page, seg.hi_page);
    let byte_addressable = mapped - ssd;
    // Unmapped pages fault before being accessed; traffic splits over the
    // mapped portion (or all-DRAM if nothing is mapped yet: the fault path
    // will have placed pages by the time accesses land).
    let dram_frac = if byte_addressable == 0 {
        1.0
    } else {
        dram as f64 / byte_addressable as f64
    };
    let _ = pages;
    let mut traffic = Vec::with_capacity(4);
    let mut push = |tier: Tier, op: MemOp, count: f64| {
        if count > 0.0 {
            traffic.push(Traffic {
                tier,
                op,
                pattern,
                size: object_size,
                count,
            });
        }
    };
    push(Tier::Dram, MemOp::Read, reads * dram_frac);
    push(Tier::Nvm, MemOp::Read, reads * (1.0 - dram_frac));
    push(Tier::Dram, MemOp::Write, writes * dram_frac);
    push(Tier::Nvm, MemOp::Write, writes * (1.0 - dram_frac));
    TierSplit {
        traffic,
        nvm_load_fraction: 1.0 - dram_frac,
        extra_latency: Ns::ZERO,
    }
}
