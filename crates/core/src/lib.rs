//! # hemem-core
//!
//! The HeMem reproduction's core: the simulated machine
//! ([`machine::MachineCore`]), the deterministic event-loop runtime
//! ([`runtime::Sim`]), the backend interface every tiered memory manager
//! implements ([`backend::TieredBackend`]), and HeMem itself ([`hemem`]).
//!
//! # Examples
//!
//! ```
//! use hemem_core::{hemem::HeMem, machine::MachineConfig, runtime::Sim};
//!
//! let mut sim = Sim::new(MachineConfig::small(1, 4), HeMem::paper());
//! let region = sim.mmap(2 << 30); // 2 GiB managed heap
//! sim.populate(region, true);
//! assert_eq!(sim.m.space.region(region).mapped_pages(), 1024);
//! ```

#![warn(missing_docs)]

pub mod arbiter;
pub mod audit;
pub mod backend;
pub mod error;
pub mod fleet;
pub mod hemem;
pub mod journal;
pub mod machine;
pub mod runtime;
pub mod telemetry;

pub use arbiter::{ArbiterPolicy, DramArbiter, TenantSignal};
pub use audit::{audit_machine, AuditViolation};
pub use backend::{
    AccessBatch, CopyMechanism, MigrationJob, SegmentAccess, TickOutput, TieredBackend, Traffic,
};
pub use error::MemError;
pub use fleet::{spawn_cost_ns, FleetStats, SlotPool};
pub use hemem::{HeMem, HeMemConfig};
pub use journal::{JournalEntry, MigrationJournal, TxnState};
pub use machine::{MachineConfig, MachineCore, MachineStats, RecoveryStats, WatchdogConfig};
pub use runtime::{BatchReceipt, Event, Sim};
pub use telemetry::{
    IntervalRates, Snapshot, Telemetry, TenantSnapshot, TenantTelemetry, TierSnapshot,
    TierTelemetry,
};
