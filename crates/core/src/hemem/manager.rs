//! The HeMem tiered-memory manager (§3) — the paper's contribution.
//!
//! HeMem is a user-level library: it intercepts `mmap`, forwards small
//! allocations to the kernel (so ephemeral structures stay in DRAM),
//! manages large heap ranges itself on huge pages, tracks hotness with
//! PEBS samples processed by a dedicated thread, and migrates pages
//! asynchronously under the 10 ms policy thread using DMA offload.

use hemem_pebs::{SampleRecord, TenantDemux, TenantStreamStats};
use hemem_sim::Ns;
use hemem_vmm::{PageId, RegionId, TenantId, Tier, VirtAddr};

use crate::arbiter::{ArbiterPolicy, DramArbiter, TenantSignal};
use crate::backend::{TickOutput, TieredBackend};
use crate::fleet::{BalloonDrain, FleetStats, Lifecycle, SlotPool};
use crate::hemem::policy::{run_policy, run_policy_scoped, PolicyConfig, PolicyScope};
use crate::hemem::tracker::{PageTracker, Queue, TrackerConfig};
use crate::machine::MachineCore;

/// Full HeMem configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HeMemConfig {
    /// Classification thresholds.
    pub tracker: TrackerConfig,
    /// Migration policy parameters.
    pub policy: PolicyConfig,
    /// Allocations at or above this size are managed; smaller ones are
    /// forwarded to the kernel (§3.3; 1 GB default).
    pub manage_threshold: u64,
    /// Disables migration entirely (tracking-only configurations in the
    /// Figure 8 overhead breakdown). `false` only in ablations.
    pub enable_migration: bool,
    /// Swap cold NVM pages to the machine's disk once NVM free space falls
    /// below this watermark (§3.4's third tier); 0 disables swapping.
    pub swap_watermark: u64,
    /// Demote cold NVM pages to the SSD capacity tier once NVM free space
    /// falls below this watermark, keeping the demotion cascade
    /// DRAM→NVM→SSD flowing under pressure; 0 disables it. Only
    /// effective on machines configured with a tier-3 device
    /// (`MachineConfig::with_tier3`). Unlike `swap_watermark`'s unmap-
    /// to-slot path, demoted pages stay mapped on `Tier::Ssd` and fault
    /// back through the device queue on access.
    #[serde(default)]
    pub nvm_watermark: u64,
    /// Consecutive migration aborts that trip a tenant's circuit breaker
    /// on multi-tenant machines; the tripped tenant sits out
    /// `BREAKER_BACKOFF_TICKS` policy passes and then probes half-open.
    /// Lower values make the breaker more aggressive under injected
    /// fault storms; the default of 8 tolerates sporadic aborts.
    #[serde(default = "default_breaker_threshold")]
    pub breaker_threshold: u32,
}

fn default_breaker_threshold() -> u32 {
    BREAKER_THRESHOLD
}

impl Default for HeMemConfig {
    fn default() -> Self {
        HeMemConfig::paper()
    }
}

impl HeMemConfig {
    /// Paper defaults.
    pub fn paper() -> HeMemConfig {
        HeMemConfig {
            tracker: TrackerConfig::default(),
            policy: PolicyConfig::default(),
            manage_threshold: 1 << 30,
            enable_migration: true,
            swap_watermark: 0,
            nvm_watermark: 0,
            breaker_threshold: default_breaker_threshold(),
        }
    }

    /// Paper defaults with the DRAM watermark and manage threshold scaled
    /// down proportionally for machines smaller than the 192 GB testbed
    /// (the paper's 1 GB watermark is ~0.5% of DRAM).
    pub fn scaled_for(m: &crate::machine::MachineConfig) -> HeMemConfig {
        let mut cfg = HeMemConfig::paper();
        let dram = m.dram.capacity;
        cfg.policy.dram_watermark = cfg.policy.dram_watermark.min(dram / 128).max(4 << 20);
        cfg.manage_threshold = cfg.manage_threshold.min(dram / 32).max(16 << 20);
        cfg
    }
}

/// HeMem manager statistics.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct HeMemStats {
    /// PEBS samples applied to tracked pages.
    pub samples_applied: u64,
    /// Policy passes executed.
    pub policy_runs: u64,
    /// Regions under management.
    pub managed_regions: u64,
    /// Small allocations forwarded to the kernel.
    pub forwarded_allocs: u64,
    /// Per-tenant circuit-breaker trips (consecutive migration aborts
    /// that put a tenant into scheduling backoff).
    #[serde(default)]
    pub breaker_trips: u64,
    /// Ticks on which a slipped balloon deadline forced demotions.
    #[serde(default)]
    pub balloon_escalations: u64,
}

/// Default for [`HeMemConfig::breaker_threshold`]: consecutive migration
/// aborts that trip a tenant's circuit breaker.
const BREAKER_THRESHOLD: u32 = 8;
/// Policy ticks a tripped breaker holds the tenant out of scheduling.
const BREAKER_BACKOFF_TICKS: u32 = 16;
/// Forced demotions per tick once a balloon deadline has slipped.
const BALLOON_ESCALATION_BATCH: usize = 64;

/// The HeMem backend.
///
/// One instance manages one or more tenants: each tenant has its own
/// tracker and policy scope, while the pools, DMA engine, and PEBS unit
/// stay shared. Multi-tenant instances carry a [`DramArbiter`] that
/// owns the DRAM capacity split; single-tenant instances (the default)
/// run the exact pre-colocation code path.
pub struct HeMem {
    cfg: HeMemConfig,
    /// The fleet slot pool: backing store for every tenant instance
    /// (solo included). Spawn claims and resets a slot; teardown
    /// scrubs and recycles it — never a from-scratch rebuild or a
    /// `Vec` regrowth in the hot path.
    pool: SlotPool,
    /// Global DRAM arbiter; created lazily on the first callback that
    /// sees the machine (quotas need the pool's capacity).
    arbiter: Option<DramArbiter>,
    arbiter_policy: Option<ArbiterPolicy>,
    /// Arbiter knob overrides applied at creation.
    realloc_period_ns: Option<u64>,
    realloc_step_pages: Option<u64>,
    /// Per-tenant PEBS stream budgets; multi-tenant only.
    demux: Option<TenantDemux>,
    stats: HeMemStats,
    /// Cumulative bytes of forwarded small allocations: once a growing
    /// region family crosses the manage threshold, HeMem starts managing
    /// further growth (§3.3).
    small_growth: u64,
    /// While set, newly created regions are pinned to DRAM and excluded
    /// from tiering (the per-application priority policy of §5.2.2: a
    /// high-priority instance keeps all its data in fast memory).
    pin_new_regions: bool,
    pinned: std::collections::HashSet<RegionId>,
    /// Churn mode: the arbiter starts with every page in the host
    /// reserve and tenants join via [`HeMem::admit_tenant`].
    deferred_admission: bool,
}

impl HeMem {
    /// Creates a single-tenant HeMem instance with the given
    /// configuration.
    pub fn new(cfg: HeMemConfig) -> HeMem {
        let pool = SlotPool::new(cfg.tracker.clone(), 1, true);
        HeMem {
            pool,
            cfg,
            arbiter: None,
            arbiter_policy: None,
            realloc_period_ns: None,
            realloc_step_pages: None,
            demux: None,
            stats: HeMemStats::default(),
            small_growth: 0,
            pin_new_regions: false,
            pinned: std::collections::HashSet::new(),
            deferred_admission: false,
        }
    }

    /// Creates a multi-tenant HeMem instance: `tenants` per-tenant
    /// trackers and policy scopes over the shared machine, with the
    /// global DRAM arbiter splitting the fast tier under `policy`. A
    /// 1-tenant instance built this way behaves byte-identically to
    /// [`HeMem::new`].
    pub fn multi_tenant(cfg: HeMemConfig, tenants: usize, policy: ArbiterPolicy) -> HeMem {
        assert!(tenants > 0, "need at least one tenant");
        let mut h = HeMem::new(cfg);
        h.pool = SlotPool::new(h.cfg.tracker.clone(), tenants, true);
        h.arbiter_policy = Some(policy);
        h
    }

    /// Creates a churn-capable instance: `capacity` tenant slots, none
    /// of them admitted. The arbiter starts with the whole tier in the
    /// host reserve and tenants join on an arrival schedule through
    /// [`HeMem::admit_tenant`] (and leave through seeded kills or
    /// retirement). This is the entry point for open-loop
    /// arrival/kill/balloon experiments.
    pub fn churn(cfg: HeMemConfig, capacity: usize, policy: ArbiterPolicy) -> HeMem {
        let mut h = HeMem::multi_tenant(cfg, capacity, policy);
        h.pool = SlotPool::new(h.cfg.tracker.clone(), capacity, false);
        h.deferred_admission = true;
        h
    }

    /// Overrides the arbiter's reallocation period and greedy step
    /// (applied when the arbiter is created).
    pub fn set_arbiter_realloc(&mut self, period: Ns, step_pages: u64) {
        self.realloc_period_ns = Some(period.0);
        self.realloc_step_pages = Some(step_pages);
        if let Some(arb) = &mut self.arbiter {
            arb.set_realloc_period_ns(period.0);
            arb.set_realloc_step_pages(step_pages);
        }
    }

    /// Creates the arbiter once the machine (and so the DRAM capacity)
    /// is known. No-op for single-instance configurations without an
    /// arbiter policy.
    fn ensure_arbiter(&mut self, m: &MachineCore) {
        if self.arbiter.is_some() || self.arbiter_policy.is_none() {
            return;
        }
        let policy = self.arbiter_policy.expect("checked above");
        let mut arb = if self.deferred_admission {
            DramArbiter::deferred(policy, m.dram_pool.total_pages(), self.pool.slots.len())
        } else {
            DramArbiter::new(policy, m.dram_pool.total_pages(), self.pool.slots.len())
        };
        if let Some(ns) = self.realloc_period_ns {
            arb.set_realloc_period_ns(ns);
        }
        if let Some(step) = self.realloc_step_pages {
            arb.set_realloc_step_pages(step);
        }
        self.arbiter = Some(arb);
    }

    /// Index of the tenant owning `region`.
    fn tenant_index(&self, m: &MachineCore, region: RegionId) -> usize {
        let t = m.space.region(region).tenant();
        let idx = t.0 as usize;
        debug_assert!(idx < self.pool.slots.len(), "region owned by unknown {t}");
        idx.min(self.pool.slots.len() - 1)
    }

    /// Tenant `i`'s policy scope: its unclaimed quota and its shares of
    /// the global watermark, migration budget, and in-flight cap.
    fn scope_for(&self, i: usize, m: &MachineCore) -> PolicyScope {
        let arb = self
            .arbiter
            .as_ref()
            .expect("multi-tenant scope needs the arbiter");
        let t = self.pool.slots[i].id;
        let page_bytes = m.cfg.managed_page.bytes();
        let quota_bytes = arb.quota_pages(t) * page_bytes;
        let claim_bytes = (m.space.tenant_frames(t).dram_pages
            + m.journal.prepared_into_for(t, Tier::Dram))
            * page_bytes;
        // When a reallocation pulls the quota below the tenant's current
        // claim, `free` saturates at zero and would hide the size of the
        // deficit; fold the overshoot into the watermark so demotion
        // pressure scales with how far over quota the tenant is. The
        // budget is floored at one page so a small-quota tenant can
        // always make migration progress toward its (shrinking) quota.
        let overshoot = claim_bytes.saturating_sub(quota_bytes);
        PolicyScope {
            tenant: t,
            free_dram_bytes: quota_bytes.saturating_sub(claim_bytes),
            dram_watermark: arb.share_of(t, self.cfg.policy.dram_watermark) + overshoot,
            budget: arb
                .share_of(t, self.cfg.policy.budget_per_period())
                .max(page_bytes),
            max_inflight_pages: arb.share_of(t, self.cfg.policy.max_inflight_pages).max(1),
            tag_tenant: true,
        }
    }

    /// Toggles priority mode: regions mapped while enabled are pinned to
    /// DRAM and never demoted (per-application policy flexibility, §5.2.2
    /// / Table 4).
    pub fn set_priority(&mut self, enabled: bool) {
        self.pin_new_regions = enabled;
    }

    /// Whether `region` is pinned to DRAM.
    pub fn is_pinned(&self, region: RegionId) -> bool {
        self.pinned.contains(&region)
    }

    /// Admits tenant `t` (dynamic join): asks the arbiter for a quota
    /// grant, resets the slot's tracker and breaker state, and marks it
    /// live. Rejected when the slot is out of range, already live, or
    /// the grown live set could not all sit at the quota floor. Emits a
    /// `tenant_admit` lifecycle instant on success.
    pub fn admit_tenant(
        &mut self,
        m: &mut MachineCore,
        t: TenantId,
        now: Ns,
    ) -> Result<u64, crate::arbiter::AdmitError> {
        self.ensure_arbiter(m);
        let arb = self
            .arbiter
            .as_mut()
            .expect("admission needs a multi-tenant instance");
        let granted = arb.admit(t)?;
        let generation = m.space.bump_tenant_generation(t);
        self.pool.claim(t, generation);
        m.trace.instant(
            now,
            "tenant_admit",
            "lifecycle",
            &[("tenant", t.0 as u64), ("granted_pages", granted)],
        );
        Ok(granted)
    }

    /// Balloons live tenant `t` down (or up) to `target_pages` with a
    /// bounded drain deadline: the quota moves immediately and the
    /// arbiter pins it there, so the scoped policy pass sees the
    /// overshoot and demotes toward the watermark. A tick past
    /// `deadline` with the DRAM claim still above target escalates to
    /// forced demotion toward the slowest tier. Returns the quota in
    /// effect (zero when the tenant is not live).
    pub fn balloon_tenant(
        &mut self,
        m: &mut MachineCore,
        t: TenantId,
        target_pages: u64,
        deadline: Ns,
        now: Ns,
    ) -> u64 {
        self.ensure_arbiter(m);
        let Some(arb) = self.arbiter.as_mut() else {
            return 0;
        };
        if !arb.is_live(t) {
            return 0;
        }
        let effective = arb.balloon(t, target_pages);
        self.pool.slots[t.0 as usize].balloon = Some(BalloonDrain {
            target_pages: effective,
            deadline,
        });
        m.trace.instant(
            now,
            "tenant_balloon",
            "lifecycle",
            &[
                ("tenant", t.0 as u64),
                ("target_pages", effective),
                ("deadline_ns", deadline.as_nanos()),
            ],
        );
        effective
    }

    /// True while tenant `t` is live (admitted, not quarantined or
    /// retired).
    pub fn tenant_is_live(&self, t: TenantId) -> bool {
        self.pool
            .slots
            .get(t.0 as usize)
            .map(|ts| ts.lifecycle == Lifecycle::Live)
            .unwrap_or(false)
    }

    /// True once tenant `t` has fully drained (or was never admitted).
    pub fn tenant_is_retired(&self, t: TenantId) -> bool {
        self.pool
            .slots
            .get(t.0 as usize)
            .map(|ts| ts.lifecycle == Lifecycle::Retired)
            .unwrap_or(false)
    }

    /// Paper-default HeMem.
    pub fn paper() -> HeMem {
        HeMem::new(HeMemConfig::paper())
    }

    /// Manager statistics.
    pub fn stats(&self) -> &HeMemStats {
        &self.stats
    }

    /// The hotness tracker (for experiment introspection). On a
    /// multi-tenant instance this is tenant 0's tracker; see
    /// [`HeMem::tracker_for`].
    pub fn tracker(&self) -> &PageTracker {
        &self.pool.slots[0].tracker
    }

    /// Tenant `t`'s hotness tracker.
    pub fn tracker_for(&self, t: TenantId) -> &PageTracker {
        &self.pool.slots[t.0 as usize].tracker
    }

    /// Selects the fleet spawn mechanism: pooled reset-in-place of
    /// recycled slots (the default) or from-scratch rebuild per
    /// admission — the pre-pool behavior, kept for `fleetbench`'s
    /// recycled-vs-fresh identity reduction.
    pub fn set_fleet_pooling(&mut self, pooled: bool) {
        self.pool.set_pooled(pooled);
    }

    /// Sets how many pages each pooled slot pre-warms tracker capacity
    /// for at claim time.
    pub fn set_slot_pages(&mut self, pages: u64) {
        self.pool.set_slot_pages(pages);
    }

    /// The slot pool (for experiment introspection).
    pub fn slot_pool(&self) -> &SlotPool {
        &self.pool
    }

    /// Number of tenants this instance manages.
    pub fn tenant_count(&self) -> usize {
        self.pool.slots.len()
    }

    /// The DRAM arbiter, once created (multi-tenant instances only).
    pub fn arbiter(&self) -> Option<&DramArbiter> {
        self.arbiter.as_ref()
    }

    /// Tenant `t`'s cumulative `(dram_loads, nvm_loads)` sample counts —
    /// the raw material of its miss ratio.
    pub fn tenant_loads(&self, t: TenantId) -> (u64, u64) {
        let ts = &self.pool.slots[t.0 as usize];
        (ts.total_dram_loads, ts.total_nvm_loads)
    }

    /// Samples applied to tenant `t`'s tracker.
    pub fn tenant_samples(&self, t: TenantId) -> u64 {
        self.pool.slots[t.0 as usize].samples_applied
    }

    /// Tenant `t`'s PEBS stream counters (zero when the single-tenant
    /// path bypasses the demux).
    pub fn tenant_stream_stats(&self, t: TenantId) -> TenantStreamStats {
        self.demux
            .as_ref()
            .map(|d| d.stream_stats(t.0 as usize))
            .unwrap_or_default()
    }

    /// Configuration in effect.
    pub fn config(&self) -> &HeMemConfig {
        &self.cfg
    }

    /// Aggregated region-layer counters across every tenant tracker, or
    /// `None` when region tracking is off. `periods` takes the max (the
    /// trackers tick in lockstep), the work counters sum.
    pub fn region_stats(&self) -> Option<crate::hemem::regions::RegionStats> {
        let mut agg: Option<crate::hemem::regions::RegionStats> = None;
        for ts in &self.pool.slots {
            if let Some(s) = ts.tracker.region_stats() {
                agg.get_or_insert_with(Default::default).merge(&s);
            }
        }
        agg
    }
}

/// The tier a first-touch spills to when DRAM is unavailable. A healthy
/// machine always answers NVM (byte-identical to the pre-failure-domain
/// cascade — allocation-time fallback handles a merely-full NVM); with
/// NVM offline the cascade skips to the next online tier (N-1 operation).
fn spill_tier(m: &MachineCore) -> Tier {
    if m.tier_online(Tier::Nvm) {
        return Tier::Nvm;
    }
    m.tiers()
        .iter()
        .copied()
        .find(|&t| t != Tier::Dram && m.tier_online(t))
        .unwrap_or(Tier::Nvm)
}

impl TieredBackend for HeMem {
    fn name(&self) -> &'static str {
        if self.cfg.policy.use_dma {
            "HeMem"
        } else {
            "HeMem-threads"
        }
    }

    fn wants_to_manage(&self, len: u64) -> bool {
        // Manage big allocations, and keep managing once cumulative small
        // growth has crossed the threshold (a region growing via small
        // mmaps is adopted after 1 GB).
        len >= self.cfg.manage_threshold || self.small_growth >= self.cfg.manage_threshold
    }

    fn on_mmap(&mut self, m: &mut MachineCore, region: RegionId) {
        self.ensure_arbiter(m);
        let r = m.space.region(region);
        if r.kind() == hemem_vmm::RegionKind::ManagedHeap {
            if self.pin_new_regions {
                // Pinned regions are invisible to the tracker: never
                // sampled into the queues, never demoted.
                self.pinned.insert(region);
                self.stats.managed_regions += 1;
                return;
            }
            let pages = r.page_count();
            let idx = self.tenant_index(m, region);
            self.pool.slots[idx].tracker.add_region(region, pages);
            self.stats.managed_regions += 1;
        } else {
            self.small_growth += r.range().len;
            self.stats.forwarded_allocs += 1;
        }
    }

    fn on_munmap(&mut self, _m: &mut MachineCore, region: RegionId) {
        self.pinned.remove(&region);
        // The owning tenant's tracker drops the region; for the others
        // this is a no-op.
        for ts in &mut self.pool.slots {
            ts.tracker.remove_region(region);
        }
    }

    fn place(&mut self, m: &mut MachineCore, page: PageId, is_write: bool) -> Tier {
        if self.pinned.contains(&page.region) {
            return Tier::Dram;
        }
        // A major fault on an SSD-resident page asks where the page
        // should come back to. PEBS-hot pages (their counters survived
        // demotion) jump straight to DRAM when there is room; pages that
        // re-fault within a cooling window promote one hop, to NVM; a
        // one-off fault leaves the page on the SSD (second chance).
        // Without that last rule a cold uniform tail would promote on
        // every touch and the resulting demotion writes would saturate
        // the swap device's queue, stalling every subsequent fault.
        if m.has_ssd() {
            if let hemem_vmm::PageState::Mapped {
                tier: Tier::Ssd, ..
            } = m.space.region(page.region).state(page.index)
            {
                let idx = self.tenant_index(m, page.region);
                let tracker = &mut self.pool.slots[idx].tracker;
                let seen = tracker.note_fault(page, is_write);
                // An offline SSD cannot keep its second-chance pages:
                // anything faulting off it promotes at least one hop.
                return if tracker.is_hot_page(page) && m.dram_pool.free_pages() > 0 {
                    Tier::Dram
                } else if seen >= 2 || !m.tier_online(Tier::Ssd) {
                    // N-1 cascade: with the NVM tier offline the one-hop
                    // promotion target is DRAM (direct reclaim makes
                    // room); an offline middle tier must not strand
                    // re-faulting pages on the SSD forever.
                    if m.tier_online(Tier::Nvm) {
                        Tier::Nvm
                    } else {
                        Tier::Dram
                    }
                } else {
                    Tier::Ssd
                };
            }
        }
        // Allocate DRAM while any is free; the policy thread keeps a
        // watermark free asynchronously. Otherwise spill to NVM and rely
        // on sampling to promote hot pages later (§3.3). Under the
        // arbiter, a tenant whose DRAM claim has reached its quota spills
        // to NVM even while the pool has free pages — that headroom
        // belongs to the other tenants.
        if m.dram_pool.free_pages() == 0 {
            return spill_tier(m);
        }
        if self.pool.slots.len() > 1 {
            self.ensure_arbiter(m);
            let arb = self.arbiter.as_ref().expect("arbiter for multi-tenant");
            let t = self.pool.slots[self.tenant_index(m, page.region)].id;
            let claim =
                m.space.tenant_frames(t).dram_pages + m.journal.prepared_into_for(t, Tier::Dram);
            if claim >= arb.quota_pages(t) {
                return spill_tier(m);
            }
        }
        Tier::Dram
    }

    fn placed(&mut self, m: &mut MachineCore, page: PageId, tier: Tier) {
        let idx = self.tenant_index(m, page.region);
        self.pool.slots[idx].tracker.placed(page, tier);
    }

    fn uses_pebs(&self) -> bool {
        true
    }

    fn on_samples(&mut self, m: &mut MachineCore, samples: &[SampleRecord], now: Ns) {
        if self.pool.slots.len() == 1 {
            // Solo fast path: no demux, no budget split — byte-identical
            // to a single-process machine.
            let ts = &mut self.pool.slots[0];
            for s in samples {
                if let Some(page) = m.space.page_at(VirtAddr(s.vaddr)) {
                    if ts.tracker.tracks(page.region) {
                        ts.tracker.record(page, s.kind.is_store(), now);
                        ts.note_sample(s.kind);
                        self.stats.samples_applied += 1;
                    }
                }
            }
            return;
        }
        // Multi-tenant: the shared drain budget is split evenly, so one
        // tenant's sample flood cannot starve the others' classifiers.
        let per_tenant = (m.pebs.drain_budget() as u64 / self.pool.slots.len() as u64).max(1);
        let mut demux = self
            .demux
            .take()
            .unwrap_or_else(|| TenantDemux::new(self.pool.slots.len(), per_tenant));
        demux.set_per_pass_budget(per_tenant);
        demux.begin_pass();
        for s in samples {
            if let Some(page) = m.space.page_at(VirtAddr(s.vaddr)) {
                let idx = self.tenant_index(m, page.region);
                let ts = &mut self.pool.slots[idx];
                // Quarantined tenants consume no stream budget: a dying
                // tenant mid-PEBS-storm cannot crowd out the survivors'
                // classifiers.
                if ts.lifecycle == Lifecycle::Live
                    && ts.tracker.tracks(page.region)
                    && demux.admit(idx)
                {
                    ts.tracker.record(page, s.kind.is_store(), now);
                    ts.note_sample(s.kind);
                    self.stats.samples_applied += 1;
                }
            }
        }
        self.demux = Some(demux);
    }

    fn tick(&mut self, m: &mut MachineCore, now: Ns) -> TickOutput {
        self.stats.policy_runs += 1;
        self.ensure_arbiter(m);
        let multi = self.pool.slots.len() > 1;
        // Reallocate DRAM quotas from the tenants' demand signals.
        if let Some(arb) = &mut self.arbiter {
            let page_bytes = m.cfg.managed_page.bytes();
            let signals: Vec<TenantSignal> = self
                .pool
                .slots
                .iter()
                .map(|ts| TenantSignal {
                    hot_bytes: (ts.tracker.queue_len(Queue::DramHot)
                        + ts.tracker.queue_len(Queue::NvmHot))
                        as u64
                        * page_bytes,
                    dram_loads: ts.window.dram_loads,
                    nvm_loads: ts.window.nvm_loads,
                })
                .collect();
            if arb.maybe_realloc(now.0, &signals) {
                for ts in &mut self.pool.slots {
                    ts.window = TenantSignal::default();
                }
                if multi {
                    m.trace.instant(
                        now,
                        "arbiter_realloc",
                        "arbiter",
                        &[
                            ("reallocations", arb.reallocations()),
                            ("quota_t0", arb.quota_pages(self.pool.slots[0].id)),
                        ],
                    );
                }
            }
        }
        let mut migrations = if !self.cfg.enable_migration {
            Vec::new()
        } else if !multi {
            run_policy(&self.cfg.policy, &mut self.pool.slots[0].tracker, m, now)
        } else {
            // One scoped policy pass per tenant, in tenant order. Each
            // pass sees its own quota headroom and budget share, so a
            // thrashing tenant exhausts only its own migration budget.
            // Quarantined and retired slots schedule nothing, and a
            // tenant whose circuit breaker tripped sits out its backoff
            // so its failing migrations cannot camp on the fault
            // machinery and starve the neighbors.
            let mut jobs = Vec::new();
            for i in 0..self.pool.slots.len() {
                if self.pool.slots[i].lifecycle != Lifecycle::Live {
                    continue;
                }
                if self.pool.slots[i].breaker_skip_ticks > 0 {
                    self.pool.slots[i].breaker_skip_ticks -= 1;
                    continue;
                }
                let mut scope = self.scope_for(i, m);
                if self.pool.slots[i].breaker_fails >= self.cfg.breaker_threshold {
                    // Half-open probe: a one-page rate budget until a
                    // success closes the breaker.
                    scope.max_inflight_pages = 1;
                    scope.budget = m.cfg.managed_page.bytes();
                }
                let ts = &mut self.pool.slots[i];
                jobs.extend(run_policy_scoped(
                    &self.cfg.policy,
                    &mut ts.tracker,
                    m,
                    now,
                    &scope,
                ));
            }
            jobs
        };
        // SSD capacity tier: when NVM itself runs low, demote the coldest
        // NVM pages down the cascade as ordinary journaled migrations —
        // the pages stay mapped, so a later access major-faults them back
        // up instead of swapping in. Tenants are victimized round-robin.
        if self.cfg.nvm_watermark > 0
            && m.has_ssd()
            && m.tier_online(Tier::Ssd)
            && self.cfg.enable_migration
        {
            let page_bytes = m.cfg.managed_page.bytes();
            let mechanism = self.cfg.policy.mechanism_for(m);
            // In-flight NVM→SSD demotions free their NVM frames on
            // commit; count them as already on the way to free so
            // back-to-back ticks do not demote the same deficit twice.
            // Summed per tenant: the journal indexes entries by owner,
            // and a multi-tenant machine demotes under every tenant's
            // id, not just the solo one.
            let pending = self
                .pool
                .slots
                .iter()
                .map(|ts| m.journal.prepared_freeing_for(ts.id, Tier::Nvm))
                .sum::<u64>()
                * page_bytes;
            let mut need = self
                .cfg
                .nvm_watermark
                .saturating_sub(m.nvm_pool.free_bytes().saturating_add(pending));
            // Shadow frames are free NVM capacity in disguise: reclaim
            // them to cover the deficit before paying for even one
            // NVM→SSD copy. The primaries stay mapped in DRAM, so this
            // costs nothing but a future re-copy on demotion.
            if need > 0 {
                let reclaimed = m.reclaim_shadow_frames(need.div_ceil(page_bytes));
                need = need.saturating_sub(reclaimed * page_bytes);
            }
            let mut pushed = 0usize;
            while need > 0 && pushed < 64 {
                let mut popped = false;
                for ts in &mut self.pool.slots {
                    if need == 0 || pushed >= 64 {
                        break;
                    }
                    if ts.lifecycle != Lifecycle::Live {
                        continue;
                    }
                    if let Some(victim) = ts.tracker.pop_swap_victim() {
                        migrations.push(crate::backend::MigrationJob {
                            page: victim,
                            dst: Tier::Ssd,
                            mechanism,
                        });
                        need = need.saturating_sub(page_bytes);
                        pushed += 1;
                        popped = true;
                    }
                }
                if !popped {
                    break;
                }
            }
        }
        // Third tier (§3.4): when NVM itself runs low, page the coldest
        // NVM pages out to the swap device. Tenants are victimized
        // round-robin; with one tenant this degenerates to the plain
        // pop loop.
        let mut swap_outs = Vec::new();
        if self.cfg.swap_watermark > 0 && m.disk.is_some() {
            let page_bytes = m.cfg.managed_page.bytes();
            let mut need = self
                .cfg
                .swap_watermark
                .saturating_sub(m.nvm_pool.free_bytes());
            while need > 0 && swap_outs.len() < 64 {
                let mut popped = false;
                for ts in &mut self.pool.slots {
                    if need == 0 || swap_outs.len() >= 64 {
                        break;
                    }
                    if ts.lifecycle != Lifecycle::Live {
                        continue;
                    }
                    if let Some(victim) = ts.tracker.pop_swap_victim() {
                        swap_outs.push(victim);
                        need = need.saturating_sub(page_bytes);
                        popped = true;
                    }
                }
                if !popped {
                    break;
                }
            }
        }
        // Balloon deadline enforcement: while a shrink drains, the
        // scoped watermark pass above does the work. Once the claim
        // reaches the target the cap lifts; past the deadline the
        // manager escalates and forces the coldest pages toward the
        // slowest tier itself.
        if multi && self.cfg.enable_migration {
            let mechanism = self.cfg.policy.mechanism_for(m);
            // Slowest *online* tier: balloon escalation must not force
            // pages onto a failed device (N-1 operation).
            let slowest = m
                .tiers()
                .iter()
                .copied()
                .rev()
                .find(|&t| t != Tier::Dram && m.tier_online(t))
                .unwrap_or(Tier::Nvm);
            for i in 0..self.pool.slots.len() {
                let Some(b) = self.pool.slots[i].balloon else {
                    continue;
                };
                if self.pool.slots[i].lifecycle != Lifecycle::Live {
                    self.pool.slots[i].balloon = None;
                    continue;
                }
                let t = self.pool.slots[i].id;
                let claim = m.space.tenant_frames(t).dram_pages
                    + m.journal.prepared_into_for(t, Tier::Dram);
                if claim <= b.target_pages {
                    self.pool.slots[i].balloon = None;
                    if let Some(arb) = &mut self.arbiter {
                        arb.unballoon(t);
                    }
                    m.trace.instant(
                        now,
                        "tenant_balloon_done",
                        "lifecycle",
                        &[("tenant", t.0 as u64), ("claim_pages", claim)],
                    );
                    continue;
                }
                if now <= b.deadline {
                    continue;
                }
                let mut need = (claim - b.target_pages) as usize;
                let mut forced = 0usize;
                while need > 0 && forced < BALLOON_ESCALATION_BATCH {
                    let Some(victim) = self.pool.slots[i].tracker.pop_demotion(true) else {
                        break;
                    };
                    migrations.push(crate::backend::MigrationJob {
                        page: victim,
                        dst: slowest,
                        mechanism,
                    });
                    need -= 1;
                    forced += 1;
                }
                if forced > 0 {
                    self.stats.balloon_escalations += 1;
                    m.trace.instant(
                        now,
                        "tenant_balloon_escalate",
                        "lifecycle",
                        &[("tenant", t.0 as u64), ("forced_pages", forced as u64)],
                    );
                }
            }
        }
        TickOutput {
            next_wake: Some(now + self.cfg.policy.period),
            migrations,
            swap_outs,
            cpu_time: Ns::micros(20),
        }
    }

    fn swapped_out(&mut self, m: &mut MachineCore, page: PageId) {
        let idx = self.tenant_index(m, page.region);
        self.pool.slots[idx].tracker.evicted(page);
    }

    fn reclaim_victim(&mut self, m: &mut MachineCore) -> Option<PageId> {
        // Victims can go somewhere only when a slower tier exists: the
        // SSD capacity tier or the legacy swap device.
        if m.disk.is_none() && !m.has_ssd() {
            return None;
        }
        // Coldest NVM page first; fall back to cold DRAM under extreme
        // pressure (kernel direct reclaim walks the inactive lists).
        // Tenants are scanned in order; with one tenant this is the
        // plain two-step lookup.
        for ts in &mut self.pool.slots {
            if ts.lifecycle != Lifecycle::Live {
                continue;
            }
            if let Some(victim) = ts.tracker.pop_swap_victim() {
                return Some(victim);
            }
        }
        for ts in &mut self.pool.slots {
            if ts.lifecycle != Lifecycle::Live {
                continue;
            }
            if let Some(victim) = ts.tracker.pop_demotion(false) {
                return Some(victim);
            }
        }
        None
    }

    fn migration_done(&mut self, m: &mut MachineCore, page: PageId, dst: Tier) {
        let idx = self.tenant_index(m, page.region);
        let ts = &mut self.pool.slots[idx];
        ts.tracker.placed(page, dst);
        // A success closes the tenant's circuit breaker.
        ts.breaker_fails = 0;
    }

    fn migration_aborted(&mut self, m: &mut MachineCore, page: PageId, current: Tier) {
        // The page never left `current`; put it back on the right queue.
        let idx = self.tenant_index(m, page.region);
        let ts = &mut self.pool.slots[idx];
        ts.tracker.placed(page, current);
        // Per-tenant circuit breaker (multi-tenant only): consecutive
        // failures — a tenant camped on 100%-failing media — trip the
        // slot into a scheduling backoff instead of letting it retry
        // the same doomed pages through the shared fault threads.
        if self.pool.slots.len() > 1 {
            let ts = &mut self.pool.slots[idx];
            ts.breaker_fails += 1;
            if ts.breaker_fails >= self.cfg.breaker_threshold && ts.breaker_skip_ticks == 0 {
                ts.breaker_skip_ticks = BREAKER_BACKOFF_TICKS;
                self.stats.breaker_trips += 1;
            }
        }
    }

    fn background_threads(&self) -> u32 {
        // Page-fault thread + PEBS thread + policy thread; the fault
        // thread is idle at steady state so we count the two busy ones.
        // Without DMA the copy threads are also busy.
        2 + if self.cfg.policy.use_dma {
            0
        } else {
            self.cfg.policy.copy_threads as u32
        }
    }

    fn recover(&mut self, m: &mut MachineCore, _now: Ns) {
        // The restarted manager re-derives its hot/cold lists from what
        // survives the crash: per-page sample counters (tracker metadata)
        // and the authoritative address-space residency. Each tenant's
        // tracker rebuilds only the regions it registered. Pinned regions
        // carry no queues, so nothing to rebuild there.
        for ts in &mut self.pool.slots {
            ts.tracker.rebuild_from(&m.space);
        }
    }

    fn tenant_killed(&mut self, _m: &mut MachineCore, tenant: TenantId, _now: Ns) {
        let Some(ts) = self.pool.slots.get_mut(tenant.0 as usize) else {
            return;
        };
        if ts.lifecycle != Lifecycle::Live {
            return;
        }
        // Quarantine: stop scheduling the tenant. The runtime rolls its
        // in-flight work back and calls `tenant_drained` once the DMA
        // engine has quiesced and its frames are reclaimed.
        ts.lifecycle = Lifecycle::Quarantined;
        ts.window = TenantSignal::default();
        ts.balloon = None;
        ts.breaker_fails = 0;
        ts.breaker_skip_ticks = 0;
    }

    fn fleet_stats(&self) -> Option<FleetStats> {
        // Only surface the segment once the pool has actually spawned:
        // static constructions (solo, colocated) never claim a slot and
        // must keep their committed fingerprints byte-identical.
        let s = self.pool.stats();
        (s.spawns > 0).then_some(s)
    }

    fn evacuation_dst(&mut self, m: &mut MachineCore, page: PageId, from: Tier) -> Option<Tier> {
        let multi = self.pool.slots.len() > 1;
        let tenant = if multi {
            self.ensure_arbiter(m);
            Some(self.pool.slots[self.tenant_index(m, page.region)].id)
        } else {
            None
        };
        for &t in m.tiers() {
            if t == from || !m.tier_online(t) || m.pool(t).free_pages() == 0 {
                continue;
            }
            // DRAM headroom belongs to the arbiter's grants: a tenant
            // evacuating at its quota spills down the cascade instead of
            // eating its neighbors' fast-tier share.
            if t == Tier::Dram {
                if let Some(tn) = tenant {
                    let arb = self.arbiter.as_ref().expect("arbiter for multi-tenant");
                    let claim = m.space.tenant_frames(tn).dram_pages
                        + m.journal.prepared_into_for(tn, Tier::Dram);
                    if claim >= arb.quota_pages(tn) {
                        continue;
                    }
                }
            }
            return Some(t);
        }
        None
    }

    fn tenant_drained(&mut self, _m: &mut MachineCore, tenant: TenantId, _now: Ns) {
        let Some(ts) = self.pool.slots.get_mut(tenant.0 as usize) else {
            return;
        };
        if ts.lifecycle == Lifecycle::Retired {
            return;
        }
        ts.lifecycle = Lifecycle::Retired;
        // Quarantined → Retired: the quota goes back to the arbiter,
        // which redistributes it across the survivors.
        if let Some(arb) = &mut self.arbiter {
            arb.retire(tenant);
        }
        // Scrub the slot and park it on the free list so the next
        // arrival claims it without rebuilding, and zero the tenant's
        // PEBS demux lane so no stream history (FNV hashes, round-robin
        // credit) leaks into the slot's next generation.
        self.pool.recycle(tenant);
        if let Some(d) = &mut self.demux {
            d.reset_lane(tenant.0 as usize);
        }
    }

    fn audit(&self, m: &MachineCore) -> Vec<crate::audit::AuditViolation> {
        let mut v: Vec<crate::audit::AuditViolation> = Vec::new();
        // Parked slots must be scrubbed: no tracker pages, counters,
        // balloon, or PEBS stream history from a previous occupant may
        // survive onto the free list.
        for &i in self.pool.free_list() {
            let ts = &self.pool.slots[i as usize];
            let lane_dirty = self.demux.as_ref().is_some_and(|d| {
                let s = d.stream_stats(i as usize);
                s.delivered != 0 || s.throttled != 0
            });
            if !ts.is_scrubbed() || lane_dirty {
                v.push(crate::audit::AuditViolation::SlotGenerationLeak {
                    tenant: ts.id,
                    generation: ts.generation,
                });
            }
        }
        for ts in &self.pool.slots {
            v.extend(ts.tracker.residency_mismatches(&m.space).into_iter().map(
                |(page, tracked, mapped)| crate::audit::AuditViolation::TrackerMismatch {
                    page,
                    tracked,
                    mapped,
                },
            ));
            // Region/page agreement: span tiling, cached residency, and
            // split/merge accounting. Pins must be justified by the
            // tenant's in-flight journal entries.
            v.extend(
                ts.tracker
                    .region_violations(m.journal.prepared_len_for(ts.id)),
            );
        }
        // Tenant-scoped invariants, multi-tenant only: every tenant's
        // DRAM claim stays within its quota (plus a grace window for
        // in-flight work after a quota cut), and the per-tenant frame
        // books balance between the address space, the tracker queues,
        // and the journal's in-flight entries.
        let Some(arb) = self.arbiter.as_ref().filter(|_| self.pool.slots.len() > 1) else {
            return v;
        };
        for ts in &self.pool.slots {
            let t = ts.id;
            // Retirement must be complete: a retired slot may hold no
            // quota (and must read dead to the arbiter) and no frames on
            // any tier, mapped or in flight. Never-admitted deferred
            // slots pass both vacuously.
            if ts.lifecycle == Lifecycle::Retired {
                if arb.is_live(t) || arb.quota_pages(t) != 0 {
                    v.push(crate::audit::AuditViolation::ZombieTenantQuota {
                        tenant: t,
                        quota_pages: arb.quota_pages(t),
                    });
                }
                let tf = m.space.tenant_frames(t);
                for &tier in m.tiers() {
                    let leaked = tf.pages_of(tier)
                        + m.journal.prepared_into_for(t, tier)
                        + m.journal.prepared_freeing_for(t, tier);
                    if leaked != 0 {
                        v.push(crate::audit::AuditViolation::FrameLeakAfterRetire {
                            tenant: t,
                            tier,
                            leaked_pages: leaked,
                        });
                    }
                }
                continue;
            }
            let tf = m.space.tenant_frames(t);
            let resident = tf.dram_pages + m.journal.prepared_into_for(t, Tier::Dram);
            let quota = arb.quota_pages(t);
            // Two realloc steps of grace: the step the last reallocation
            // just moved, plus at most one period of demotion backlog
            // still draining from the step before it; in-flight
            // promotions on top. A draining balloon is exempt — the
            // quota just moved arbitrarily far below the claim, and the
            // deadline machinery (not this check) polices the drain.
            let grace = 2 * arb.realloc_step_pages()
                + arb.share_of(t, self.cfg.policy.max_inflight_pages).max(1);
            if resident > quota + grace && ts.balloon.is_none() {
                v.push(crate::audit::AuditViolation::QuotaExceeded {
                    tenant: t,
                    resident_pages: resident,
                    quota_pages: quota,
                    grace_pages: grace,
                });
            }
            // Frame conservation per tier: a resident page is either in
            // one of the tenant's queues or in flight (its journal entry
            // names the tier it is still mapped on). Swap-outs in flight
            // and pinned regions sit outside the queues, so the check
            // only runs when neither feature is active.
            if self.cfg.swap_watermark == 0 && self.pinned.is_empty() && m.disk.is_none() {
                let queued =
                    |a: Queue, b: Queue| (ts.tracker.queue_len(a) + ts.tracker.queue_len(b)) as u64;
                for &tier in m.tiers() {
                    // SSD-resident pages are off-queue by design; there
                    // is no queue total to balance against.
                    if tier == Tier::Ssd {
                        continue;
                    }
                    let space_pages = tf.pages_of(tier);
                    let tracked_pages = queued(Queue::of(tier, true), Queue::of(tier, false))
                        + m.journal.prepared_freeing_for(t, tier);
                    if space_pages != tracked_pages {
                        v.push(crate::audit::AuditViolation::TenantFrameMismatch {
                            tenant: t,
                            tier,
                            space_pages,
                            tracked_pages,
                        });
                    }
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AccessBatch;
    use crate::machine::MachineConfig;
    use crate::runtime::Sim;
    use hemem_memdev::GIB;

    fn sim(dram_gib: u64, nvm_gib: u64) -> Sim<HeMem> {
        let mc = MachineConfig::small(dram_gib, nvm_gib);
        let hc = HeMemConfig::scaled_for(&mc);
        Sim::new(mc, HeMem::new(hc))
    }

    #[test]
    fn small_allocations_forwarded_to_kernel() {
        let mut s = sim(2, 8);
        let id = s.mmap(4 << 20);
        assert_eq!(
            s.m.space.region(id).kind(),
            hemem_vmm::RegionKind::SmallAnon
        );
        assert_eq!(s.backend.stats().forwarded_allocs, 1);
        assert_eq!(s.backend.stats().managed_regions, 0);
    }

    #[test]
    fn large_allocations_managed_on_huge_pages() {
        let mut s = sim(2, 8);
        let id = s.mmap(GIB);
        let r = s.m.space.region(id);
        assert_eq!(r.kind(), hemem_vmm::RegionKind::ManagedHeap);
        assert_eq!(r.page_size(), hemem_vmm::PageSize::Huge2M);
        assert_eq!(s.backend.stats().managed_regions, 1);
    }

    #[test]
    fn growth_adoption_after_threshold() {
        let mut s = sim(2, 8);
        // 1 GiB of small allocations crosses the growth threshold...
        for _ in 0..256 {
            s.mmap(4 << 20);
        }
        // ...so the next small allocation is adopted as managed.
        let id = s.mmap(4 << 20);
        assert_eq!(
            s.m.space.region(id).kind(),
            hemem_vmm::RegionKind::ManagedHeap
        );
    }

    #[test]
    fn first_touch_fills_dram_then_spills_to_nvm() {
        let mut s = sim(1, 8);
        let id = s.mmap(2 * GIB); // 2x DRAM capacity
        s.populate(id, true);
        let r = s.m.space.region(id);
        assert_eq!(r.mapped_pages(), 1024);
        assert_eq!(r.dram_pages(), 512, "DRAM filled first");
        assert_eq!(s.m.dram_pool.free_pages(), 0);
    }

    #[test]
    fn pebs_samples_promote_hot_pages_and_policy_migrates() {
        let mut s = sim(1, 8);
        s.set_app_threads(1);
        let id = s.mmap(4 * GIB);
        s.populate(id, true);
        // Hammer a small NVM-resident slice: pages 1536..1544 (well past
        // the DRAM-resident first 512 pages).
        let dram0 = s.m.space.region(id).dram_pages();
        assert!(
            dram0 >= 450,
            "DRAM filled first (minus mid-fill demotions): {dram0}"
        );
        let batch = AccessBatch::uniform(id, 1536, 1544, 2_000_000, 8, 0.0, 4 * GIB);
        for _ in 0..40 {
            let tid = 0;
            s.submit_batch(tid, &batch);
            // Pump until the thread is ready again.
            while let Some((_, ev)) = s.step() {
                if matches!(ev, crate::runtime::Event::ThreadReady(_)) {
                    break;
                }
            }
        }
        // Let the policy thread catch up.
        s.advance(Ns::millis(100));
        assert!(s.backend.stats().samples_applied > 0, "samples flowed");
        assert!(s.m.stats.migrations_done > 0, "hot pages migrated");
        let r = s.m.space.region(id);
        let hot_in_dram = r.dram_pages_in(1536, 1544);
        assert!(
            hot_in_dram >= 6,
            "hot slice promoted: {hot_in_dram}/8 in DRAM"
        );
    }

    #[test]
    fn watermark_keeps_dram_free() {
        let mut s = sim(1, 8);
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        assert_eq!(s.m.dram_free_bytes(), 0);
        // Policy period is 10 ms; give it time to demote ~1 GiB at the
        // 100 MB-per-period cap.
        s.advance(Ns::secs(2));
        assert!(
            s.m.dram_free_bytes() >= s.backend.config().policy.dram_watermark,
            "watermark restored: {} free",
            s.m.dram_free_bytes()
        );
    }

    #[test]
    fn migration_preserves_page_population() {
        let mut s = sim(1, 8);
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        s.advance(Ns::secs(2));
        let r = s.m.space.region(id);
        assert_eq!(r.mapped_pages(), 1024, "no page lost in migration");
        let dram = r.dram_pages();
        let alloc_d = s.m.dram_pool.allocated_pages();
        assert_eq!(dram, alloc_d, "pool accounting consistent");
    }

    #[test]
    fn manager_kill_during_demotion_recovers_and_audits_clean() {
        // Overfill DRAM so the policy thread is mid-demotion when a
        // seeded kill lands; the default watchdog restarts it and the
        // rebuilt tracker keeps demoting to the watermark.
        let mut mc = MachineConfig::small(1, 8);
        mc.chaos.manager_kill_at = vec![Ns::millis(25), Ns::millis(250)];
        let hc = HeMemConfig::scaled_for(&mc);
        let mut s = Sim::new(mc, HeMem::new(hc));
        let id = s.mmap(2 * GIB);
        s.populate(id, true);
        s.advance(Ns::secs(3));
        assert_eq!(s.m.recovery.manager_kills, 2);
        assert!(
            s.m.recovery.watchdog_restarts >= 2,
            "restarted after each kill"
        );
        assert!(!s.manager_down());
        let r = s.m.space.region(id);
        assert_eq!(r.mapped_pages(), 1024, "no page lost across kills");
        assert!(
            s.m.dram_free_bytes() >= s.backend.config().policy.dram_watermark,
            "policy work resumed after recovery: {} free",
            s.m.dram_free_bytes()
        );
        assert_eq!(s.run_audit(true), Vec::new(), "audits clean after recovery");
    }

    #[test]
    fn background_threads_counted() {
        let h = HeMem::paper();
        assert_eq!(h.background_threads(), 2);
        let mut cfg = HeMemConfig::paper();
        cfg.policy.use_dma = false;
        let h = HeMem::new(cfg);
        assert_eq!(h.background_threads(), 6);
    }
}

#[cfg(test)]
mod swap_tests {
    use super::*;
    use crate::backend::AccessBatch;
    use crate::machine::MachineConfig;
    use crate::runtime::{Event, Sim};
    use hemem_memdev::GIB;

    fn swap_sim() -> Sim<HeMem> {
        let mc = MachineConfig::small(1, 2).with_swap(16 * GIB);
        let mut hc = HeMemConfig::scaled_for(&mc);
        hc.swap_watermark = 256 << 20; // keep 128 NVM pages free
        Sim::new(mc, HeMem::new(hc))
    }

    #[test]
    fn cold_nvm_pages_swap_out_under_pressure() {
        let mut s = swap_sim();
        // 3 GiB over 1 GiB DRAM + 2 GiB NVM: NVM fills completely.
        let id = s.mmap(3 * GIB);
        s.populate(id, true);
        s.advance(Ns::secs(5));
        assert!(s.m.stats.swap_outs > 0, "cold NVM pages paged out");
        assert!(
            s.m.nvm_pool.free_bytes() > 0,
            "swap restored NVM headroom: {} free",
            s.m.nvm_pool.free_bytes()
        );
        let r = s.m.space.region(id);
        assert_eq!(r.swapped_pages(), s.m.stats.swap_outs - s.m.stats.swap_ins);
    }

    #[test]
    fn swapped_pages_fault_back_in_on_access() {
        let mut s = swap_sim();
        let id = s.mmap(3 * GIB);
        s.populate(id, true);
        s.advance(Ns::secs(5));
        let swapped_before = s.m.space.region(id).swapped_pages();
        assert!(swapped_before > 0);
        // Touch the whole region: swapped pages must fault back in.
        let pages = s.m.space.region(id).page_count();
        let batch = AccessBatch::uniform(id, 0, pages, 5_000_000, 8, 0.2, 3 * GIB);
        for _ in 0..5 {
            s.submit_batch(0, &batch);
            loop {
                match s.step() {
                    Some((_, Event::ThreadReady(_))) | None => break,
                    Some(_) => {}
                }
            }
        }
        assert!(s.m.stats.swap_ins > 0, "accesses paged data back in");
        // Disk read traffic flowed.
        let disk = s.m.disk.as_ref().expect("swap device");
        assert!(disk.stats().bytes_read > 0);
        assert!(disk.stats().bytes_written > 0);
    }

    #[test]
    fn no_swap_without_device() {
        let mc = MachineConfig::small(1, 2);
        let mut hc = HeMemConfig::scaled_for(&mc);
        hc.swap_watermark = 256 << 20;
        let mut s = Sim::new(mc, HeMem::new(hc));
        let id = s.mmap(3 * GIB);
        s.populate(id, true);
        s.advance(Ns::secs(2));
        assert_eq!(s.m.stats.swap_outs, 0, "no device, no swapping");
    }

    #[test]
    fn swap_file_capacity_is_respected() {
        let mc = MachineConfig::small(1, 2).with_swap(64 << 20); // 32 slots
        let mut hc = HeMemConfig::scaled_for(&mc);
        hc.swap_watermark = GIB; // wants far more than the file holds
        let mut s = Sim::new(mc, HeMem::new(hc));
        let id = s.mmap(3 * GIB);
        s.populate(id, true);
        s.advance(Ns::secs(5));
        assert!(
            s.m.stats.swap_outs <= 32,
            "bounded by the swap file: {}",
            s.m.stats.swap_outs
        );
    }
}

#[cfg(test)]
mod lifecycle_tests {
    use super::*;
    use crate::arbiter::ArbiterPolicy;
    use crate::machine::MachineConfig;
    use crate::runtime::Sim;
    use hemem_memdev::GIB;
    use hemem_sim::TenantKill;

    /// Two tenants, 1 GiB region each, populated in tenant order.
    fn duo(mc: MachineConfig) -> Sim<HeMem> {
        let hc = HeMemConfig::scaled_for(&mc);
        let mut s = Sim::new(
            mc,
            HeMem::multi_tenant(hc, 2, ArbiterPolicy::GreedyMissRatio),
        );
        s.set_active_tenant(TenantId(0));
        let a = s.mmap(GIB);
        s.populate(a, true);
        s.set_active_tenant(TenantId(1));
        let b = s.mmap(GIB);
        s.populate(b, true);
        s
    }

    #[test]
    fn seeded_kill_quarantines_drains_and_reclaims_every_tier() {
        let mut mc = MachineConfig::small(1, 8).with_tier3(16 * GIB);
        mc.chaos.tenant_kill_at = vec![TenantKill {
            tenant: 1,
            at: Ns::secs(2),
        }];
        let mut s = duo(mc);
        s.advance(Ns::secs(3));
        assert_eq!(s.m.recovery.tenant_kills, 1);
        assert_eq!(s.m.recovery.tenant_drains, 1);
        assert!(s.backend.tenant_is_retired(TenantId(1)));
        let tf = s.m.space.tenant_frames(TenantId(1));
        assert_eq!(
            tf.dram_pages + tf.nvm_pages + tf.ssd_pages,
            0,
            "every tier reclaimed"
        );
        let arb = s.backend.arbiter().expect("multi-tenant arbiter");
        assert!(!arb.is_live(TenantId(1)));
        assert_eq!(arb.quota_pages(TenantId(1)), 0);
        assert!(arb.conserved());
        // The survivor keeps its memory and the books stay clean —
        // FrameLeakAfterRetire and ZombieTenantQuota both have teeth
        // here because tenant 1 is Retired.
        let sf = s.m.space.tenant_frames(TenantId(0));
        assert!(sf.dram_pages + sf.nvm_pages > 0, "survivor untouched");
        assert_eq!(s.run_audit(false), Vec::new());
    }

    #[test]
    fn kill_mid_flight_rolls_back_the_tenants_journal_entries() {
        // 2 GiB over 1 GiB DRAM: the watermark keeps demotions in
        // flight, so an injected kill almost always catches tenant 1
        // with prepared journal entries.
        let mc = MachineConfig::small(1, 8);
        let mut s = duo(mc);
        let in_flight = s.m.journal.prepared_freeing_for(TenantId(1), Tier::Dram)
            + s.m.journal.prepared_into_for(TenantId(1), Tier::Dram);
        s.inject_tenant_kill(TenantId(1));
        s.advance(Ns::millis(500));
        assert!(s.backend.tenant_is_retired(TenantId(1)));
        if in_flight > 0 {
            assert!(
                s.m.recovery.journal_rollbacks > 0,
                "prepared entries were rolled back, not leaked"
            );
        }
        assert_eq!(
            s.m.journal.prepared_freeing_for(TenantId(1), Tier::Dram)
                + s.m.journal.prepared_into_for(TenantId(1), Tier::Dram),
            0
        );
        assert_eq!(s.run_audit(false), Vec::new());
        // The machine keeps working for the survivor.
        s.advance(Ns::secs(1));
        assert!(!s.manager_down());
    }

    #[test]
    fn dynamic_admission_balloon_and_floor_rejection() {
        let mc = MachineConfig::small(1, 8);
        let hc = HeMemConfig::scaled_for(&mc);
        let mut s = Sim::new(mc, HeMem::churn(hc, 3, ArbiterPolicy::ProportionalShares));
        let now = s.now();
        s.backend
            .admit_tenant(&mut s.m, TenantId(0), now)
            .expect("first join");
        assert!(s.backend.tenant_is_live(TenantId(0)));
        s.set_active_tenant(TenantId(0));
        let a = s.mmap(GIB);
        s.populate(a, true);
        let now = s.now();
        s.backend
            .admit_tenant(&mut s.m, TenantId(1), now)
            .expect("second join");
        let now = s.now();
        assert_eq!(
            s.backend.admit_tenant(&mut s.m, TenantId(1), now),
            Err(crate::arbiter::AdmitError::AlreadyLive)
        );
        // Balloon tenant 0 down to an eighth of the tier with a 100 ms
        // drain deadline; watermark demotion plus post-deadline forced
        // demotion must bring the claim under target.
        let target = s.m.dram_pool.total_pages() / 8;
        let now = s.now();
        let deadline = now + Ns::millis(100);
        let q = s
            .backend
            .balloon_tenant(&mut s.m, TenantId(0), target, deadline, now);
        assert_eq!(q, target);
        s.advance(Ns::secs(3));
        let tf = s.m.space.tenant_frames(TenantId(0));
        assert!(
            tf.dram_pages <= target,
            "balloon drained: {} pages > {target}",
            tf.dram_pages
        );
        assert_eq!(s.run_audit(false), Vec::new());
    }

    #[test]
    fn media_storm_trips_the_per_tenant_breaker_without_wedging() {
        // Near-total media failure: every aborted demotion also retires
        // its destination frame, so an unbreakered manager would grind
        // the NVM pool away retrying doomed pages. The breaker throttles
        // each tenant to a one-page probe per backoff window.
        let mut mc = MachineConfig::small(1, 32);
        mc.chaos.seed = 7;
        mc.chaos.nvm_media_error = 0.9;
        mc.chaos.pebs_storm = 0.5;
        let mut s = duo(mc);
        let retired_early = s.m.stats.pages_retired;
        s.advance(Ns::secs(2));
        assert!(
            s.backend.stats().breaker_trips > 0,
            "persistent media errors trip the breaker"
        );
        assert!(!s.manager_down(), "fault threads never wedge");
        assert!(s.m.stats.migrations_failed > 0);
        // The probe budget bounds the post-populate burn rate: 2 s is
        // 200 policy ticks; unthrottled retries would retire frames at
        // the full per-tick migration budget (dozens per tick).
        let burned = s.m.stats.pages_retired - retired_early;
        assert!(
            burned < 800,
            "breaker bounded the retry burn: {burned} frames retired"
        );
    }
}

#[cfg(test)]
mod oversubscribe_tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::runtime::Sim;
    use hemem_memdev::GIB;

    #[test]
    fn working_set_larger_than_all_memory_populates_via_swap() {
        // 1 GiB DRAM + 2 GiB NVM + 16 GiB swap: a 4 GiB region does not
        // fit in memory at all; direct reclaim and the swap watermark
        // must carry the fill (§3.4's third tier).
        let mc = MachineConfig::small(1, 2).with_swap(16 * GIB);
        let mut hc = HeMemConfig::scaled_for(&mc);
        hc.swap_watermark = 128 << 20;
        let mut s = Sim::new(mc, HeMem::new(hc));
        let id = s.mmap(4 * GIB);
        s.populate(id, true);
        let r = s.m.space.region(id);
        assert_eq!(
            r.mapped_pages() + r.swapped_pages(),
            2048,
            "every page accounted"
        );
        assert!(r.swapped_pages() >= 512, "at least 1 GiB had to go to disk");
        assert!(s.m.stats.swap_outs > 0);
        // The machine survives further background churn.
        s.advance(Ns::secs(2));
        let r = s.m.space.region(id);
        assert_eq!(r.mapped_pages() + r.swapped_pages(), 2048);
    }
}
