//! Multi-grained region hotness tracking (HM-Keeper style).
//!
//! Per-page trackers stop scaling: a TB-class tenant is ~500K huge
//! pages, and any maintenance that walks flat per-page state costs a
//! pass over all of them. The [`RegionTracker`] aggregates page hotness
//! into variable-granularity *spans* — power-of-two page runs between
//! `min_span` and `max_span` (1–512 huge pages by default), buddy-
//! aligned so split and merge stay deterministic — each carrying an
//! exponentially-decaying integer temperature fed by PEBS samples. Every
//! policy period the spans decay, hot spans split (heat localizes), and
//! adjacent cold buddies merge (cold footprint collapses into a few
//! large spans). Candidate selection walks a Fenwick-backed flag index
//! over span heads instead of per-page queues, and only touches per-page
//! state *inside* chosen spans — policy-pass cost grows with the number
//! of live spans, not the number of pages.
//!
//! The tracker is deliberately a pure bookkeeping layer: the
//! [`PageTracker`](super::tracker::PageTracker) owns per-page metadata
//! and queue linkage, drives split weighting from surviving per-page
//! counters, and reconciles the region view after a crash
//! (`rebuild_from`). In-flight migrations pin their span: a pinned span
//! never splits or merges until the journal entry completes or rolls
//! back, so recovery always finds span boundaries consistent with the
//! journal.

use std::collections::BTreeMap;

use hemem_vmm::{FlagTree, RegionId, Tier};

/// Region-tracking configuration, carried inside
/// [`TrackerConfig`](super::tracker::TrackerConfig). Off by default:
/// with `enabled = false` the tracker is not constructed and every flat
/// code path is byte-identical to a build without this module.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RegionConfig {
    /// Whether region tracking is active.
    pub enabled: bool,
    /// Smallest span a split may produce, in pages (power of two).
    pub min_span: u64,
    /// Largest span a merge may produce, in pages (power of two).
    pub max_span: u64,
    /// Spans at or above this temperature split each policy period.
    pub split_temperature: u32,
    /// Buddy spans at or below this temperature merge each period.
    pub merge_temperature: u32,
    /// Spans at or above this temperature are promotion candidates.
    pub promote_temperature: u32,
    /// Exponential decay per policy period: `temp -= max(temp >> shift,
    /// 1)` (the floor step lets every span reach zero).
    pub decay_shift: u32,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            enabled: false,
            min_span: 1,
            max_span: 512,
            split_temperature: 16,
            merge_temperature: 2,
            promote_temperature: 8,
            decay_shift: 2,
        }
    }
}

impl RegionConfig {
    /// The adaptive multi-grain configuration (1–512-page spans).
    pub fn multi_grain() -> RegionConfig {
        RegionConfig {
            enabled: true,
            ..RegionConfig::default()
        }
    }

    /// The flat per-page baseline: every page is its own permanent
    /// 1-page span, so per-period maintenance walks one span per page —
    /// exactly the linear cost the multi-grain tracker exists to avoid.
    /// Used by `scalebench` as the scaling comparison.
    pub fn flat_baseline() -> RegionConfig {
        RegionConfig {
            enabled: true,
            min_span: 1,
            max_span: 1,
            ..RegionConfig::default()
        }
    }
}

/// Region-layer counters. Backend-side (never part of the machine
/// fingerprint); `scalebench` derives its policy-pass cost metric from
/// the maintenance + selection fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RegionStats {
    /// Live spans across all tracked regions.
    pub spans: u64,
    /// Hot-span splits applied.
    pub splits: u64,
    /// Cold buddy merges applied.
    pub merges: u64,
    /// Span temperature decays applied (one per span per period).
    pub decay_ops: u64,
    /// Fenwick index operations during candidate selection.
    pub select_index_ops: u64,
    /// Per-page state touches inside chosen spans during selection and
    /// split weighting.
    pub select_pages_touched: u64,
    /// Sample-driven span updates (temperature bumps, residency moves).
    pub sample_ops: u64,
    /// Policy periods processed (decay/split/merge passes).
    pub periods: u64,
}

impl RegionStats {
    /// Folds another tracker's counters into this one (per-tenant
    /// trackers aggregate into one machine-level view).
    pub fn merge(&mut self, o: &RegionStats) {
        self.spans += o.spans;
        self.splits += o.splits;
        self.merges += o.merges;
        self.decay_ops += o.decay_ops;
        self.select_index_ops += o.select_index_ops;
        self.select_pages_touched += o.select_pages_touched;
        self.sample_ops += o.sample_ops;
        self.periods = self.periods.max(o.periods);
    }

    /// Maintenance + selection work per policy period — the quantity
    /// that must stay sublinear in footprint.
    pub fn policy_cost_per_period(&self) -> f64 {
        let work = self.decay_ops
            + self.splits
            + self.merges
            + self.select_index_ops
            + self.select_pages_touched;
        work as f64 / self.periods.max(1) as f64
    }
}

/// A read-only snapshot of one span, for audits and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanView {
    /// Pages covered.
    pub len: u64,
    /// Decaying temperature.
    pub temp: u32,
    /// DRAM-resident pages inside.
    pub dram: u64,
    /// NVM-resident pages inside.
    pub nvm: u64,
    /// In-flight migrations pinning the span.
    pub pinned: u32,
}

/// Split weighting for one half of a span, computed by the caller from
/// per-page counters so temperature follows the heat, not the midpoint.
#[derive(Debug, Clone, Copy, Default)]
pub struct SplitHalf {
    /// Sum of per-page access counters in this half.
    pub weight: u64,
    /// DRAM-resident pages in this half.
    pub dram: u64,
    /// NVM-resident pages in this half.
    pub nvm: u64,
}

#[derive(Debug, Clone, Copy)]
struct Span {
    len: u64,
    temp: u32,
    dram: u64,
    nvm: u64,
    pinned: u32,
}

/// One tracked region's span set plus its candidate indexes. The three
/// [`FlagTree`]s are keyed by span-head page index: `promo` flags hot
/// spans holding NVM pages, `demo` flags not-hot spans holding DRAM
/// pages, `dram_any` flags any span holding DRAM pages (the `allow_hot`
/// demotion fallback).
#[derive(Debug, Clone)]
struct RegionView {
    pages: u64,
    spans: BTreeMap<u64, Span>,
    promo: FlagTree,
    demo: FlagTree,
    dram_any: FlagTree,
    /// Incremental span accounting, cross-checked against the map by the
    /// auditor (`SplitMergeLeak`).
    live_spans: u64,
    /// Incremental page coverage, ditto.
    covered: u64,
}

/// The region layer: per-region span sets with deterministic
/// split/merge and Fenwick-backed candidate indexes.
#[derive(Debug, Clone)]
pub struct RegionTracker {
    cfg: RegionConfig,
    views: BTreeMap<RegionId, RegionView>,
    stats: RegionStats,
}

impl RegionTracker {
    /// Creates an empty region tracker.
    pub fn new(cfg: RegionConfig) -> RegionTracker {
        assert!(
            cfg.min_span.is_power_of_two() && cfg.max_span.is_power_of_two(),
            "span bounds must be powers of two"
        );
        assert!(cfg.min_span <= cfg.max_span, "min_span must be <= max_span");
        RegionTracker {
            cfg,
            views: BTreeMap::new(),
            stats: RegionStats::default(),
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> &RegionConfig {
        &self.cfg
    }

    /// Empties the tracker back to its just-constructed state (same
    /// config, no views, zero counters) without dropping the container
    /// allocations — the slot-pool scrub path, where a recycled
    /// tenant's region layer must be indistinguishable from a fresh
    /// one.
    pub fn reset(&mut self) {
        self.views.clear();
        self.stats = RegionStats::default();
    }

    /// Counters.
    pub fn stats(&self) -> RegionStats {
        self.stats
    }

    /// Registers a region of `pages` pages, tiled greedily into the
    /// largest aligned power-of-two spans `<= max_span`.
    pub fn add_region(&mut self, region: RegionId, pages: u64) {
        let mut view = RegionView {
            pages,
            spans: BTreeMap::new(),
            promo: FlagTree::new(pages as usize),
            demo: FlagTree::new(pages as usize),
            dram_any: FlagTree::new(pages as usize),
            live_spans: 0,
            covered: 0,
        };
        let mut at = 0u64;
        while at < pages {
            let align = if at == 0 {
                self.cfg.max_span
            } else {
                at & at.wrapping_neg()
            };
            let mut len = align.min(self.cfg.max_span);
            while at + len > pages {
                len /= 2;
            }
            debug_assert!(len >= 1);
            view.spans.insert(
                at,
                Span {
                    len,
                    temp: 0,
                    dram: 0,
                    nvm: 0,
                    pinned: 0,
                },
            );
            view.live_spans += 1;
            view.covered += len;
            at += len;
        }
        self.stats.spans += view.live_spans;
        self.views.insert(region, view);
    }

    /// Forgets a region.
    pub fn remove_region(&mut self, region: RegionId) {
        if let Some(view) = self.views.remove(&region) {
            self.stats.spans -= view.live_spans;
        }
    }

    /// Whether `region` is tracked.
    pub fn tracks(&self, region: RegionId) -> bool {
        self.views.contains_key(&region)
    }

    /// Span containing `index`: `(head, snapshot)`.
    pub fn span_of(&self, region: RegionId, index: u64) -> Option<(u64, SpanView)> {
        let view = self.views.get(&region)?;
        let (&head, s) = view.spans.range(..=index).next_back()?;
        (index < head + s.len).then_some((
            head,
            SpanView {
                len: s.len,
                temp: s.temp,
                dram: s.dram,
                nvm: s.nvm,
                pinned: s.pinned,
            },
        ))
    }

    /// All spans of a region in address order, for audits and tests.
    pub fn spans(&self, region: RegionId) -> Vec<(u64, SpanView)> {
        self.views
            .get(&region)
            .map(|v| {
                v.spans
                    .iter()
                    .map(|(&head, s)| {
                        (
                            head,
                            SpanView {
                                len: s.len,
                                temp: s.temp,
                                dram: s.dram,
                                nvm: s.nvm,
                                pinned: s.pinned,
                            },
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Incremental accounting for the auditor: `(live_spans, covered,
    /// pages, pinned_total)`.
    pub fn accounting(&self, region: RegionId) -> Option<(u64, u64, u64, u64)> {
        let v = self.views.get(&region)?;
        let pinned: u64 = v.spans.values().map(|s| s.pinned as u64).sum();
        Some((v.live_spans, v.covered, v.pages, pinned))
    }

    /// Tracked regions in address order.
    pub fn regions(&self) -> Vec<RegionId> {
        self.views.keys().copied().collect()
    }

    /// Whether the promotion index currently flags the span at `head`.
    pub fn promo_flagged(&self, region: RegionId, head: u64) -> bool {
        self.views
            .get(&region)
            .is_some_and(|v| v.promo.get(head as usize))
    }

    /// The flag a span's state implies for each index, in (promo, demo,
    /// dram_any) order.
    fn derive_flags(cfg: &RegionConfig, s: &Span) -> (bool, bool, bool) {
        let hot = s.temp >= cfg.promote_temperature;
        (hot && s.nvm > 0, !hot && s.dram > 0, s.dram > 0)
    }

    fn refresh_flags(cfg: &RegionConfig, view: &mut RegionView, head: u64) {
        let s = view.spans[&head];
        let (p, d, a) = Self::derive_flags(cfg, &s);
        view.promo.set(head as usize, p);
        view.demo.set(head as usize, d);
        view.dram_any.set(head as usize, a);
    }

    fn clear_flags(view: &mut RegionView, head: u64) {
        view.promo.set(head as usize, false);
        view.demo.set(head as usize, false);
        view.dram_any.set(head as usize, false);
    }

    /// Feeds one sampled access into the owning span's temperature
    /// (stores weigh double, mirroring write priority).
    pub fn note_sample(&mut self, region: RegionId, index: u64, is_write: bool) {
        let cfg = self.cfg.clone();
        let Some(view) = self.views.get_mut(&region) else {
            return;
        };
        let Some((&head, s)) = view.spans.range_mut(..=index).next_back() else {
            return;
        };
        s.temp = s.temp.saturating_add(if is_write { 2 } else { 1 });
        Self::refresh_flags(&cfg, view, head);
        self.stats.sample_ops += 1;
    }

    /// Tracks a page's residency move so span DRAM/NVM counts (and the
    /// candidate indexes) stay consistent with per-page state. SSD and
    /// unmapped placements count as neither.
    pub fn residency_changed(
        &mut self,
        region: RegionId,
        index: u64,
        old: Option<Tier>,
        new: Option<Tier>,
    ) {
        if old == new {
            return;
        }
        let cfg = self.cfg.clone();
        let Some(view) = self.views.get_mut(&region) else {
            return;
        };
        let Some((&head, s)) = view.spans.range_mut(..=index).next_back() else {
            return;
        };
        match old {
            Some(Tier::Dram) => s.dram = s.dram.saturating_sub(1),
            Some(Tier::Nvm) => s.nvm = s.nvm.saturating_sub(1),
            _ => {}
        }
        match new {
            Some(Tier::Dram) => s.dram += 1,
            Some(Tier::Nvm) => s.nvm += 1,
            _ => {}
        }
        Self::refresh_flags(&cfg, view, head);
        self.stats.sample_ops += 1;
    }

    /// Pins the span owning `index` (a migration is in flight inside
    /// it); pinned spans neither split nor merge.
    pub fn pin(&mut self, region: RegionId, index: u64) {
        if let Some(view) = self.views.get_mut(&region) {
            if let Some((_, s)) = view.spans.range_mut(..=index).next_back() {
                s.pinned += 1;
            }
        }
    }

    /// Releases one pin on the span owning `index`.
    pub fn unpin(&mut self, region: RegionId, index: u64) {
        if let Some(view) = self.views.get_mut(&region) {
            if let Some((_, s)) = view.spans.range_mut(..=index).next_back() {
                s.pinned = s.pinned.saturating_sub(1);
            }
        }
    }

    /// Clears every pin in a region (journal rolled back on recovery).
    pub fn clear_pins(&mut self, region: RegionId) {
        if let Some(view) = self.views.get_mut(&region) {
            for s in view.spans.values_mut() {
                s.pinned = 0;
            }
        }
    }

    /// Overwrites one span's residency summary from an authoritative
    /// per-page recount (crash recovery).
    pub fn reset_span(&mut self, region: RegionId, head: u64, dram: u64, nvm: u64) {
        let cfg = self.cfg.clone();
        if let Some(view) = self.views.get_mut(&region) {
            if let Some(s) = view.spans.get_mut(&head) {
                s.dram = dram;
                s.nvm = nvm;
                s.pinned = 0;
                Self::refresh_flags(&cfg, view, head);
            }
        }
    }

    /// Counts per-page work done by the caller inside chosen spans.
    pub fn note_pages_touched(&mut self, n: u64) {
        self.stats.select_pages_touched += n;
    }

    /// Applies the per-period exponential decay to every span. Cost is
    /// one operation per live span — the whole point of merging cold
    /// spans is keeping this walk short.
    pub fn decay(&mut self) {
        let cfg = self.cfg.clone();
        self.stats.periods += 1;
        for view in self.views.values_mut() {
            let heads: Vec<u64> = view.spans.keys().copied().collect();
            for head in heads {
                let s = view.spans.get_mut(&head).unwrap();
                if s.temp > 0 {
                    s.temp -= (s.temp >> cfg.decay_shift).max(1);
                }
                Self::refresh_flags(&cfg, view, head);
                self.stats.decay_ops += 1;
            }
        }
    }

    /// Spans due to split this period: hot, splittable, and unpinned.
    /// Deterministic address order.
    pub fn split_candidates(&self) -> Vec<(RegionId, u64, u64)> {
        let mut out = Vec::new();
        for (&region, view) in &self.views {
            for (&head, s) in &view.spans {
                if s.temp >= self.cfg.split_temperature
                    && s.len > self.cfg.min_span
                    && s.pinned == 0
                {
                    out.push((region, head, s.len));
                }
            }
        }
        out
    }

    /// Splits the span at `head` into buddy halves, distributing its
    /// temperature by the caller-supplied per-half counter weights (heat
    /// follows the pages that earned it; an even split when neither half
    /// has history).
    pub fn apply_split(&mut self, region: RegionId, head: u64, left: SplitHalf, right: SplitHalf) {
        let cfg = self.cfg.clone();
        let Some(view) = self.views.get_mut(&region) else {
            return;
        };
        let Some(s) = view.spans.get(&head).copied() else {
            return;
        };
        if s.len <= cfg.min_span || s.pinned != 0 {
            return;
        }
        let half = s.len / 2;
        let total_w = left.weight + right.weight;
        let left_temp = (s.temp as u64 * left.weight)
            .checked_div(total_w)
            .map_or(s.temp / 2, |t| t as u32);
        let right_temp = s.temp - left_temp.min(s.temp);
        view.spans.insert(
            head,
            Span {
                len: half,
                temp: left_temp,
                dram: left.dram,
                nvm: left.nvm,
                pinned: 0,
            },
        );
        view.spans.insert(
            head + half,
            Span {
                len: half,
                temp: right_temp,
                dram: right.dram,
                nvm: right.nvm,
                pinned: 0,
            },
        );
        view.live_spans += 1;
        self.stats.spans += 1;
        self.stats.splits += 1;
        Self::refresh_flags(&cfg, view, head);
        Self::refresh_flags(&cfg, view, head + half);
    }

    /// Merges adjacent cold buddy spans (both at or under the merge
    /// temperature, unpinned, buddy-aligned, combined span within
    /// `max_span`). One pass per period; chains collapse across periods.
    pub fn merge_pass(&mut self) {
        let cfg = self.cfg.clone();
        for view in self.views.values_mut() {
            let snapshot: Vec<(u64, u64, u32, u32)> = view
                .spans
                .iter()
                .map(|(&h, s)| (h, s.len, s.temp, s.pinned))
                .collect();
            let mut merges: Vec<u64> = Vec::new();
            let mut i = 0;
            while i + 1 < snapshot.len() {
                let (h1, l1, t1, p1) = snapshot[i];
                let (h2, l2, t2, p2) = snapshot[i + 1];
                let mergeable = h2 == h1 + l1
                    && l1 == l2
                    && 2 * l1 <= cfg.max_span
                    && h1 % (2 * l1) == 0
                    && t1 <= cfg.merge_temperature
                    && t2 <= cfg.merge_temperature
                    && p1 == 0
                    && p2 == 0;
                if mergeable {
                    merges.push(h1);
                    i += 2; // the merged span waits a period before chaining
                } else {
                    i += 1;
                }
            }
            for h1 in merges {
                let left = view.spans[&h1];
                let right = view.spans.remove(&(h1 + left.len)).unwrap();
                Self::clear_flags(view, h1 + left.len);
                let s = view.spans.get_mut(&h1).unwrap();
                s.len = left.len + right.len;
                s.temp = left.temp.saturating_add(right.temp);
                s.dram = left.dram + right.dram;
                s.nvm = left.nvm + right.nvm;
                view.live_spans -= 1;
                self.stats.spans -= 1;
                self.stats.merges += 1;
                Self::refresh_flags(&cfg, view, h1);
            }
        }
    }

    /// First promotion-candidate span strictly after `cursor`
    /// (`(region, head)` address order): a hot span holding NVM pages.
    /// Returns `(region, head, len)`.
    pub fn first_promo_span_after(
        &mut self,
        cursor: Option<(RegionId, u64)>,
    ) -> Option<(RegionId, u64, u64)> {
        self.first_span_after(cursor, |v| &v.promo)
    }

    /// First demotion-candidate span after `cursor`: a not-hot span
    /// holding DRAM pages.
    pub fn first_demo_span_after(
        &mut self,
        cursor: Option<(RegionId, u64)>,
    ) -> Option<(RegionId, u64, u64)> {
        self.first_span_after(cursor, |v| &v.demo)
    }

    /// First span holding any DRAM page after `cursor` (the `allow_hot`
    /// demotion fallback).
    pub fn first_dram_span_after(
        &mut self,
        cursor: Option<(RegionId, u64)>,
    ) -> Option<(RegionId, u64, u64)> {
        self.first_span_after(cursor, |v| &v.dram_any)
    }

    fn first_span_after(
        &mut self,
        cursor: Option<(RegionId, u64)>,
        index: impl Fn(&RegionView) -> &FlagTree,
    ) -> Option<(RegionId, u64, u64)> {
        let (from_region, from_page) = match cursor {
            Some((r, p)) => (r, p),
            None => (*self.views.keys().next()?, 0),
        };
        for (&region, view) in self.views.range(from_region..) {
            let lo = if region == from_region { from_page } else { 0 };
            self.stats.select_index_ops += 1;
            if let Some(head) = index(view).first_set_in(lo as usize) {
                let len = view.spans[&(head as u64)].len;
                return Some((region, head as u64, len));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid() -> RegionId {
        RegionId(0)
    }

    #[test]
    fn tiling_covers_exactly_with_aligned_powers_of_two() {
        let mut rt = RegionTracker::new(RegionConfig::multi_grain());
        // 1300 pages: 2x512 + 256 + 16 + 4 (greedy buddy tiling).
        rt.add_region(rid(), 1300);
        let spans = rt.spans(rid());
        let mut at = 0;
        for (head, s) in &spans {
            assert_eq!(*head, at, "contiguous");
            assert!(s.len.is_power_of_two());
            assert_eq!(head % s.len, 0, "buddy aligned");
            at += s.len;
        }
        assert_eq!(at, 1300, "full coverage");
        let (live, covered, pages, pinned) = rt.accounting(rid()).unwrap();
        assert_eq!(
            (live, covered, pages, pinned),
            (spans.len() as u64, 1300, 1300, 0)
        );
    }

    #[test]
    fn flat_baseline_is_one_span_per_page() {
        let mut rt = RegionTracker::new(RegionConfig::flat_baseline());
        rt.add_region(rid(), 64);
        assert_eq!(rt.spans(rid()).len(), 64);
        rt.decay();
        assert_eq!(rt.stats().decay_ops, 64, "per-period cost is linear");
        assert!(rt.split_candidates().is_empty(), "1-page spans never split");
        rt.merge_pass();
        assert_eq!(rt.stats().merges, 0, "max_span 1 never merges");
    }

    #[test]
    fn samples_heat_and_decay_cools() {
        let mut cfg = RegionConfig::multi_grain();
        cfg.decay_shift = 1;
        let mut rt = RegionTracker::new(cfg);
        rt.add_region(rid(), 512);
        rt.residency_changed(rid(), 3, None, Some(Tier::Nvm));
        for _ in 0..4 {
            rt.note_sample(rid(), 3, true); // stores weigh 2
        }
        let (head, s) = rt.span_of(rid(), 3).unwrap();
        assert_eq!((head, s.temp), (0, 8));
        assert!(rt.promo_flagged(rid(), 0), "hot + nvm pages -> promo");
        for _ in 0..4 {
            rt.decay();
        }
        let (_, s) = rt.span_of(rid(), 3).unwrap();
        assert_eq!(s.temp, 0, "decays to zero via the floor step");
        assert!(!rt.promo_flagged(rid(), 0));
    }

    #[test]
    fn split_follows_the_heat_and_merge_reunites() {
        let mut cfg = RegionConfig::multi_grain();
        cfg.max_span = 8;
        let mut rt = RegionTracker::new(cfg);
        rt.add_region(rid(), 8);
        rt.residency_changed(rid(), 6, None, Some(Tier::Nvm));
        for _ in 0..16 {
            rt.note_sample(rid(), 6, false);
        }
        let cands = rt.split_candidates();
        assert_eq!(cands, vec![(rid(), 0, 8)]);
        // All the counter weight sits in the right half.
        rt.apply_split(
            rid(),
            0,
            SplitHalf::default(),
            SplitHalf {
                weight: 16,
                dram: 0,
                nvm: 1,
            },
        );
        let spans = rt.spans(rid());
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].1.temp, 0, "cold half inherits nothing");
        assert_eq!(spans[1].1.temp, 16, "heat follows the hot half");
        assert_eq!(spans[1].1.nvm, 1);
        // Cool both halves below the merge bar; the buddies reunite.
        for _ in 0..8 {
            rt.decay();
        }
        rt.merge_pass();
        let spans = rt.spans(rid());
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].1.len, 8);
        assert_eq!(rt.stats().splits, 1);
        assert_eq!(rt.stats().merges, 1);
    }

    #[test]
    fn pinned_spans_refuse_split_and_merge() {
        let mut cfg = RegionConfig::multi_grain();
        cfg.max_span = 4;
        let mut rt = RegionTracker::new(cfg);
        rt.add_region(rid(), 4);
        rt.pin(rid(), 1);
        for _ in 0..20 {
            rt.note_sample(rid(), 0, false);
        }
        assert!(rt.split_candidates().is_empty(), "pinned span holds");
        rt.unpin(rid(), 1);
        assert_eq!(rt.split_candidates().len(), 1);
        // Pin again after a manual split; the cold buddies must not merge.
        rt.apply_split(rid(), 0, SplitHalf::default(), SplitHalf::default());
        for _ in 0..8 {
            rt.decay();
        }
        rt.pin(rid(), 0);
        rt.merge_pass();
        assert_eq!(rt.spans(rid()).len(), 2, "pinned buddy refuses merge");
        rt.clear_pins(rid());
        rt.merge_pass();
        assert_eq!(rt.spans(rid()).len(), 1);
    }

    #[test]
    fn candidate_walk_uses_the_index_in_address_order() {
        let mut cfg = RegionConfig::multi_grain();
        cfg.max_span = 4;
        let mut rt = RegionTracker::new(cfg);
        rt.add_region(RegionId(1), 8);
        rt.add_region(RegionId(2), 4);
        // Heat span [4,8) of region 1 and all of region 2.
        for i in [4, 5] {
            rt.residency_changed(RegionId(1), i, None, Some(Tier::Nvm));
        }
        rt.residency_changed(RegionId(2), 0, None, Some(Tier::Nvm));
        for _ in 0..8 {
            rt.note_sample(RegionId(1), 4, false);
            rt.note_sample(RegionId(2), 1, false);
        }
        let first = rt.first_promo_span_after(None).unwrap();
        assert_eq!(first, (RegionId(1), 4, 4));
        let second = rt.first_promo_span_after(Some((RegionId(1), 8))).unwrap();
        assert_eq!(second, (RegionId(2), 0, 4));
        assert!(rt.first_promo_span_after(Some((RegionId(2), 4))).is_none());
        // Demotion index: nothing holds DRAM yet.
        assert!(rt.first_demo_span_after(None).is_none());
        rt.residency_changed(RegionId(1), 0, None, Some(Tier::Dram));
        assert_eq!(rt.first_demo_span_after(None), Some((RegionId(1), 0, 4)));
        assert_eq!(rt.first_dram_span_after(None), Some((RegionId(1), 0, 4)));
    }
}
