//! Per-page hotness tracking: access counters, hot/cold FIFO queues, and
//! the cooling clock (§3.1, "Data classification").
//!
//! Every managed page is on exactly one of four lists (hot/cold × tier)
//! or temporarily off-list while migrating. A page becomes hot after a
//! threshold of sampled loads (8) or stores (4); pages crossing the store
//! threshold are *write-heavy* and jump to the front of their hot list so
//! the migration policy promotes them to DRAM first (NVM write bandwidth
//! is the scarcest resource). When any page accumulates the cooling
//! threshold (18) of samples, a global clock advances; each page is
//! lazily cooled (counters halved) the next time it is touched, avoiding
//! a full traversal of the queues.

use std::collections::HashMap;

use hemem_sim::list::{FifoArena, FifoList, Slot};
use hemem_sim::Ns;
use hemem_vmm::{AddressSpace, PageId, PageState, RegionId, Tier};

use super::regions::{RegionConfig, RegionStats, RegionTracker, SplitHalf};
use crate::audit::AuditViolation;

/// Classification thresholds (paper defaults in §3.1, swept in Figures
/// 11-12).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrackerConfig {
    /// Sampled loads before a page is hot.
    pub hot_read_threshold: u32,
    /// Sampled stores before a page is hot (and write-heavy).
    pub hot_write_threshold: u32,
    /// Accumulated samples on any page that advance the cooling clock.
    pub cooling_threshold: u32,
    /// Whether write-heavy pages jump to the front of their hot queue
    /// (§3.3); disabled only by the write-priority ablation.
    pub write_priority: bool,
    /// Minimum virtual time between global cooling-clock advances. The
    /// paper's trigger alone ("any page accumulates 18 samples") races at
    /// high aggregate sample rates — the *first* of N climbing pages
    /// trips it long before the average page has gained anything, and
    /// counts equilibrate below the hot thresholds. A floor on the
    /// cooling cadence restores the intended behaviour (hot pages sustain
    /// counts; a shifted-away hot set cools within a few intervals).
    pub cooling_min_interval: Ns,
    /// Multi-grained region tracking (off by default: the flat queue
    /// paths below stay byte-identical to the pre-region tracker).
    #[serde(default)]
    pub regions: RegionConfig,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            hot_read_threshold: 8,
            hot_write_threshold: 4,
            cooling_threshold: 18,
            write_priority: true,
            cooling_min_interval: Ns::secs(8),
            regions: RegionConfig::default(),
        }
    }
}

/// The four residency/temperature queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Queue {
    /// Hot pages in DRAM.
    DramHot,
    /// Cold pages in DRAM (demotion candidates).
    DramCold,
    /// Hot pages in NVM (promotion candidates).
    NvmHot,
    /// Cold pages in NVM.
    NvmCold,
}

impl Queue {
    fn index(self) -> usize {
        match self {
            Queue::DramHot => 0,
            Queue::DramCold => 1,
            Queue::NvmHot => 2,
            Queue::NvmCold => 3,
        }
    }

    /// The queue for `tier` at the given temperature. SSD-resident pages
    /// are off-queue by design (they re-enter via a major fault, not a
    /// policy pick), so asking for their queue is a logic error.
    pub fn of(tier: Tier, hot: bool) -> Queue {
        match (tier, hot) {
            (Tier::Dram, true) => Queue::DramHot,
            (Tier::Dram, false) => Queue::DramCold,
            (Tier::Nvm, true) => Queue::NvmHot,
            (Tier::Nvm, false) => Queue::NvmCold,
            (Tier::Ssd, _) => panic!("SSD pages have no hot/cold queue"),
        }
    }
}

/// Per-page tracking state.
#[derive(Debug, Clone, Copy, Default)]
struct PageMeta {
    reads: u32,
    writes: u32,
    cooled_at: u64,
    write_heavy: bool,
    tier: Option<Tier>,
    /// The page was popped by region-granularity selection and its span
    /// is pinned until the migration settles (or the pick is restored).
    region_pinned: bool,
}

/// Tracker statistics.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct TrackerStats {
    /// Access records processed.
    pub records: u64,
    /// Pages promoted to a hot queue.
    pub promotions: u64,
    /// Pages demoted to a cold queue by cooling.
    pub demotions: u64,
    /// Cooling clock advances.
    pub cool_events: u64,
}

/// Hotness tracker shared by HeMem (PEBS-fed) and its page-table-scan
/// variants (ledger-fed).
#[derive(Debug, Clone)]
pub struct PageTracker {
    cfg: TrackerConfig,
    arena: FifoArena,
    queues: [FifoList; 4],
    meta: Vec<PageMeta>,
    slot_page: Vec<PageId>,
    regions: HashMap<RegionId, (u32, u64)>, // base slot, page count
    region_view: Option<RegionTracker>,
    /// Per-period selection cursors (promotion; demotion cold pass,
    /// demotion any-DRAM pass): a span scanned dry this period is not
    /// rescanned until the next `begin_region_period` resets these, so
    /// selection cost stays proportional to spans visited, not pops
    /// taken.
    promo_cursor: Option<(RegionId, u64)>,
    demo_cursors: [Option<(RegionId, u64)>; 2],
    cool_clock: u64,
    last_advance: Ns,
    stats: TrackerStats,
}

impl PageTracker {
    /// Creates an empty tracker.
    pub fn new(cfg: TrackerConfig) -> PageTracker {
        let region_view = cfg
            .regions
            .enabled
            .then(|| RegionTracker::new(cfg.regions.clone()));
        PageTracker {
            cfg,
            region_view,
            arena: FifoArena::new(0),
            queues: [
                FifoList::new(Queue::DramHot.index() as u8),
                FifoList::new(Queue::DramCold.index() as u8),
                FifoList::new(Queue::NvmHot.index() as u8),
                FifoList::new(Queue::NvmCold.index() as u8),
            ],
            meta: Vec::new(),
            slot_page: Vec::new(),
            regions: HashMap::new(),
            promo_cursor: None,
            demo_cursors: [None, None],
            cool_clock: 0,
            last_advance: Ns::ZERO,
            stats: TrackerStats::default(),
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> &TrackerConfig {
        &self.cfg
    }

    /// Resets the tracker to its just-constructed state — no regions,
    /// empty queues, zeroed counters and cursors — while keeping every
    /// container's allocated capacity. This is the slot-pool scrub: a
    /// recycled tenant slot must behave byte-identically to a fresh
    /// `PageTracker::new(cfg)` without rebuilding heap state per spawn.
    pub fn reset(&mut self) {
        self.arena.reset();
        self.queues = [
            FifoList::new(Queue::DramHot.index() as u8),
            FifoList::new(Queue::DramCold.index() as u8),
            FifoList::new(Queue::NvmHot.index() as u8),
            FifoList::new(Queue::NvmCold.index() as u8),
        ];
        self.meta.clear();
        self.slot_page.clear();
        self.regions.clear();
        if let Some(rv) = self.region_view.as_mut() {
            rv.reset();
        }
        self.promo_cursor = None;
        self.demo_cursors = [None, None];
        self.cool_clock = 0;
        self.last_advance = Ns::ZERO;
        self.stats = TrackerStats::default();
    }

    /// Pre-allocates container capacity for `pages` tracked pages so
    /// the slot's first `add_region` calls never reallocate in the
    /// spawn hot path.
    pub fn prewarm(&mut self, pages: u64) {
        let n = pages as usize;
        self.arena.reserve(n);
        if n > self.meta.len() {
            self.meta.reserve(n - self.meta.len());
        }
        if n > self.slot_page.len() {
            self.slot_page.reserve(n - self.slot_page.len());
        }
    }

    /// True when the tracker is indistinguishable from a freshly
    /// constructed one: no tracked regions or page state and every
    /// counter at zero. The slot-recycling audit uses this to prove a
    /// scrubbed slot cannot leak tracker state into its next
    /// generation.
    pub fn is_pristine(&self) -> bool {
        self.regions.is_empty()
            && self.meta.is_empty()
            && self.queues.iter().all(FifoList::is_empty)
            && self.promo_cursor.is_none()
            && self.demo_cursors.iter().all(Option::is_none)
            && self.cool_clock == 0
            && self.last_advance == Ns::ZERO
            && self.stats.records == 0
            && self.stats.promotions == 0
            && self.stats.demotions == 0
            && self.stats.cool_events == 0
    }

    /// Pages currently tracked across all registered regions.
    pub fn tracked_pages(&self) -> u64 {
        self.regions.values().map(|&(_, pages)| pages).sum()
    }

    /// Metadata slots the tracker's containers currently span,
    /// including slots left behind by removed regions — the footprint a
    /// slot-pool scrub reclaims.
    pub fn footprint_pages(&self) -> u64 {
        self.meta.len() as u64
    }

    /// Statistics.
    pub fn stats(&self) -> &TrackerStats {
        &self.stats
    }

    /// Current cooling clock value.
    pub fn cool_clock(&self) -> u64 {
        self.cool_clock
    }

    /// Registers a managed region of `pages` pages.
    pub fn add_region(&mut self, region: RegionId, pages: u64) {
        let base = self.meta.len() as u32;
        self.regions.insert(region, (base, pages));
        self.meta
            .extend(std::iter::repeat_n(PageMeta::default(), pages as usize));
        self.slot_page
            .extend((0..pages).map(|i| PageId { region, index: i }));
        self.arena.grow_to(self.meta.len());
        if let Some(rv) = self.region_view.as_mut() {
            rv.add_region(region, pages);
        }
    }

    /// Whether `region` is tracked.
    pub fn tracks(&self, region: RegionId) -> bool {
        self.regions.contains_key(&region)
    }

    /// Forgets a region's pages (unlinking them from any queue).
    pub fn remove_region(&mut self, region: RegionId) {
        if let Some((base, pages)) = self.regions.remove(&region) {
            for slot in base..base + pages as u32 {
                self.unlink(slot);
                self.meta[slot as usize] = PageMeta::default();
            }
            if let Some(rv) = self.region_view.as_mut() {
                rv.remove_region(region);
            }
        }
    }

    /// Slot for a page, if its region is tracked.
    pub fn slot(&self, page: PageId) -> Option<Slot> {
        let &(base, pages) = self.regions.get(&page.region)?;
        (page.index < pages).then(|| base + page.index as u32)
    }

    /// Page for a slot.
    pub fn page(&self, slot: Slot) -> PageId {
        self.slot_page[slot as usize]
    }

    /// Queue length.
    pub fn queue_len(&self, q: Queue) -> usize {
        self.queues[q.index()].len()
    }

    fn unlink(&mut self, slot: Slot) {
        let id = self.arena.list_of(slot);
        if id != hemem_sim::list::NO_LIST {
            self.queues[id as usize].remove(&mut self.arena, slot);
        }
    }

    fn push(&mut self, slot: Slot, q: Queue, front: bool) {
        if front {
            self.queues[q.index()].push_front(&mut self.arena, slot);
        } else {
            self.queues[q.index()].push_back(&mut self.arena, slot);
        }
    }

    /// Whether a page's counters classify it hot.
    fn is_hot(&self, m: &PageMeta) -> bool {
        m.reads >= self.cfg.hot_read_threshold || m.writes >= self.cfg.hot_write_threshold
    }

    /// A page was placed on `tier` (first touch or migration done); it
    /// (re-)enters the appropriate queue. Pages placed on the SSD tier
    /// go off-queue: their counters survive (so a page promoted back
    /// keeps its history) but nothing polls them — the next access
    /// surfaces as a major fault instead of a queue pick.
    pub fn placed(&mut self, page: PageId, tier: Tier) {
        let Some(slot) = self.slot(page) else { return };
        self.unlink(slot);
        let meta = &mut self.meta[slot as usize];
        let old = meta.tier;
        let pinned = meta.region_pinned;
        meta.tier = Some(tier);
        meta.region_pinned = false;
        if let Some(rv) = self.region_view.as_mut() {
            if pinned {
                rv.unpin(page.region, page.index);
            }
            rv.residency_changed(page.region, page.index, old, Some(tier));
        }
        if tier == Tier::Ssd {
            return;
        }
        let hot = self.is_hot(&self.meta[slot as usize]);
        let wh = self.meta[slot as usize].write_heavy;
        self.push(slot, Queue::of(tier, hot), hot && wh);
    }

    /// Lazily cools a page if the clock advanced since its last cooling.
    /// Returns `true` if the page was demoted from hot to cold.
    fn maybe_cool(&mut self, slot: Slot) -> bool {
        let clock = self.cool_clock;
        let cfg_wt = self.cfg.hot_write_threshold;
        let meta = &mut self.meta[slot as usize];
        if meta.cooled_at == clock {
            return false;
        }
        // Halve once per clock step missed (several steps may have passed;
        // one halving per touch keeps the O(1) lazy behaviour of §3.1).
        meta.reads /= 2;
        meta.writes /= 2;
        meta.cooled_at = clock;
        let mut second_chance = false;
        if meta.write_heavy && meta.writes < cfg_wt {
            // No longer write-heavy: second chance on the hot list (§3.3).
            meta.write_heavy = false;
            second_chance = true;
        }
        // Demotion hysteresis: a page leaves the hot list only when its
        // cooled counts fall below *half* the hot thresholds. Without it,
        // pages whose steady-state sampled rate hovers just under the
        // threshold (large hot sets spread samples thin) flicker between
        // hot and cold and are never migrated.
        let m2 = &self.meta[slot as usize];
        let hot = m2.reads >= self.cfg.hot_read_threshold.div_ceil(2)
            || m2.writes >= self.cfg.hot_write_threshold.div_ceil(2);
        let tier = self.meta[slot as usize].tier;
        let Some(tier) = tier else { return false };
        if tier == Tier::Ssd {
            return false;
        }
        let on = self.arena.list_of(slot);
        let hot_q = Queue::of(tier, true);
        let cold_q = Queue::of(tier, false);
        if !hot && on == hot_q.index() as u8 && !second_chance {
            self.unlink(slot);
            self.push(slot, cold_q, false);
            self.stats.demotions += 1;
            return true;
        }
        if second_chance && on == hot_q.index() as u8 {
            // Move from the prioritized front back into FIFO order.
            self.unlink(slot);
            self.push(slot, hot_q, false);
        }
        false
    }

    /// Records one sampled access (from PEBS or a page-table scan) at
    /// virtual time `now`.
    pub fn record(&mut self, page: PageId, is_write: bool, now: Ns) {
        let Some(slot) = self.slot(page) else { return };
        self.stats.records += 1;
        if let Some(rv) = self.region_view.as_mut() {
            rv.note_sample(page.region, page.index, is_write);
        }
        self.maybe_cool(slot);
        let cfg = self.cfg.clone();
        let meta = &mut self.meta[slot as usize];
        if is_write {
            meta.writes = meta.writes.saturating_add(1);
        } else {
            meta.reads = meta.reads.saturating_add(1);
        }
        let total = meta.reads + meta.writes;
        let newly_write_heavy =
            is_write && !meta.write_heavy && meta.writes >= cfg.hot_write_threshold;
        if newly_write_heavy {
            meta.write_heavy = true;
        }
        let hot = meta.reads >= cfg.hot_read_threshold || meta.writes >= cfg.hot_write_threshold;
        let tier = meta.tier;
        if total as u64 >= cfg.cooling_threshold as u64
            && now.saturating_sub(self.last_advance) >= cfg.cooling_min_interval
        {
            self.cool_clock += 1;
            self.last_advance = now;
            self.stats.cool_events += 1;
            self.meta[slot as usize].cooled_at = self.cool_clock;
            let m = &mut self.meta[slot as usize];
            m.reads /= 2;
            m.writes /= 2;
        }
        let Some(tier) = tier else { return };
        if tier == Tier::Ssd {
            return;
        }
        let on = self.arena.list_of(slot);
        let hot_q = Queue::of(tier, true);
        if hot && on != hot_q.index() as u8 && on != hemem_sim::list::NO_LIST {
            self.unlink(slot);
            let front = cfg.write_priority && self.meta[slot as usize].write_heavy;
            self.push(slot, hot_q, front);
            self.stats.promotions += 1;
        } else if newly_write_heavy && cfg.write_priority && on == hot_q.index() as u8 {
            // Already hot: jump to the front for priority migration.
            self.queues[hot_q.index()].move_to_front(&mut self.arena, slot);
        }
    }

    /// Pops the next promotion candidate (front of the NVM hot queue).
    pub fn pop_promotion(&mut self) -> Option<PageId> {
        let slot = self.queues[Queue::NvmHot.index()].pop_front(&mut self.arena)?;
        Some(self.page(slot))
    }

    /// Pops the next demotion candidate: front of the DRAM cold queue, or
    /// — when nothing in DRAM is cold — the front of the DRAM hot queue
    /// ("random data" in the paper; the FIFO front is the page hot for
    /// longest).
    pub fn pop_demotion(&mut self, allow_hot: bool) -> Option<PageId> {
        if let Some(slot) = self.queues[Queue::DramCold.index()].pop_front(&mut self.arena) {
            return Some(self.page(slot));
        }
        if allow_hot {
            let slot = self.queues[Queue::DramHot.index()].pop_front(&mut self.arena)?;
            return Some(self.page(slot));
        }
        None
    }

    /// Returns a popped candidate to the back of its queue (migration
    /// could not start).
    pub fn restore(&mut self, page: PageId) {
        self.restore_at(page, false);
    }

    /// Returns a popped candidate to the *front* of its queue (it stays
    /// first in line for the next policy pass).
    pub fn restore_front(&mut self, page: PageId) {
        self.restore_at(page, true);
    }

    fn restore_at(&mut self, page: PageId, front: bool) {
        if let Some(slot) = self.slot(page) {
            if self.meta[slot as usize].region_pinned {
                self.meta[slot as usize].region_pinned = false;
                if let Some(rv) = self.region_view.as_mut() {
                    rv.unpin(page.region, page.index);
                }
            }
            if let Some(tier) = self.meta[slot as usize].tier {
                if tier == Tier::Ssd {
                    return;
                }
                let hot = self.is_hot(&self.meta[slot as usize]);
                self.unlink(slot);
                self.push(slot, Queue::of(tier, hot), front);
            }
        }
    }

    /// Forces a page hot (used by the page-table-scanning variants, where
    /// a set accessed bit *is* the hotness signal). Saturates the relevant
    /// counter at its threshold so cooling behaves consistently.
    pub fn mark_hot(&mut self, page: PageId, write_heavy: bool) {
        let Some(slot) = self.slot(page) else { return };
        self.stats.records += 1;
        let cfg = self.cfg.clone();
        let write_heavy = write_heavy && cfg.write_priority;
        let meta = &mut self.meta[slot as usize];
        meta.reads = meta.reads.max(cfg.hot_read_threshold);
        if write_heavy {
            meta.writes = meta.writes.max(cfg.hot_write_threshold);
            meta.write_heavy = true;
        }
        let Some(tier) = meta.tier else { return };
        if tier == Tier::Ssd {
            return;
        }
        let wh = meta.write_heavy;
        let on = self.arena.list_of(slot);
        let hot_q = Queue::of(tier, true);
        if on != hot_q.index() as u8 && on != hemem_sim::list::NO_LIST {
            self.unlink(slot);
            self.push(slot, hot_q, wh);
            self.stats.promotions += 1;
        }
    }

    /// Forces a page cold (accessed bit was clear at scan time).
    pub fn mark_cold(&mut self, page: PageId) {
        let Some(slot) = self.slot(page) else { return };
        let meta = &mut self.meta[slot as usize];
        meta.reads = 0;
        meta.writes = 0;
        meta.write_heavy = false;
        let Some(tier) = meta.tier else { return };
        if tier == Tier::Ssd {
            return;
        }
        let on = self.arena.list_of(slot);
        let cold_q = Queue::of(tier, false);
        if on != cold_q.index() as u8 && on != hemem_sim::list::NO_LIST {
            self.unlink(slot);
            self.push(slot, cold_q, false);
            self.stats.demotions += 1;
        }
    }

    /// Pops the coldest NVM page as a swap-out victim (front of the NVM
    /// cold queue), or `None` if nothing in NVM is cold.
    pub fn pop_swap_victim(&mut self) -> Option<PageId> {
        let slot = self.queues[Queue::NvmCold.index()].pop_front(&mut self.arena)?;
        Some(self.page(slot))
    }

    /// Forgets a page entirely (swapped out to disk); it re-enters the
    /// queues via [`PageTracker::placed`] when faulted back in.
    pub fn evicted(&mut self, page: PageId) {
        if let Some(slot) = self.slot(page) {
            self.unlink(slot);
            let old = self.meta[slot as usize].tier;
            let pinned = self.meta[slot as usize].region_pinned;
            self.meta[slot as usize] = PageMeta::default();
            if let Some(rv) = self.region_view.as_mut() {
                if pinned {
                    rv.unpin(page.region, page.index);
                }
                rv.residency_changed(page.region, page.index, old, None);
            }
        }
    }

    /// Records a major fault on an off-queue (SSD-resident) page: bumps
    /// its access counters with the usual lazy cooling and returns the
    /// cooled total. The caller uses the total to decide promotion — a
    /// page re-faulting within a cooling window (total >= 2) is warm
    /// enough to pull back to NVM, a one-off fault is not. No queue
    /// linkage changes: SSD pages stay off-queue, and the global cooling
    /// clock is not advanced (faults carry no sampling timestamp).
    pub fn note_fault(&mut self, page: PageId, is_write: bool) -> u32 {
        let Some(slot) = self.slot(page) else {
            return 0;
        };
        self.maybe_cool(slot);
        let meta = &mut self.meta[slot as usize];
        if is_write {
            meta.writes = meta.writes.saturating_add(1);
        } else {
            meta.reads = meta.reads.saturating_add(1);
        }
        meta.reads + meta.writes
    }

    /// Whether a page is currently classified write-heavy.
    pub fn is_write_heavy(&self, page: PageId) -> bool {
        self.slot(page)
            .is_some_and(|s| self.meta[s as usize].write_heavy)
    }

    /// Whether a page's surviving counters classify it hot. Used on the
    /// major-fault path: an SSD page whose pre-demotion history was hot
    /// promotes straight to DRAM rather than stopping in NVM.
    pub fn is_hot_page(&self, page: PageId) -> bool {
        self.slot(page)
            .is_some_and(|s| self.is_hot(&self.meta[s as usize]))
    }

    /// Raw (reads, writes) counters of a page.
    pub fn counters(&self, page: PageId) -> (u32, u32) {
        match self.slot(page) {
            Some(s) => (self.meta[s as usize].reads, self.meta[s as usize].writes),
            None => (0, 0),
        }
    }

    /// Tracked regions in a deterministic (id) order, with their base slot
    /// and page count.
    fn regions_sorted(&self) -> Vec<(RegionId, u32, u64)> {
        let mut v: Vec<(RegionId, u32, u64)> = self
            .regions
            .iter()
            .map(|(&r, &(base, pages))| (r, base, pages))
            .collect();
        v.sort_unstable_by_key(|&(r, _, _)| r.0);
        v
    }

    /// Rebuilds every queue from the authoritative address space after a
    /// manager restart. Per-page counters (and the cooling clock) live in
    /// this tracker's metadata and survive the crash; what is lost is the
    /// queue linkage, which is reconstructed here: each resident page
    /// re-enters the queue its surviving counters classify it into
    /// (write-heavy hot pages at the front, as on placement), and pages no
    /// longer resident are forgotten.
    pub fn rebuild_from(&mut self, space: &AddressSpace) {
        for (rid, base, pages) in self.regions_sorted() {
            let region = space.region(rid);
            for i in 0..pages {
                let slot = base + i as u32;
                self.unlink(slot);
                self.meta[slot as usize].region_pinned = false;
                match region.state(i) {
                    PageState::Mapped { tier, .. } => {
                        self.meta[slot as usize].tier = Some(tier);
                        if tier == Tier::Ssd {
                            continue; // off-queue, counters kept
                        }
                        let m = self.meta[slot as usize];
                        let hot = self.is_hot(&m);
                        self.push(slot, Queue::of(tier, hot), hot && m.write_heavy);
                    }
                    _ => self.meta[slot as usize] = PageMeta::default(),
                }
            }
        }
        self.rebuild_region_view();
    }

    /// Re-derives every span's residency summary from the (surviving)
    /// per-page metadata and drops all pins: after a crash the journal
    /// was rolled back or completed, so no migration is in flight and
    /// every span must agree with the pages inside it.
    fn rebuild_region_view(&mut self) {
        let Some(mut rv) = self.region_view.take() else {
            return;
        };
        self.promo_cursor = None;
        self.demo_cursors = [None, None];
        for (rid, base, pages) in self.regions_sorted() {
            rv.clear_pins(rid);
            for (head, s) in rv.spans(rid) {
                let (mut dram, mut nvm) = (0u64, 0u64);
                for i in head..(head + s.len).min(pages) {
                    match self.meta[(base + i as u32) as usize].tier {
                        Some(Tier::Dram) => dram += 1,
                        Some(Tier::Nvm) => nvm += 1,
                        _ => {}
                    }
                }
                rv.reset_span(rid, head, dram, nvm);
            }
        }
        self.region_view = Some(rv);
    }

    /// Whether region-granularity tracking is active (policy selects via
    /// the span indexes instead of the flat queues).
    pub fn regions_enabled(&self) -> bool {
        self.region_view.is_some()
    }

    /// Region-layer counters, when region tracking is active.
    pub fn region_stats(&self) -> Option<RegionStats> {
        self.region_view.as_ref().map(|rv| rv.stats())
    }

    /// Per-period region maintenance: decay every span's temperature,
    /// split hot spans (temperature distributed by the per-page counter
    /// weight of each half, so the heat follows the pages that earned
    /// it), then merge adjacent cold buddies. No-op when regions are off.
    pub fn begin_region_period(&mut self) {
        let Some(mut rv) = self.region_view.take() else {
            return;
        };
        self.promo_cursor = None;
        self.demo_cursors = [None, None];
        rv.decay();
        for (rid, head, len) in rv.split_candidates() {
            let Some(&(base, _)) = self.regions.get(&rid) else {
                continue;
            };
            let half = len / 2;
            let mut halves = [SplitHalf::default(), SplitHalf::default()];
            for (h, lo) in [(0usize, head), (1usize, head + half)] {
                for i in lo..lo + half {
                    let m = &self.meta[(base + i as u32) as usize];
                    halves[h].weight += (m.reads + m.writes) as u64;
                    match m.tier {
                        Some(Tier::Dram) => halves[h].dram += 1,
                        Some(Tier::Nvm) => halves[h].nvm += 1,
                        _ => {}
                    }
                }
            }
            rv.note_pages_touched(len);
            rv.apply_split(rid, head, halves[0], halves[1]);
        }
        rv.merge_pass();
        self.region_view = Some(rv);
    }

    /// Pops the next promotion candidate at region granularity: walks the
    /// Fenwick promo index to the first hot span holding NVM pages, then
    /// scans only that span's pages for a queue member — an NVM-hot page
    /// first, else any NVM-cold page riding its hot span (the
    /// region-granularity bet: cold pages inside a hot span are coming).
    /// The chosen page leaves its queue and pins its span until the
    /// migration settles.
    pub fn pop_region_promotion(&mut self) -> Option<PageId> {
        let mut rv = self.region_view.take()?;
        let mut cursor = self.promo_cursor;
        let mut found = None;
        while let Some((rid, head, len)) = rv.first_promo_span_after(cursor) {
            let Some(&(base, _)) = self.regions.get(&rid) else {
                break;
            };
            let mut touched = 0u64;
            let mut hit = None;
            let mut fallback = None;
            for i in head..head + len {
                let slot = base + i as u32;
                touched += 1;
                let on = self.arena.list_of(slot);
                if on == Queue::NvmHot.index() as u8 {
                    hit = Some((slot, i));
                    break;
                }
                if fallback.is_none() && on == Queue::NvmCold.index() as u8 {
                    fallback = Some((slot, i));
                }
            }
            rv.note_pages_touched(touched);
            if let Some((slot, i)) = hit.or(fallback) {
                self.unlink(slot);
                self.meta[slot as usize].region_pinned = true;
                rv.pin(rid, i);
                found = Some(PageId {
                    region: rid,
                    index: i,
                });
                break;
            }
            cursor = Some((rid, head + len));
        }
        self.promo_cursor = cursor;
        self.region_view = Some(rv);
        found
    }

    /// Pops the next demotion candidate at region granularity: first the
    /// cold-span index (DRAM pages in not-hot spans; cold queue members
    /// preferred, hot members only with `allow_hot`), then — with
    /// `allow_hot` — any span holding DRAM pages, mirroring the flat
    /// tracker's "demote random data when nothing is cold" fallback.
    pub fn pop_region_demotion(&mut self, allow_hot: bool) -> Option<PageId> {
        let mut rv = self.region_view.take()?;
        let mut found = None;
        for pass in 0..2 {
            if pass == 1 && !allow_hot {
                break;
            }
            let mut cursor = self.demo_cursors[pass];
            loop {
                let next = if pass == 0 {
                    rv.first_demo_span_after(cursor)
                } else {
                    rv.first_dram_span_after(cursor)
                };
                let Some((rid, head, len)) = next else { break };
                let Some(&(base, _)) = self.regions.get(&rid) else {
                    break;
                };
                let mut touched = 0u64;
                let mut cold = None;
                let mut hot = None;
                for i in head..head + len {
                    let slot = base + i as u32;
                    touched += 1;
                    let on = self.arena.list_of(slot);
                    if on == Queue::DramCold.index() as u8 {
                        cold = Some((slot, i));
                        break;
                    }
                    if hot.is_none() && on == Queue::DramHot.index() as u8 {
                        hot = Some((slot, i));
                    }
                }
                rv.note_pages_touched(touched);
                let pick = cold.or(if allow_hot { hot } else { None });
                if let Some((slot, i)) = pick {
                    self.unlink(slot);
                    self.meta[slot as usize].region_pinned = true;
                    rv.pin(rid, i);
                    found = Some(PageId {
                        region: rid,
                        index: i,
                    });
                    break;
                }
                cursor = Some((rid, head + len));
            }
            self.demo_cursors[pass] = cursor;
            if found.is_some() {
                break;
            }
        }
        self.region_view = Some(rv);
        found
    }

    /// Region/page agreement checks for the auditor: span tiling covers
    /// each region exactly, every span's cached residency matches a
    /// recount of the pages inside it, the incremental span/coverage
    /// accounting matches the map, and no span stays pinned without a
    /// journal entry in flight (`journal_prepared` = outstanding entries
    /// for this tracker's tenant). Empty when regions are off or clean.
    pub fn region_violations(&self, journal_prepared: u64) -> Vec<AuditViolation> {
        let mut out = Vec::new();
        let Some(rv) = self.region_view.as_ref() else {
            return out;
        };
        for (rid, base, pages) in self.regions_sorted() {
            let spans = rv.spans(rid);
            // 1. Exact, aligned, power-of-two coverage.
            let mut at = 0u64;
            let mut broken = None;
            for (head, s) in &spans {
                if *head != at || !s.len.is_power_of_two() || head % s.len != 0 {
                    broken = Some(at);
                    break;
                }
                at += s.len;
            }
            if broken.is_none() && at != pages {
                broken = Some(at);
            }
            if let Some(at) = broken {
                out.push(AuditViolation::RegionCoverageGap { region: rid, at });
                continue; // residency recounts are meaningless off a broken tiling
            }
            // 2. Cached residency vs per-page recount.
            for (head, s) in &spans {
                let (mut dram, mut nvm) = (0u64, 0u64);
                for i in *head..head + s.len {
                    match self.meta[(base + i as u32) as usize].tier {
                        Some(Tier::Dram) => dram += 1,
                        Some(Tier::Nvm) => nvm += 1,
                        _ => {}
                    }
                }
                if dram != s.dram || nvm != s.nvm {
                    out.push(AuditViolation::RegionTemperatureMismatch {
                        region: rid,
                        start: *head,
                        cached_dram: s.dram,
                        actual_dram: dram,
                        cached_nvm: s.nvm,
                        actual_nvm: nvm,
                    });
                }
            }
            // 3. Incremental accounting vs the map, and orphan pins.
            if let Some((live, covered, view_pages, pinned)) = rv.accounting(rid) {
                let orphan_pins = if journal_prepared == 0 { pinned } else { 0 };
                if live != spans.len() as u64
                    || covered != pages
                    || view_pages != pages
                    || orphan_pins > 0
                {
                    out.push(AuditViolation::SplitMergeLeak {
                        region: rid,
                        live_spans: live,
                        actual_spans: spans.len() as u64,
                        covered,
                        pages,
                        orphan_pins,
                    });
                }
            }
        }
        out
    }

    /// Residency disagreements between tracker metadata and the address
    /// space: `(page, tracked tier, mapped tier)` for every tracked page
    /// where the two differ. Empty on a consistent tracker.
    pub fn residency_mismatches(
        &self,
        space: &AddressSpace,
    ) -> Vec<(PageId, Option<Tier>, Option<Tier>)> {
        let mut out = Vec::new();
        for (rid, base, pages) in self.regions_sorted() {
            let region = space.region(rid);
            for i in 0..pages {
                let tracked = self.meta[(base + i as u32) as usize].tier;
                let mapped = match region.state(i) {
                    PageState::Mapped { tier, .. } => Some(tier),
                    _ => None,
                };
                if tracked != mapped {
                    out.push((
                        PageId {
                            region: rid,
                            index: i,
                        },
                        tracked,
                        mapped,
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(i: u64) -> PageId {
        PageId {
            region: RegionId(0),
            index: i,
        }
    }

    fn tracker() -> PageTracker {
        // Zero cooling interval: unit tests exercise the pure threshold
        // semantics; the time gate has its own test.
        let cfg = TrackerConfig {
            cooling_min_interval: Ns::ZERO,
            ..TrackerConfig::default()
        };
        let mut t = PageTracker::new(cfg);
        t.add_region(RegionId(0), 16);
        for i in 0..16 {
            t.placed(page(i), Tier::Nvm);
        }
        t
    }

    #[test]
    fn pages_start_cold() {
        let t = tracker();
        assert_eq!(t.queue_len(Queue::NvmCold), 16);
        assert_eq!(t.queue_len(Queue::NvmHot), 0);
    }

    #[test]
    fn note_fault_counts_without_queueing() {
        let mut t = tracker();
        t.placed(page(0), Tier::Ssd);
        let before = t.queue_len(Queue::NvmCold) + t.queue_len(Queue::NvmHot);
        assert_eq!(t.note_fault(page(0), false), 1, "first fault: one-off");
        assert_eq!(t.note_fault(page(0), true), 2, "re-fault: warm");
        assert_eq!(t.counters(page(0)), (1, 1));
        assert_eq!(
            t.queue_len(Queue::NvmCold) + t.queue_len(Queue::NvmHot),
            before,
            "SSD pages stay off-queue"
        );
        // Untracked pages report zero (and are never promoted on fault).
        let foreign = PageId {
            region: RegionId(9),
            index: 0,
        };
        assert_eq!(t.note_fault(foreign, false), 0);
    }

    #[test]
    fn note_fault_cools_lazily() {
        let mut t = tracker();
        t.placed(page(0), Tier::Ssd);
        assert_eq!(t.note_fault(page(0), false), 1);
        // A cooling step between faults halves the stale count: the page
        // reads as a one-off again rather than accumulating forever.
        t.cool_clock += 1;
        assert_eq!(t.note_fault(page(0), false), 1, "cooled 1/2 + 1");
    }

    #[test]
    fn read_threshold_promotes() {
        let mut t = tracker();
        for _ in 0..7 {
            t.record(page(0), false, Ns::ZERO);
        }
        assert_eq!(t.queue_len(Queue::NvmHot), 0, "below threshold");
        t.record(page(0), false, Ns::ZERO);
        assert_eq!(t.queue_len(Queue::NvmHot), 1, "8 loads -> hot");
        assert_eq!(t.stats().promotions, 1);
    }

    #[test]
    fn write_threshold_promotes_faster_and_prioritizes() {
        let mut t = tracker();
        // Page 1 becomes read-hot first (goes to back of hot queue).
        for _ in 0..8 {
            t.record(page(1), false, Ns::ZERO);
        }
        // Page 2 becomes write-heavy: must enter at the *front*.
        for _ in 0..4 {
            t.record(page(2), true, Ns::ZERO);
        }
        assert!(t.is_write_heavy(page(2)));
        assert_eq!(t.pop_promotion(), Some(page(2)), "write-heavy first");
        assert_eq!(t.pop_promotion(), Some(page(1)));
        assert_eq!(t.pop_promotion(), None);
    }

    #[test]
    fn cooling_clock_advances_and_halves() {
        let mut t = tracker();
        // 18 samples on one page advance the clock and halve it in place.
        for _ in 0..18 {
            t.record(page(3), false, Ns::ZERO);
        }
        assert_eq!(t.cool_clock(), 1);
        let (r, _) = t.counters(page(3));
        assert_eq!(r, 9, "halved at the cooling event");
        // Another page that was hot with exactly threshold counts is
        // lazily cooled on next touch; hysteresis keeps it hot after one
        // halving (4 >= 8/2) and demotes it after the second (2 < 4).
        for _ in 0..8 {
            t.record(page(4), false, Ns::ZERO);
        }
        assert_eq!(t.queue_len(Queue::NvmHot), 2); // pages 3 and 4
                                                   // Advance clock again via page 3.
        for _ in 0..18 {
            t.record(page(3), false, Ns::ZERO);
        }
        // Touch page 4: cools from 8 to 4 reads -> stays hot (hysteresis).
        t.record(page(4), false, Ns::ZERO);
        let (r4, _) = t.counters(page(4));
        assert_eq!(r4, 5, "halved to 4 then incremented");
        assert_eq!(t.stats().demotions, 0, "hysteresis holds at half threshold");
        // Advance the clock once more; cooling 5 -> 2 < 4 demotes.
        for _ in 0..18 {
            t.record(page(3), false, Ns::ZERO);
        }
        t.record(page(4), false, Ns::ZERO);
        assert!(t.stats().demotions >= 1, "second cooling demotes");
    }

    #[test]
    fn write_heavy_second_chance() {
        let mut t = tracker();
        for _ in 0..4 {
            t.record(page(5), true, Ns::ZERO);
        }
        assert!(t.is_write_heavy(page(5)));
        // Force clock ahead.
        for _ in 0..18 {
            t.record(page(6), false, Ns::ZERO);
        }
        // Cooling drops writes to 2 (< 4): loses write-heavy but stays on
        // the hot list (second chance) because reads+writes still counted.
        t.record(page(5), false, Ns::ZERO);
        assert!(!t.is_write_heavy(page(5)));
        // Page 5 must still be somewhere on a hot or cold NVM queue.
        let on_hot = t.queue_len(Queue::NvmHot);
        assert!(on_hot >= 1, "second chance keeps page around");
    }

    #[test]
    fn placed_moves_between_tiers() {
        let mut t = tracker();
        for _ in 0..8 {
            t.record(page(7), false, Ns::ZERO);
        }
        let p = t.pop_promotion().expect("hot page");
        assert_eq!(p, page(7));
        t.placed(p, Tier::Dram);
        assert_eq!(t.queue_len(Queue::DramHot), 1);
    }

    #[test]
    fn pop_demotion_prefers_cold() {
        let mut t = tracker();
        // Move two pages to DRAM, one hot one cold.
        t.placed(page(0), Tier::Dram);
        for _ in 0..8 {
            t.record(page(1), false, Ns::ZERO);
        }
        let hot = t.pop_promotion().expect("hot");
        t.placed(hot, Tier::Dram);
        assert_eq!(t.pop_demotion(false), Some(page(0)));
        assert_eq!(t.pop_demotion(false), None, "no cold left, not allowed hot");
        assert_eq!(t.pop_demotion(true), Some(page(1)));
    }

    #[test]
    fn restore_requeues() {
        let mut t = tracker();
        t.placed(page(0), Tier::Dram);
        let p = t.pop_demotion(false).expect("cold dram page");
        t.restore(p);
        assert_eq!(t.queue_len(Queue::DramCold), 1);
    }

    #[test]
    fn untracked_regions_ignored() {
        let mut t = tracker();
        t.record(
            PageId {
                region: RegionId(9),
                index: 0,
            },
            false,
            Ns::ZERO,
        );
        assert_eq!(t.stats().records, 0);
        assert!(!t.tracks(RegionId(9)));
    }

    #[test]
    fn cooling_clock_is_time_gated() {
        let cfg = TrackerConfig {
            cooling_min_interval: Ns::secs(1),
            ..TrackerConfig::default()
        };
        let mut t = PageTracker::new(cfg);
        t.add_region(RegionId(0), 4);
        t.placed(page(0), Tier::Nvm);
        // 100 samples at t=2s: only one clock advance despite crossing the
        // threshold several times.
        for _ in 0..100 {
            t.record(page(0), false, Ns::secs(2));
        }
        assert_eq!(t.cool_clock(), 1);
        // Another burst after the interval: one more advance.
        for _ in 0..100 {
            t.record(page(0), false, Ns::secs(4));
        }
        assert_eq!(t.cool_clock(), 2);
    }

    #[test]
    fn rebuild_restores_queues_from_space_residency() {
        use hemem_vmm::{PageSize, PhysPage, RegionKind};
        let mut space = AddressSpace::new();
        let rid = space.mmap(4 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = space.region_mut(rid);
        r.map_page(0, Tier::Dram, PhysPage(0));
        r.map_page(1, Tier::Nvm, PhysPage(0));
        r.map_page(2, Tier::Nvm, PhysPage(1));
        // Page 3 stays unmapped.
        let cfg = TrackerConfig {
            cooling_min_interval: Ns::ZERO,
            ..TrackerConfig::default()
        };
        let mut t = PageTracker::new(cfg);
        t.add_region(rid, 4);
        for i in 0..3 {
            t.placed(
                PageId {
                    region: rid,
                    index: i,
                },
                Tier::Nvm,
            ); // 0: stale tier
        }
        // Page 1 earns hot counters that must survive the crash.
        for _ in 0..8 {
            t.record(
                PageId {
                    region: rid,
                    index: 1,
                },
                false,
                Ns::ZERO,
            );
        }
        assert_eq!(
            t.residency_mismatches(&space),
            vec![(
                PageId {
                    region: rid,
                    index: 0
                },
                Some(Tier::Nvm),
                Some(Tier::Dram)
            )]
        );
        t.rebuild_from(&space);
        assert_eq!(t.residency_mismatches(&space), Vec::new());
        assert_eq!(t.queue_len(Queue::DramCold), 1, "page 0 follows the space");
        assert_eq!(t.queue_len(Queue::NvmHot), 1, "page 1 keeps its counters");
        assert_eq!(t.queue_len(Queue::NvmCold), 1, "page 2");
        assert_eq!(
            t.counters(PageId {
                region: rid,
                index: 1
            })
            .0,
            8
        );
        assert_eq!(
            t.counters(PageId {
                region: rid,
                index: 3
            }),
            (0, 0),
            "unmapped page forgotten"
        );
    }

    #[test]
    fn ssd_pages_go_off_queue_but_keep_counters() {
        let mut t = tracker();
        // Page earns hot counters, then is placed on the SSD tier.
        for _ in 0..8 {
            t.record(page(0), false, Ns::ZERO);
        }
        assert!(t.is_hot_page(page(0)));
        t.placed(page(0), Tier::Ssd);
        let total: usize = [
            Queue::DramHot,
            Queue::DramCold,
            Queue::NvmHot,
            Queue::NvmCold,
        ]
        .iter()
        .map(|&q| t.queue_len(q))
        .sum();
        assert_eq!(total, 15, "SSD page left every queue");
        // Samples and restores on an SSD-resident page are inert.
        t.record(page(0), true, Ns::ZERO);
        t.restore(page(0));
        t.mark_hot(page(0), true);
        assert_eq!(t.queue_len(Queue::NvmHot), 0);
        // Counters survive: promotion back to NVM re-enters hot.
        assert!(t.is_hot_page(page(0)));
        t.placed(page(0), Tier::Nvm);
        assert_eq!(t.queue_len(Queue::NvmHot), 1);
    }

    #[test]
    fn rebuild_keeps_ssd_pages_off_queue() {
        use hemem_vmm::{PageSize, PhysPage, RegionKind};
        let mut space = AddressSpace::new();
        let rid = space.mmap(2 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = space.region_mut(rid);
        r.map_page(0, Tier::Ssd, PhysPage(0));
        r.map_page(1, Tier::Nvm, PhysPage(0));
        let cfg = TrackerConfig {
            cooling_min_interval: Ns::ZERO,
            ..TrackerConfig::default()
        };
        let mut t = PageTracker::new(cfg);
        t.add_region(rid, 2);
        t.rebuild_from(&space);
        assert_eq!(t.residency_mismatches(&space), Vec::new());
        assert_eq!(t.queue_len(Queue::NvmCold), 1, "only the NVM page queues");
        assert_eq!(t.queue_len(Queue::DramCold), 0);
    }

    #[test]
    fn remove_region_unlinks_everything() {
        let mut t = tracker();
        for _ in 0..8 {
            t.record(page(0), false, Ns::ZERO);
        }
        t.remove_region(RegionId(0));
        assert_eq!(t.queue_len(Queue::NvmHot), 0);
        assert_eq!(t.queue_len(Queue::NvmCold), 0);
        assert!(!t.tracks(RegionId(0)));
    }

    /// 64 NVM pages under multi-grain region tracking (8-page max span).
    fn region_tracker() -> PageTracker {
        let mut rcfg = super::RegionConfig::multi_grain();
        rcfg.max_span = 8;
        let cfg = TrackerConfig {
            cooling_min_interval: Ns::ZERO,
            regions: rcfg,
            ..TrackerConfig::default()
        };
        let mut t = PageTracker::new(cfg);
        t.add_region(RegionId(0), 64);
        for i in 0..64 {
            t.placed(page(i), Tier::Nvm);
        }
        t
    }

    #[test]
    fn region_selection_finds_hot_span_and_pins_it() {
        let mut t = region_tracker();
        assert!(t.regions_enabled());
        // Hammer page 20 until hot; its span heats with it.
        for _ in 0..8 {
            t.record(page(20), false, Ns::ZERO);
        }
        let picked = t.pop_region_promotion().expect("hot span yields a page");
        assert_eq!(picked, page(20), "the NvmHot member wins inside the span");
        // The pick is off-queue and pins its span: audit flags the pin as
        // an orphan when no journal entry justifies it...
        let orphans = t.region_violations(0);
        assert_eq!(orphans.len(), 1);
        assert!(matches!(
            orphans[0],
            AuditViolation::SplitMergeLeak { orphan_pins: 1, .. }
        ));
        // ...and is silent while one is in flight.
        assert_eq!(t.region_violations(1), Vec::new());
        // Migration completes: the page re-enters DRAM and unpins.
        t.placed(picked, Tier::Dram);
        assert_eq!(t.region_violations(0), Vec::new());
        assert_eq!(t.queue_len(Queue::DramHot), 1);
    }

    #[test]
    fn region_promotion_pulls_cold_neighbors_of_a_hot_span() {
        let mut t = region_tracker();
        for _ in 0..8 {
            t.record(page(20), false, Ns::ZERO);
        }
        let first = t.pop_region_promotion().expect("hot page");
        t.placed(first, Tier::Dram);
        // The span is still hot and still holds NVM pages: the next pick
        // is a *cold* page riding the hot span — the region-granularity
        // bet the flat tracker cannot make.
        let second = t.pop_region_promotion().expect("cold neighbor");
        assert_ne!(second, first);
        let (head, s) = {
            let stats = t.region_stats().unwrap();
            assert!(stats.select_index_ops > 0, "selection used the index");
            // The picked neighbor shares page 20's span.
            (16, stats.spans.min(64)) // head of the 8-page span holding 20
        };
        assert!(second.index >= head && second.index < head + 8, "{s}");
        t.restore(second);
        assert_eq!(t.region_violations(0), Vec::new(), "restore unpins");
    }

    #[test]
    fn region_demotion_prefers_cold_spans_then_any_dram() {
        let mut t = region_tracker();
        // Pages 0 and 20 move to DRAM; 20 is hot, 0 is cold.
        t.placed(page(0), Tier::Dram);
        for _ in 0..8 {
            t.record(page(20), false, Ns::ZERO);
        }
        let hot = t.pop_region_promotion().expect("hot");
        t.placed(hot, Tier::Dram);
        let victim = t.pop_region_demotion(false).expect("cold span victim");
        assert_eq!(victim, page(0), "cold DRAM page in a cold span first");
        t.placed(victim, Tier::Nvm);
        assert_eq!(t.pop_region_demotion(false), None, "only a hot page left");
        let fallback = t.pop_region_demotion(true).expect("allow_hot fallback");
        assert_eq!(fallback, page(20));
        t.restore(fallback);
    }

    #[test]
    fn region_rebuild_recounts_spans_from_surviving_meta() {
        use hemem_vmm::{PageSize, PhysPage, RegionKind};
        let mut space = AddressSpace::new();
        let rid = space.mmap(64 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = space.region_mut(rid);
        for i in 0..64 {
            let tier = if i < 8 { Tier::Dram } else { Tier::Nvm };
            r.map_page(i, tier, PhysPage(i));
        }
        let mut rcfg = super::RegionConfig::multi_grain();
        rcfg.max_span = 8;
        let cfg = TrackerConfig {
            cooling_min_interval: Ns::ZERO,
            regions: rcfg,
            ..TrackerConfig::default()
        };
        let mut t = PageTracker::new(cfg);
        t.add_region(rid, 64);
        // Crash before any placed() call: spans know nothing. A pick in
        // flight would also have left a dangling pin — rebuild clears it.
        t.rebuild_from(&space);
        assert_eq!(t.region_violations(0), Vec::new(), "recount matches meta");
        let stats = t.region_stats().unwrap();
        assert_eq!(stats.spans, 8, "64 pages / 8-page spans");
    }

    #[test]
    fn flat_config_has_no_region_machinery() {
        let t = tracker();
        assert!(!t.regions_enabled());
        assert_eq!(t.region_stats(), None);
        assert_eq!(t.region_violations(0), Vec::new());
    }
}
