//! HeMem: the paper's tiered-memory manager.
//!
//! Split into the hotness [`tracker`] (counters, FIFO queues, cooling
//! clock), the migration [`policy`], and the [`manager`] wiring them to
//! PEBS and the machine. The page-table-scanning variants in
//! `hemem-baselines` reuse the tracker and policy with a different
//! hotness source.

pub mod manager;
pub mod policy;
pub mod regions;
pub mod tracker;

pub use manager::{HeMem, HeMemConfig, HeMemStats};
pub use policy::{run_policy, run_policy_scoped, PolicyConfig, PolicyScope};
pub use regions::{RegionConfig, RegionStats, RegionTracker};
pub use tracker::{PageTracker, Queue, TrackerConfig, TrackerStats};
