//! HeMem's migration policy (§3.3).
//!
//! The policy thread runs every 10 ms. It (1) keeps a watermark of DRAM
//! free so allocations can always be served from fast memory — demoting
//! cold (or, failing that, arbitrary) DRAM pages to NVM; and (2) promotes
//! hot NVM pages to DRAM, swapping against cold DRAM pages, write-heavy
//! pages first. If nothing in DRAM is cold (the hot set exceeds DRAM),
//! promotion stops rather than thrash. Total migration traffic per period
//! is capped so the application is not disturbed (10 GB/s).

use hemem_sim::Ns;
use hemem_vmm::{TenantId, Tier};

use crate::backend::{CopyMechanism, MigrationJob};
use crate::hemem::tracker::PageTracker;
use crate::machine::MachineCore;

/// Policy parameters (§3.2-3.3 defaults).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PolicyConfig {
    /// Policy thread period.
    pub period: Ns,
    /// DRAM kept free for new allocations.
    pub dram_watermark: u64,
    /// Migration bandwidth cap, bytes/second.
    pub migration_rate: f64,
    /// Offload copies to the DMA engine (`false` = 4 copy threads).
    pub use_dma: bool,
    /// DMA channels used concurrently.
    pub dma_channels: usize,
    /// Copy threads when DMA is unavailable.
    pub copy_threads: usize,
    /// Maximum pages concurrently in flight (write-protected). HeMem's
    /// policy thread issues DMA ioctl batches of 4 and waits, so very few
    /// pages are ever protected at once — this is what keeps write-
    /// protection stalls "exceedingly rare" (§3.2). Kernel-style managers
    /// (Nimble) migrate whole lists synchronously and set this high.
    pub max_inflight_pages: u64,
    /// Whether promotions may evict *hot* DRAM pages when nothing cold is
    /// left. HeMem refuses (hot set exceeds DRAM => stop migrating, §3.3);
    /// kernel NUMA balancing swaps anyway and thrashes when page-table
    /// scans overestimate the hot set.
    pub swap_allows_hot: bool,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            period: Ns::millis(10),
            dram_watermark: 1 << 30,
            migration_rate: 10.0e9,
            use_dma: true,
            dma_channels: 2,
            copy_threads: 4,
            max_inflight_pages: 24,
            swap_allows_hot: false,
        }
    }
}

impl PolicyConfig {
    /// Migration byte budget for one policy period
    /// ([`hemem_sim::rate_budget`] rounding, shared with the PEBS drain
    /// budgets).
    pub fn budget_per_period(&self) -> u64 {
        hemem_sim::rate_budget(self.migration_rate, self.period)
    }

    /// The copy mechanism jobs should use.
    pub fn mechanism(&self) -> CopyMechanism {
        if self.use_dma {
            CopyMechanism::Dma {
                channels: self.dma_channels,
            }
        } else {
            CopyMechanism::Threads(self.copy_threads)
        }
    }

    /// Like [`PolicyConfig::mechanism`], but falls back to copy threads
    /// while the DMA engine reports itself degraded (its circuit breaker
    /// tripped on consecutive submission failures). HeMem runs the same
    /// 4-thread path when the I/OAT driver is absent (§3.2).
    pub fn mechanism_for(&self, m: &MachineCore) -> CopyMechanism {
        if self.use_dma && m.dma.degraded() {
            CopyMechanism::Threads(self.copy_threads)
        } else {
            self.mechanism()
        }
    }
}

/// The slice of the machine one policy pass operates over: on a
/// single-process machine this is the whole machine (see
/// [`PolicyScope::solo`]); under the DRAM arbiter each tenant's pass gets
/// its quota-derived free-DRAM view, its share of the migration-rate
/// budget, and its slice of the in-flight cap, so one thrashing tenant
/// cannot starve another's policy passes.
#[derive(Debug, Clone, Copy)]
pub struct PolicyScope {
    /// Tenant the pass runs for (journal in-flight accounting keys off
    /// this).
    pub tenant: TenantId,
    /// DRAM bytes the tenant may still claim: quota minus resident and
    /// in-flight-inbound pages. The solo scope uses the machine's free
    /// pool, which is the same quantity at quota = total.
    pub free_dram_bytes: u64,
    /// Free-DRAM watermark for this tenant (the config watermark scaled
    /// by quota share).
    pub dram_watermark: u64,
    /// Migration byte budget for this pass (the per-period budget scaled
    /// by quota share).
    pub budget: u64,
    /// In-flight page cap for this tenant.
    pub max_inflight_pages: u64,
    /// Tag trace events with the tenant id (off for solo runs, keeping
    /// their traces byte-identical to the pre-tenant code).
    pub tag_tenant: bool,
}

impl PolicyScope {
    /// The whole-machine scope of a single-process run.
    pub fn solo(cfg: &PolicyConfig, m: &MachineCore) -> PolicyScope {
        PolicyScope {
            tenant: TenantId::SOLO,
            free_dram_bytes: m.dram_free_bytes(),
            dram_watermark: cfg.dram_watermark,
            budget: cfg.budget_per_period(),
            max_inflight_pages: cfg.max_inflight_pages,
            tag_tenant: false,
        }
    }
}

/// Runs one policy pass over the whole machine, returning the migrations
/// to start.
pub fn run_policy(
    cfg: &PolicyConfig,
    tracker: &mut PageTracker,
    m: &mut MachineCore,
    now: Ns,
) -> Vec<MigrationJob> {
    let scope = PolicyScope::solo(cfg, m);
    run_policy_scoped(cfg, tracker, m, now, &scope)
}

/// Runs one policy pass over `scope`'s slice of the machine.
///
/// With the solo scope this is exactly the historical single-process
/// pass: `free_dram_bytes` equals the DRAM pool's free bytes, the
/// watermark, budget, and in-flight cap are the config values, and every
/// journal entry belongs to [`TenantId::SOLO`], so the per-tenant journal
/// counts equal the global ones.
pub fn run_policy_scoped(
    cfg: &PolicyConfig,
    tracker: &mut PageTracker,
    m: &mut MachineCore,
    now: Ns,
    scope: &PolicyScope,
) -> Vec<MigrationJob> {
    if tracker.regions_enabled() {
        return run_region_policy(cfg, tracker, m, now, scope);
    }
    let page_bytes = m.cfg.managed_page.bytes();
    let mechanism = cfg.mechanism_for(m);
    let mut budget = scope.budget;
    let mut jobs = Vec::new();

    // Backpressure: NVM write bandwidth is far below the migration rate
    // cap; if several periods' worth of migrations are still in flight,
    // issuing more would grow the device backlog without bound and starve
    // application stores. Real HeMem self-throttles because the policy
    // thread waits for its DMA batches.
    // The journal's Prepared entries *are* the in-flight set: identical to
    // counting started-minus-finished in a clean run, but self-correcting
    // after a crash (rolled-back transactions leave the journal, while a
    // stats-based count would overestimate in-flight forever).
    m.trace.policy.passes += 1;
    let in_flight = m.journal.prepared_len_for(scope.tenant);
    if in_flight >= scope.max_inflight_pages {
        m.trace.policy.throttled += 1;
        if scope.tag_tenant {
            m.trace.instant(
                now,
                "policy_pass",
                "policy",
                &[
                    ("throttled", 1),
                    ("in_flight", in_flight),
                    ("tenant", scope.tenant.0 as u64),
                ],
            );
        } else {
            m.trace.instant(
                now,
                "policy_pass",
                "policy",
                &[("throttled", 1), ("in_flight", in_flight)],
            );
        }
        return jobs;
    }
    budget = budget.min((scope.max_inflight_pages - in_flight) * page_bytes);

    // Phase 1: replenish the DRAM free watermark by demoting pages.
    // In-flight demotions (journaled Prepared entries whose source frame
    // is DRAM) will free their frames when they commit; count that memory
    // as already on its way to free, so back-to-back passes do not demote
    // the same deficit twice while the first pass's copies are in flight.
    let pending_free = m.journal.prepared_freeing_for(scope.tenant, Tier::Dram) * page_bytes;
    let free = scope.free_dram_bytes.saturating_add(pending_free);
    let mut demoted_wm = 0u64;
    if free < scope.dram_watermark {
        let mut need = scope.dram_watermark - free;
        while need > 0 && budget >= page_bytes {
            // Prefer cold pages; fall back to arbitrary (oldest hot) DRAM
            // pages, as the paper demotes random data when nothing is cold.
            let Some(victim) = tracker.pop_demotion(true) else {
                break;
            };
            // Zero-copy path: a victim whose clean NVM shadow survived
            // demotes by remap alone — the frame frees *now*, no DMA job,
            // no journal transaction, no byte of bandwidth. Only dirty (or
            // never-shadowed) pages fall through to the exclusive copy.
            if m.shadow_remap_demote(victim) {
                tracker.placed(victim, Tier::Nvm);
                need = need.saturating_sub(page_bytes);
                continue;
            }
            jobs.push(MigrationJob {
                page: victim,
                dst: Tier::Nvm,
                mechanism,
            });
            need = need.saturating_sub(page_bytes);
            budget -= page_bytes;
            demoted_wm += 1;
        }
    }

    // Phase 2: promote hot NVM pages. A promotion allocates a free DRAM
    // page immediately, so it may only start while free DRAM (beyond what
    // this pass already claimed) remains; when DRAM is exhausted we demote
    // a *cold* victim instead and retry the promotion next period, once
    // the demotion has completed and freed its frame. If nothing in DRAM
    // is cold, the hot set exceeds DRAM and migration stops (§3.3).
    let mut claimed = 0u64;
    let mut promoted = 0u64;
    let mut deferred = 0u64;
    // Demote at most one victim frame per waiting hot page.
    let mut deferrals_left = tracker.queue_len(crate::hemem::tracker::Queue::NvmHot) as u64;
    while budget >= page_bytes {
        let Some(hot) = tracker.pop_promotion() else {
            break;
        };
        // A promotion needs a free frame in the global pool *and* room
        // under the tenant's quota; solo scopes see the same number twice.
        let have_free = scope.free_dram_bytes.min(m.dram_free_bytes()) >= page_bytes + claimed;
        if have_free {
            jobs.push(MigrationJob {
                page: hot,
                dst: Tier::Dram,
                mechanism,
            });
            claimed += page_bytes;
            budget -= page_bytes;
            promoted += 1;
        } else if deferrals_left > 0 {
            let Some(victim) = tracker.pop_demotion(cfg.swap_allows_hot) else {
                // Hot set exceeds DRAM: stop migrating (§3.3).
                tracker.restore(hot);
                break;
            };
            // A clean-shadowed victim frees its frame immediately by
            // remap; the waiting hot page still defers to the next pass
            // (the scope's free-DRAM snapshot predates the remap).
            if m.shadow_remap_demote(victim) {
                tracker.placed(victim, Tier::Nvm);
            } else {
                jobs.push(MigrationJob {
                    page: victim,
                    dst: Tier::Nvm,
                    mechanism,
                });
                budget -= page_bytes;
            }
            deferrals_left -= 1;
            deferred += 1;
            // The hot page returns to the *front* of its queue so it is
            // first in line once the victim's frame is free.
            tracker.restore_front(hot);
        } else {
            tracker.restore_front(hot);
            break;
        }
    }
    m.trace.policy.demote_watermark += demoted_wm;
    m.trace.policy.promote += promoted;
    m.trace.policy.swap_deferrals += deferred;
    if scope.tag_tenant {
        m.trace.instant(
            now,
            "policy_pass",
            "policy",
            &[
                ("demote_watermark", demoted_wm),
                ("promote", promoted),
                ("swap_deferral", deferred),
                ("in_flight", in_flight),
                ("tenant", scope.tenant.0 as u64),
            ],
        );
    } else {
        m.trace.instant(
            now,
            "policy_pass",
            "policy",
            &[
                ("demote_watermark", demoted_wm),
                ("promote", promoted),
                ("swap_deferral", deferred),
                ("in_flight", in_flight),
            ],
        );
    }
    jobs
}

/// One policy pass selecting candidates at *region* granularity: span
/// maintenance (decay, split, merge) runs once, then promotion and
/// demotion picks walk the Fenwick span indexes and only touch per-page
/// state inside chosen spans. The pass structure — throttle on in-flight
/// pages, watermark demotion with the zero-copy shadow fast path,
/// promotion with per-hot-page deferral — mirrors the flat pass exactly,
/// so the two differ only in *how* candidates are found.
fn run_region_policy(
    cfg: &PolicyConfig,
    tracker: &mut PageTracker,
    m: &mut MachineCore,
    now: Ns,
    scope: &PolicyScope,
) -> Vec<MigrationJob> {
    let page_bytes = m.cfg.managed_page.bytes();
    let mechanism = cfg.mechanism_for(m);
    let mut budget = scope.budget;
    let mut jobs = Vec::new();

    // Span maintenance runs even on throttled passes: temperatures decay
    // in wall-clock periods, not in migration opportunities.
    tracker.begin_region_period();

    m.trace.policy.passes += 1;
    let in_flight = m.journal.prepared_len_for(scope.tenant);
    if in_flight >= scope.max_inflight_pages {
        m.trace.policy.throttled += 1;
        if scope.tag_tenant {
            m.trace.instant(
                now,
                "policy_pass",
                "policy",
                &[
                    ("throttled", 1),
                    ("in_flight", in_flight),
                    ("tenant", scope.tenant.0 as u64),
                ],
            );
        } else {
            m.trace.instant(
                now,
                "policy_pass",
                "policy",
                &[("throttled", 1), ("in_flight", in_flight)],
            );
        }
        return jobs;
    }
    budget = budget.min((scope.max_inflight_pages - in_flight) * page_bytes);

    // Phase 1: replenish the DRAM free watermark (see the flat pass for
    // the pending-free rationale).
    let pending_free = m.journal.prepared_freeing_for(scope.tenant, Tier::Dram) * page_bytes;
    let free = scope.free_dram_bytes.saturating_add(pending_free);
    let mut demoted_wm = 0u64;
    if free < scope.dram_watermark {
        let mut need = scope.dram_watermark - free;
        while need > 0 && budget >= page_bytes {
            let Some(victim) = tracker.pop_region_demotion(true) else {
                break;
            };
            if m.shadow_remap_demote(victim) {
                tracker.placed(victim, Tier::Nvm);
                need = need.saturating_sub(page_bytes);
                continue;
            }
            jobs.push(MigrationJob {
                page: victim,
                dst: Tier::Nvm,
                mechanism,
            });
            need = need.saturating_sub(page_bytes);
            budget -= page_bytes;
            demoted_wm += 1;
        }
    }

    // Phase 2: promote from hot spans, deferring to a demotion when DRAM
    // is full — at most one victim per page still waiting in the NVM hot
    // queue, as in the flat pass.
    let mut claimed = 0u64;
    let mut promoted = 0u64;
    let mut deferred = 0u64;
    let mut deferrals_left = tracker.queue_len(crate::hemem::tracker::Queue::NvmHot) as u64;
    while budget >= page_bytes {
        let Some(hot) = tracker.pop_region_promotion() else {
            break;
        };
        let have_free = scope.free_dram_bytes.min(m.dram_free_bytes()) >= page_bytes + claimed;
        if have_free {
            jobs.push(MigrationJob {
                page: hot,
                dst: Tier::Dram,
                mechanism,
            });
            claimed += page_bytes;
            budget -= page_bytes;
            promoted += 1;
        } else if deferrals_left > 0 {
            let Some(victim) = tracker.pop_region_demotion(cfg.swap_allows_hot) else {
                tracker.restore(hot);
                break;
            };
            if m.shadow_remap_demote(victim) {
                tracker.placed(victim, Tier::Nvm);
            } else {
                jobs.push(MigrationJob {
                    page: victim,
                    dst: Tier::Nvm,
                    mechanism,
                });
                budget -= page_bytes;
            }
            deferrals_left -= 1;
            deferred += 1;
            tracker.restore_front(hot);
        } else {
            tracker.restore_front(hot);
            break;
        }
    }
    m.trace.policy.demote_watermark += demoted_wm;
    m.trace.policy.promote += promoted;
    m.trace.policy.swap_deferrals += deferred;
    if scope.tag_tenant {
        m.trace.instant(
            now,
            "policy_pass",
            "policy",
            &[
                ("demote_watermark", demoted_wm),
                ("promote", promoted),
                ("swap_deferral", deferred),
                ("in_flight", in_flight),
                ("tenant", scope.tenant.0 as u64),
            ],
        );
    } else {
        m.trace.instant(
            now,
            "policy_pass",
            "policy",
            &[
                ("demote_watermark", demoted_wm),
                ("promote", promoted),
                ("swap_deferral", deferred),
                ("in_flight", in_flight),
            ],
        );
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hemem::tracker::{Queue, TrackerConfig};
    use crate::machine::MachineConfig;
    use hemem_vmm::{PageId, RegionId, RegionKind};

    /// Builds a machine with one managed region of `pages` pages, the
    /// first `dram` of them resident in DRAM, the rest in NVM.
    fn setup(dram_cap_gib: u64, pages: u64, dram: u64) -> (MachineCore, PageTracker, RegionId) {
        let mut m = MachineCore::new(MachineConfig::small(dram_cap_gib, 32));
        let ps = m.cfg.managed_page;
        let id = m
            .space
            .mmap(pages * ps.bytes(), ps, RegionKind::ManagedHeap);
        let tcfg = TrackerConfig {
            cooling_min_interval: Ns::ZERO,
            ..TrackerConfig::default()
        };
        let mut t = PageTracker::new(tcfg);
        t.add_region(id, pages);
        for i in 0..pages {
            let tier = if i < dram { Tier::Dram } else { Tier::Nvm };
            let phys = m.pool_mut(tier).alloc().expect("capacity");
            m.space.region_mut(id).map_page(i, tier, phys);
            t.placed(
                PageId {
                    region: id,
                    index: i,
                },
                tier,
            );
        }
        (m, t, id)
    }

    #[test]
    fn watermark_triggers_demotions() {
        // 1 GiB DRAM = 512 pages, all allocated -> free = 0 < watermark.
        let (mut m, mut t, _) = setup(1, 600, 512);
        let cfg = PolicyConfig::default();
        let jobs = run_policy(&cfg, &mut t, &mut m, Ns::ZERO);
        assert!(!jobs.is_empty());
        assert!(jobs.iter().all(|j| j.dst == Tier::Nvm), "only demotions");
        // Budget cap: 10 GB/s * 10 ms = 100 MB = 50 pages.
        assert!(jobs.len() <= 50, "rate-capped: {} jobs", jobs.len());
    }

    #[test]
    fn in_flight_demotions_count_toward_the_watermark() {
        // Regression: two back-to-back passes with the first pass's
        // demotions still in flight (journaled Prepared, uncommitted).
        // The second pass must not demote the same deficit again.
        let (mut m, mut t, _) = setup(1, 600, 512);
        let cfg = PolicyConfig {
            // 8-page deficit, comfortably under the in-flight limit.
            dram_watermark: 8 * m.cfg.managed_page.bytes(),
            ..PolicyConfig::default()
        };
        let first = run_policy(&cfg, &mut t, &mut m, Ns::ZERO);
        assert_eq!(first.len(), 8, "pass 1 demotes the full deficit");
        assert!(first.iter().all(|j| j.dst == Tier::Nvm));
        // Journal the jobs as the runtime's prepare phase would: source
        // frame in DRAM, destination reserved in NVM, copy in flight.
        for (id, job) in first.iter().enumerate() {
            let phys = match m.space.region(job.page.region).state(job.page.index) {
                hemem_vmm::PageState::Mapped { phys, .. } => phys,
                other => panic!("victim not mapped: {other:?}"),
            };
            let dst = m.pool_mut(Tier::Nvm).alloc().expect("nvm space");
            m.journal.prepare(
                id as u64,
                job.page,
                TenantId::SOLO,
                Tier::Dram,
                phys,
                Tier::Nvm,
                dst,
            );
        }
        // DRAM free is still 0, but 8 pages are already on their way out.
        let second = run_policy(&cfg, &mut t, &mut m, Ns::millis(10));
        assert_eq!(
            second.iter().filter(|j| j.dst == Tier::Nvm).count(),
            0,
            "pass 2 must not re-demote for in-flight frees: {second:?}"
        );
        assert_eq!(m.trace.policy.demote_watermark, 8, "attributed once");
    }

    #[test]
    fn hot_nvm_pages_promoted_when_dram_free() {
        let (mut m, mut t, id) = setup(4, 100, 10);
        // Make 5 NVM pages hot.
        for i in 10..15 {
            for _ in 0..8 {
                t.record(
                    PageId {
                        region: id,
                        index: i,
                    },
                    false,
                    Ns::ZERO,
                );
            }
        }
        let cfg = PolicyConfig::default();
        let jobs = run_policy(&cfg, &mut t, &mut m, Ns::ZERO);
        let promos: Vec<_> = jobs.iter().filter(|j| j.dst == Tier::Dram).collect();
        assert_eq!(promos.len(), 5);
    }

    #[test]
    fn promotion_swaps_against_cold_dram_across_periods() {
        // DRAM pool: 1 GiB = 512 pages, all taken by the region. With no
        // free DRAM the first pass demotes one cold victim per waiting hot
        // page; the promotion itself runs the next period, once the
        // victim's frame is actually free.
        let (mut m, mut t, id) = setup(1, 1024, 512);
        for _ in 0..8 {
            t.record(
                PageId {
                    region: id,
                    index: 600,
                },
                false,
                Ns::ZERO,
            );
        }
        let cfg = PolicyConfig {
            dram_watermark: 0,
            ..PolicyConfig::default()
        };
        let jobs = run_policy(&cfg, &mut t, &mut m, Ns::ZERO);
        let demos: Vec<_> = jobs.iter().filter(|j| j.dst == Tier::Nvm).collect();
        assert_eq!(jobs.iter().filter(|j| j.dst == Tier::Dram).count(), 0);
        assert_eq!(demos.len(), 1, "one victim per waiting hot page");
        // Simulate the demotion completing: remap victim to NVM, free the
        // DRAM frame.
        let victim = demos[0].page;
        let nphys = m.pool_mut(Tier::Nvm).alloc().expect("nvm space");
        let (ot, op) = m
            .space
            .region_mut(id)
            .remap_page(victim.index, Tier::Nvm, nphys);
        m.pool_mut(ot).free(op);
        t.placed(victim, Tier::Nvm);
        let jobs = run_policy(&cfg, &mut t, &mut m, Ns::ZERO);
        let promos: Vec<_> = jobs.iter().filter(|j| j.dst == Tier::Dram).collect();
        assert_eq!(
            promos.len(),
            1,
            "deferred promotion runs once a frame is free"
        );
        assert_eq!(promos[0].page.index, 600);
    }

    #[test]
    fn no_migration_when_hot_set_exceeds_dram() {
        // Everything in DRAM is hot; a hot NVM page must NOT displace it.
        let (mut m, mut t, id) = setup(1, 1024, 512);
        for i in 0..512 {
            for _ in 0..8 {
                t.record(
                    PageId {
                        region: id,
                        index: i,
                    },
                    false,
                    Ns::ZERO,
                );
            }
        }
        for _ in 0..8 {
            t.record(
                PageId {
                    region: id,
                    index: 700,
                },
                false,
                Ns::ZERO,
            );
        }
        let cfg = PolicyConfig {
            dram_watermark: 0,
            ..PolicyConfig::default()
        };
        let jobs = run_policy(&cfg, &mut t, &mut m, Ns::ZERO);
        assert!(
            jobs.is_empty(),
            "hot set exceeds DRAM: no migration, got {jobs:?}"
        );
        // The popped hot page must have been restored.
        assert_eq!(t.queue_len(Queue::NvmHot), 1);
    }

    #[test]
    fn budget_is_respected_across_phases() {
        let (mut m, mut t, id) = setup(1, 2048, 512);
        for i in 512..1024 {
            for _ in 0..8 {
                t.record(
                    PageId {
                        region: id,
                        index: i,
                    },
                    false,
                    Ns::ZERO,
                );
            }
        }
        let cfg = PolicyConfig::default();
        let jobs = run_policy(&cfg, &mut t, &mut m, Ns::ZERO);
        let bytes: u64 = jobs.len() as u64 * m.cfg.managed_page.bytes();
        assert!(bytes <= cfg.budget_per_period(), "{bytes} over budget");
    }

    #[test]
    fn mechanism_follows_config() {
        let dma = PolicyConfig::default();
        assert_eq!(dma.mechanism(), CopyMechanism::Dma { channels: 2 });
        let threads = PolicyConfig {
            use_dma: false,
            ..PolicyConfig::default()
        };
        assert_eq!(threads.mechanism(), CopyMechanism::Threads(4));
    }

    #[test]
    fn degraded_engine_switches_jobs_to_copy_threads() {
        let (mut m, mut t, _) = setup(1, 600, 512);
        let cfg = PolicyConfig::default();
        for _ in 0..m.dma.config().degrade_after {
            m.dma.note_submit_failure();
        }
        assert!(m.dma.degraded());
        assert_eq!(cfg.mechanism_for(&m), CopyMechanism::Threads(4));
        let jobs = run_policy(&cfg, &mut t, &mut m, Ns::ZERO);
        assert!(!jobs.is_empty());
        assert!(
            jobs.iter()
                .all(|j| j.mechanism == CopyMechanism::Threads(4)),
            "degraded engine must not receive DMA jobs"
        );
    }
}
