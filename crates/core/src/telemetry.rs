//! Time-series telemetry over a running simulation.
//!
//! Experiments like Figure 9 (instantaneous throughput) and Figure 16
//! (per-iteration wear) need the machine's state sampled over virtual
//! time. [`Telemetry`] snapshots counters on a fixed period driven by the
//! workload loop (call [`Telemetry::maybe_sample`] whenever convenient —
//! it only records when a full period has elapsed) and computes
//! per-interval deltas for the cumulative counters.

use hemem_sim::{LatencyClass, Ns};
use hemem_vmm::RegionId;

use crate::backend::TieredBackend;
use crate::runtime::Sim;

/// One snapshot of machine state.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Virtual time of the sample.
    pub at: Ns,
    /// DRAM-resident pages of the tracked region.
    pub dram_pages: u64,
    /// Mapped pages of the tracked region.
    pub mapped_pages: u64,
    /// Pages swapped to disk.
    pub swapped_pages: u64,
    /// Cumulative completed migrations.
    pub migrations: u64,
    /// Cumulative NVM media bytes written (wear).
    pub nvm_wear: u64,
    /// Cumulative application accesses.
    pub ops: u64,
    /// Cumulative write-protection stalls.
    pub wp_stalls: u64,
    /// Cumulative injected faults across every site (zero without a
    /// fault plan).
    pub faults_injected: u64,
    /// Cumulative DMA batches that fell back to copy threads.
    pub dma_fallbacks: u64,
    /// Cumulative migrations lost to injected failures.
    pub migrations_failed: u64,
    /// Cumulative NVM pages retired after media errors.
    pub pages_retired: u64,
    /// Cumulative manager kills taken (zero without kill injection).
    pub manager_kills: u64,
    /// Cumulative journal entries replayed during crash recovery.
    pub journal_replays: u64,
    /// Cumulative prepared migrations rolled back during recovery.
    pub journal_rollbacks: u64,
    /// Cumulative in-flight swap-outs rolled back during recovery.
    pub swap_rollbacks: u64,
    /// Cumulative components restarted by the watchdog.
    pub watchdog_restarts: u64,
    /// Cumulative invariant violations flagged by the online auditor.
    pub audit_violations: u64,
    /// End-to-end migration latency percentiles so far (prepare to
    /// mapping flip), in nanoseconds: p50, p99, p99.9, max. Computed from
    /// the machine's always-on latency histograms
    /// ([`hemem_sim::Tracer`]); zero until the first completed migration.
    pub mig_p50_ns: u64,
    /// Migration latency p99 (ns).
    pub mig_p99_ns: u64,
    /// Migration latency p99.9 (ns).
    pub mig_p999_ns: u64,
    /// Migration latency maximum (ns).
    pub mig_max_ns: u64,
    /// Page-fault service latency p50 (ns).
    pub fault_p50_ns: u64,
    /// Page-fault service latency p99 (ns).
    pub fault_p99_ns: u64,
    /// Page-fault service latency p99.9 (ns).
    pub fault_p999_ns: u64,
    /// Page-fault service latency maximum (ns).
    pub fault_max_ns: u64,
    /// Write-protection stall duration p50 (ns).
    pub wp_p50_ns: u64,
    /// Write-protection stall duration p99 (ns).
    pub wp_p99_ns: u64,
    /// Write-protection stall duration p99.9 (ns).
    pub wp_p999_ns: u64,
    /// Write-protection stall duration maximum (ns).
    pub wp_max_ns: u64,
    /// PEBS sample period in effect at the sample (constant unless the
    /// adaptive controller is enabled).
    pub pebs_sample_period: u64,
    /// Cumulative PEBS drop fraction in thousandths
    /// (`dropped * 1000 / generated`; zero before the first record).
    pub pebs_drop_frac_milli: u64,
}

/// Per-interval rates derived from consecutive snapshots.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct IntervalRates {
    /// Interval end time.
    pub at: Ns,
    /// Accesses per second in the interval.
    pub ops_per_sec: f64,
    /// Migrations per second.
    pub migrations_per_sec: f64,
    /// NVM wear bytes per second.
    pub wear_per_sec: f64,
    /// DRAM residency fraction at interval end.
    pub dram_fraction: f64,
}

/// Periodic sampler of one region's tiering state.
#[derive(Debug, Clone)]
pub struct Telemetry {
    region: RegionId,
    period: Ns,
    next_at: Ns,
    samples: Vec<Snapshot>,
}

impl Telemetry {
    /// Creates a sampler for `region` with the given period.
    pub fn new(region: RegionId, period: Ns) -> Telemetry {
        assert!(period > Ns::ZERO, "period must be positive");
        Telemetry {
            region,
            period,
            next_at: Ns::ZERO,
            samples: Vec::new(),
        }
    }

    /// Records a snapshot if at least one period elapsed since the last.
    /// Returns `true` if a sample was taken.
    pub fn maybe_sample<B: TieredBackend>(&mut self, sim: &Sim<B>) -> bool {
        let now = sim.now();
        if now < self.next_at {
            return false;
        }
        self.next_at = now + self.period;
        let r = sim.m.space.region(self.region);
        let mig = sim.m.trace.hist(LatencyClass::Migration);
        let fault = sim.m.trace.hist(LatencyClass::Fault);
        let wp = sim.m.trace.hist(LatencyClass::WpStall);
        self.samples.push(Snapshot {
            at: now,
            dram_pages: r.dram_pages(),
            mapped_pages: r.mapped_pages(),
            swapped_pages: r.swapped_pages(),
            migrations: sim.m.stats.migrations_done,
            nvm_wear: sim.m.nvm_wear_bytes(),
            ops: sim.m.stats.ops,
            wp_stalls: sim.m.stats.wp_stalls,
            faults_injected: sim.m.chaos.stats().total(),
            dma_fallbacks: sim.m.stats.dma_fallbacks,
            migrations_failed: sim.m.stats.migrations_failed,
            pages_retired: sim.m.stats.pages_retired,
            manager_kills: sim.m.recovery.manager_kills,
            journal_replays: sim.m.recovery.journal_replays,
            journal_rollbacks: sim.m.recovery.journal_rollbacks,
            swap_rollbacks: sim.m.recovery.swap_rollbacks,
            watchdog_restarts: sim.m.recovery.watchdog_restarts,
            audit_violations: sim.m.recovery.audit_violations,
            mig_p50_ns: mig.quantile(0.5),
            mig_p99_ns: mig.quantile(0.99),
            mig_p999_ns: mig.quantile(0.999),
            mig_max_ns: mig.max(),
            fault_p50_ns: fault.quantile(0.5),
            fault_p99_ns: fault.quantile(0.99),
            fault_p999_ns: fault.quantile(0.999),
            fault_max_ns: fault.max(),
            wp_p50_ns: wp.quantile(0.5),
            wp_p99_ns: wp.quantile(0.99),
            wp_p999_ns: wp.quantile(0.999),
            wp_max_ns: wp.max(),
            pebs_sample_period: sim.m.pebs.sample_period(),
            pebs_drop_frac_milli: {
                let p = sim.m.pebs.stats();
                (p.dropped * 1_000).checked_div(p.generated).unwrap_or(0)
            },
        });
        true
    }

    /// All snapshots taken so far.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.samples
    }

    /// Per-interval rates between consecutive snapshots.
    pub fn rates(&self) -> Vec<IntervalRates> {
        self.samples
            .windows(2)
            .map(|w| {
                let (a, b) = (w[0], w[1]);
                let dt = b.at.saturating_sub(a.at).as_secs_f64().max(1e-12);
                IntervalRates {
                    at: b.at,
                    ops_per_sec: (b.ops - a.ops) as f64 / dt,
                    migrations_per_sec: (b.migrations - a.migrations) as f64 / dt,
                    wear_per_sec: (b.nvm_wear - a.nvm_wear) as f64 / dt,
                    dram_fraction: if b.mapped_pages == 0 {
                        0.0
                    } else {
                        b.dram_pages as f64 / b.mapped_pages as f64
                    },
                }
            })
            .collect()
    }

    /// Renders snapshots as CSV (`time_s,dram_pages,mapped,swapped,
    /// migrations,wear_bytes,ops,wp_stalls`, then the fault-injection
    /// columns `faults_injected,dma_fallbacks,migrations_failed,
    /// pages_retired`, then the crash-recovery columns `manager_kills,
    /// journal_replays,journal_rollbacks,swap_rollbacks,
    /// watchdog_restarts,audit_violations`, then cumulative latency
    /// percentiles in nanoseconds for migrations, page faults, and
    /// write-protection stalls: `{mig,fault,wp}_{p50,p99,p999,max}_ns`,
    /// then the PEBS controller columns `pebs_sample_period,
    /// pebs_drop_frac_milli`).
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "time_s,dram_pages,mapped_pages,swapped_pages,migrations,nvm_wear,ops,wp_stalls,\
             faults_injected,dma_fallbacks,migrations_failed,pages_retired,\
             manager_kills,journal_replays,journal_rollbacks,swap_rollbacks,\
             watchdog_restarts,audit_violations,\
             mig_p50_ns,mig_p99_ns,mig_p999_ns,mig_max_ns,\
             fault_p50_ns,fault_p99_ns,fault_p999_ns,fault_max_ns,\
             wp_p50_ns,wp_p99_ns,wp_p999_ns,wp_max_ns,\
             pebs_sample_period,pebs_drop_frac_milli\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},\
                 {},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                s.at.as_secs_f64(),
                s.dram_pages,
                s.mapped_pages,
                s.swapped_pages,
                s.migrations,
                s.nvm_wear,
                s.ops,
                s.wp_stalls,
                s.faults_injected,
                s.dma_fallbacks,
                s.migrations_failed,
                s.pages_retired,
                s.manager_kills,
                s.journal_replays,
                s.journal_rollbacks,
                s.swap_rollbacks,
                s.watchdog_restarts,
                s.audit_violations,
                s.mig_p50_ns,
                s.mig_p99_ns,
                s.mig_p999_ns,
                s.mig_max_ns,
                s.fault_p50_ns,
                s.fault_p99_ns,
                s.fault_p999_ns,
                s.fault_max_ns,
                s.wp_p50_ns,
                s.wp_p99_ns,
                s.wp_p999_ns,
                s.wp_max_ns,
                s.pebs_sample_period,
                s.pebs_drop_frac_milli
            ));
        }
        out
    }
}

/// One sample of a run's per-tier residency and major-fault latency.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct TierSnapshot {
    /// Virtual time of the sample.
    pub at: Ns,
    /// DRAM-resident pages of the tracked region.
    pub dram_pages: u64,
    /// NVM-resident pages of the tracked region.
    pub nvm_pages: u64,
    /// SSD-resident pages of the tracked region (tier-3 machines only;
    /// zero otherwise).
    pub ssd_pages: u64,
    /// Pages unmapped to legacy swap slots.
    pub swapped_pages: u64,
    /// Cumulative major faults serviced (accesses that stalled behind
    /// the SSD queue).
    pub major_faults: u64,
    /// Major-fault service latency p50 (ns); zero until the first one.
    pub major_p50_ns: u64,
    /// Major-fault service latency p99 (ns).
    pub major_p99_ns: u64,
    /// Major-fault service latency p99.9 (ns).
    pub major_p999_ns: u64,
    /// Cumulative synchronous demotions to the slowest tier (SSD
    /// demotions and legacy swap-outs share the counter).
    pub swap_outs: u64,
    /// Cumulative promotions back from the slowest tier.
    pub swap_ins: u64,
}

/// Periodic sampler of one region's N-tier residency and major-fault
/// latency, for tier-3 experiments. Deliberately a separate type from
/// [`Telemetry`] so the two-tier CSV schema stays byte-stable.
#[derive(Debug, Clone)]
pub struct TierTelemetry {
    region: RegionId,
    period: Ns,
    next_at: Ns,
    samples: Vec<TierSnapshot>,
}

impl TierTelemetry {
    /// Creates a sampler for `region` with the given period.
    pub fn new(region: RegionId, period: Ns) -> TierTelemetry {
        assert!(period > Ns::ZERO, "period must be positive");
        TierTelemetry {
            region,
            period,
            next_at: Ns::ZERO,
            samples: Vec::new(),
        }
    }

    /// Records a snapshot if at least one period elapsed since the last.
    /// Returns `true` if a sample was taken.
    pub fn maybe_sample<B: TieredBackend>(&mut self, sim: &Sim<B>) -> bool {
        let now = sim.now();
        if now < self.next_at {
            return false;
        }
        self.next_at = now + self.period;
        let r = sim.m.space.region(self.region);
        let (dram, mapped, ssd) = (r.dram_pages(), r.mapped_pages(), r.ssd_pages());
        let major = sim.m.trace.hist(LatencyClass::MajorFault);
        self.samples.push(TierSnapshot {
            at: now,
            dram_pages: dram,
            nvm_pages: mapped - dram - ssd,
            ssd_pages: ssd,
            swapped_pages: r.swapped_pages(),
            major_faults: major.count(),
            major_p50_ns: major.quantile(0.5),
            major_p99_ns: major.quantile(0.99),
            major_p999_ns: major.quantile(0.999),
            swap_outs: sim.m.stats.swap_outs,
            swap_ins: sim.m.stats.swap_ins,
        });
        true
    }

    /// All snapshots taken so far.
    pub fn snapshots(&self) -> &[TierSnapshot] {
        &self.samples
    }

    /// Renders snapshots as CSV (`time_s,dram_pages,nvm_pages,ssd_pages,
    /// swapped_pages,major_faults,major_p50_ns,major_p99_ns,
    /// major_p999_ns,swap_outs,swap_ins`).
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "time_s,dram_pages,nvm_pages,ssd_pages,swapped_pages,\
             major_faults,major_p50_ns,major_p99_ns,major_p999_ns,\
             swap_outs,swap_ins\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3},{},{},{},{},{},{},{},{},{},{}\n",
                s.at.as_secs_f64(),
                s.dram_pages,
                s.nvm_pages,
                s.ssd_pages,
                s.swapped_pages,
                s.major_faults,
                s.major_p50_ns,
                s.major_p99_ns,
                s.major_p999_ns,
                s.swap_outs,
                s.swap_ins
            ));
        }
        out
    }
}

/// One per-tenant sample of a multi-tenant run.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct TenantSnapshot {
    /// Virtual time of the sample.
    pub at: Ns,
    /// The tenant this row describes.
    pub tenant: hemem_vmm::TenantId,
    /// DRAM-resident pages across the tenant's managed regions.
    pub dram_pages: u64,
    /// NVM-resident pages across the tenant's managed regions.
    pub nvm_pages: u64,
    /// The tenant's DRAM quota in pages (whole tier when no arbiter).
    pub quota_pages: u64,
    /// Cumulative PEBS DRAM-load samples attributed to the tenant.
    pub dram_loads: u64,
    /// Cumulative PEBS NVM-load samples attributed to the tenant.
    pub nvm_loads: u64,
    /// Cumulative samples applied to the tenant's tracker.
    pub pebs_samples: u64,
}

/// Per-tenant time-series sampler for multi-tenant runs: one row per
/// tenant per period, long format. Deliberately a separate type from
/// [`Telemetry`] so the single-process CSV schema stays byte-stable.
#[derive(Debug, Clone)]
pub struct TenantTelemetry {
    period: Ns,
    next_at: Ns,
    samples: Vec<TenantSnapshot>,
}

impl TenantTelemetry {
    /// Creates a sampler with the given period.
    pub fn new(period: Ns) -> TenantTelemetry {
        assert!(period > Ns::ZERO, "period must be positive");
        TenantTelemetry {
            period,
            next_at: Ns::ZERO,
            samples: Vec::new(),
        }
    }

    /// Records one row per tenant if at least one period elapsed since
    /// the last sample. Returns `true` if rows were taken.
    pub fn maybe_sample(&mut self, sim: &Sim<crate::hemem::HeMem>) -> bool {
        let now = sim.now();
        if now < self.next_at {
            return false;
        }
        self.next_at = now + self.period;
        let hemem = &sim.backend;
        for i in 0..hemem.tenant_count() {
            let t = hemem_vmm::TenantId(i as u32);
            let tf = sim.m.space.tenant_frames(t);
            let quota = hemem
                .arbiter()
                .map(|a| a.quota_pages(t))
                .unwrap_or_else(|| sim.m.dram_pool.total_pages());
            let (dram_loads, nvm_loads) = hemem.tenant_loads(t);
            self.samples.push(TenantSnapshot {
                at: now,
                tenant: t,
                dram_pages: tf.dram_pages,
                nvm_pages: tf.nvm_pages,
                quota_pages: quota,
                dram_loads,
                nvm_loads,
                pebs_samples: hemem.tenant_samples(t),
            });
        }
        true
    }

    /// All rows taken so far.
    pub fn snapshots(&self) -> &[TenantSnapshot] {
        &self.samples
    }

    /// Renders rows as CSV (`time_s,tenant,dram_pages,nvm_pages,
    /// quota_pages,dram_loads,nvm_loads,pebs_samples`).
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "time_s,tenant,dram_pages,nvm_pages,quota_pages,dram_loads,nvm_loads,pebs_samples\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3},{},{},{},{},{},{},{}\n",
                s.at.as_secs_f64(),
                s.tenant.0,
                s.dram_pages,
                s.nvm_pages,
                s.quota_pages,
                s.dram_loads,
                s.nvm_loads,
                s.pebs_samples
            ));
        }
        out
    }
}

/// One per-tier sample of device health and capacity under the failure
/// lifecycle.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct HealthSnapshot {
    /// Virtual time of the sample.
    pub at: Ns,
    /// The tier this row describes.
    pub tier: hemem_vmm::Tier,
    /// Current health state (`Healthy`, `Degraded`, `Offline`).
    pub health: crate::machine::TierHealth,
    /// Bandwidth multiplier currently applied to the device (1.0 when
    /// healthy).
    pub throttle: f64,
    /// Free pages in the tier's pool.
    pub free_pages: u64,
    /// Allocated pages in the tier's pool.
    pub allocated_pages: u64,
    /// Pages retired for media errors.
    pub retired_pages: u64,
    /// Pages retired by degradation wear-shedding.
    pub health_retired_pages: u64,
    /// Cumulative media wear in bytes (NVM only; zero elsewhere).
    pub wear_bytes: u64,
}

/// Per-tier health time-series sampler for failure-domain runs: one row
/// per tier per period, long format. Deliberately a separate type from
/// [`Telemetry`] so the established CSV schemas stay byte-stable.
#[derive(Debug, Clone)]
pub struct HealthTelemetry {
    period: Ns,
    next_at: Ns,
    samples: Vec<HealthSnapshot>,
}

impl HealthTelemetry {
    /// Creates a sampler with the given period.
    pub fn new(period: Ns) -> HealthTelemetry {
        assert!(period > Ns::ZERO, "period must be positive");
        HealthTelemetry {
            period,
            next_at: Ns::ZERO,
            samples: Vec::new(),
        }
    }

    /// Records one row per tier if at least one period elapsed since the
    /// last sample. Returns `true` if rows were taken.
    pub fn maybe_sample<B: TieredBackend>(&mut self, sim: &Sim<B>) -> bool {
        let now = sim.now();
        if now < self.next_at {
            return false;
        }
        self.next_at = now + self.period;
        for &tier in sim.m.tiers() {
            let p = sim.m.pool(tier);
            let throttle = match tier {
                hemem_vmm::Tier::Ssd => sim.m.ssd.as_ref().map(|s| s.throttle()).unwrap_or(1.0),
                _ => sim.m.device(tier).throttle(),
            };
            let wear = if tier == hemem_vmm::Tier::Nvm {
                sim.m.nvm_wear_bytes()
            } else {
                0
            };
            self.samples.push(HealthSnapshot {
                at: now,
                tier,
                health: sim.m.tier_health(tier),
                throttle,
                free_pages: p.free_pages(),
                allocated_pages: p.allocated_pages(),
                retired_pages: p.retired_pages(),
                health_retired_pages: p.health_retired_pages(),
                wear_bytes: wear,
            });
        }
        true
    }

    /// All rows taken so far.
    pub fn snapshots(&self) -> &[HealthSnapshot] {
        &self.samples
    }

    /// Renders rows as CSV (`time_s,tier,health,throttle,free_pages,
    /// allocated_pages,retired_pages,health_retired_pages,wear_bytes`).
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "time_s,tier,health,throttle,free_pages,allocated_pages,\
             retired_pages,health_retired_pages,wear_bytes\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3},{:?},{:?},{:.2},{},{},{},{},{}\n",
                s.at.as_secs_f64(),
                s.tier,
                s.health,
                s.throttle,
                s.free_pages,
                s.allocated_pages,
                s.retired_pages,
                s.health_retired_pages,
                s.wear_bytes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AccessBatch;
    use crate::hemem::{HeMem, HeMemConfig};
    use crate::machine::MachineConfig;
    use crate::runtime::Event;

    const GIB: u64 = 1 << 30;

    fn setup() -> (Sim<HeMem>, RegionId) {
        let mc = MachineConfig::small(1, 8);
        let hc = HeMemConfig::scaled_for(&mc);
        let mut sim = Sim::new(mc, HeMem::new(hc));
        let id = sim.mmap(2 * GIB);
        sim.populate(id, true);
        (sim, id)
    }

    #[test]
    fn samples_on_period_boundaries_only() {
        let (mut sim, id) = setup();
        let mut t = Telemetry::new(id, Ns::millis(100));
        assert!(t.maybe_sample(&sim), "first call samples");
        assert!(!t.maybe_sample(&sim), "no time passed");
        sim.advance(Ns::millis(150));
        assert!(t.maybe_sample(&sim));
        assert_eq!(t.snapshots().len(), 2);
    }

    #[test]
    fn rates_reflect_workload_progress() {
        let (mut sim, id) = setup();
        let mut t = Telemetry::new(id, Ns::millis(10));
        t.maybe_sample(&sim);
        let batch = AccessBatch::uniform(id, 0, 1024, 200_000, 8, 0.5, 2 * GIB);
        for _ in 0..10 {
            sim.submit_batch(0, &batch);
            loop {
                match sim.step() {
                    Some((_, Event::ThreadReady(_))) | None => break,
                    Some(_) => {}
                }
            }
            t.maybe_sample(&sim);
        }
        let rates = t.rates();
        assert!(!rates.is_empty());
        assert!(rates.iter().any(|r| r.ops_per_sec > 0.0));
        let last = rates.last().expect("rates");
        assert!(last.dram_fraction > 0.0 && last.dram_fraction <= 1.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (mut sim, id) = setup();
        let mut t = Telemetry::new(id, Ns::millis(50));
        t.maybe_sample(&sim);
        sim.advance(Ns::millis(60));
        t.maybe_sample(&sim);
        let csv = t.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("time_s,dram_pages"));
        assert!(lines[0].ends_with("wp_max_ns,pebs_sample_period,pebs_drop_frac_milli"));
        assert_eq!(lines.len(), 3);
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
    }

    #[test]
    fn latency_percentile_columns_populate_after_faults() {
        // setup() populates the region, so the fault histogram has data by
        // the first sample; percentiles must be ordered and nonzero.
        let (sim, id) = setup();
        let mut t = Telemetry::new(id, Ns::millis(1));
        t.maybe_sample(&sim);
        let s = t.snapshots()[0];
        assert!(s.fault_p50_ns > 0, "populate faulted pages in");
        assert!(s.fault_p50_ns <= s.fault_p99_ns);
        assert!(s.fault_p99_ns <= s.fault_p999_ns);
        assert!(s.fault_p999_ns <= s.fault_max_ns);
    }

    #[test]
    fn recovery_columns_record_kills() {
        let (mut sim, id) = setup();
        let mut t = Telemetry::new(id, Ns::millis(10));
        t.maybe_sample(&sim);
        sim.inject_manager_kill();
        // Default watchdog is absent on a clean config, so arm recovery
        // by hand: the manager stays down until then.
        sim.advance(Ns::millis(15));
        t.maybe_sample(&sim);
        let snaps = t.snapshots();
        assert_eq!(snaps[0].manager_kills, 0);
        assert_eq!(snaps[1].manager_kills, 1);
        let csv = t.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].contains(
            "manager_kills,journal_replays,journal_rollbacks,\
             swap_rollbacks,watchdog_restarts,audit_violations"
        ));
        // manager_kills..audit_violations occupy columns 12..=17.
        let fields: Vec<&str> = lines[2].split(',').collect();
        assert_eq!(&fields[12..18], &["1", "0", "0", "0", "0", "0"]);
    }

    #[test]
    fn tenant_rows_cover_every_tenant_and_quotas_conserve() {
        use crate::arbiter::ArbiterPolicy;
        let mc = MachineConfig::small(1, 8);
        let hc = HeMemConfig::scaled_for(&mc);
        let mut sim = Sim::new(mc, HeMem::multi_tenant(hc, 2, ArbiterPolicy::StaticShares));
        sim.set_active_tenant(hemem_vmm::TenantId(0));
        let a = sim.mmap(GIB);
        sim.populate(a, true);
        sim.set_active_tenant(hemem_vmm::TenantId(1));
        let b = sim.mmap(GIB);
        sim.populate(b, true);
        let mut t = TenantTelemetry::new(Ns::millis(10));
        assert!(t.maybe_sample(&sim));
        sim.advance(Ns::millis(15));
        assert!(t.maybe_sample(&sim));
        let snaps = t.snapshots();
        assert_eq!(snaps.len(), 4, "two tenants, two periods");
        let total = sim.m.dram_pool.total_pages();
        assert_eq!(snaps[0].quota_pages + snaps[1].quota_pages, total);
        assert!(snaps.iter().all(|s| s.dram_pages + s.nvm_pages > 0));
        let csv = t.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "time_s,tenant,dram_pages,nvm_pages,quota_pages,dram_loads,nvm_loads,pebs_samples"
        );
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn tier_telemetry_reports_three_tier_residency() {
        let mc = MachineConfig::small(1, 2).with_tier3(16 * GIB);
        let hc = HeMemConfig::scaled_for(&mc);
        let mut sim = Sim::new(mc, HeMem::new(hc));
        let id = sim.mmap(4 * GIB); // 1 GiB over DRAM+NVM: spills via reclaim
        sim.populate(id, true);
        let mut t = TierTelemetry::new(id, Ns::millis(10));
        assert!(t.maybe_sample(&sim));
        let s = t.snapshots()[0];
        assert_eq!(s.dram_pages + s.nvm_pages + s.ssd_pages, 2048);
        assert!(s.ssd_pages > 0, "overflow demoted to the SSD tier");
        assert_eq!(s.swapped_pages, 0, "tier-3 pages stay mapped");
        let csv = t.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("time_s,dram_pages,nvm_pages,ssd_pages"));
        assert!(lines[0].ends_with("swap_outs,swap_ins"));
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[1].split(',').count(),
            lines[0].split(',').count(),
            "ragged row"
        );
    }

    #[test]
    fn health_rows_cover_every_tier_and_track_lifecycle() {
        use hemem_vmm::Tier;
        let mc = MachineConfig::small(1, 2).with_tier3(16 * GIB);
        let hc = HeMemConfig::scaled_for(&mc);
        let mut sim = Sim::new(mc, HeMem::new(hc));
        let id = sim.mmap(GIB);
        sim.populate(id, true);
        let mut t = HealthTelemetry::new(Ns::millis(10));
        assert!(t.maybe_sample(&sim));
        sim.inject_tier_degrade(Tier::Nvm);
        sim.advance(Ns::millis(15));
        assert!(t.maybe_sample(&sim));
        let snaps = t.snapshots();
        assert_eq!(snaps.len(), 6, "three tiers, two periods");
        let nvm0 = snaps[1];
        let nvm1 = snaps[4];
        assert_eq!(nvm0.tier, Tier::Nvm);
        assert_eq!(nvm0.health, crate::machine::TierHealth::Healthy);
        assert_eq!(nvm0.throttle, 1.0);
        assert_eq!(nvm1.health, crate::machine::TierHealth::Degraded);
        assert!(nvm1.throttle < 1.0);
        assert!(nvm1.health_retired_pages > 0, "degradation shed capacity");
        let csv = t.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "time_s,tier,health,throttle,free_pages,allocated_pages,\
             retired_pages,health_retired_pages,wear_bytes"
        );
        assert_eq!(lines.len(), 7);
        assert!(lines[5].contains("Degraded"));
    }

    #[test]
    fn wear_and_migration_counters_are_monotone() {
        let (mut sim, id) = setup();
        let mut t = Telemetry::new(id, Ns::millis(20));
        for _ in 0..20 {
            sim.advance(Ns::millis(25));
            t.maybe_sample(&sim);
        }
        let snaps = t.snapshots();
        for w in snaps.windows(2) {
            assert!(w[1].migrations >= w[0].migrations);
            assert!(w[1].nvm_wear >= w[0].nvm_wear);
            assert!(w[1].at > w[0].at);
        }
    }
}
