//! Write-ahead metadata journal making page migration transactional.
//!
//! Every migration is a two-phase transaction against this journal:
//!
//! 1. **Prepare** — before any copy starts, the intent (page, source
//!    frame, destination frame) is recorded and the source mapping is
//!    write-protected. The destination frame is owned by the journal
//!    entry, not by any mapping.
//! 2. **Commit** — when the copy completes, the entry is marked
//!    committed, the mapping in `vmm::space` is flipped to the
//!    destination frame, and the entry is retired.
//!
//! Because the mapping flip is the *last* step, an interruption at any
//! instant leaves a recoverable state: entries still `Prepared` name
//! exactly the frames that hold no authoritative data (roll back: free
//! the destination frame, clear the write protection), and `Committed`
//! entries name migrations whose mapping flip is already durable (roll
//! forward: just retire the entry). There is no interruption point with
//! a torn mapping, which is what lets [`crate::runtime::Sim`] kill and
//! restart the manager mid-migration.
//!
//! Non-exclusive tiering rides on the same protocol: a promotion
//! prepared with [`ShadowIntent::Retain`] asks commit to keep the NVM
//! source frame as a clean shadow instead of freeing it. A write
//! observed during the protection window flips the intent to
//! [`ShadowIntent::Dirtied`], and commit falls back to the exclusive
//! free. Because the intent lives in the entry, a kill at any instant
//! leaves shadow and primary reconcilable from the journal alone.

use core::fmt;
use std::collections::BTreeMap;

use hemem_vmm::{PageId, PhysPage, RegionId, TenantId, Tier};

/// Lifecycle state of one journaled migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TxnState {
    /// Intent recorded, destination frame reserved, copy in flight. The
    /// source mapping is still authoritative.
    Prepared,
    /// The mapping flip is durable; only the journal entry remains to be
    /// retired.
    Committed,
}

/// What commit should do with the transaction's *source* frame
/// (non-exclusive tiering, Nomad-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum ShadowIntent {
    /// Exclusive tiering: free the source frame on commit.
    #[default]
    Drop,
    /// Retain the source frame as a clean shadow of the promoted page
    /// (only ever requested for NVM → DRAM promotions).
    Retain,
    /// A write landed inside the protection window, so the would-be
    /// shadow no longer matches the page: free the source frame on
    /// commit exactly like [`ShadowIntent::Drop`].
    Dirtied,
}

/// One migration transaction: everything recovery needs to either roll
/// the migration back or roll it forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JournalEntry {
    /// The page being migrated.
    pub page: PageId,
    /// Tenant owning the page's region (per-tenant in-flight accounting
    /// and migration budgets key off this).
    pub tenant: TenantId,
    /// Tier the page was mapped in when the transaction prepared.
    pub src_tier: Tier,
    /// Frame the page was mapped to when the transaction prepared.
    pub src_phys: PhysPage,
    /// Destination tier.
    pub dst_tier: Tier,
    /// Destination frame, owned by this entry until commit or abort.
    pub dst_phys: PhysPage,
    /// Where in the two-phase protocol this transaction is.
    pub state: TxnState,
    /// Shadow-validity state: what commit does with the source frame.
    #[serde(default)]
    pub shadow: ShadowIntent,
}

/// A journal protocol violation. In release builds these used to be
/// silent (`debug_assert!` only): a duplicate prepare id overwrote the
/// prior entry — leaking its reserved destination frame — and a retire
/// of a non-committed entry dropped an in-flight transaction. Both are
/// now typed errors; the panicking [`MigrationJournal::prepare`] /
/// [`MigrationJournal::retire`] wrappers fail loudly in every build, and
/// the `try_` forms leave the journal untouched while counting the
/// violation for the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalError {
    /// `prepare` was called with an id that already has an entry.
    DuplicatePrepare {
        /// The already-journaled migration id.
        id: u64,
    },
    /// `retire` was called for an id that is missing or still Prepared.
    RetireNotCommitted {
        /// The offending migration id.
        id: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::DuplicatePrepare { id } => {
                write!(f, "migration id {id} journaled twice")
            }
            JournalError::RetireNotCommitted { id } => {
                write!(f, "retire of non-committed journal entry {id}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Incrementally-maintained prepared-transaction counts: the policy
/// reads these on every pass, major fault, and arbiter reallocation, so
/// they must not be O(journal) scans. `freeing`/`into` are indexed by
/// [`Tier::rank`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
struct PreparedCounts {
    len: u64,
    freeing: [u64; 3],
    into: [u64; 3],
    /// Prepared entries whose shadow intent is still `Retain` (fast path
    /// for the write-protection dirtying scan).
    retain: u64,
}

impl PreparedCounts {
    fn add(&mut self, e: &JournalEntry, sign: i64) {
        let d = |v: &mut u64| *v = v.wrapping_add_signed(sign);
        d(&mut self.len);
        d(&mut self.freeing[e.src_tier.rank()]);
        d(&mut self.into[e.dst_tier.rank()]);
        if e.shadow == ShadowIntent::Retain {
            d(&mut self.retain);
        }
    }
}

/// The write-ahead migration journal.
///
/// Entries are keyed by migration id and iterated in id order, so a
/// recovery replay is deterministic. The journal is serializable as part
/// of a machine snapshot.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct MigrationJournal {
    entries: BTreeMap<u64, JournalEntry>,
    /// Machine-wide prepared counts, kept in lockstep with `entries`.
    #[serde(default)]
    counts: PreparedCounts,
    /// Per-tenant prepared counts, kept in lockstep with `entries`.
    #[serde(default)]
    tenant_counts: BTreeMap<TenantId, PreparedCounts>,
    /// Protocol violations observed (and refused) by the `try_` entry
    /// points; the auditor surfaces a non-zero count as a violation.
    #[serde(default)]
    protocol_errors: u64,
}

impl MigrationJournal {
    /// Creates an empty journal.
    pub fn new() -> MigrationJournal {
        MigrationJournal::default()
    }

    fn count(&mut self, e: &JournalEntry, sign: i64) {
        self.counts.add(e, sign);
        self.tenant_counts.entry(e.tenant).or_default().add(e, sign);
    }

    /// Records the prepare phase of migration `id` on behalf of `tenant`.
    /// A duplicate id is a protocol violation: the journal is left
    /// untouched and the violation is counted for the auditor.
    #[allow(clippy::too_many_arguments)]
    pub fn try_prepare(
        &mut self,
        id: u64,
        page: PageId,
        tenant: TenantId,
        src_tier: Tier,
        src_phys: PhysPage,
        dst_tier: Tier,
        dst_phys: PhysPage,
        shadow: ShadowIntent,
    ) -> Result<(), JournalError> {
        if self.entries.contains_key(&id) {
            self.protocol_errors += 1;
            return Err(JournalError::DuplicatePrepare { id });
        }
        let e = JournalEntry {
            page,
            tenant,
            src_tier,
            src_phys,
            dst_tier,
            dst_phys,
            state: TxnState::Prepared,
            shadow,
        };
        self.count(&e, 1);
        self.entries.insert(id, e);
        Ok(())
    }

    /// [`MigrationJournal::try_prepare`] with the exclusive (no-shadow)
    /// intent, panicking on a duplicate id.
    #[allow(clippy::too_many_arguments)]
    pub fn prepare(
        &mut self,
        id: u64,
        page: PageId,
        tenant: TenantId,
        src_tier: Tier,
        src_phys: PhysPage,
        dst_tier: Tier,
        dst_phys: PhysPage,
    ) {
        self.prepare_shadowed(
            id,
            page,
            tenant,
            src_tier,
            src_phys,
            dst_tier,
            dst_phys,
            ShadowIntent::Drop,
        );
    }

    /// [`MigrationJournal::try_prepare`] with an explicit shadow intent,
    /// panicking on a duplicate id.
    #[allow(clippy::too_many_arguments)]
    pub fn prepare_shadowed(
        &mut self,
        id: u64,
        page: PageId,
        tenant: TenantId,
        src_tier: Tier,
        src_phys: PhysPage,
        dst_tier: Tier,
        dst_phys: PhysPage,
        shadow: ShadowIntent,
    ) {
        self.try_prepare(
            id, page, tenant, src_tier, src_phys, dst_tier, dst_phys, shadow,
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Looks up the entry for migration `id`.
    pub fn entry(&self, id: u64) -> Option<&JournalEntry> {
        self.entries.get(&id)
    }

    /// The outstanding entry for `page`, if any. The two-phase protocol
    /// admits at most one per page (the source mapping is
    /// write-protected for the whole window); the auditor's
    /// `DoubleJournaledPage` check enforces it.
    pub fn entry_for_page(&self, page: PageId) -> Option<(u64, &JournalEntry)> {
        self.entries
            .iter()
            .find(|(_, e)| e.page == page)
            .map(|(&id, e)| (id, e))
    }

    /// Marks migration `id` committed (the mapping flip is about to be /
    /// has been made durable). Returns the entry, or `None` for an
    /// unknown id (e.g. a completion event for a rolled-back migration).
    pub fn mark_committed(&mut self, id: u64) -> Option<JournalEntry> {
        let e = self.entries.get_mut(&id)?;
        let snap = *e;
        e.state = TxnState::Committed;
        if snap.state == TxnState::Prepared {
            self.count(&snap, -1);
        }
        self.entries.get(&id).copied()
    }

    /// Retires a committed entry once the mapping flip is done. Retiring
    /// a missing or still-Prepared entry is a protocol violation: the
    /// journal is left untouched and the violation is counted.
    pub fn try_retire(&mut self, id: u64) -> Result<JournalEntry, JournalError> {
        match self.entries.get(&id) {
            Some(e) if e.state == TxnState::Committed => {
                Ok(self.entries.remove(&id).expect("entry just looked up"))
            }
            _ => {
                self.protocol_errors += 1;
                Err(JournalError::RetireNotCommitted { id })
            }
        }
    }

    /// [`MigrationJournal::try_retire`], panicking on a violation.
    pub fn retire(&mut self, id: u64) {
        self.try_retire(id).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Aborts migration `id`, removing its entry. Returns the entry so
    /// the caller can release the destination frame (the single abort
    /// path). `None` for unknown ids.
    pub fn abort(&mut self, id: u64) -> Option<JournalEntry> {
        let e = self.entries.remove(&id)?;
        if e.state == TxnState::Prepared {
            self.count(&e, -1);
        }
        Some(e)
    }

    /// Downgrades a Prepared entry's shadow intent from `Retain` to
    /// `Dirtied` (a write was observed inside the protection window).
    /// Returns true when an intent was actually dirtied.
    pub fn dirty_shadow(&mut self, id: u64) -> bool {
        let Some(e) = self.entries.get_mut(&id) else {
            return false;
        };
        if e.state != TxnState::Prepared || e.shadow != ShadowIntent::Retain {
            return false;
        }
        let snap = *e;
        e.shadow = ShadowIntent::Dirtied;
        self.count(&snap, -1);
        let snap = *self.entries.get(&id).expect("entry just updated");
        self.count(&snap, 1);
        true
    }

    /// Dirties every Prepared `Retain` intent whose page falls in
    /// `region[lo, hi)` — the write-protection stall path knows writes
    /// hit the protected window of this segment but not which page, so
    /// every candidate shadow in the segment is conservatively
    /// invalidated. Returns how many intents were dirtied.
    pub fn dirty_shadows_in(&mut self, region: RegionId, lo: u64, hi: u64) -> u64 {
        if self.counts.retain == 0 {
            return 0;
        }
        let ids: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| {
                e.state == TxnState::Prepared
                    && e.shadow == ShadowIntent::Retain
                    && e.page.region == region
                    && (lo..hi).contains(&e.page.index)
            })
            .map(|(&id, _)| id)
            .collect();
        let n = ids.len() as u64;
        for id in ids {
            self.dirty_shadow(id);
        }
        n
    }

    /// Prepared entries whose shadow intent is still `Retain` (fast-path
    /// guard for the dirtying scans).
    pub fn retained_intents(&self) -> u64 {
        self.counts.retain
    }

    /// Protocol violations observed and refused by the `try_` entry
    /// points since construction.
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors
    }

    /// Number of transactions still in the prepare phase (in-flight
    /// migrations).
    pub fn prepared_len(&self) -> u64 {
        debug_assert_eq!(
            self.counts.len,
            self.scan(|_| true),
            "incremental prepared_len diverged from scan"
        );
        self.counts.len
    }

    /// Number of in-flight (Prepared) transactions whose completion will
    /// free a `tier` frame — their source mapping lives in `tier` and is
    /// released on commit. The policy's watermark phase counts
    /// `prepared_freeing(Tier::Dram)` as DRAM that is already on its way
    /// to being free, so consecutive passes do not re-demote for the same
    /// deficit.
    pub fn prepared_freeing(&self, tier: Tier) -> u64 {
        debug_assert_eq!(
            self.counts.freeing[tier.rank()],
            self.scan(|e| e.src_tier == tier),
            "incremental prepared_freeing diverged from scan"
        );
        self.counts.freeing[tier.rank()]
    }

    /// Per-tenant form of [`MigrationJournal::prepared_len`]: in-flight
    /// transactions belonging to `tenant`. On a single-tenant machine
    /// every entry carries [`TenantId::SOLO`], so this equals the global
    /// count.
    pub fn prepared_len_for(&self, tenant: TenantId) -> u64 {
        let n = self.tenant_counts.get(&tenant).map_or(0, |c| c.len);
        debug_assert_eq!(
            n,
            self.scan(|e| e.tenant == tenant),
            "incremental prepared_len_for diverged from scan"
        );
        n
    }

    /// Per-tenant form of [`MigrationJournal::prepared_freeing`].
    pub fn prepared_freeing_for(&self, tenant: TenantId, tier: Tier) -> u64 {
        let n = self
            .tenant_counts
            .get(&tenant)
            .map_or(0, |c| c.freeing[tier.rank()]);
        debug_assert_eq!(
            n,
            self.scan(|e| e.tenant == tenant && e.src_tier == tier),
            "incremental prepared_freeing_for diverged from scan"
        );
        n
    }

    /// Per-tenant in-flight transactions *into* `tier`: their destination
    /// frame is already allocated from `tier`'s pool but not yet mapped.
    /// The arbiter counts `prepared_into_for(t, Tier::Dram)` toward
    /// tenant `t`'s DRAM claim.
    pub fn prepared_into_for(&self, tenant: TenantId, tier: Tier) -> u64 {
        let n = self
            .tenant_counts
            .get(&tenant)
            .map_or(0, |c| c.into[tier.rank()]);
        debug_assert_eq!(
            n,
            self.scan(|e| e.tenant == tenant && e.dst_tier == tier),
            "incremental prepared_into_for diverged from scan"
        );
        n
    }

    /// Reference implementation for the incremental counters: the linear
    /// scan the debug-mode equivalence asserts compare against.
    fn scan(&self, pred: impl Fn(&JournalEntry) -> bool) -> u64 {
        self.entries
            .values()
            .filter(|e| e.state == TxnState::Prepared && pred(e))
            .count() as u64
    }

    /// True when no transaction is outstanding — the quiescent state the
    /// auditor expects when the machine is idle.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All outstanding entries in id order (recovery replay order).
    pub fn entries(&self) -> impl Iterator<Item = (u64, &JournalEntry)> {
        self.entries.iter().map(|(&id, e)| (id, e))
    }

    /// Drains every outstanding entry in id order, for a recovery replay.
    pub fn drain(&mut self) -> Vec<(u64, JournalEntry)> {
        self.counts = PreparedCounts::default();
        self.tenant_counts.clear();
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_vmm::{RegionId, TenantId};

    fn page(i: u64) -> PageId {
        PageId {
            region: RegionId(0),
            index: i,
        }
    }

    fn prepare(j: &mut MigrationJournal, id: u64) {
        j.prepare(
            id,
            page(id),
            TenantId::SOLO,
            Tier::Nvm,
            PhysPage(id),
            Tier::Dram,
            PhysPage(100 + id),
        );
    }

    #[test]
    fn prepare_commit_retire_cycle_empties_journal() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 0);
        assert_eq!(j.prepared_len(), 1);
        assert!(!j.is_empty());
        let e = j.mark_committed(0).expect("entry");
        assert_eq!(e.state, TxnState::Committed);
        assert_eq!(j.prepared_len(), 0, "committed entries are not in-flight");
        j.retire(0);
        assert!(j.is_empty());
    }

    #[test]
    fn prepared_freeing_counts_by_source_tier_and_state() {
        let mut j = MigrationJournal::new();
        // Two demotions (Dram -> Nvm) and one promotion (Nvm -> Dram),
        // across two tenants.
        let (t0, t1) = (TenantId(0), TenantId(1));
        j.prepare(
            0,
            page(0),
            t0,
            Tier::Dram,
            PhysPage(0),
            Tier::Nvm,
            PhysPage(100),
        );
        j.prepare(
            1,
            page(1),
            t1,
            Tier::Dram,
            PhysPage(1),
            Tier::Nvm,
            PhysPage(101),
        );
        j.prepare(
            2,
            page(2),
            t0,
            Tier::Nvm,
            PhysPage(2),
            Tier::Dram,
            PhysPage(102),
        );
        assert_eq!(j.prepared_freeing(Tier::Dram), 2);
        assert_eq!(j.prepared_freeing(Tier::Nvm), 1);
        // Per-tenant views partition the global counts.
        assert_eq!(j.prepared_len_for(t0), 2);
        assert_eq!(j.prepared_len_for(t1), 1);
        assert_eq!(j.prepared_freeing_for(t0, Tier::Dram), 1);
        assert_eq!(j.prepared_freeing_for(t1, Tier::Dram), 1);
        assert_eq!(j.prepared_into_for(t0, Tier::Dram), 1);
        assert_eq!(j.prepared_into_for(t1, Tier::Dram), 0);
        // A committed demotion has already freed its frame: not counted.
        j.mark_committed(0);
        assert_eq!(j.prepared_freeing(Tier::Dram), 1);
        assert_eq!(j.prepared_freeing_for(t0, Tier::Dram), 0);
    }

    #[test]
    fn abort_returns_entry_for_frame_release() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 3);
        let e = j.abort(3).expect("entry");
        assert_eq!(e.dst_phys, PhysPage(103));
        assert!(j.is_empty());
        assert!(j.abort(3).is_none(), "second abort is a no-op");
    }

    #[test]
    fn drain_yields_entries_in_id_order() {
        let mut j = MigrationJournal::new();
        for id in [5, 1, 9] {
            prepare(&mut j, id);
        }
        let ids: Vec<u64> = j.drain().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 5, 9]);
        assert!(j.is_empty());
        assert_eq!(j.prepared_len(), 0, "drain resets the counters");
        assert_eq!(j.prepared_len_for(TenantId::SOLO), 0);
    }

    #[test]
    fn journal_clones_into_snapshots() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 7);
        j.mark_committed(7);
        prepare(&mut j, 8);
        let snap = j.clone();
        j.abort(8);
        j.retire(7);
        assert!(j.is_empty());
        assert_eq!(snap.prepared_len(), 1, "snapshot unaffected by later ops");
        assert_eq!(snap.entry(7).map(|e| e.state), Some(TxnState::Committed));
        assert_eq!(snap.entry(8).map(|e| e.dst_phys), Some(PhysPage(108)));
    }

    #[test]
    fn duplicate_prepare_is_refused_without_clobbering() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 4);
        let err = j.try_prepare(
            4,
            page(99),
            TenantId::SOLO,
            Tier::Dram,
            PhysPage(99),
            Tier::Nvm,
            PhysPage(199),
            ShadowIntent::Drop,
        );
        assert_eq!(err, Err(JournalError::DuplicatePrepare { id: 4 }));
        // The original entry survives untouched: no leaked dst frame.
        assert_eq!(j.entry(4).map(|e| e.dst_phys), Some(PhysPage(104)));
        assert_eq!(j.prepared_len(), 1);
        assert_eq!(j.protocol_errors(), 1, "violation is counted");
    }

    #[test]
    fn retire_of_non_committed_entry_is_refused() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 5);
        // Still Prepared: refused, transaction stays in flight.
        assert_eq!(
            j.try_retire(5),
            Err(JournalError::RetireNotCommitted { id: 5 })
        );
        assert_eq!(j.prepared_len(), 1, "in-flight transaction not dropped");
        // Unknown id: refused too.
        assert_eq!(
            j.try_retire(42),
            Err(JournalError::RetireNotCommitted { id: 42 })
        );
        assert_eq!(j.protocol_errors(), 2);
        j.mark_committed(5);
        assert!(j.try_retire(5).is_ok());
        assert!(j.is_empty());
    }

    #[test]
    #[should_panic(expected = "journaled twice")]
    fn duplicate_prepare_panics_in_release_too() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 6);
        prepare(&mut j, 6);
    }

    #[test]
    #[should_panic(expected = "retire of non-committed")]
    fn retire_of_prepared_entry_panics() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 6);
        j.retire(6);
    }

    #[test]
    fn shadow_intent_dirties_inside_the_wp_window() {
        let mut j = MigrationJournal::new();
        j.prepare_shadowed(
            0,
            page(10),
            TenantId::SOLO,
            Tier::Nvm,
            PhysPage(10),
            Tier::Dram,
            PhysPage(110),
            ShadowIntent::Retain,
        );
        assert_eq!(j.retained_intents(), 1);
        // A write in a disjoint span leaves the intent alone.
        assert_eq!(j.dirty_shadows_in(RegionId(0), 20, 30), 0);
        assert_eq!(j.retained_intents(), 1);
        // A write over the page's span dirties it.
        assert_eq!(j.dirty_shadows_in(RegionId(0), 0, 16), 1);
        assert_eq!(j.retained_intents(), 0);
        assert_eq!(j.entry(0).map(|e| e.shadow), Some(ShadowIntent::Dirtied));
        // Dirtying is idempotent, and commit preserves the intent.
        assert!(!j.dirty_shadow(0));
        let e = j.mark_committed(0).expect("entry");
        assert_eq!(e.shadow, ShadowIntent::Dirtied);
        j.retire(0);
    }

    #[test]
    fn entry_for_page_finds_the_outstanding_transaction() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 3);
        assert_eq!(j.entry_for_page(page(3)).map(|(id, _)| id), Some(3));
        assert!(j.entry_for_page(page(4)).is_none());
    }

    #[test]
    fn incremental_counts_survive_a_full_lifecycle_mix() {
        let mut j = MigrationJournal::new();
        let t = TenantId(2);
        j.prepare_shadowed(
            0,
            page(0),
            t,
            Tier::Nvm,
            PhysPage(0),
            Tier::Dram,
            PhysPage(100),
            ShadowIntent::Retain,
        );
        j.prepare(
            1,
            page(1),
            t,
            Tier::Dram,
            PhysPage(1),
            Tier::Nvm,
            PhysPage(101),
        );
        j.prepare(
            2,
            page(2),
            t,
            Tier::Nvm,
            PhysPage(2),
            Tier::Ssd,
            PhysPage(102),
        );
        assert_eq!(j.prepared_len_for(t), 3);
        assert_eq!(j.prepared_freeing_for(t, Tier::Nvm), 2);
        assert_eq!(j.prepared_into_for(t, Tier::Dram), 1);
        j.abort(2);
        assert_eq!(j.prepared_freeing_for(t, Tier::Nvm), 1);
        j.mark_committed(0);
        assert_eq!(j.prepared_len_for(t), 1);
        assert_eq!(j.retained_intents(), 0, "commit consumed the intent");
        j.retire(0);
        j.abort(1);
        assert_eq!(j.prepared_len_for(t), 0);
        assert!(j.is_empty());
    }
}
