//! Write-ahead metadata journal making page migration transactional.
//!
//! Every migration is a two-phase transaction against this journal:
//!
//! 1. **Prepare** — before any copy starts, the intent (page, source
//!    frame, destination frame) is recorded and the source mapping is
//!    write-protected. The destination frame is owned by the journal
//!    entry, not by any mapping.
//! 2. **Commit** — when the copy completes, the entry is marked
//!    committed, the mapping in `vmm::space` is flipped to the
//!    destination frame, and the entry is retired.
//!
//! Because the mapping flip is the *last* step, an interruption at any
//! instant leaves a recoverable state: entries still `Prepared` name
//! exactly the frames that hold no authoritative data (roll back: free
//! the destination frame, clear the write protection), and `Committed`
//! entries name migrations whose mapping flip is already durable (roll
//! forward: just retire the entry). There is no interruption point with
//! a torn mapping, which is what lets [`crate::runtime::Sim`] kill and
//! restart the manager mid-migration.

use std::collections::BTreeMap;

use hemem_vmm::{PageId, PhysPage, TenantId, Tier};

/// Lifecycle state of one journaled migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TxnState {
    /// Intent recorded, destination frame reserved, copy in flight. The
    /// source mapping is still authoritative.
    Prepared,
    /// The mapping flip is durable; only the journal entry remains to be
    /// retired.
    Committed,
}

/// One migration transaction: everything recovery needs to either roll
/// the migration back or roll it forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JournalEntry {
    /// The page being migrated.
    pub page: PageId,
    /// Tenant owning the page's region (per-tenant in-flight accounting
    /// and migration budgets key off this).
    pub tenant: TenantId,
    /// Tier the page was mapped in when the transaction prepared.
    pub src_tier: Tier,
    /// Frame the page was mapped to when the transaction prepared.
    pub src_phys: PhysPage,
    /// Destination tier.
    pub dst_tier: Tier,
    /// Destination frame, owned by this entry until commit or abort.
    pub dst_phys: PhysPage,
    /// Where in the two-phase protocol this transaction is.
    pub state: TxnState,
}

/// The write-ahead migration journal.
///
/// Entries are keyed by migration id and iterated in id order, so a
/// recovery replay is deterministic. The journal is serializable as part
/// of a machine snapshot.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct MigrationJournal {
    entries: BTreeMap<u64, JournalEntry>,
}

impl MigrationJournal {
    /// Creates an empty journal.
    pub fn new() -> MigrationJournal {
        MigrationJournal::default()
    }

    /// Records the prepare phase of migration `id` on behalf of `tenant`.
    #[allow(clippy::too_many_arguments)]
    pub fn prepare(
        &mut self,
        id: u64,
        page: PageId,
        tenant: TenantId,
        src_tier: Tier,
        src_phys: PhysPage,
        dst_tier: Tier,
        dst_phys: PhysPage,
    ) {
        let prev = self.entries.insert(
            id,
            JournalEntry {
                page,
                tenant,
                src_tier,
                src_phys,
                dst_tier,
                dst_phys,
                state: TxnState::Prepared,
            },
        );
        debug_assert!(prev.is_none(), "migration id {id} journaled twice");
    }

    /// Looks up the entry for migration `id`.
    pub fn entry(&self, id: u64) -> Option<&JournalEntry> {
        self.entries.get(&id)
    }

    /// Marks migration `id` committed (the mapping flip is about to be /
    /// has been made durable). Returns the entry, or `None` for an
    /// unknown id (e.g. a completion event for a rolled-back migration).
    pub fn mark_committed(&mut self, id: u64) -> Option<JournalEntry> {
        let e = self.entries.get_mut(&id)?;
        e.state = TxnState::Committed;
        Some(*e)
    }

    /// Retires a committed entry once the mapping flip is done.
    pub fn retire(&mut self, id: u64) {
        let e = self.entries.remove(&id);
        debug_assert!(
            matches!(e, Some(e) if e.state == TxnState::Committed),
            "retire of non-committed journal entry {id}"
        );
    }

    /// Aborts migration `id`, removing its entry. Returns the entry so
    /// the caller can release the destination frame (the single abort
    /// path). `None` for unknown ids.
    pub fn abort(&mut self, id: u64) -> Option<JournalEntry> {
        self.entries.remove(&id)
    }

    /// Number of transactions still in the prepare phase (in-flight
    /// migrations).
    pub fn prepared_len(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.state == TxnState::Prepared)
            .count() as u64
    }

    /// Number of in-flight (Prepared) transactions whose completion will
    /// free a `tier` frame — their source mapping lives in `tier` and is
    /// released on commit. The policy's watermark phase counts
    /// `prepared_freeing(Tier::Dram)` as DRAM that is already on its way
    /// to being free, so consecutive passes do not re-demote for the same
    /// deficit.
    pub fn prepared_freeing(&self, tier: Tier) -> u64 {
        self.entries
            .values()
            .filter(|e| e.state == TxnState::Prepared && e.src_tier == tier)
            .count() as u64
    }

    /// Per-tenant form of [`MigrationJournal::prepared_len`]: in-flight
    /// transactions belonging to `tenant`. On a single-tenant machine
    /// every entry carries [`TenantId::SOLO`], so this equals the global
    /// count.
    pub fn prepared_len_for(&self, tenant: TenantId) -> u64 {
        self.entries
            .values()
            .filter(|e| e.state == TxnState::Prepared && e.tenant == tenant)
            .count() as u64
    }

    /// Per-tenant form of [`MigrationJournal::prepared_freeing`].
    pub fn prepared_freeing_for(&self, tenant: TenantId, tier: Tier) -> u64 {
        self.entries
            .values()
            .filter(|e| e.state == TxnState::Prepared && e.tenant == tenant && e.src_tier == tier)
            .count() as u64
    }

    /// Per-tenant in-flight transactions *into* `tier`: their destination
    /// frame is already allocated from `tier`'s pool but not yet mapped.
    /// The arbiter counts `prepared_into_for(t, Tier::Dram)` toward
    /// tenant `t`'s DRAM claim.
    pub fn prepared_into_for(&self, tenant: TenantId, tier: Tier) -> u64 {
        self.entries
            .values()
            .filter(|e| e.state == TxnState::Prepared && e.tenant == tenant && e.dst_tier == tier)
            .count() as u64
    }

    /// True when no transaction is outstanding — the quiescent state the
    /// auditor expects when the machine is idle.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All outstanding entries in id order (recovery replay order).
    pub fn entries(&self) -> impl Iterator<Item = (u64, &JournalEntry)> {
        self.entries.iter().map(|(&id, e)| (id, e))
    }

    /// Drains every outstanding entry in id order, for a recovery replay.
    pub fn drain(&mut self) -> Vec<(u64, JournalEntry)> {
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemem_vmm::{RegionId, TenantId};

    fn page(i: u64) -> PageId {
        PageId {
            region: RegionId(0),
            index: i,
        }
    }

    fn prepare(j: &mut MigrationJournal, id: u64) {
        j.prepare(
            id,
            page(id),
            TenantId::SOLO,
            Tier::Nvm,
            PhysPage(id),
            Tier::Dram,
            PhysPage(100 + id),
        );
    }

    #[test]
    fn prepare_commit_retire_cycle_empties_journal() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 0);
        assert_eq!(j.prepared_len(), 1);
        assert!(!j.is_empty());
        let e = j.mark_committed(0).expect("entry");
        assert_eq!(e.state, TxnState::Committed);
        assert_eq!(j.prepared_len(), 0, "committed entries are not in-flight");
        j.retire(0);
        assert!(j.is_empty());
    }

    #[test]
    fn prepared_freeing_counts_by_source_tier_and_state() {
        let mut j = MigrationJournal::new();
        // Two demotions (Dram -> Nvm) and one promotion (Nvm -> Dram),
        // across two tenants.
        let (t0, t1) = (TenantId(0), TenantId(1));
        j.prepare(
            0,
            page(0),
            t0,
            Tier::Dram,
            PhysPage(0),
            Tier::Nvm,
            PhysPage(100),
        );
        j.prepare(
            1,
            page(1),
            t1,
            Tier::Dram,
            PhysPage(1),
            Tier::Nvm,
            PhysPage(101),
        );
        j.prepare(
            2,
            page(2),
            t0,
            Tier::Nvm,
            PhysPage(2),
            Tier::Dram,
            PhysPage(102),
        );
        assert_eq!(j.prepared_freeing(Tier::Dram), 2);
        assert_eq!(j.prepared_freeing(Tier::Nvm), 1);
        // Per-tenant views partition the global counts.
        assert_eq!(j.prepared_len_for(t0), 2);
        assert_eq!(j.prepared_len_for(t1), 1);
        assert_eq!(j.prepared_freeing_for(t0, Tier::Dram), 1);
        assert_eq!(j.prepared_freeing_for(t1, Tier::Dram), 1);
        assert_eq!(j.prepared_into_for(t0, Tier::Dram), 1);
        assert_eq!(j.prepared_into_for(t1, Tier::Dram), 0);
        // A committed demotion has already freed its frame: not counted.
        j.mark_committed(0);
        assert_eq!(j.prepared_freeing(Tier::Dram), 1);
        assert_eq!(j.prepared_freeing_for(t0, Tier::Dram), 0);
    }

    #[test]
    fn abort_returns_entry_for_frame_release() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 3);
        let e = j.abort(3).expect("entry");
        assert_eq!(e.dst_phys, PhysPage(103));
        assert!(j.is_empty());
        assert!(j.abort(3).is_none(), "second abort is a no-op");
    }

    #[test]
    fn drain_yields_entries_in_id_order() {
        let mut j = MigrationJournal::new();
        for id in [5, 1, 9] {
            prepare(&mut j, id);
        }
        let ids: Vec<u64> = j.drain().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 5, 9]);
        assert!(j.is_empty());
    }

    #[test]
    fn journal_clones_into_snapshots() {
        let mut j = MigrationJournal::new();
        prepare(&mut j, 7);
        j.mark_committed(7);
        prepare(&mut j, 8);
        let snap = j.clone();
        j.abort(8);
        j.retire(7);
        assert!(j.is_empty());
        assert_eq!(snap.prepared_len(), 1, "snapshot unaffected by later ops");
        assert_eq!(snap.entry(7).map(|e| e.state), Some(TxnState::Committed));
        assert_eq!(snap.entry(8).map(|e| e.dst_phys), Some(PhysPage(108)));
    }
}
