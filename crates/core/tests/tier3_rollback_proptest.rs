//! Property tests: manager kills at arbitrary points of the three-tier
//! demotion cascade (DRAM -> NVM -> SSD, promotions back the other way)
//! never lose a page or leak a frame. Each case arms the NVM watermark
//! so background NVM -> SSD demotion runs alongside DRAM -> NVM
//! demotion and fault-driven SSD promotions, then kills the manager at
//! sampled instants — landing before prepare, between prepare and
//! commit, or after commit of in-flight journal transactions. Recovery
//! must roll prepared entries back, keep committed ones, and leave the
//! machine audit-clean.

use proptest::prelude::*;

use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::{Event, Sim};
use hemem_core::AccessBatch;
use hemem_sim::Ns;
use hemem_vmm::{RegionId, Tier};

const GIB: u64 = 1 << 30;
// 1.5x the byte-addressable capacity of the small(1, 2) machine: the
// populate phase alone forces a spill cascade onto the SSD.
const REGION_BYTES: u64 = 4 * GIB + GIB / 2;
const REGION_PAGES: u64 = REGION_BYTES / (2 << 20);

fn build(seed: u64, kills: &[Ns]) -> (Sim<HeMem>, RegionId) {
    let mut mc = MachineConfig::small(1, 2).with_tier3(8 * GIB);
    mc.seed = seed;
    mc.chaos.seed = seed.wrapping_mul(0x9E37_79B9).max(1);
    mc.chaos.manager_kill_at = kills.to_vec();
    let mut hc = HeMemConfig::scaled_for(&mc);
    // Arm the NVM watermark so the background policy demotes NVM -> SSD
    // (the second hop) instead of leaving all spill to direct reclaim.
    hc.nvm_watermark = mc.nvm.capacity / 16;
    let mut sim = Sim::new(mc, HeMem::new(hc));
    let region = sim.mmap(REGION_BYTES);
    sim.populate(region, true);
    (sim, region)
}

/// One access batch to completion plus a short drain, so migrations are
/// in flight when a scheduled kill lands mid-window.
fn churn(sim: &mut Sim<HeMem>, region: RegionId, lo: u64, write_frac: f64) {
    let hi = (lo + 256).min(REGION_PAGES);
    let batch = AccessBatch::uniform(region, lo, hi, 150_000, 8, write_frac, REGION_BYTES);
    sim.submit_batch(0, &batch);
    loop {
        match sim.step() {
            Some((_, Event::ThreadReady(_))) | None => break,
            Some(_) => {}
        }
    }
    sim.advance(Ns::millis(50));
}

/// Conservation across all three tiers: no page lost, no frame leaked,
/// every pool's occupancy balanced, and the runtime auditor clean.
fn check_three_tier(sim: &mut Sim<HeMem>, region: RegionId) -> Result<(), TestCaseError> {
    for (name, tier) in [("dram", Tier::Dram), ("nvm", Tier::Nvm), ("ssd", Tier::Ssd)] {
        let pool = sim.m.pool(tier);
        prop_assert_eq!(
            pool.total_pages(),
            pool.free_pages() + pool.allocated_pages() + pool.retired_pages(),
            "{} pool occupancy out of balance",
            name
        );
    }
    let r = sim.m.space.region(region);
    prop_assert_eq!(
        r.mapped_pages() + r.swapped_pages(),
        REGION_PAGES,
        "pages lost across the cascade"
    );
    // A started (journaled) migration ends exactly one of three ways:
    // commit (done), media-error abort (failed), or kill-recovery
    // rollback. `migrations_aborted` counts prepare-time rejections that
    // never entered the journal, so it stays out of this ledger.
    let s = &sim.m.stats;
    let finished = s.migrations_done + s.migrations_failed + sim.m.recovery.journal_rollbacks;
    prop_assert!(finished <= s.migrations_started, "migration ledger broken");
    let in_flight = s.migrations_started - finished;
    let allocated = sim.m.dram_pool.allocated_pages()
        + sim.m.nvm_pool.allocated_pages()
        + sim.m.ssd_pool.allocated_pages();
    prop_assert_eq!(
        allocated,
        sim.m.space.region(region).mapped_pages() + in_flight,
        "frame leak after rollback"
    );
    let violations = sim.run_audit(false);
    prop_assert!(violations.is_empty(), "audit violations: {violations:?}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A manager kill at any instant of the three-tier run — mid
    /// DRAM->NVM demotion, mid NVM->SSD demotion, mid SSD promotion, or
    /// between any prepare/commit pair — recovers to a consistent,
    /// audit-clean machine with every page still reachable.
    #[test]
    fn rollback_is_clean_at_every_kill_point(
        seed in 1u64..1_000_000,
        kill_ms in prop::collection::vec(1u64..900, 1..4),
        offsets in prop::collection::vec((0u64..REGION_PAGES - 256, 0.0f64..1.0), 4..7),
    ) {
        let kills: Vec<Ns> = kill_ms.iter().map(|&ms| Ns::millis(ms)).collect();
        let (mut sim, region) = build(seed, &kills);
        for &(lo, wf) in &offsets {
            churn(&mut sim, region, lo, wf);
        }
        // Run past the last scheduled kill, then let recovery and any
        // restarted background work fully drain.
        sim.advance(Ns::millis(1000));
        sim.advance(Ns::secs(1));
        prop_assert_eq!(
            sim.m.recovery.manager_kills as usize,
            kills.len(),
            "every scheduled kill fires"
        );
        prop_assert!(
            sim.m.recovery.watchdog_restarts >= sim.m.recovery.manager_kills,
            "watchdog restarted the manager after each kill"
        );
        check_three_tier(&mut sim, region)?;
    }

    /// The same kill schedule replayed from the same seed reproduces the
    /// same recovery counters and pool state, three tiers included.
    #[test]
    fn killed_three_tier_run_replays_identically(
        seed in 1u64..1_000_000,
        kill_ms in 1u64..400,
    ) {
        let run = || {
            let (mut sim, region) = build(seed, &[Ns::millis(kill_ms)]);
            for lo in [0u64, REGION_PAGES / 2, REGION_PAGES - 300] {
                churn(&mut sim, region, lo, 0.5);
            }
            sim.advance(Ns::secs(1));
            format!(
                "{:?}|{:?}|{}/{}/{}",
                sim.m.stats,
                sim.m.recovery,
                sim.m.dram_pool.free_pages(),
                sim.m.nvm_pool.free_pages(),
                sim.m.ssd_pool.free_pages(),
            )
        };
        prop_assert_eq!(run(), run(), "killed 3-tier run is not reproducible");
    }
}
