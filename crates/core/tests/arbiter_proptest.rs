//! Property tests for the DRAM arbiter's lifecycle invariants
//! (satellite of the tenant-lifecycle PR).
//!
//! Across random admit / retire / kill / balloon / reallocation
//! sequences, the arbiter must keep:
//!
//! * **conservation** — `sum(quotas) + host reserve == total pages`,
//!   so quota is never minted or leaked by churn;
//! * **the floor** — every live tenant holds at least the live-set
//!   quota floor, however the sequence shuffled quota around;
//! * **clean retirement** — retired (or never-admitted) slots hold
//!   exactly zero quota and zero share.
//!
//! A kill is arbiter-visible as a retire (the runtime's
//! quarantine/drain machinery sits above the arbiter), so the op set
//! here folds kills into retires at random positions.

use hemem_core::arbiter::{AdmitError, ArbiterPolicy, DramArbiter, TenantSignal};
use hemem_vmm::TenantId;
use proptest::prelude::*;

/// One lifecycle operation applied to the arbiter under test.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Try to admit this slot (rejections are legal outcomes).
    Admit(u32),
    /// Retire this slot — also models a seeded tenant kill, which
    /// reaches the arbiter as a retire after the drain.
    Retire(u32),
    /// Balloon this slot toward `target` pages.
    Balloon(u32, u64),
    /// Lift this slot's balloon cap.
    Unballoon(u32),
    /// Advance time past a reallocation period with random signals.
    Realloc([TenantSignal; SLOTS]),
}

const SLOTS: usize = 6;

fn signal_strategy() -> impl Strategy<Value = TenantSignal> {
    (0u64..(8 << 30), 0u64..1_000_000, 0u64..1_000_000).prop_map(
        |(hot_bytes, dram_loads, nvm_loads)| TenantSignal {
            hot_bytes,
            dram_loads,
            nvm_loads,
        },
    )
}

fn signals_strategy() -> impl Strategy<Value = [TenantSignal; SLOTS]> {
    (
        signal_strategy(),
        signal_strategy(),
        signal_strategy(),
        signal_strategy(),
        signal_strategy(),
        signal_strategy(),
    )
        .prop_map(|(a, b, c, d, e, f)| [a, b, c, d, e, f])
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let slot = 0u32..SLOTS as u32 + 1; // +1 exercises NoSuchSlot too
    prop_oneof![
        // Admit twice so sequences actually grow a live set.
        slot.clone().prop_map(Op::Admit),
        slot.clone().prop_map(Op::Admit),
        slot.clone().prop_map(Op::Retire),
        (slot.clone(), 0u64..2_048).prop_map(|(t, pages)| Op::Balloon(t, pages)),
        slot.prop_map(Op::Unballoon),
        signals_strategy().prop_map(Op::Realloc),
    ]
}

fn policy_strategy() -> impl Strategy<Value = ArbiterPolicy> {
    prop_oneof![
        Just(ArbiterPolicy::StaticShares),
        Just(ArbiterPolicy::ProportionalShares),
        Just(ArbiterPolicy::GreedyMissRatio),
    ]
}

/// Asserts the three lifecycle invariants on `a`.
fn check_invariants(a: &DramArbiter, step: usize, op: &Op) -> Result<(), TestCaseError> {
    prop_assert!(
        a.conserved(),
        "conservation broke at step {step} after {op:?}: quotas={:?} reserve={}",
        a.quotas(),
        a.unassigned_pages()
    );
    let total: u64 = a.quotas().iter().sum();
    prop_assert!(
        total <= a.total_pages(),
        "quota sum {total} exceeds the tier ({}) at step {step} after {op:?}",
        a.total_pages()
    );
    let floor = a.floor_pages();
    for t in 0..SLOTS as u32 {
        let q = a.quota_pages(TenantId(t));
        if a.is_live(TenantId(t)) {
            prop_assert!(
                q >= floor,
                "live tenant {t} fell below the floor ({q} < {floor}) \
                 at step {step} after {op:?}: quotas={:?} reserve={}",
                a.quotas(),
                a.unassigned_pages()
            );
        } else {
            prop_assert_eq!(
                q,
                0,
                "retired tenant {} holds quota at step {} after {:?}",
                t,
                step,
                op
            );
            prop_assert_eq!(a.share_of(TenantId(t), 1 << 20), 0);
        }
    }
    Ok(())
}

fn run_sequence(policy: ArbiterPolicy, total_pages: u64, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut a = DramArbiter::deferred(policy, total_pages, SLOTS);
    let mut now_ns = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Admit(t) => match a.admit(TenantId(t)) {
                Ok(granted) => prop_assert!(
                    granted >= a.floor_pages(),
                    "admission granted {granted} below the floor {}",
                    a.floor_pages()
                ),
                Err(AdmitError::NoSuchSlot) => prop_assert!(t as usize >= SLOTS),
                Err(AdmitError::AlreadyLive) => prop_assert!(a.is_live(TenantId(t))),
                Err(AdmitError::FloorUnsatisfiable) => {
                    let n = a.live_tenants() as u64 + 1;
                    let floor = (total_pages / (8 * n)).max(1);
                    prop_assert!(floor * n > total_pages);
                }
            },
            Op::Retire(t) => {
                if (t as usize) < SLOTS {
                    a.retire(TenantId(t));
                    prop_assert!(!a.is_live(TenantId(t)));
                }
            }
            Op::Balloon(t, pages) => {
                if (t as usize) < SLOTS {
                    let q = a.balloon(TenantId(t), pages);
                    if a.is_live(TenantId(t)) {
                        prop_assert!(q >= a.floor_pages().min(pages.max(a.floor_pages())));
                    } else {
                        prop_assert_eq!(q, 0);
                    }
                }
            }
            Op::Unballoon(t) => {
                if (t as usize) < SLOTS {
                    a.unballoon(TenantId(t));
                }
            }
            Op::Realloc(signals) => {
                now_ns += DramArbiter::DEFAULT_REALLOC_PERIOD_NS;
                a.maybe_realloc(now_ns, &signals);
            }
        }
        check_invariants(&a, step, op)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline property: random lifecycle churn never breaks
    /// conservation, the live floor, or clean retirement — under any
    /// policy and tier size (including tiers small enough that floors
    /// bind hard).
    #[test]
    fn arbiter_conservation(
        policy in policy_strategy(),
        total_pages in prop_oneof![Just(48u64), Just(512u64), Just(16_384u64)],
        ops in prop::collection::vec(op_strategy(), 1..64),
    ) {
        run_sequence(policy, total_pages, &ops)?;
    }

    /// Churning every slot down to empty always returns the whole tier
    /// to the host reserve, whatever happened in between.
    #[test]
    fn full_retirement_returns_the_tier_to_the_reserve(
        policy in policy_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..48),
    ) {
        let total = 1_024u64;
        let mut a = DramArbiter::deferred(policy, total, SLOTS);
        let mut now_ns = 0u64;
        for op in &ops {
            match *op {
                Op::Admit(t) if (t as usize) < SLOTS => {
                    let _ = a.admit(TenantId(t));
                }
                Op::Retire(t) if (t as usize) < SLOTS => {
                    a.retire(TenantId(t));
                }
                Op::Balloon(t, pages) if (t as usize) < SLOTS => {
                    a.balloon(TenantId(t), pages);
                }
                Op::Realloc(signals) => {
                    now_ns += DramArbiter::DEFAULT_REALLOC_PERIOD_NS;
                    a.maybe_realloc(now_ns, &signals);
                }
                _ => {}
            }
        }
        for t in 0..SLOTS as u32 {
            a.retire(TenantId(t));
        }
        prop_assert_eq!(a.live_tenants(), 0);
        prop_assert_eq!(a.unassigned_pages(), total);
        prop_assert!(a.conserved());
    }
}
