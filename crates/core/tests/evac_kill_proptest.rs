//! Property tests: manager and tenant kills landing around a scheduled
//! tier failure never corrupt the online evacuation. Each case arms an
//! NVM offline event on a loaded three-tier machine, then drops a
//! manager kill (watchdog restarts it) or a tenant kill (quarantine and
//! drain) into the evacuation window — before the failure, mid-drain,
//! or after. Recovery must roll prepared journal entries back in
//! transaction order, the offline tier must end with zero allocated
//! frames, no page may be lost or frame leaked, and the failure-domain
//! audit (`FramesOnOfflineTier` / `EvacuationLeak` included) must stay
//! silent. Replays from the same seed must be identical.

use proptest::prelude::*;

use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::{MachineConfig, TierHealth};
use hemem_core::runtime::{Event, Sim};
use hemem_core::AccessBatch;
use hemem_sim::{Ns, TenantKill, TierFault};
use hemem_vmm::{RegionId, Tier};

const GIB: u64 = 1 << 30;
// 1.5x the byte-addressable capacity of the small(1, 2) machine, so the
// NVM tier is loaded when it dies; the 8 GiB SSD can absorb the whole
// region, keeping the N-1 machine viable.
const REGION_BYTES: u64 = 4 * GIB + GIB / 2;
const REGION_PAGES: u64 = REGION_BYTES / (2 << 20);
// Populate paces the zero-fill backlog through sim time (~1.7s on this
// machine); failure and kill schedules are anchored past it so they
// land on a warmed-up machine, not mid-populate.
const WARM_MS: u64 = 2_000;

/// Which kill lands in the evacuation window.
enum Kill {
    Manager(Ns),
    Tenant(Ns),
}

fn build(seed: u64, fail_at: Ns, kill: Kill) -> (Sim<HeMem>, RegionId) {
    let mut mc = MachineConfig::small(1, 2).with_tier3(8 * GIB);
    mc.seed = seed;
    mc.chaos.seed = seed.wrapping_mul(0x9E37_79B9).max(1);
    mc.chaos.tier_fail_at = vec![TierFault {
        tier: 1,
        at: fail_at,
    }];
    match kill {
        Kill::Manager(at) => mc.chaos.manager_kill_at = vec![at],
        Kill::Tenant(at) => {
            mc.chaos.tenant_kill_at = vec![TenantKill { tenant: 0, at }];
        }
    }
    let mut hc = HeMemConfig::scaled_for(&mc);
    // Arm the NVM watermark so background NVM -> SSD demotion runs
    // alongside the evacuation traffic.
    hc.nvm_watermark = mc.nvm.capacity / 16;
    let mut sim = Sim::new(mc, HeMem::new(hc));
    let region = sim.mmap(REGION_BYTES);
    sim.populate(region, true);
    let warm = Ns::millis(WARM_MS);
    assert!(sim.now() < warm, "populate overran the warm-up window");
    sim.run_until(warm);
    (sim, region)
}

/// One access batch to completion plus a short drain, so migrations and
/// evacuation traffic are in flight when the scheduled events land. A
/// tenant kill can unmap the region between batches; churn is a no-op
/// once it is gone.
fn churn(sim: &mut Sim<HeMem>, region: RegionId, lo: u64, write_frac: f64) {
    if !sim.m.space.regions().any(|r| r.id() == region) {
        return;
    }
    let hi = (lo + 256).min(REGION_PAGES);
    let batch = AccessBatch::uniform(region, lo, hi, 150_000, 8, write_frac, REGION_BYTES);
    sim.submit_batch(0, &batch);
    loop {
        match sim.step() {
            Some((_, Event::ThreadReady(_))) | None => break,
            Some(_) => {}
        }
    }
    sim.advance(Ns::millis(50));
}

/// Invariants every kill-during-evacuation case must restore: balanced
/// pools, zero frames on the offline tier, the migration ledger closed
/// out (commit, abort, or rollback — in transaction order, which the
/// journal-quiescence audit would flag if violated), and a silent audit.
fn check_drained(sim: &mut Sim<HeMem>, pages_expected: Option<u64>) -> Result<(), TestCaseError> {
    prop_assert_eq!(sim.m.tier_health(Tier::Nvm), TierHealth::Offline);
    for (name, tier) in [("dram", Tier::Dram), ("nvm", Tier::Nvm), ("ssd", Tier::Ssd)] {
        let pool = sim.m.pool(tier);
        prop_assert_eq!(
            pool.total_pages(),
            pool.free_pages() + pool.allocated_pages() + pool.retired_pages(),
            "{} pool occupancy out of balance",
            name
        );
    }
    prop_assert_eq!(
        sim.m.nvm_pool.allocated_pages(),
        0,
        "offline tier still holds frames after evacuation + recovery"
    );
    let s = &sim.m.stats;
    let finished = s.migrations_done + s.migrations_failed + sim.m.recovery.journal_rollbacks;
    prop_assert!(finished <= s.migrations_started, "migration ledger broken");
    let in_flight = s.migrations_started - finished;
    let allocated = sim.m.dram_pool.allocated_pages()
        + sim.m.nvm_pool.allocated_pages()
        + sim.m.ssd_pool.allocated_pages();
    if let Some(expected) = pages_expected {
        let r = sim.m.space.regions().next().expect("region still live");
        prop_assert_eq!(
            r.mapped_pages() + r.swapped_pages() + sim.m.health.poisoned_pages,
            expected,
            "pages lost beyond the typed poison ledger"
        );
        prop_assert_eq!(allocated, r.mapped_pages() + in_flight, "frame leak");
    } else {
        // Sole tenant drained: every frame in every tier must be back.
        prop_assert_eq!(allocated, in_flight, "frames leaked past the drain");
    }
    let violations = sim.run_audit(false);
    prop_assert!(violations.is_empty(), "audit violations: {violations:?}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A manager kill before, during, or after the NVM tier failure:
    /// the watchdog restarts the manager, recovery rolls prepared
    /// entries back in transaction order, and the evacuation still
    /// drains the offline tier to zero frames with a silent audit.
    #[test]
    fn manager_kill_mid_evacuation_recovers(
        seed in 1u64..1_000_000,
        fail_ms in 100u64..1200,
        kill_delta_ms in 0u64..400,
        offsets in prop::collection::vec((0u64..REGION_PAGES - 256, 0.0f64..1.0), 3..6),
    ) {
        // The kill lands in [fail - 100ms, fail + 300ms): before the
        // failure (in-flight policy migrations roll back), mid-drain,
        // or just after it.
        let kill_ms = WARM_MS + fail_ms - 100 + kill_delta_ms;
        let (mut sim, region) =
            build(seed, Ns::millis(WARM_MS + fail_ms),Kill::Manager(Ns::millis(kill_ms)));
        for &(lo, wf) in &offsets {
            churn(&mut sim, region, lo, wf);
        }
        // Run past the failure and the kill, then let the watchdog
        // restart, journal recovery, and the evacuation fully drain.
        sim.advance(Ns::secs(2));
        sim.advance(Ns::secs(1));
        prop_assert_eq!(sim.m.recovery.manager_kills, 1, "the kill fires");
        prop_assert!(
            sim.m.recovery.watchdog_restarts >= 1,
            "watchdog restarted the manager"
        );
        check_drained(&mut sim, Some(REGION_PAGES))?;
    }

    /// A tenant kill racing the evacuation: the drain rolls the
    /// tenant's prepared entries back in transaction order, purges its
    /// pages from the evacuation queue, and returns every frame on
    /// every tier — the offline tier ends empty even though its
    /// evacuation never ran to completion.
    #[test]
    fn tenant_kill_mid_evacuation_drains_clean(
        seed in 1u64..1_000_000,
        fail_ms in 100u64..1200,
        kill_delta_ms in 0u64..400,
        offsets in prop::collection::vec((0u64..REGION_PAGES - 256, 0.0f64..1.0), 3..6),
    ) {
        let kill_ms = WARM_MS + fail_ms - 100 + kill_delta_ms;
        let (mut sim, region) =
            build(seed, Ns::millis(WARM_MS + fail_ms),Kill::Tenant(Ns::millis(kill_ms)));
        for &(lo, wf) in &offsets {
            churn(&mut sim, region, lo, wf);
        }
        sim.advance(Ns::secs(2));
        sim.advance(Ns::secs(1));
        prop_assert_eq!(sim.m.recovery.tenant_kills, 1, "the kill fires");
        prop_assert_eq!(sim.m.recovery.tenant_drains, 1, "the drain completes");
        check_drained(&mut sim, None)?;
    }

    /// The same failure-plus-kill schedule replayed from the same seed
    /// reproduces identical recovery counters, health lifecycle
    /// counters, and pool state.
    #[test]
    fn killed_evacuation_replays_identically(
        seed in 1u64..1_000_000,
        fail_ms in 100u64..800,
        kill_delta_ms in 0u64..200,
        manager in any::<bool>(),
    ) {
        let kill_ms = WARM_MS + fail_ms - 100 + kill_delta_ms;
        let run = || {
            let kill = if manager {
                Kill::Manager(Ns::millis(kill_ms))
            } else {
                Kill::Tenant(Ns::millis(kill_ms))
            };
            let (mut sim, region) = build(seed, Ns::millis(WARM_MS + fail_ms),kill);
            if manager {
                for lo in [0u64, REGION_PAGES / 2, REGION_PAGES - 300] {
                    churn(&mut sim, region, lo, 0.5);
                }
            }
            sim.advance(Ns::secs(2));
            format!(
                "{:?}|{:?}|{:?}|{}/{}/{}",
                sim.m.stats,
                sim.m.recovery,
                sim.m.health,
                sim.m.dram_pool.free_pages(),
                sim.m.nvm_pool.free_pages(),
                sim.m.ssd_pool.free_pages(),
            )
        };
        prop_assert_eq!(run(), run(), "killed evacuation run is not reproducible");
    }
}
