//! Property tests on HeMem's page tracker: under arbitrary sample
//! streams, every placed page is on exactly one queue (or legitimately
//! in flight), counters never underflow, and pop/restore round-trips
//! conserve pages.

use proptest::prelude::*;

use hemem_core::hemem::{PageTracker, Queue, TrackerConfig};
use hemem_sim::Ns;
use hemem_vmm::{PageId, RegionId, Tier};

#[derive(Debug, Clone)]
enum Op {
    Record { page: u64, write: bool, at_ms: u64 },
    MarkHot { page: u64, wh: bool },
    MarkCold { page: u64 },
    PopPromotion,
    PopDemotion { allow_hot: bool },
    Replace { page: u64, tier_dram: bool },
}

fn op_strategy(pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..pages, any::<bool>(), 0u64..60_000).prop_map(|(page, write, at_ms)| Op::Record {
            page,
            write,
            at_ms
        }),
        (0..pages, any::<bool>()).prop_map(|(page, wh)| Op::MarkHot { page, wh }),
        (0..pages).prop_map(|page| Op::MarkCold { page }),
        Just(Op::PopPromotion),
        any::<bool>().prop_map(|allow_hot| Op::PopDemotion { allow_hot }),
        (0..pages, any::<bool>()).prop_map(|(page, tier_dram)| Op::Replace { page, tier_dram }),
    ]
}

const PAGES: u64 = 48;

fn queue_total(t: &PageTracker) -> usize {
    t.queue_len(Queue::DramHot)
        + t.queue_len(Queue::DramCold)
        + t.queue_len(Queue::NvmHot)
        + t.queue_len(Queue::NvmCold)
}

proptest! {
    #[test]
    fn tracker_conserves_pages(ops in prop::collection::vec(op_strategy(PAGES), 1..300)) {
        let region = RegionId(0);
        let mut t = PageTracker::new(TrackerConfig::default());
        t.add_region(region, PAGES);
        for i in 0..PAGES {
            t.placed(PageId { region, index: i }, if i % 2 == 0 { Tier::Dram } else { Tier::Nvm });
        }
        let mut popped: Vec<PageId> = Vec::new();
        for op in ops {
            match op {
                Op::Record { page, write, at_ms } => {
                    t.record(PageId { region, index: page }, write, Ns::millis(at_ms));
                }
                Op::MarkHot { page, wh } => t.mark_hot(PageId { region, index: page }, wh),
                Op::MarkCold { page } => t.mark_cold(PageId { region, index: page }),
                Op::PopPromotion => {
                    if let Some(p) = t.pop_promotion() {
                        popped.push(p);
                    }
                }
                Op::PopDemotion { allow_hot } => {
                    if let Some(p) = t.pop_demotion(allow_hot) {
                        popped.push(p);
                    }
                }
                Op::Replace { page, tier_dram } => {
                    // Simulate migration completion / abort restore.
                    let p = PageId { region, index: page };
                    if let Some(pos) = popped.iter().position(|&q| q == p) {
                        popped.remove(pos);
                        t.placed(p, if tier_dram { Tier::Dram } else { Tier::Nvm });
                    }
                }
            }
            // Conservation: queued + in-flight == total, always. (Record /
            // mark operations on in-flight pages must not re-queue them...
            // they may, which is why `placed` unlinks first; either way the
            // total never exceeds PAGES.)
            let total = queue_total(&t) + popped.len();
            prop_assert!(total >= PAGES as usize, "lost pages: {total}");
            prop_assert!(queue_total(&t) <= PAGES as usize, "duplicated pages");
        }
        // Drain everything back and verify exact conservation.
        for p in popped.drain(..) {
            t.placed(p, Tier::Dram);
        }
        prop_assert_eq!(queue_total(&t), PAGES as usize);
    }

    #[test]
    fn counters_never_underflow_and_cooling_halves(
        samples in prop::collection::vec((0u64..8, any::<bool>()), 1..500)
    ) {
        let region = RegionId(1);
        let mut t = PageTracker::new(TrackerConfig {
            cooling_min_interval: Ns::ZERO,
            ..TrackerConfig::default()
        });
        t.add_region(region, 8);
        for i in 0..8 {
            t.placed(PageId { region, index: i }, Tier::Nvm);
        }
        for (i, (page, write)) in samples.into_iter().enumerate() {
            t.record(PageId { region, index: page }, write, Ns::millis(i as u64));
            let (r, w) = t.counters(PageId { region, index: page });
            // Counters bounded by the cooling threshold + one increment.
            prop_assert!(r + w <= 18 + 1, "counters ran away: {r}+{w}");
        }
    }
}
