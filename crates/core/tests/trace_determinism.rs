//! Property tests: structured tracing is observation-only. A run with
//! event capture enabled must be byte-identical — machine stats, policy
//! attribution, latency histograms, and the telemetry CSV — to the same
//! run with capture disabled, for any seed and workload mix. This is the
//! contract that lets `--trace` ship on by default in debugging sessions
//! without invalidating results.

use proptest::prelude::*;

use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::{Event, Sim};
use hemem_core::telemetry::Telemetry;
use hemem_core::AccessBatch;
use hemem_sim::{LatencyClass, Ns};

const GIB: u64 = 1 << 30;

/// One deterministic workload: overcommitted fill, then a few access
/// batches, sampled by telemetry throughout.
fn run(seed: u64, offsets: &[(u64, f64)], trace: bool) -> (String, String) {
    let mut mc = MachineConfig::small(1, 4);
    mc.seed = seed;
    mc.trace = trace;
    let hc = HeMemConfig::scaled_for(&mc);
    let mut sim = Sim::new(mc, HeMem::new(hc));
    let region = sim.mmap(2 * GIB);
    sim.populate(region, true);
    let mut tel = Telemetry::new(region, Ns::millis(10));
    tel.maybe_sample(&sim);
    for &(lo, write_frac) in offsets {
        let hi = (lo + 256).min(1024);
        let batch = AccessBatch::uniform(region, lo, hi, 150_000, 8, write_frac, GIB);
        sim.submit_batch(0, &batch);
        loop {
            match sim.step() {
                Some((_, Event::ThreadReady(_))) | None => break,
                Some(_) => {}
            }
        }
        sim.advance(Ns::millis(50));
        tel.maybe_sample(&sim);
    }
    let mut fp = format!("{:?}|{:?}", sim.m.stats, sim.m.trace.policy);
    for class in LatencyClass::ALL {
        let h = sim.m.trace.hist(class);
        fp.push_str(&format!(
            "|{}:{}/{}/{}/{}",
            class.name(),
            h.count(),
            h.quantile(0.5),
            h.quantile(0.999),
            h.max()
        ));
    }
    (fp, tel.csv())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn traced_run_equals_untraced_run(
        seed in 0u64..1_000_000,
        offsets in prop::collection::vec((0u64..768, 0.0f64..1.0), 2..5),
    ) {
        let (stats_t, csv_t) = run(seed, &offsets, true);
        let (stats_u, csv_u) = run(seed, &offsets, false);
        prop_assert_eq!(stats_t, stats_u, "tracing changed machine stats");
        prop_assert_eq!(csv_t, csv_u, "tracing changed the telemetry CSV");
    }
}

/// The disabled tracer really is silent: no events, while histograms and
/// attribution still accumulate (the telemetry columns depend on them).
#[test]
fn disabled_tracer_accumulates_histograms_without_events() {
    let (_, _) = run(7, &[(0, 0.5)], false);
    let mc = MachineConfig::small(1, 4);
    let hc = HeMemConfig::scaled_for(&mc);
    let mut sim = Sim::new(mc, HeMem::new(hc));
    let region = sim.mmap(2 * GIB);
    sim.populate(region, true);
    sim.advance(Ns::millis(100));
    assert!(sim.m.trace.events().is_empty(), "no events while disabled");
    assert!(
        sim.m.trace.hist(LatencyClass::Fault).count() > 0,
        "fault histogram accumulates regardless"
    );
    assert!(sim.m.trace.policy.passes > 0, "attribution accumulates");
}
