//! Property tests: slot recycling never bleeds state across tenant
//! generations. Each case drives a small slot pool through a random
//! spawn / access / balloon / kill sequence (optionally with a seeded
//! chaos kill landing mid-run), then checks that every drained slot
//! returns scrubbed, no frame or quota survives an occupant, a new
//! occupant's fault history starts empty, and the fleet audit
//! (`SlotGenerationLeak` / `StaleSlotFrame` included) stays silent.
//! Pooled reset-in-place and from-scratch rebuild must be logically
//! indistinguishable under every schedule, and replays from the same
//! seed byte-identical.

use proptest::prelude::*;

use hemem_core::arbiter::ArbiterPolicy;
use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::{Event, Sim};
use hemem_core::AccessBatch;
use hemem_sim::{Ns, TenantKill};
use hemem_vmm::TenantId;

const GIB: u64 = 1 << 30;
const SLOTS: usize = 4;
/// Per-instance working set: 4 slots x 96 MiB against a 256 MiB DRAM +
/// 512 MiB NVM socket, so concurrent occupants contend for tiers.
const WORKING_SET: u64 = 96 << 20;

/// One step of the random schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Admit an instance onto the next free slot (no-op when full).
    Spawn,
    /// Run one access batch on a live instance (selector, write frac).
    Batch(u8, u8),
    /// Balloon a live instance to a fraction of its quota (selector,
    /// fraction /256).
    Balloon(u8, u8),
    /// Kill a live instance and let its drain complete (selector).
    Kill(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted by hand (the vendored prop_oneof is unweighted):
    // 3 spawn : 3 batch : 1 balloon : 2 kill.
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(kind, s, p)| match kind % 9 {
        0..=2 => Op::Spawn,
        3..=5 => Op::Batch(s, p),
        6 => Op::Balloon(s, p),
        _ => Op::Kill(s),
    })
}

fn build(seed: u64, pooled: bool, chaos_kill: Option<(u32, u64)>) -> Sim<HeMem> {
    let mut mc = MachineConfig::small(1, 1);
    mc.dram.capacity = 256 << 20;
    mc.nvm.capacity = 512 << 20;
    let mut mc = mc.with_tier3(8 * GIB);
    mc.seed = seed;
    mc.chaos.seed = seed.wrapping_mul(0x9E37_79B9).max(1);
    mc.pebs.sample_period *= 96;
    if let Some((slot, at_ms)) = chaos_kill {
        mc.chaos.tenant_kill_at = vec![TenantKill {
            tenant: slot,
            at: Ns::millis(at_ms),
        }];
    }
    let hc = HeMemConfig::scaled_for(&mc);
    let mut h = HeMem::churn(hc, SLOTS, ArbiterPolicy::GreedyMissRatio);
    h.set_slot_pages(64);
    h.set_fleet_pooling(pooled);
    Sim::new(mc, h)
}

/// Drain the event loop after a batch: run submitted rounds to
/// completion, then advance so kills, drains, and balloon deadlines
/// make progress.
fn settle(sim: &mut Sim<HeMem>) {
    loop {
        match sim.step() {
            Some((_, Event::ThreadReady(_))) | None => break,
            Some(_) => {}
        }
    }
    sim.advance(Ns::millis(20));
}

/// Replay the op schedule against one simulator; returns a state
/// fingerprint that must be identical across mechanisms and replays.
fn run_schedule(sim: &mut Sim<HeMem>, ops: &[Op]) -> Result<String, TestCaseError> {
    let mut live: Vec<TenantId> = Vec::new();
    let mut regions = std::collections::BTreeMap::new();
    for &op in ops {
        // A seeded chaos kill may have retired a tenant between ops.
        live.retain(|&t| {
            let alive = sim.backend.tenant_is_live(t);
            if !alive {
                regions.remove(&t);
            }
            alive
        });
        match op {
            Op::Spawn => {
                let Some(t) = sim.backend.slot_pool().next_free() else {
                    continue;
                };
                let now = sim.now();
                let generation = sim.m.space.tenant_generation(t).wrapping_add(1);
                if sim.backend.admit_tenant(&mut sim.m, t, now).is_err() {
                    continue;
                }
                // The recycled slot's new occupant starts with an empty
                // fault history: no bleed from prior generations.
                prop_assert!(
                    !sim.m.tenant_major_faults.contains_key(&(t.0, generation)),
                    "slot {} generation {} inherited a fault history",
                    t.0,
                    generation
                );
                sim.set_active_tenant(t);
                let region = sim.mmap(WORKING_SET);
                regions.insert(t, region);
                live.push(t);
            }
            Op::Batch(sel, wf) => {
                if live.is_empty() {
                    continue;
                }
                let t = live[sel as usize % live.len()];
                let region = regions[&t];
                let pages = sim.m.space.region(region).page_count();
                let batch = AccessBatch::uniform(
                    region,
                    0,
                    pages,
                    30_000,
                    4,
                    wf as f64 / 255.0,
                    WORKING_SET,
                );
                sim.submit_batch(t.0, &batch);
                settle(sim);
            }
            Op::Balloon(sel, frac) => {
                if live.is_empty() {
                    continue;
                }
                let t = live[sel as usize % live.len()];
                let quota = sim.backend.arbiter().map_or(0, |a| a.quota_pages(t));
                let target = quota * (frac as u64).max(64) / 256;
                let now = sim.now();
                let deadline = Ns(now.as_nanos() + Ns::millis(30).as_nanos());
                sim.backend
                    .balloon_tenant(&mut sim.m, t, target, deadline, now);
                sim.advance(Ns::millis(60));
            }
            Op::Kill(sel) => {
                if live.is_empty() {
                    continue;
                }
                let t = live.swap_remove(sel as usize % live.len());
                regions.remove(&t);
                sim.inject_tenant_kill(t);
                sim.advance(Ns::millis(50));
            }
        }
    }
    // Tear the remaining fleet down and let every drain complete.
    for &t in &live {
        if sim.backend.tenant_is_live(t) {
            sim.inject_tenant_kill(t);
        }
    }
    sim.advance(Ns::millis(200));

    // Every slot is back in the pool, scrubbed; every spawn was
    // eventually recycled.
    let pool = sim.backend.slot_pool();
    prop_assert_eq!(pool.free_slots(), SLOTS, "slots leaked out of the pool");
    let ps = pool.stats();
    prop_assert_eq!(
        ps.spawns,
        ps.recycles,
        "spawn/recycle ledger out of balance"
    );
    // No frame, quota, or live flag survives retirement.
    for i in 0..SLOTS as u32 {
        let t = TenantId(i);
        let tf = sim.m.space.tenant_frames(t);
        prop_assert_eq!(
            tf.dram_pages + tf.nvm_pages + tf.ssd_pages,
            0,
            "slot {} frames survived the drain",
            i
        );
        let arb = sim.backend.arbiter().expect("churn pool has an arbiter");
        prop_assert!(
            !arb.is_live(t) && arb.quota_pages(t) == 0,
            "slot {} quota survived retirement",
            i
        );
    }
    let violations = sim.run_audit(false);
    prop_assert!(violations.is_empty(), "audit violations: {violations:?}");

    Ok(format!(
        "{:?}|{:?}|{}/{}/{}|{}/{}/{}|{:?}",
        sim.m.stats,
        sim.m.recovery,
        sim.m.dram_pool.free_pages(),
        sim.m.nvm_pool.free_pages(),
        sim.m.ssd_pool.free_pages(),
        ps.spawns,
        ps.recycles,
        ps.generation_sum,
        sim.m.tenant_major_faults,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random spawn/access/balloon/kill schedules drain clean on
    /// recycled slots, and the pooled reset-in-place mechanism is
    /// byte-for-byte indistinguishable from rebuilding every slot from
    /// scratch.
    #[test]
    fn recycled_slots_match_fresh_slots(
        seed in 1u64..1_000_000,
        ops in prop::collection::vec(op_strategy(), 6..24),
    ) {
        let mut pooled = build(seed, true, None);
        let mut scratch = build(seed, false, None);
        let a = run_schedule(&mut pooled, &ops)?;
        let b = run_schedule(&mut scratch, &ops)?;
        prop_assert_eq!(a, b, "pooled recycling diverged from from-scratch spawn");
    }

    /// A seeded chaos kill landing mid-schedule (racing batches, drains,
    /// and balloon deadlines) still leaves every slot scrubbed, and the
    /// whole run replays identically from the same seed.
    #[test]
    fn chaos_kill_mid_schedule_replays_identically(
        seed in 1u64..1_000_000,
        slot in 0u32..SLOTS as u32,
        kill_ms in 1u64..400,
        ops in prop::collection::vec(op_strategy(), 6..24),
    ) {
        let run = |mut sim: Sim<HeMem>| run_schedule(&mut sim, &ops);
        let a = run(build(seed, true, Some((slot, kill_ms))))?;
        let b = run(build(seed, true, Some((slot, kill_ms))))?;
        prop_assert_eq!(a, b, "chaos-kill fleet schedule is not reproducible");
    }
}
