//! Property tests: a manager kill landing at an arbitrary instant of the
//! region split/merge churn never corrupts multi-grained tracking. Each
//! case oversubscribes DRAM with region tracking (and the adaptive PEBS
//! controller) armed, drives a drifting hot set so spans are continually
//! splitting under the heat and merging behind it, then drops a seeded
//! manager kill into the churn window. Watchdog recovery must rebuild
//! the region view from the surviving per-page counters: every span's
//! residency summary re-derived, every pin dropped with the rolled-back
//! journal, and the region audit — `RegionCoverageGap`,
//! `RegionTemperatureMismatch`, `SplitMergeLeak` included — silent.
//! Replays from the same seed must be byte-identical, region and
//! controller counters included.

use proptest::prelude::*;

use hemem_core::hemem::{HeMem, HeMemConfig, RegionConfig};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::{Event, Sim};
use hemem_core::AccessBatch;
use hemem_pebs::AdaptiveConfig;
use hemem_sim::Ns;
use hemem_vmm::RegionId;

const GIB: u64 = 1 << 30;
// 2.5x DRAM on the small(1, 4) machine: the working set spills into NVM
// so promotion/demotion churn keeps rewriting span residency while
// splits chase the drifting heat.
const REGION_BYTES: u64 = 2 * GIB + GIB / 2;
const REGION_PAGES: u64 = REGION_BYTES / (2 << 20);
const WARM_MS: u64 = 2_000;

fn build(seed: u64, kill_at: Option<Ns>, adaptive: bool) -> (Sim<HeMem>, RegionId) {
    let mut mc = MachineConfig::small(1, 4);
    mc.seed = seed;
    mc.chaos.seed = seed.wrapping_mul(0x9E37_79B9).max(1);
    if let Some(at) = kill_at {
        mc.chaos.manager_kill_at = vec![at];
    }
    if adaptive {
        mc.pebs.adaptive = Some(AdaptiveConfig::default());
    }
    let mut hc = HeMemConfig::scaled_for(&mc);
    hc.tracker.regions = RegionConfig::multi_grain();
    let mut sim = Sim::new(mc, HeMem::new(hc));
    let region = sim.mmap(REGION_BYTES);
    sim.populate(region, true);
    assert!(
        sim.now() < Ns::millis(WARM_MS),
        "populate overran the warm-up window"
    );
    sim.run_until(Ns::millis(WARM_MS));
    (sim, region)
}

/// One access batch to completion plus a short drain, hammering a narrow
/// span so its regions heat up, split to page grain, and leave the cold
/// wake behind them to merge back toward `max_span`.
fn churn(sim: &mut Sim<HeMem>, region: RegionId, lo: u64) {
    let hi = (lo + 48).min(REGION_PAGES);
    let batch = AccessBatch::uniform(region, lo, hi, 500_000, 8, 0.1, REGION_BYTES);
    sim.submit_batch(0, &batch);
    loop {
        match sim.step() {
            Some((_, Event::ThreadReady(_))) | None => break,
            Some(_) => {}
        }
    }
    sim.advance(Ns::millis(40));
}

/// A drifting hot set: each round hammers two narrow spans and moves on,
/// so the kill window always lands with some spans split hot, some
/// mid-cooling, and merges in progress behind the drift.
fn drift(sim: &mut Sim<HeMem>, region: RegionId, base: u64, stride: u64, rounds: u64) {
    let span = REGION_PAGES - 200;
    for i in 0..rounds {
        let lo = (base + i * stride) % span;
        churn(sim, region, lo);
        churn(sim, region, (lo + span / 2) % span);
    }
}

/// Invariants every recovered run must restore: region tracking still
/// active with its counters advancing, the migration ledger closed, and
/// a silent audit (which re-derives every span's residency from the
/// per-page metadata and checks `RegionCoverageGap`,
/// `RegionTemperatureMismatch`, and `SplitMergeLeak`).
fn check_regions_reconciled(sim: &mut Sim<HeMem>) -> Result<(), TestCaseError> {
    let stats = sim
        .backend
        .region_stats()
        .expect("region tracking stayed enabled through recovery");
    prop_assert!(stats.spans >= 1, "region view lost its spans");
    prop_assert!(stats.periods >= 1, "no region period ran");
    let s = &sim.m.stats;
    let finished = s.migrations_done + s.migrations_failed + sim.m.recovery.journal_rollbacks;
    prop_assert!(finished <= s.migrations_started, "migration ledger broken");
    let violations = sim.run_audit(false);
    prop_assert!(violations.is_empty(), "audit violations: {violations:?}");
    Ok(())
}

fn fingerprint(sim: &Sim<HeMem>) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{}/{}|{}",
        sim.m.stats,
        sim.m.recovery,
        sim.backend.region_stats(),
        sim.m.pebs.adapt_stats(),
        sim.m.dram_pool.free_pages(),
        sim.m.nvm_pool.free_pages(),
        sim.m.pebs.sample_period(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Region churn with no kill: the split/merge machinery must keep
    /// the span view consistent with the per-page counters at every
    /// drift schedule the workload can produce.
    #[test]
    fn region_churn_keeps_the_view_consistent(
        seed in 1u64..1_000_000,
        base in 0u64..REGION_PAGES - 200,
        stride in 48u64..200,
        rounds in 4u64..8,
    ) {
        let (mut sim, region) = build(seed, None, false);
        drift(&mut sim, region, base, stride, rounds);
        sim.advance(Ns::secs(1));
        check_regions_reconciled(&mut sim)?;
    }

    /// A manager kill at an arbitrary instant of the split/merge churn:
    /// the watchdog restarts the manager, recovery rolls the journal
    /// back, and the rebuilt region view must agree with the surviving
    /// per-page counters — silently, under the full region audit.
    #[test]
    fn manager_kill_rebuilds_region_view(
        seed in 1u64..1_000_000,
        kill_ms in 0u64..1500,
        base in 0u64..REGION_PAGES - 200,
        stride in 48u64..200,
        adaptive in any::<bool>(),
    ) {
        let (mut sim, region) =
            build(seed, Some(Ns::millis(WARM_MS + kill_ms)), adaptive);
        drift(&mut sim, region, base, stride, 6);
        sim.advance(Ns::secs(2));
        prop_assert_eq!(sim.m.recovery.manager_kills, 1, "the kill fires");
        prop_assert!(
            sim.m.recovery.watchdog_restarts >= 1,
            "watchdog restarted the manager"
        );
        check_regions_reconciled(&mut sim)?;
    }

    /// The same killed region schedule replayed from the same seed
    /// reproduces identical stats, region counters, controller state,
    /// and pool state.
    #[test]
    fn killed_region_runs_replay_identically(
        seed in 1u64..1_000_000,
        kill_ms in 0u64..1000,
        adaptive in any::<bool>(),
    ) {
        let run = || {
            let (mut sim, region) =
                build(seed, Some(Ns::millis(WARM_MS + kill_ms)), adaptive);
            drift(&mut sim, region, 0, 96, 5);
            sim.advance(Ns::secs(2));
            fingerprint(&sim)
        };
        prop_assert_eq!(run(), run(), "killed region run is not reproducible");
    }
}
