//! Property tests: HeMem under randomized fault plans keeps the
//! machine's accounting honest. Whatever mix of DMA failures, channel
//! losses, NVM media errors, PEBS storms, and fault-thread stalls is
//! injected, pages are never lost or double mapped, pool occupancy
//! always balances (total = free + allocated + retired), the migration
//! ledger reconciles, and the same plan replayed from the same seed
//! produces identical stats.

use proptest::prelude::*;

use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::{Event, Sim};
use hemem_core::AccessBatch;
use hemem_sim::{FaultPlanConfig, Ns};
use hemem_vmm::RegionId;

const GIB: u64 = 1 << 30;
const REGION_PAGES: u64 = 1024; // 2 GiB of 2 MiB pages

fn chaos_strategy() -> impl Strategy<Value = FaultPlanConfig> {
    (
        1u64..1_000_000,
        0.0f64..0.6,  // DMA submission failure rate
        0.0f64..0.3,  // DMA channel loss rate
        0.0f64..0.05, // NVM media error base rate
        0.0f64..0.01, // media error wear scaling
        0.0f64..0.6,  // PEBS storm rate
    )
        .prop_map(|(seed, dma, chan, media, wear, storm)| {
            let mut c = FaultPlanConfig::none();
            c.seed = seed;
            c.dma_submit_fail = dma;
            c.dma_channel_loss = chan;
            c.nvm_media_error = media;
            c.nvm_media_wear_scale = wear;
            c.pebs_storm = storm;
            c.fault_thread_stall = chan / 2.0;
            c
        })
}

fn build(chaos: FaultPlanConfig) -> (Sim<HeMem>, RegionId) {
    let mut mc = MachineConfig::small(1, 4);
    mc.chaos = chaos;
    let hc = HeMemConfig::scaled_for(&mc);
    let mut sim = Sim::new(mc, HeMem::new(hc));
    let region = sim.mmap(2 * GIB);
    sim.populate(region, true);
    (sim, region)
}

/// Runs one access batch to completion, then lets background work drain.
fn churn(sim: &mut Sim<HeMem>, region: RegionId, lo: u64, write_frac: f64) {
    let hi = (lo + 256).min(REGION_PAGES);
    let batch = AccessBatch::uniform(region, lo, hi, 150_000, 8, write_frac, GIB);
    sim.submit_batch(0, &batch);
    loop {
        match sim.step() {
            Some((_, Event::ThreadReady(_))) | None => break,
            Some(_) => {}
        }
    }
    sim.advance(Ns::millis(50));
}

/// Every accounting invariant the fault plan must not be able to break.
fn check_accounting(sim: &Sim<HeMem>, region: RegionId) -> Result<(), TestCaseError> {
    // Pool occupancy balances, retirement included.
    for (name, pool) in [("dram", &sim.m.dram_pool), ("nvm", &sim.m.nvm_pool)] {
        prop_assert_eq!(
            pool.total_pages(),
            pool.free_pages() + pool.allocated_pages() + pool.retired_pages(),
            "{} pool occupancy out of balance",
            name
        );
    }
    // Migration ledger reconciles; in-flight count never goes negative.
    let s = &sim.m.stats;
    let finished = s.migrations_done + s.migrations_failed + s.migrations_aborted;
    prop_assert!(
        finished <= s.migrations_started,
        "more migrations finished ({finished}) than started ({})",
        s.migrations_started
    );
    let in_flight = s.migrations_started - finished;
    // Every region page stays mapped or swapped — failed migrations must
    // restore the page, never lose it.
    let r = sim.m.space.region(region);
    prop_assert_eq!(
        r.mapped_pages() + r.swapped_pages(),
        REGION_PAGES,
        "pages lost: {} mapped + {} swapped",
        r.mapped_pages(),
        r.swapped_pages()
    );
    // Frames in use = mapped pages + destination frames of in-flight
    // migrations. More would be a leak, fewer a double mapping.
    let allocated = sim.m.dram_pool.allocated_pages() + sim.m.nvm_pool.allocated_pages();
    prop_assert_eq!(
        allocated,
        r.mapped_pages() + in_flight,
        "frame leak: {} allocated vs {} mapped + {} in flight",
        allocated,
        r.mapped_pages(),
        in_flight
    );
    Ok(())
}

fn stats_fingerprint(sim: &Sim<HeMem>) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}/{}",
        sim.m.stats,
        sim.m.chaos.stats(),
        sim.m.dma.stats(),
        sim.m.nvm_pool.free_pages(),
        sim.m.nvm_pool.retired_pages(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn accounting_survives_random_fault_plans(
        chaos in chaos_strategy(),
        offsets in prop::collection::vec((0u64..768, 0.0f64..1.0), 3..8),
    ) {
        let (mut sim, region) = build(chaos);
        check_accounting(&sim, region)?;
        for (lo, wf) in offsets {
            churn(&mut sim, region, lo, wf);
            check_accounting(&sim, region)?;
        }
        // Quiesce: no new traffic, let in-flight migrations land, then
        // re-check the ledger one last time.
        sim.advance(Ns::secs(1));
        check_accounting(&sim, region)?;
    }

    #[test]
    fn same_fault_plan_same_stats(chaos in chaos_strategy()) {
        let run = || {
            let (mut sim, region) = build(chaos.clone());
            for lo in [0u64, 512, 256, 700] {
                churn(&mut sim, region, lo, 0.5);
            }
            stats_fingerprint(&sim)
        };
        prop_assert_eq!(run(), run(), "chaos run is not reproducible");
    }
}
