//! Property tests: manager and tenant kills landing at arbitrary points
//! of the shadow lifecycle (intent journaled, shadow clean, dirtied,
//! remap-demoted, reclaimed, re-promoted) never corrupt non-exclusive
//! tiering. Each case oversubscribes DRAM so promotion/demotion churn
//! creates and consumes NVM shadows, then drops a seeded manager kill
//! (watchdog restart + journal recovery + shadow reconcile) or tenant
//! kill (quarantine and drain) into the churn window. Afterwards the
//! pools must balance with shadow frames accounted, no page may have two
//! outstanding journal entries, every surviving shadow must back a
//! DRAM-resident primary, and the audit — `StaleShadowMapped`,
//! `ShadowFrameLeak`, `DoubleJournaledPage` included — must stay silent.
//! Replays from the same seed must be byte-identical, shadow counters
//! included.

use proptest::prelude::*;

use hemem_core::hemem::{HeMem, HeMemConfig};
use hemem_core::machine::MachineConfig;
use hemem_core::runtime::{Event, Sim};
use hemem_core::AccessBatch;
use hemem_sim::{Ns, TenantKill};
use hemem_vmm::RegionId;

const GIB: u64 = 1 << 30;
// 2.5x DRAM on the small(1, 2) machine: the working set spills into NVM,
// so the policy continually promotes hot pages (journaling shadow
// intents) and demotes cold ones (consuming clean shadows by remap).
const REGION_BYTES: u64 = 2 * GIB + GIB / 2;
const REGION_PAGES: u64 = REGION_BYTES / (2 << 20);
const WARM_MS: u64 = 2_000;

/// Which kill lands in the churn window.
enum Kill {
    Manager(Ns),
    Tenant(Ns),
    None,
}

fn build(seed: u64, kill: Kill) -> (Sim<HeMem>, RegionId) {
    let mut mc = MachineConfig::small(1, 2)
        .with_tier3(8 * GIB)
        .with_shadows();
    mc.seed = seed;
    mc.chaos.seed = seed.wrapping_mul(0x9E37_79B9).max(1);
    match kill {
        Kill::Manager(at) => mc.chaos.manager_kill_at = vec![at],
        Kill::Tenant(at) => {
            mc.chaos.tenant_kill_at = vec![TenantKill { tenant: 0, at }];
        }
        Kill::None => {}
    }
    let mut hc = HeMemConfig::scaled_for(&mc);
    // Arm the NVM watermark so the shadow-reclaim-first pass runs under
    // genuine NVM pressure alongside the promotion churn.
    hc.nvm_watermark = mc.nvm.capacity / 16;
    let mut sim = Sim::new(mc, HeMem::new(hc));
    let region = sim.mmap(REGION_BYTES);
    sim.populate(region, true);
    let warm = Ns::millis(WARM_MS);
    assert!(sim.now() < warm, "populate overran the warm-up window");
    sim.run_until(warm);
    (sim, region)
}

/// One access batch to completion plus a short drain. A tenant kill can
/// unmap the region between batches; churn is a no-op once it is gone.
/// Low write fractions leave promoted pages clean (shadows survive to be
/// remap-demoted); high ones dirty the WP window and invalidate shadows
/// through PEBS store samples.
fn churn(sim: &mut Sim<HeMem>, region: RegionId, lo: u64, write_frac: f64) {
    if !sim.m.space.regions().any(|r| r.id() == region) {
        return;
    }
    let hi = (lo + 64).min(REGION_PAGES);
    let batch = AccessBatch::uniform(region, lo, hi, 600_000, 8, write_frac, REGION_BYTES);
    sim.submit_batch(0, &batch);
    loop {
        match sim.step() {
            Some((_, Event::ThreadReady(_))) | None => break,
            Some(_) => {}
        }
    }
    sim.advance(Ns::millis(50));
}

/// A drifting hot set: each round hammers two narrow spans, then moves
/// on. Newly hot NVM pages promote (journaling retain intents and
/// minting shadows on commit); last round's pages cool, fall to the
/// demotion queue, and — when still clean — leave DRAM by shadow remap.
/// The drift keeps shadows being minted, dirtied, consumed, and
/// reclaimed for the whole window the kills land in.
fn drift(sim: &mut Sim<HeMem>, region: RegionId, base: u64, stride: u64, wfs: &[f64]) {
    let span = REGION_PAGES - 300;
    for (i, &wf) in wfs.iter().enumerate() {
        let lo = (base + i as u64 * stride) % span;
        churn(sim, region, lo, wf);
        churn(sim, region, (lo + 640) % span, wf);
    }
}

/// Invariants every shadowed run must restore: balanced pools, shadow
/// frames counted as allocated NVM capacity, the migration ledger
/// closed, frame conservation *including* shadow frames, and a silent
/// audit (which itself checks `StaleShadowMapped`, `ShadowFrameLeak`,
/// and `DoubleJournaledPage`).
fn check_shadows_reconciled(sim: &mut Sim<HeMem>, region_live: bool) -> Result<(), TestCaseError> {
    for (name, tier) in [
        ("dram", hemem_vmm::Tier::Dram),
        ("nvm", hemem_vmm::Tier::Nvm),
        ("ssd", hemem_vmm::Tier::Ssd),
    ] {
        let pool = sim.m.pool(tier);
        prop_assert_eq!(
            pool.total_pages(),
            pool.free_pages() + pool.allocated_pages() + pool.retired_pages(),
            "{} pool occupancy out of balance",
            name
        );
    }
    let shadow_held = sim.m.nvm_pool.shadow_held_pages();
    prop_assert!(
        shadow_held <= sim.m.nvm_pool.allocated_pages(),
        "shadow sub-count exceeds allocated NVM frames"
    );
    let shadow_mapped: u64 = sim.m.space.regions().map(|r| r.shadow_pages()).sum();
    prop_assert_eq!(shadow_held, shadow_mapped, "pool/space shadow count split");
    let s = &sim.m.stats;
    let finished = s.migrations_done + s.migrations_failed + sim.m.recovery.journal_rollbacks;
    prop_assert!(finished <= s.migrations_started, "migration ledger broken");
    let in_flight = s.migrations_started - finished;
    let allocated = sim.m.dram_pool.allocated_pages()
        + sim.m.nvm_pool.allocated_pages()
        + sim.m.ssd_pool.allocated_pages();
    if region_live {
        let r = sim.m.space.regions().next().expect("region still live");
        prop_assert_eq!(
            allocated,
            r.mapped_pages() + in_flight + shadow_held,
            "frame leak (shadows included)"
        );
    } else {
        // Sole tenant drained: its shadows must be gone with it.
        prop_assert_eq!(shadow_held, 0, "drained tenant left shadows behind");
        prop_assert_eq!(allocated, in_flight, "frames leaked past the drain");
    }
    let violations = sim.run_audit(false);
    prop_assert!(violations.is_empty(), "audit violations: {violations:?}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Churn with no kill: shadows form, dirty, remap-demote, and
    /// reclaim; the books must balance at every shadow population the
    /// workload can produce.
    #[test]
    fn shadow_churn_keeps_the_books(
        seed in 1u64..1_000_000,
        base in 0u64..REGION_PAGES - 300,
        stride in 32u64..160,
        wfs in prop::collection::vec(0.0f64..0.6, 8..16),
    ) {
        let (mut sim, region) = build(seed, Kill::None);
        drift(&mut sim, region, base, stride, &wfs);
        sim.advance(Ns::secs(1));
        check_shadows_reconciled(&mut sim, true)?;
    }

    /// A manager kill at an arbitrary instant of the shadow lifecycle:
    /// recovery rolls prepared entries (shadow intents included) back in
    /// transaction order, reconciles surviving shadows against their
    /// primaries, and leaves a silent audit.
    #[test]
    fn manager_kill_leaves_shadows_reconciled(
        seed in 1u64..1_000_000,
        kill_ms in 0u64..1200,
        base in 0u64..REGION_PAGES - 300,
        stride in 32u64..160,
        wfs in prop::collection::vec(0.0f64..0.6, 6..12),
    ) {
        let (mut sim, region) =
            build(seed, Kill::Manager(Ns::millis(WARM_MS + kill_ms)));
        drift(&mut sim, region, base, stride, &wfs);
        sim.advance(Ns::secs(2));
        prop_assert_eq!(sim.m.recovery.manager_kills, 1, "the kill fires");
        prop_assert!(
            sim.m.recovery.watchdog_restarts >= 1,
            "watchdog restarted the manager"
        );
        check_shadows_reconciled(&mut sim, true)?;
    }

    /// A tenant kill mid-churn: the drain returns every frame the tenant
    /// held — primaries, in-flight destinations, and shadows — and the
    /// machine ends shadow-free.
    #[test]
    fn tenant_kill_drains_shadows_with_the_tenant(
        seed in 1u64..1_000_000,
        kill_ms in 0u64..1200,
        base in 0u64..REGION_PAGES - 300,
        stride in 32u64..160,
        wfs in prop::collection::vec(0.0f64..0.6, 6..12),
    ) {
        let (mut sim, region) =
            build(seed, Kill::Tenant(Ns::millis(WARM_MS + kill_ms)));
        drift(&mut sim, region, base, stride, &wfs);
        sim.advance(Ns::secs(2));
        prop_assert_eq!(sim.m.recovery.tenant_kills, 1, "the kill fires");
        prop_assert_eq!(sim.m.recovery.tenant_drains, 1, "the drain completes");
        check_shadows_reconciled(&mut sim, false)?;
    }

    /// The same shadowed schedule replayed from the same seed reproduces
    /// identical stats, shadow counters, recovery counters, and pool
    /// state — kills included.
    #[test]
    fn shadowed_runs_replay_identically(
        seed in 1u64..1_000_000,
        kill_ms in 0u64..800,
        manager in any::<bool>(),
    ) {
        let run = || {
            let kill = if manager {
                Kill::Manager(Ns::millis(WARM_MS + kill_ms))
            } else {
                Kill::Tenant(Ns::millis(WARM_MS + kill_ms))
            };
            let (mut sim, region) = build(seed, kill);
            drift(&mut sim, region, 0, 96, &[0.0, 0.3, 0.0, 0.3, 0.0, 0.3]);
            sim.advance(Ns::secs(2));
            format!(
                "{:?}|{:?}|{:?}|{:?}|{}/{}/{}|{}",
                sim.m.stats,
                sim.m.shadow,
                sim.m.recovery,
                sim.m.health,
                sim.m.dram_pool.free_pages(),
                sim.m.nvm_pool.free_pages(),
                sim.m.ssd_pool.free_pages(),
                sim.m.nvm_pool.shadow_held_pages(),
            )
        };
        prop_assert_eq!(run(), run(), "shadowed run is not reproducible");
    }
}
