//! Property tests: the Fenwick-backed [`FlagTree`] matches a naive
//! `Vec<bool>` model under arbitrary operation sequences. The residency
//! indices in `space` lean on `count_range` prefix sums for every
//! access split and order-statistics query, so the tree being exactly a
//! bit vector with fast prefix sums is a correctness keystone.

use proptest::prelude::*;

use hemem_vmm::FlagTree;

#[derive(Debug, Clone)]
enum Op {
    /// Set or clear a flag (idempotent sets included on purpose).
    Set { idx: usize, value: bool },
    /// Compare a range count against the model.
    CountRange { lo: usize, hi: usize },
    /// Compare the total count against the model.
    Count,
    /// Compare a point read against the model.
    Get { idx: usize },
    /// Compare a first-set scan against the model.
    FirstSet { lo: usize },
}

fn op_strategy(len: usize) -> impl Strategy<Value = Op> {
    // Set arms repeated to bias toward mutations (the vendored
    // `prop_oneof!` picks arms uniformly, without weights).
    prop_oneof![
        (0..len, any::<bool>()).prop_map(|(idx, value)| Op::Set { idx, value }),
        (0..len, any::<bool>()).prop_map(|(idx, value)| Op::Set { idx, value }),
        (0..len, any::<bool>()).prop_map(|(idx, value)| Op::Set { idx, value }),
        (0..len + 1, 0..len + 2).prop_map(|(lo, hi)| Op::CountRange { lo, hi }),
        Just(Op::Count),
        (0..len).prop_map(|idx| Op::Get { idx }),
        (0..len + 2).prop_map(|lo| Op::FirstSet { lo }),
    ]
}

proptest! {
    #[test]
    fn matches_naive_bitvec_model(
        len in 1usize..300,
        seq in prop::collection::vec(op_strategy(300), 1..500),
    ) {
        let mut tree = FlagTree::new(len);
        let mut model = vec![false; len];
        prop_assert_eq!(tree.len(), len);
        for op in seq {
            match op {
                Op::Set { idx, value } => {
                    let idx = idx % len;
                    tree.set(idx, value);
                    model[idx] = value;
                }
                Op::CountRange { lo, hi } => {
                    // `count_range` clamps hi to len; empty/inverted
                    // ranges count zero, mirroring the model slice.
                    let lo = lo.min(len);
                    let hi = hi.min(len + 1);
                    let expect = if lo < hi {
                        model[lo..hi.min(len)].iter().filter(|&&b| b).count() as u64
                    } else {
                        0
                    };
                    prop_assert_eq!(tree.count_range(lo, hi), expect);
                }
                Op::Count => {
                    let expect = model.iter().filter(|&&b| b).count() as u64;
                    prop_assert_eq!(tree.count(), expect);
                }
                Op::Get { idx } => {
                    let idx = idx % len;
                    prop_assert_eq!(tree.get(idx), model[idx]);
                }
                Op::FirstSet { lo } => {
                    let expect = (lo..len).find(|&i| model[i]);
                    prop_assert_eq!(tree.first_set_in(lo), expect);
                }
            }
        }
        // Final full agreement: every prefix sum matches the model.
        let mut running = 0u64;
        for (i, &b) in model.iter().enumerate() {
            running += b as u64;
            prop_assert_eq!(tree.count_range(0, i + 1), running);
        }
    }
}
