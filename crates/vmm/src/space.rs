//! Process address spaces and managed memory regions.
//!
//! A [`Region`] corresponds to one intercepted `mmap`: a virtually
//! contiguous range carved into fixed-size pages, each of which is
//! unmapped or resident on one tier. Regions keep Fenwick-tree residency
//! indices so the machine can split any sub-range's accesses between
//! DRAM, NVM, SSD-resident major faults, and first-touch faults in
//! logarithmic time, plus an [`AccessLedger`] for the page-table-scanning
//! baselines.

use std::collections::BTreeMap;

use crate::addr::{PageId, PageSize, RegionId, TenantId, Tier, VirtAddr, VirtRange};
use crate::fenwick::FlagTree;
use crate::ledger::AccessLedger;
use crate::pool::PhysPage;

/// What kind of allocation created a region; drives placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RegionKind {
    /// Large, long-lived heap range (HeMem manages these).
    ManagedHeap,
    /// Small allocation forwarded to the kernel (stays in DRAM).
    SmallAnon,
}

/// Typed error for an invalid page-state transition.
///
/// The panicking transition methods ([`Region::map_page`] and friends)
/// delegate to the fallible `try_*` variants and panic with this error's
/// [`Display`](std::fmt::Display) text, so callers that can recover (the
/// crash-recovery rollback path, the invariant auditor) observe the same
/// condition as a value instead of an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// `map_page` on a page that is already mapped.
    AlreadyMapped {
        /// Page index within the region.
        index: u64,
    },
    /// `swap_out_page` on a write-protected (migrating) page.
    WriteProtected {
        /// Page index within the region.
        index: u64,
    },
    /// Any transition applied to a page whose state does not admit it.
    BadTransition {
        /// The attempted operation (`"unmap"`, `"remap"`, ...).
        op: &'static str,
        /// Page index within the region.
        index: u64,
        /// The state the page was actually in.
        state: PageState,
    },
    /// An operation on a region that was already unmapped.
    MissingRegion(RegionId),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::AlreadyMapped { index } => write!(f, "page {index} already mapped"),
            StateError::WriteProtected { index } => {
                write!(f, "page {index} is write-protected (migrating)")
            }
            StateError::BadTransition { op, index, state } => {
                write!(f, "{op} of page {index} in state {state:?}")
            }
            StateError::MissingRegion(id) => write!(f, "munmap of missing region {id:?}"),
        }
    }
}

impl std::error::Error for StateError {}

/// Per-page mapping state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PageState {
    /// Never touched; first access faults.
    Unmapped,
    /// Backed by a physical page on `tier`.
    Mapped {
        /// Tier holding the data.
        tier: Tier,
        /// Physical page within the tier's DAX file.
        phys: PhysPage,
        /// Write-protected (underlying migration in flight).
        wp: bool,
    },
    /// Paged out to the swap device (§3.4); access faults and pages the
    /// data back in synchronously.
    Swapped {
        /// Slot within the swap file.
        slot: u64,
    },
}

/// One mmapped region.
#[derive(Debug, Clone)]
pub struct Region {
    id: RegionId,
    range: VirtRange,
    page_size: PageSize,
    kind: RegionKind,
    tenant: TenantId,
    /// Slot generation of the owning tenant at mmap time. A fleet
    /// machine bumps the tenant's generation on every (re)admission, so
    /// a region stamped with a stale generation is a leak from a prior
    /// occupant of the slot — the audit flags it as a stale slot frame.
    generation: u32,
    states: Vec<PageState>,
    dram_idx: FlagTree,
    /// SSD-resident pages; NVM residency is derived as
    /// `mapped - dram - ssd` so two indices cover three tiers.
    ssd_idx: FlagTree,
    mapped_idx: FlagTree,
    wp_idx: FlagTree,
    wp_pages: u64,
    swapped_pages: u64,
    /// Non-exclusive tiering: DRAM-resident pages whose stale-but-clean
    /// NVM copy was retained at promotion, keyed by page index. A shadow
    /// frame is owned by this map (not by any mapping) until the page is
    /// remap-demoted onto it, dirtied, or reclaimed under NVM pressure.
    shadows: BTreeMap<u64, PhysPage>,
    /// Expected access densities since the last page-table scan.
    pub ledger: AccessLedger,
}

impl Region {
    fn new(
        id: RegionId,
        range: VirtRange,
        page_size: PageSize,
        kind: RegionKind,
        tenant: TenantId,
        generation: u32,
    ) -> Region {
        let pages = range.page_count(page_size) as usize;
        Region {
            id,
            range,
            page_size,
            kind,
            tenant,
            generation,
            states: vec![PageState::Unmapped; pages],
            dram_idx: FlagTree::new(pages),
            ssd_idx: FlagTree::new(pages),
            mapped_idx: FlagTree::new(pages),
            wp_idx: FlagTree::new(pages),
            wp_pages: 0,
            swapped_pages: 0,
            shadows: BTreeMap::new(),
            ledger: AccessLedger::new(),
        }
    }

    /// Region identifier.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// Virtual range covered.
    pub fn range(&self) -> VirtRange {
        self.range
    }

    /// Page size backing the region.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Allocation kind.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// Tenant that mapped the region ([`TenantId::SOLO`] on a
    /// single-process machine).
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Slot generation of the owning tenant at mmap time.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Number of pages.
    pub fn page_count(&self) -> u64 {
        self.states.len() as u64
    }

    /// State of page `index`.
    pub fn state(&self, index: u64) -> PageState {
        self.states[index as usize]
    }

    /// Pages currently resident in DRAM.
    pub fn dram_pages(&self) -> u64 {
        self.dram_idx.count()
    }

    /// Pages currently resident on the SSD swap tier.
    pub fn ssd_pages(&self) -> u64 {
        self.ssd_idx.count()
    }

    /// Pages currently mapped on any tier.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_idx.count()
    }

    /// Records `phys` as the clean NVM shadow of page `index`
    /// (non-exclusive tiering: the page was just promoted off this frame
    /// and the copy is still byte-exact). At most one shadow per page.
    pub fn set_shadow(&mut self, index: u64, phys: PhysPage) {
        let prev = self.shadows.insert(index, phys);
        assert!(prev.is_none(), "page {index} already has a shadow frame");
    }

    /// Removes and returns page `index`'s shadow frame, if any. The
    /// caller owns the frame afterwards (free it or remap onto it).
    pub fn take_shadow(&mut self, index: u64) -> Option<PhysPage> {
        self.shadows.remove(&index)
    }

    /// Page `index`'s shadow frame, if it still has a clean one.
    pub fn shadow(&self, index: u64) -> Option<PhysPage> {
        self.shadows.get(&index).copied()
    }

    /// Number of shadow frames this region holds.
    pub fn shadow_pages(&self) -> u64 {
        self.shadows.len() as u64
    }

    /// All (page index, shadow frame) pairs, in page-index order (the
    /// deterministic reclaim / audit walk order).
    pub fn shadows(&self) -> impl Iterator<Item = (u64, PhysPage)> + '_ {
        self.shadows.iter().map(|(&i, &p)| (i, p))
    }

    /// Removes and returns the lowest-index shadow, if any (deterministic
    /// pressure-reclaim order).
    pub fn take_first_shadow(&mut self) -> Option<(u64, PhysPage)> {
        self.shadows.pop_first()
    }

    /// Updates the per-tier residency indices for page `i`, now resident
    /// on `tier` (`None` = not resident on any tier). NVM keeps no index
    /// of its own: it is the mapped remainder.
    fn set_residency(&mut self, i: usize, tier: Option<Tier>) {
        self.dram_idx.set(i, tier == Some(Tier::Dram));
        self.ssd_idx.set(i, tier == Some(Tier::Ssd));
    }

    /// Pages currently write-protected.
    pub fn wp_pages(&self) -> u64 {
        self.wp_pages
    }

    /// Pages currently swapped out to disk.
    pub fn swapped_pages(&self) -> u64 {
        self.swapped_pages
    }

    /// Pages the region out to swap `slot`, returning the frame it held.
    ///
    /// # Panics
    ///
    /// Panics if the page is not mapped or is write-protected (mid-
    /// migration pages cannot be swapped).
    pub fn swap_out_page(&mut self, index: u64, slot: u64) -> (Tier, PhysPage) {
        self.try_swap_out_page(index, slot)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Region::swap_out_page`].
    pub fn try_swap_out_page(
        &mut self,
        index: u64,
        slot: u64,
    ) -> Result<(Tier, PhysPage), StateError> {
        let i = index as usize;
        match self.states[i] {
            PageState::Mapped { wp: true, .. } => Err(StateError::WriteProtected { index }),
            PageState::Mapped { tier, phys, .. } => {
                self.states[i] = PageState::Swapped { slot };
                self.mapped_idx.set(i, false);
                self.set_residency(i, None);
                self.swapped_pages += 1;
                Ok((tier, phys))
            }
            state => Err(StateError::BadTransition {
                op: "swap_out",
                index,
                state,
            }),
        }
    }

    /// Pages a swapped page back in onto `tier`, returning its swap slot.
    ///
    /// # Panics
    ///
    /// Panics if the page is not swapped.
    pub fn swap_in_page(&mut self, index: u64, tier: Tier, phys: PhysPage) -> u64 {
        self.try_swap_in_page(index, tier, phys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Region::swap_in_page`].
    pub fn try_swap_in_page(
        &mut self,
        index: u64,
        tier: Tier,
        phys: PhysPage,
    ) -> Result<u64, StateError> {
        let i = index as usize;
        match self.states[i] {
            PageState::Swapped { slot } => {
                self.states[i] = PageState::Mapped {
                    tier,
                    phys,
                    wp: false,
                };
                self.mapped_idx.set(i, true);
                self.set_residency(i, Some(tier));
                self.swapped_pages -= 1;
                Ok(slot)
            }
            state => Err(StateError::BadTransition {
                op: "swap_in",
                index,
                state,
            }),
        }
    }

    /// DRAM-resident pages within `[lo, hi)` page indices.
    pub fn dram_pages_in(&self, lo: u64, hi: u64) -> u64 {
        self.dram_idx.count_range(lo as usize, hi as usize)
    }

    /// SSD-resident pages within `[lo, hi)` page indices.
    pub fn ssd_pages_in(&self, lo: u64, hi: u64) -> u64 {
        self.ssd_idx.count_range(lo as usize, hi as usize)
    }

    /// Mapped pages within `[lo, hi)` page indices.
    pub fn mapped_pages_in(&self, lo: u64, hi: u64) -> u64 {
        self.mapped_idx.count_range(lo as usize, hi as usize)
    }

    /// Write-protected pages within `[lo, hi)` page indices.
    pub fn wp_pages_in(&self, lo: u64, hi: u64) -> u64 {
        self.wp_idx.count_range(lo as usize, hi as usize)
    }

    /// Maps an unmapped page onto `tier`.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped.
    pub fn map_page(&mut self, index: u64, tier: Tier, phys: PhysPage) {
        self.try_map_page(index, tier, phys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Region::map_page`].
    pub fn try_map_page(
        &mut self,
        index: u64,
        tier: Tier,
        phys: PhysPage,
    ) -> Result<(), StateError> {
        let i = index as usize;
        match self.states[i] {
            PageState::Unmapped => {
                self.states[i] = PageState::Mapped {
                    tier,
                    phys,
                    wp: false,
                };
                self.mapped_idx.set(i, true);
                self.set_residency(i, Some(tier));
                Ok(())
            }
            PageState::Mapped { .. } => Err(StateError::AlreadyMapped { index }),
            state => Err(StateError::BadTransition {
                op: "map",
                index,
                state,
            }),
        }
    }

    /// Unmaps a page, returning its backing `(tier, phys)`.
    ///
    /// # Panics
    ///
    /// Panics if the page is not mapped.
    pub fn unmap_page(&mut self, index: u64) -> (Tier, PhysPage) {
        self.try_unmap_page(index).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Region::unmap_page`].
    pub fn try_unmap_page(&mut self, index: u64) -> Result<(Tier, PhysPage), StateError> {
        let i = index as usize;
        match self.states[i] {
            PageState::Mapped { tier, phys, wp } => {
                if wp {
                    self.wp_pages -= 1;
                    self.wp_idx.set(i, false);
                }
                self.states[i] = PageState::Unmapped;
                self.mapped_idx.set(i, false);
                self.set_residency(i, None);
                Ok((tier, phys))
            }
            state => Err(StateError::BadTransition {
                op: "unmap",
                index,
                state,
            }),
        }
    }

    /// Re-homes a mapped page onto a new tier/physical page (migration
    /// completion), returning the old backing.
    ///
    /// # Panics
    ///
    /// Panics if the page is not mapped.
    pub fn remap_page(&mut self, index: u64, tier: Tier, phys: PhysPage) -> (Tier, PhysPage) {
        self.try_remap_page(index, tier, phys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Region::remap_page`].
    pub fn try_remap_page(
        &mut self,
        index: u64,
        tier: Tier,
        phys: PhysPage,
    ) -> Result<(Tier, PhysPage), StateError> {
        let i = index as usize;
        match self.states[i] {
            PageState::Mapped {
                tier: old_tier,
                phys: old_phys,
                wp,
            } => {
                self.states[i] = PageState::Mapped { tier, phys, wp };
                self.set_residency(i, Some(tier));
                Ok((old_tier, old_phys))
            }
            state => Err(StateError::BadTransition {
                op: "remap",
                index,
                state,
            }),
        }
    }

    /// Sets or clears write protection on a mapped page; returns whether
    /// the flag changed.
    ///
    /// # Panics
    ///
    /// Panics if the page is not mapped.
    pub fn set_wp(&mut self, index: u64, value: bool) -> bool {
        self.try_set_wp(index, value)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Region::set_wp`].
    pub fn try_set_wp(&mut self, index: u64, value: bool) -> Result<bool, StateError> {
        let i = index as usize;
        match &mut self.states[i] {
            PageState::Mapped { wp, .. } => {
                if *wp == value {
                    return Ok(false);
                }
                *wp = value;
                if value {
                    self.wp_pages += 1;
                } else {
                    self.wp_pages -= 1;
                }
                self.wp_idx.set(i, value);
                Ok(true)
            }
            state => Err(StateError::BadTransition {
                op: "set_wp",
                index,
                state: *state,
            }),
        }
    }

    /// Index of the `k`-th (0-based) DRAM-resident page within `[lo, hi)`,
    /// or `None` if fewer than `k + 1` exist.
    pub fn kth_dram_page_in(&self, lo: u64, hi: u64, k: u64) -> Option<u64> {
        self.kth_by(lo, hi, k, |r, l, h| {
            r.dram_idx.count_range(l as usize, h as usize)
        })
    }

    /// Index of the `k`-th NVM-resident page within `[lo, hi)` (the
    /// mapped pages on neither the DRAM nor the SSD index).
    pub fn kth_nvm_page_in(&self, lo: u64, hi: u64, k: u64) -> Option<u64> {
        self.kth_by(lo, hi, k, |r, l, h| {
            r.mapped_idx.count_range(l as usize, h as usize)
                - r.dram_idx.count_range(l as usize, h as usize)
                - r.ssd_idx.count_range(l as usize, h as usize)
        })
    }

    /// Index of the `k`-th SSD-resident page within `[lo, hi)`.
    pub fn kth_ssd_page_in(&self, lo: u64, hi: u64, k: u64) -> Option<u64> {
        self.kth_by(lo, hi, k, |r, l, h| {
            r.ssd_idx.count_range(l as usize, h as usize)
        })
    }

    /// Index of the `k`-th unmapped page within `[lo, hi)`.
    pub fn kth_unmapped_page_in(&self, lo: u64, hi: u64, k: u64) -> Option<u64> {
        self.kth_by(lo, hi, k, |r, l, h| {
            (h - l) - r.mapped_idx.count_range(l as usize, h as usize)
        })
    }

    /// Generic order-statistics search over a monotone range-count
    /// function: smallest `p` such that `count(lo, p + 1) == k + 1`.
    fn kth_by(
        &self,
        lo: u64,
        hi: u64,
        k: u64,
        count: impl Fn(&Region, u64, u64) -> u64,
    ) -> Option<u64> {
        let hi = hi.min(self.page_count());
        if hi <= lo || count(self, lo, hi) <= k {
            return None;
        }
        let (mut a, mut b) = (lo, hi - 1);
        // Invariant: count(lo, b + 1) >= k + 1.
        while a < b {
            let mid = a + (b - a) / 2;
            if count(self, lo, mid + 1) > k {
                b = mid;
            } else {
                a = mid + 1;
            }
        }
        Some(a)
    }

    /// Virtual address of the start of page `index`.
    pub fn page_addr(&self, index: u64) -> VirtAddr {
        VirtAddr(self.range.base.0 + index * self.page_size.bytes())
    }

    /// Page index containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the region.
    pub fn page_of(&self, addr: VirtAddr) -> u64 {
        assert!(
            self.range.contains(addr),
            "{addr:?} outside region {:?}",
            self.id
        );
        (addr.0 - self.range.base.0) / self.page_size.bytes()
    }

    /// Captures the durable part of the region (identity plus per-page
    /// states). Residency indices and the access ledger are derived /
    /// volatile state and are rebuilt on [`Region::restore`].
    pub fn snapshot(&self) -> RegionSnapshot {
        RegionSnapshot {
            id: self.id,
            range: self.range,
            page_size: self.page_size,
            kind: self.kind,
            tenant: self.tenant,
            generation: self.generation,
            states: self.states.clone(),
            shadows: self.shadows.clone(),
        }
    }

    /// Rebuilds a region from a snapshot: Fenwick residency indices and
    /// flag counts are reconstructed from the page states; the access
    /// ledger restarts empty (scan evidence does not survive a restart).
    pub fn restore(snap: RegionSnapshot) -> Region {
        let mut r = Region::new(
            snap.id,
            snap.range,
            snap.page_size,
            snap.kind,
            snap.tenant,
            snap.generation,
        );
        for (i, &state) in snap.states.iter().enumerate() {
            match state {
                PageState::Unmapped => {}
                PageState::Mapped { tier, wp, .. } => {
                    r.mapped_idx.set(i, true);
                    r.set_residency(i, Some(tier));
                    if wp {
                        r.wp_idx.set(i, true);
                        r.wp_pages += 1;
                    }
                }
                PageState::Swapped { .. } => r.swapped_pages += 1,
            }
        }
        r.states = snap.states;
        r.shadows = snap.shadows;
        r
    }
}

/// Serializable snapshot of one [`Region`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RegionSnapshot {
    /// Region identifier.
    pub id: RegionId,
    /// Virtual range covered.
    pub range: VirtRange,
    /// Page size backing the region.
    pub page_size: PageSize,
    /// Allocation kind.
    pub kind: RegionKind,
    /// Tenant that mapped the region.
    pub tenant: TenantId,
    /// Slot generation of the owning tenant at mmap time.
    #[serde(default)]
    pub generation: u32,
    /// Per-page mapping states.
    pub states: Vec<PageState>,
    /// Clean NVM shadow frames by page index (non-exclusive tiering).
    #[serde(default)]
    pub shadows: BTreeMap<u64, PhysPage>,
}

/// Serializable snapshot of a whole [`AddressSpace`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SpaceSnapshot {
    /// Region snapshots, positional (unmapped slots preserved so region
    /// ids stay stable across restore).
    pub regions: Vec<Option<RegionSnapshot>>,
    /// Next mmap base address.
    pub next_base: u64,
    /// Per-tenant slot generations (fleet machines only; empty
    /// otherwise so old snapshots keep deserializing).
    #[serde(default)]
    pub tenant_generations: BTreeMap<TenantId, u32>,
}

/// Frame counts for one tenant's managed regions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantFrames {
    /// Pages resident in DRAM (including write-protected ones).
    pub dram_pages: u64,
    /// Pages resident in NVM (including write-protected ones).
    pub nvm_pages: u64,
    /// Pages resident on the SSD swap tier.
    pub ssd_pages: u64,
    /// Pages currently write-protected (migration in flight).
    pub wp_pages: u64,
    /// Pages swapped out to disk.
    pub swapped_pages: u64,
}

impl TenantFrames {
    /// Pages resident on any tier.
    pub fn resident_pages(&self) -> u64 {
        self.dram_pages + self.nvm_pages + self.ssd_pages
    }

    /// Pages resident on `tier`; the accessor audit code uses when
    /// iterating the machine's tier vector.
    pub fn pages_of(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Dram => self.dram_pages,
            Tier::Nvm => self.nvm_pages,
            Tier::Ssd => self.ssd_pages,
        }
    }
}

/// A process's virtual address space: a set of non-overlapping regions.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    regions: Vec<Option<Region>>,
    next_base: u64,
    /// Slot generation per tenant; bumped on every (re)admission so
    /// regions can prove which occupancy of a recycled slot mapped them.
    tenant_generations: BTreeMap<TenantId, u32>,
}

/// Gap left between consecutively allocated regions.
const GUARD: u64 = 1 << 30;

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            regions: Vec::new(),
            next_base: 1 << 40,
            tenant_generations: BTreeMap::new(),
        }
    }

    /// Creates a region of `len` bytes (rounded up to the page size) for
    /// the solo tenant.
    pub fn mmap(&mut self, len: u64, page_size: PageSize, kind: RegionKind) -> RegionId {
        self.mmap_tagged(len, page_size, kind, TenantId::SOLO)
    }

    /// Creates a region of `len` bytes owned by `tenant`. On a colocated
    /// machine each tenant's regions carry its id so frame accounting,
    /// tracking, and migration budgets can be scoped per tenant;
    /// [`AddressSpace::mmap`] delegates here with [`TenantId::SOLO`].
    pub fn mmap_tagged(
        &mut self,
        len: u64,
        page_size: PageSize,
        kind: RegionKind,
        tenant: TenantId,
    ) -> RegionId {
        let pages = page_size.pages_for(len);
        let len = pages * page_size.bytes();
        let id = RegionId(self.regions.len() as u32);
        let range = VirtRange::new(self.next_base, len);
        self.next_base = range.end() + GUARD;
        self.next_base = self.next_base.next_multiple_of(PageSize::Giga1G.bytes());
        let generation = self.tenant_generation(tenant);
        self.regions.push(Some(Region::new(
            id, range, page_size, kind, tenant, generation,
        )));
        id
    }

    /// Current slot generation for `tenant` (0 until the first bump).
    pub fn tenant_generation(&self, tenant: TenantId) -> u32 {
        self.tenant_generations.get(&tenant).copied().unwrap_or(0)
    }

    /// Bumps and returns `tenant`'s slot generation. Called once per
    /// admission so regions mapped by the new occupant of a recycled
    /// slot carry a generation no prior occupant's regions can share.
    pub fn bump_tenant_generation(&mut self, tenant: TenantId) -> u32 {
        let g = self.tenant_generations.entry(tenant).or_insert(0);
        *g += 1;
        *g
    }

    /// Removes a region, returning it so the caller can free its physical
    /// pages.
    ///
    /// # Panics
    ///
    /// Panics if the region does not exist (double unmap).
    pub fn munmap(&mut self, id: RegionId) -> Region {
        self.try_munmap(id).expect("munmap of missing region")
    }

    /// Fallible form of [`AddressSpace::munmap`].
    pub fn try_munmap(&mut self, id: RegionId) -> Result<Region, StateError> {
        self.regions
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .ok_or(StateError::MissingRegion(id))
    }

    /// Borrows a live region.
    pub fn region(&self, id: RegionId) -> &Region {
        self.regions[id.0 as usize]
            .as_ref()
            .expect("region was unmapped")
    }

    /// Mutably borrows a live region.
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        self.regions[id.0 as usize]
            .as_mut()
            .expect("region was unmapped")
    }

    /// Iterates live regions.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter().flatten()
    }

    /// Iterates live regions mutably.
    pub fn regions_mut(&mut self) -> impl Iterator<Item = &mut Region> {
        self.regions.iter_mut().flatten()
    }

    /// Finds the region containing `addr`.
    pub fn find(&self, addr: VirtAddr) -> Option<&Region> {
        self.regions().find(|r| r.range().contains(addr))
    }

    /// The page containing `addr`, if it belongs to a region.
    pub fn page_at(&self, addr: VirtAddr) -> Option<PageId> {
        let r = self.find(addr)?;
        Some(PageId {
            region: r.id(),
            index: r.page_of(addr),
        })
    }

    /// Total mapped bytes across all regions.
    pub fn mapped_bytes(&self) -> u64 {
        self.regions()
            .map(|r| r.mapped_pages() * r.page_size().bytes())
            .sum()
    }

    /// Distinct tenants owning at least one live region, ascending.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut t: Vec<TenantId> = self.regions().map(Region::tenant).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Per-tenant frame accounting over the tenant's managed regions
    /// (kernel-backed [`RegionKind::SmallAnon`] regions live outside the
    /// tiered pools and are excluded).
    pub fn tenant_frames(&self, tenant: TenantId) -> TenantFrames {
        let mut f = TenantFrames::default();
        for r in self.regions() {
            if r.tenant() != tenant || r.kind() != RegionKind::ManagedHeap {
                continue;
            }
            let dram = r.dram_pages();
            let ssd = r.ssd_pages();
            f.dram_pages += dram;
            f.nvm_pages += r.mapped_pages() - dram - ssd;
            f.ssd_pages += ssd;
            f.wp_pages += r.wp_pages();
            f.swapped_pages += r.swapped_pages();
        }
        f
    }

    /// Captures a serializable snapshot of the whole address space.
    pub fn snapshot(&self) -> SpaceSnapshot {
        SpaceSnapshot {
            regions: self
                .regions
                .iter()
                .map(|r| r.as_ref().map(Region::snapshot))
                .collect(),
            next_base: self.next_base,
            tenant_generations: self.tenant_generations.clone(),
        }
    }

    /// Rebuilds an address space from a snapshot, reconstructing every
    /// region's residency indices from its page states.
    pub fn restore(snap: SpaceSnapshot) -> AddressSpace {
        AddressSpace {
            regions: snap
                .regions
                .into_iter()
                .map(|r| r.map(Region::restore))
                .collect(),
            next_base: snap.next_base,
            tenant_generations: snap.tenant_generations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_assigns_disjoint_ranges() {
        let mut s = AddressSpace::new();
        let a = s.mmap(10 << 20, PageSize::Huge2M, RegionKind::ManagedHeap);
        let b = s.mmap(10 << 20, PageSize::Huge2M, RegionKind::ManagedHeap);
        let ra = s.region(a).range();
        let rb = s.region(b).range();
        assert!(!ra.overlaps(&rb));
        assert_eq!(s.region(a).page_count(), 5);
    }

    #[test]
    fn size_rounds_up_to_page() {
        let mut s = AddressSpace::new();
        let a = s.mmap(1, PageSize::Huge2M, RegionKind::SmallAnon);
        assert_eq!(s.region(a).page_count(), 1);
        assert_eq!(s.region(a).range().len, PageSize::Huge2M.bytes());
    }

    #[test]
    fn map_unmap_round_trip() {
        let mut s = AddressSpace::new();
        let id = s.mmap(4 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        r.map_page(0, Tier::Dram, PhysPage(7));
        r.map_page(1, Tier::Nvm, PhysPage(3));
        assert_eq!(r.dram_pages(), 1);
        assert_eq!(r.mapped_pages(), 2);
        assert_eq!(r.dram_pages_in(0, 1), 1);
        assert_eq!(r.dram_pages_in(1, 4), 0);
        assert_eq!(r.unmap_page(0), (Tier::Dram, PhysPage(7)));
        assert_eq!(r.mapped_pages(), 1);
        assert_eq!(r.dram_pages(), 0);
    }

    #[test]
    fn remap_moves_residency() {
        let mut s = AddressSpace::new();
        let id = s.mmap(2 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        r.map_page(0, Tier::Nvm, PhysPage(0));
        let old = r.remap_page(0, Tier::Dram, PhysPage(5));
        assert_eq!(old, (Tier::Nvm, PhysPage(0)));
        assert_eq!(r.dram_pages(), 1);
        match r.state(0) {
            PageState::Mapped { tier, phys, wp } => {
                assert_eq!(tier, Tier::Dram);
                assert_eq!(phys, PhysPage(5));
                assert!(!wp);
            }
            other => panic!("should stay mapped, got {other:?}"),
        }
    }

    #[test]
    fn wp_flag_counted() {
        let mut s = AddressSpace::new();
        let id = s.mmap(1 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        r.map_page(0, Tier::Nvm, PhysPage(0));
        assert!(r.set_wp(0, true));
        assert!(!r.set_wp(0, true), "no change");
        assert_eq!(r.wp_pages(), 1);
        assert!(r.set_wp(0, false));
        assert_eq!(r.wp_pages(), 0);
    }

    #[test]
    fn wp_survives_remap_and_clears_on_unmap() {
        let mut s = AddressSpace::new();
        let id = s.mmap(1 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        r.map_page(0, Tier::Nvm, PhysPage(0));
        r.set_wp(0, true);
        r.remap_page(0, Tier::Dram, PhysPage(1));
        assert_eq!(r.wp_pages(), 1, "wp preserved across remap");
        r.unmap_page(0);
        assert_eq!(r.wp_pages(), 0);
    }

    #[test]
    fn find_and_page_at() {
        let mut s = AddressSpace::new();
        let id = s.mmap(4 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let base = s.region(id).range().base;
        let inside = VirtAddr(base.0 + 3 * PageSize::Huge2M.bytes() + 17);
        let page = s.page_at(inside).expect("inside region");
        assert_eq!(
            page,
            PageId {
                region: id,
                index: 3
            }
        );
        assert!(s.page_at(VirtAddr(0)).is_none());
    }

    #[test]
    fn kth_selection_matches_layout() {
        let mut s = AddressSpace::new();
        let id = s.mmap(8 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        // Layout: 0=D, 1=N, 2=unmapped, 3=D, 4=N, 5=N, 6=unmapped, 7=D.
        r.map_page(0, Tier::Dram, PhysPage(0));
        r.map_page(1, Tier::Nvm, PhysPage(0));
        r.map_page(3, Tier::Dram, PhysPage(1));
        r.map_page(4, Tier::Nvm, PhysPage(1));
        r.map_page(5, Tier::Nvm, PhysPage(2));
        r.map_page(7, Tier::Dram, PhysPage(3));
        assert_eq!(r.kth_dram_page_in(0, 8, 0), Some(0));
        assert_eq!(r.kth_dram_page_in(0, 8, 1), Some(3));
        assert_eq!(r.kth_dram_page_in(0, 8, 2), Some(7));
        assert_eq!(r.kth_dram_page_in(0, 8, 3), None);
        assert_eq!(r.kth_dram_page_in(1, 7, 0), Some(3));
        assert_eq!(r.kth_nvm_page_in(0, 8, 0), Some(1));
        assert_eq!(r.kth_nvm_page_in(0, 8, 2), Some(5));
        assert_eq!(r.kth_nvm_page_in(2, 5, 0), Some(4));
        assert_eq!(r.kth_unmapped_page_in(0, 8, 0), Some(2));
        assert_eq!(r.kth_unmapped_page_in(0, 8, 1), Some(6));
        assert_eq!(r.kth_unmapped_page_in(0, 8, 2), None);
        assert_eq!(r.kth_dram_page_in(4, 4, 0), None, "empty range");
    }

    #[test]
    fn kth_selection_random_cross_check() {
        use hemem_sim::Rng;
        let mut s = AddressSpace::new();
        let id = s.mmap(200 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        let mut rng = Rng::new(7);
        let mut layout = [0u8; 200]; // 0=unmapped 1=dram 2=nvm
        for i in 0..200u64 {
            match rng.gen_range(3) {
                1 => {
                    r.map_page(i, Tier::Dram, PhysPage(i));
                    layout[i as usize] = 1;
                }
                2 => {
                    r.map_page(i, Tier::Nvm, PhysPage(i));
                    layout[i as usize] = 2;
                }
                _ => {}
            }
        }
        for _ in 0..200 {
            let lo = rng.gen_range(200);
            let hi = lo + rng.gen_range(200 - lo + 1);
            let dram: Vec<u64> = (lo..hi).filter(|&i| layout[i as usize] == 1).collect();
            if !dram.is_empty() {
                let k = rng.gen_range(dram.len() as u64);
                assert_eq!(r.kth_dram_page_in(lo, hi, k), Some(dram[k as usize]));
            }
            let nvm: Vec<u64> = (lo..hi).filter(|&i| layout[i as usize] == 2).collect();
            if !nvm.is_empty() {
                let k = rng.gen_range(nvm.len() as u64);
                assert_eq!(r.kth_nvm_page_in(lo, hi, k), Some(nvm[k as usize]));
            }
        }
    }

    #[test]
    fn ssd_residency_tracked_across_transitions() {
        let mut s = AddressSpace::new();
        let id = s.mmap(6 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        r.map_page(0, Tier::Dram, PhysPage(0));
        r.map_page(1, Tier::Nvm, PhysPage(0));
        r.map_page(2, Tier::Ssd, PhysPage(0));
        r.map_page(3, Tier::Ssd, PhysPage(1));
        assert_eq!(r.ssd_pages(), 2);
        assert_eq!(r.kth_ssd_page_in(0, 6, 0), Some(2));
        assert_eq!(r.kth_ssd_page_in(0, 6, 1), Some(3));
        assert_eq!(r.kth_nvm_page_in(0, 6, 0), Some(1), "SSD pages are not NVM");
        assert_eq!(r.kth_nvm_page_in(0, 6, 1), None);
        // Promotion SSD -> DRAM clears the SSD bit; demotion sets it.
        r.remap_page(2, Tier::Dram, PhysPage(1));
        assert_eq!((r.ssd_pages(), r.dram_pages()), (1, 2));
        r.remap_page(1, Tier::Ssd, PhysPage(2));
        assert_eq!(r.ssd_pages(), 2);
        r.unmap_page(3);
        assert_eq!(r.ssd_pages(), 1);
        assert_eq!(r.ssd_pages_in(0, 2), 1);
    }

    #[test]
    fn tenant_frames_split_three_tiers() {
        let mut s = AddressSpace::new();
        let id = s.mmap(6 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        r.map_page(0, Tier::Dram, PhysPage(0));
        r.map_page(1, Tier::Nvm, PhysPage(0));
        r.map_page(2, Tier::Nvm, PhysPage(1));
        r.map_page(3, Tier::Ssd, PhysPage(0));
        let tf = s.tenant_frames(TenantId::SOLO);
        assert_eq!(tf.dram_pages, 1);
        assert_eq!(tf.nvm_pages, 2);
        assert_eq!(tf.ssd_pages, 1);
        assert_eq!(tf.resident_pages(), 4);
        assert_eq!(tf.pages_of(Tier::Dram), 1);
        assert_eq!(tf.pages_of(Tier::Nvm), 2);
        assert_eq!(tf.pages_of(Tier::Ssd), 1);
        // Snapshot/restore rebuilds the SSD index from page states.
        let back = AddressSpace::restore(s.snapshot());
        assert_eq!(back.region(id).ssd_pages(), 1);
        assert_eq!(back.region(id).kth_ssd_page_in(0, 6, 0), Some(3));
    }

    #[test]
    fn munmap_removes_region() {
        let mut s = AddressSpace::new();
        let id = s.mmap(1 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.munmap(id);
        assert_eq!(r.id(), id);
        assert_eq!(s.regions().count(), 0);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut s = AddressSpace::new();
        let id = s.mmap(1 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        r.map_page(0, Tier::Dram, PhysPage(0));
        r.map_page(0, Tier::Dram, PhysPage(1));
    }

    #[test]
    fn mapped_bytes_sums_regions() {
        let mut s = AddressSpace::new();
        let a = s.mmap(4 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let b = s.mmap(2 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        s.region_mut(a).map_page(0, Tier::Dram, PhysPage(0));
        s.region_mut(b).map_page(1, Tier::Nvm, PhysPage(0));
        assert_eq!(s.mapped_bytes(), 2 * PageSize::Huge2M.bytes());
    }
}

#[cfg(test)]
mod typed_error_tests {
    use super::*;

    fn region() -> (AddressSpace, RegionId) {
        let mut s = AddressSpace::new();
        let id = s.mmap(4 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        (s, id)
    }

    #[test]
    fn try_variants_return_typed_errors_without_panicking() {
        let (mut s, id) = region();
        let r = s.region_mut(id);
        r.map_page(0, Tier::Nvm, PhysPage(0));
        assert_eq!(
            r.try_map_page(0, Tier::Dram, PhysPage(1)),
            Err(StateError::AlreadyMapped { index: 0 })
        );
        assert_eq!(
            r.try_unmap_page(1),
            Err(StateError::BadTransition {
                op: "unmap",
                index: 1,
                state: PageState::Unmapped
            })
        );
        assert!(r.try_remap_page(1, Tier::Dram, PhysPage(1)).is_err());
        assert!(r.try_set_wp(1, true).is_err());
        r.set_wp(0, true);
        assert_eq!(
            r.try_swap_out_page(0, 0),
            Err(StateError::WriteProtected { index: 0 })
        );
        assert!(r.try_swap_in_page(0, Tier::Dram, PhysPage(2)).is_err());
        // The region is untouched by the failed transitions.
        assert_eq!(r.mapped_pages(), 1);
        assert_eq!(r.wp_pages(), 1);
    }

    #[test]
    fn error_display_matches_legacy_panic_messages() {
        assert_eq!(
            StateError::AlreadyMapped { index: 3 }.to_string(),
            "page 3 already mapped"
        );
        assert_eq!(
            StateError::WriteProtected { index: 5 }.to_string(),
            "page 5 is write-protected (migrating)"
        );
        assert_eq!(
            StateError::BadTransition {
                op: "swap_in",
                index: 2,
                state: PageState::Unmapped
            }
            .to_string(),
            "swap_in of page 2 in state Unmapped"
        );
    }

    #[test]
    fn try_munmap_of_missing_region_is_typed() {
        let (mut s, id) = region();
        s.munmap(id);
        assert_eq!(
            s.try_munmap(id).map(|_| ()).unwrap_err(),
            StateError::MissingRegion(id)
        );
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[test]
    fn space_snapshot_restore_preserves_states_and_indices() {
        let mut s = AddressSpace::new();
        let a = s.mmap(8 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let gone = s.mmap(1 << 21, PageSize::Huge2M, RegionKind::SmallAnon);
        let b = s.mmap(4 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        s.munmap(gone);
        {
            let r = s.region_mut(a);
            r.map_page(0, Tier::Dram, PhysPage(0));
            r.map_page(1, Tier::Nvm, PhysPage(1));
            r.map_page(2, Tier::Nvm, PhysPage(2));
            r.set_wp(1, true);
            r.map_page(3, Tier::Nvm, PhysPage(3));
            r.swap_out_page(3, 9);
        }
        s.region_mut(b).map_page(0, Tier::Dram, PhysPage(4));

        let snap = s.snapshot();
        let mut back = AddressSpace::restore(snap.clone());
        assert_eq!(back.snapshot(), snap, "snapshot round-trips");
        let r = back.region(a);
        assert_eq!(r.mapped_pages(), 3);
        assert_eq!(r.dram_pages(), 1);
        assert_eq!(r.wp_pages(), 1);
        assert_eq!(r.swapped_pages(), 1);
        assert_eq!(r.wp_pages_in(0, 8), 1);
        assert_eq!(r.kth_nvm_page_in(0, 8, 1), Some(2));
        assert_eq!(r.state(3), PageState::Swapped { slot: 9 });
        assert_eq!(back.region(b).dram_pages(), 1);
        assert!(back.try_munmap(gone).is_err(), "unmapped slot preserved");
        // New mmaps continue from the same base as the original.
        let mut s2 = back;
        let c = s2.mmap(1 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        assert!(s2.region(c).range().base.0 > s2.region(b).range().end());
    }
}

#[cfg(test)]
mod swap_tests {
    use super::*;

    #[test]
    fn swap_out_and_in_round_trip() {
        let mut s = AddressSpace::new();
        let id = s.mmap(2 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        r.map_page(0, Tier::Nvm, PhysPage(7));
        let (tier, phys) = r.swap_out_page(0, 42);
        assert_eq!((tier, phys), (Tier::Nvm, PhysPage(7)));
        assert_eq!(r.swapped_pages(), 1);
        assert_eq!(r.mapped_pages(), 0);
        assert_eq!(r.state(0), PageState::Swapped { slot: 42 });
        let slot = r.swap_in_page(0, Tier::Dram, PhysPage(3));
        assert_eq!(slot, 42);
        assert_eq!(r.swapped_pages(), 0);
        assert_eq!(r.dram_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "write-protected")]
    fn swapping_a_migrating_page_panics() {
        let mut s = AddressSpace::new();
        let id = s.mmap(1 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        r.map_page(0, Tier::Nvm, PhysPage(0));
        r.set_wp(0, true);
        r.swap_out_page(0, 0);
    }

    #[test]
    #[should_panic(expected = "swap_in of page")]
    fn swap_in_of_mapped_page_panics() {
        let mut s = AddressSpace::new();
        let id = s.mmap(1 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        r.map_page(0, Tier::Nvm, PhysPage(0));
        r.swap_in_page(0, Tier::Dram, PhysPage(1));
    }

    #[test]
    fn swapped_pages_count_as_unmapped_for_residency() {
        let mut s = AddressSpace::new();
        let id = s.mmap(4 << 21, PageSize::Huge2M, RegionKind::ManagedHeap);
        let r = s.region_mut(id);
        for i in 0..4 {
            r.map_page(i, Tier::Nvm, PhysPage(i));
        }
        r.swap_out_page(2, 0);
        assert_eq!(r.mapped_pages_in(0, 4), 3);
        assert_eq!(r.kth_unmapped_page_in(0, 4, 0), Some(2));
    }
}
