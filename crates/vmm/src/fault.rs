//! Userfaultfd-style fault channel model.
//!
//! HeMem registers managed ranges with `userfaultfd`; the kernel forwards
//! page-missing and write-protection faults to a dedicated user-level
//! fault-handling thread (§3.2). We model the costs of that round trip:
//! the faulting thread stalls for kernel entry + event delivery + handler
//! service + wakeup. Write-protection faults during migration additionally
//! wait for the in-flight copy to finish.

use hemem_sim::Ns;

use crate::addr::PageId;

/// Why a fault was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// First touch of an unmapped page.
    Missing,
    /// Store hit a write-protected (migrating) page.
    WriteProtect,
}

/// A fault event delivered to the manager's fault thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Faulting page.
    pub page: PageId,
    /// Fault class.
    pub kind: FaultKind,
    /// Whether the faulting access was a store.
    pub is_write: bool,
}

/// Fault-path cost parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FaultConfig {
    /// Kernel fault entry + userfaultfd event delivery to the handler.
    pub deliver: Ns,
    /// Handler-side service (ioctl to map a zero page / adjust protection).
    pub service: Ns,
    /// Wakeup of the faulting thread.
    pub wake: Ns,
    /// Faults per second HeMem's single fault-handling thread sustains;
    /// a fault storm queues behind it (§5: "userfaultfd can slow down
    /// applications with frequent page faults").
    pub thread_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        // A userfaultfd round trip costs several microseconds; the paper
        // notes this is irrelevant at steady state because big-memory
        // applications fault only during warm-up (§5, "Overhead of
        // userfaultfd").
        FaultConfig {
            deliver: Ns::micros(3),
            service: Ns::micros(4),
            wake: Ns::micros(2),
            thread_rate: 250_000.0,
        }
    }
}

impl FaultConfig {
    /// Total stall of a faulting thread, excluding any wait for migration.
    pub fn round_trip(&self) -> Ns {
        self.deliver + self.service + self.wake
    }
}

/// The single fault-handling thread: a FIFO server with a fixed service
/// rate. Faults arriving faster than [`FaultConfig::thread_rate`] queue,
/// and every queued fault stalls its application thread for the backlog.
#[derive(Debug, Clone, Default)]
pub struct FaultThread {
    free_at: Ns,
}

impl FaultThread {
    /// Creates an idle fault thread.
    pub fn new() -> FaultThread {
        FaultThread::default()
    }

    /// Admits one fault at `now`; returns the extra stall beyond the base
    /// round trip (queueing behind earlier faults).
    pub fn admit(&mut self, now: Ns, cfg: &FaultConfig) -> Ns {
        let service = Ns::from_secs_f64(1.0 / cfg.thread_rate.max(1.0));
        let start = now.max(self.free_at);
        self.free_at = start + service;
        start.saturating_sub(now)
    }

    /// Stalls the handler until at least `now + dur`: it accepts no fault
    /// before then, and every fault arriving meanwhile queues behind the
    /// stall. Models the handler thread being descheduled or wedged in a
    /// slow kernel path; used by fault injection.
    pub fn stall(&mut self, now: Ns, dur: Ns) {
        self.free_at = self.free_at.max(now + dur);
    }

    /// Current backlog at the handler.
    pub fn backlog(&self, now: Ns) -> Ns {
        self.free_at.saturating_sub(now)
    }
}

/// Cumulative fault counters.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct FaultStats {
    /// Page-missing faults handled.
    pub missing: u64,
    /// Write-protection faults handled.
    pub wp: u64,
    /// Total stall time inflicted on faulting threads.
    pub stall: Ns,
}

impl FaultStats {
    /// Records a handled fault.
    pub fn record(&mut self, kind: FaultKind, stall: Ns) {
        match kind {
            FaultKind::Missing => self.missing += 1,
            FaultKind::WriteProtect => self.wp += 1,
        }
        self.stall += stall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::RegionId;

    #[test]
    fn round_trip_sums_components() {
        let c = FaultConfig::default();
        assert_eq!(c.round_trip(), Ns::micros(9));
    }

    #[test]
    fn stats_record_by_kind() {
        let mut s = FaultStats::default();
        s.record(FaultKind::Missing, Ns::micros(9));
        s.record(FaultKind::Missing, Ns::micros(9));
        s.record(FaultKind::WriteProtect, Ns::micros(50));
        assert_eq!(s.missing, 2);
        assert_eq!(s.wp, 1);
        assert_eq!(s.stall, Ns::micros(68));
    }

    #[test]
    fn fault_thread_queues_storms() {
        let cfg = FaultConfig::default();
        let mut t = FaultThread::new();
        // First fault: no queueing.
        assert_eq!(t.admit(Ns::ZERO, &cfg), Ns::ZERO);
        // A burst of 1000 faults at the same instant queues linearly.
        let mut last = Ns::ZERO;
        for _ in 0..1000 {
            last = t.admit(Ns::ZERO, &cfg);
        }
        assert!(last >= Ns::micros(4_000), "1000 faults at 250k/s: {last}");
        // After the backlog drains, admission is free again.
        let after = Ns(t.backlog(Ns::ZERO).as_nanos() + 1);
        assert_eq!(t.admit(after, &cfg), Ns::ZERO);
    }

    #[test]
    fn fault_thread_keeps_up_with_slow_arrivals() {
        let cfg = FaultConfig::default();
        let mut t = FaultThread::new();
        for i in 0..100u64 {
            // One fault per 100 us: far below 250 k/s.
            let stall = t.admit(Ns::micros(100 * i), &cfg);
            assert_eq!(stall, Ns::ZERO, "fault {i} queued unexpectedly");
        }
    }

    #[test]
    fn stalled_thread_queues_arrivals_behind_the_stall() {
        let cfg = FaultConfig::default();
        let mut t = FaultThread::new();
        t.stall(Ns::ZERO, Ns::millis(1));
        assert_eq!(t.backlog(Ns::ZERO), Ns::millis(1));
        // A fault during the stall waits out the remainder.
        let stall = t.admit(Ns::micros(200), &cfg);
        assert_eq!(stall, Ns::micros(800));
        // A stall never shortens an existing backlog.
        t.stall(Ns::ZERO, Ns::micros(1));
        assert!(t.backlog(Ns::micros(200)) > Ns::micros(800));
    }

    #[test]
    fn fault_event_is_plain_data() {
        let f = Fault {
            page: PageId {
                region: RegionId(0),
                index: 3,
            },
            kind: FaultKind::WriteProtect,
            is_write: true,
        };
        assert_eq!(f.kind, FaultKind::WriteProtect);
        assert!(f.is_write);
    }
}
