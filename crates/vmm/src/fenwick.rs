//! Fenwick (binary indexed) tree over page flags.
//!
//! Access batches cover arbitrary virtual sub-ranges; to split a batch's
//! traffic between tiers the machine needs "how many pages of `[lo, hi)`
//! are DRAM-resident" in O(log n), with O(log n) updates as pages migrate.

/// A Fenwick tree of 0/1 page flags with prefix-sum range queries.
#[derive(Debug, Clone)]
pub struct FlagTree {
    tree: Vec<u32>,
    flags: Vec<bool>,
}

impl FlagTree {
    /// Creates a tree over `n` pages, all flags clear.
    pub fn new(n: usize) -> FlagTree {
        FlagTree {
            tree: vec![0; n + 1],
            flags: vec![false; n],
        }
    }

    /// Number of pages tracked.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the tree tracks zero pages.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Current flag of page `i`.
    pub fn get(&self, i: usize) -> bool {
        self.flags[i]
    }

    /// Sets page `i`'s flag, updating sums; idempotent.
    pub fn set(&mut self, i: usize, value: bool) {
        if self.flags[i] == value {
            return;
        }
        self.flags[i] = value;
        let delta: i64 = if value { 1 } else { -1 };
        let mut idx = i + 1;
        while idx < self.tree.len() {
            self.tree[idx] = (self.tree[idx] as i64 + delta) as u32;
            idx += idx & idx.wrapping_neg();
        }
    }

    fn prefix(&self, mut idx: usize) -> u64 {
        let mut s = 0u64;
        while idx > 0 {
            s += self.tree[idx] as u64;
            idx -= idx & idx.wrapping_neg();
        }
        s
    }

    /// Number of set flags among pages `[lo, hi)`.
    pub fn count_range(&self, lo: usize, hi: usize) -> u64 {
        if hi <= lo {
            return 0;
        }
        let hi = hi.min(self.flags.len());
        self.prefix(hi) - self.prefix(lo)
    }

    /// Total set flags.
    pub fn count(&self) -> u64 {
        self.prefix(self.flags.len())
    }

    /// Index of the first set flag in `[lo, len)`, or `None`. O(log²n):
    /// a binary search over prefix sums — the region tracker walks its
    /// candidate index with this instead of scanning pages.
    pub fn first_set_in(&self, lo: usize) -> Option<usize> {
        let n = self.flags.len();
        if lo >= n {
            return None;
        }
        let base = self.prefix(lo);
        if self.prefix(n) == base {
            return None;
        }
        // Smallest hi with prefix(hi) > base; the set flag is hi - 1.
        let (mut left, mut right) = (lo + 1, n);
        while left < right {
            let mid = left + (right - left) / 2;
            if self.prefix(mid) > base {
                right = mid;
            } else {
                left = mid + 1;
            }
        }
        Some(left - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_count() {
        let mut t = FlagTree::new(10);
        t.set(2, true);
        t.set(5, true);
        t.set(9, true);
        assert_eq!(t.count(), 3);
        assert_eq!(t.count_range(0, 10), 3);
        assert_eq!(t.count_range(3, 9), 1);
        assert_eq!(t.count_range(2, 3), 1);
        assert!(t.get(2));
        assert!(!t.get(3));
    }

    #[test]
    fn set_is_idempotent_and_reversible() {
        let mut t = FlagTree::new(4);
        t.set(1, true);
        t.set(1, true);
        assert_eq!(t.count(), 1);
        t.set(1, false);
        t.set(1, false);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn empty_ranges() {
        let mut t = FlagTree::new(4);
        t.set(0, true);
        assert_eq!(t.count_range(2, 2), 0);
        assert_eq!(t.count_range(3, 1), 0);
        assert_eq!(t.count_range(0, 100), 1, "hi clamps to len");
    }

    #[test]
    fn first_set_walks_the_flags() {
        let mut t = FlagTree::new(10);
        assert_eq!(t.first_set_in(0), None);
        t.set(3, true);
        t.set(7, true);
        assert_eq!(t.first_set_in(0), Some(3));
        assert_eq!(t.first_set_in(3), Some(3));
        assert_eq!(t.first_set_in(4), Some(7));
        assert_eq!(t.first_set_in(8), None);
        assert_eq!(t.first_set_in(99), None);
    }

    #[test]
    fn matches_naive_on_random_ops() {
        use hemem_sim::Rng;
        let mut rng = Rng::new(99);
        let n = 257;
        let mut t = FlagTree::new(n);
        let mut naive = vec![false; n];
        for _ in 0..2_000 {
            let i = rng.gen_range(n as u64) as usize;
            let v = rng.bernoulli(0.5);
            t.set(i, v);
            naive[i] = v;
            let lo = rng.gen_range(n as u64) as usize;
            let hi = lo + rng.gen_range((n - lo) as u64 + 1) as usize;
            let expect = naive[lo..hi].iter().filter(|&&b| b).count() as u64;
            assert_eq!(t.count_range(lo, hi), expect);
        }
    }
}
