//! Address and page-size types shared across the virtual-memory substrate.

use core::fmt;

/// Memory tier a physical page lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Tier {
    /// Fast, small DRAM.
    Dram,
    /// Slow, large NVM.
    Nvm,
    /// Block-style SSD swap device (third capacity tier; pages here are
    /// not directly accessible and must be promoted on a major fault).
    Ssd,
}

impl Tier {
    /// The canonical tier order, fastest first. This table is the single
    /// source of truth for tier iteration: machine configurations expose
    /// a prefix of it (see `MachineCore::tiers` in `hemem-core`), and
    /// `scripts/check.sh` rejects any non-test code that hardcodes the
    /// DRAM/NVM pair instead of iterating it.
    pub const ALL: [Tier; 3] = [Tier::Dram, Tier::Nvm, Tier::Ssd];

    /// Position in the canonical order: 0 = fastest.
    pub const fn rank(self) -> usize {
        match self {
            Tier::Dram => 0,
            Tier::Nvm => 1,
            Tier::Ssd => 2,
        }
    }

    /// The next slower tier (demotion target), if any.
    pub const fn next_lower(self) -> Option<Tier> {
        match self {
            Tier::Dram => Some(Tier::Nvm),
            Tier::Nvm => Some(Tier::Ssd),
            Tier::Ssd => None,
        }
    }

    /// The fallback byte-addressable tier for allocation: the companion
    /// tier a fault handler tries when `self` is exhausted. SSD is never
    /// a fallback target — it is reached only by explicit demotion.
    pub fn other(self) -> Tier {
        match self {
            Tier::Dram => Tier::Nvm,
            Tier::Nvm | Tier::Ssd => Tier::Dram,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Dram => write!(f, "DRAM"),
            Tier::Nvm => write!(f, "NVM"),
            Tier::Ssd => write!(f, "SSD"),
        }
    }
}

/// Hardware page sizes of x86-64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PageSize {
    /// 4 KiB base pages.
    Base4K,
    /// 2 MiB huge pages (HeMem's tracking and migration granularity).
    Huge2M,
    /// 1 GiB giant pages.
    Giga1G,
}

impl PageSize {
    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Base4K => 4 << 10,
            PageSize::Huge2M => 2 << 20,
            PageSize::Giga1G => 1 << 30,
        }
    }

    /// Page-table walk depth to reach a leaf entry of this size.
    pub const fn walk_levels(self) -> u32 {
        match self {
            PageSize::Base4K => 4,
            PageSize::Huge2M => 3,
            PageSize::Giga1G => 2,
        }
    }

    /// Number of pages of this size needed to back `bytes`, rounded up.
    pub const fn pages_for(self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes())
    }
}

/// A virtual address (paper-style: within one process's address space).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Index of the page of size `ps` containing this address, relative to
    /// address zero.
    pub fn page_index(self, ps: PageSize) -> u64 {
        self.0 / ps.bytes()
    }

    /// Offset within its page.
    pub fn page_offset(self, ps: PageSize) -> u64 {
        self.0 % ps.bytes()
    }
}

/// A half-open virtual address range `[base, base + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct VirtRange {
    /// First address.
    pub base: VirtAddr,
    /// Length in bytes.
    pub len: u64,
}

impl VirtRange {
    /// Creates a range.
    pub fn new(base: u64, len: u64) -> VirtRange {
        VirtRange {
            base: VirtAddr(base),
            len,
        }
    }

    /// One past the last address.
    pub fn end(&self) -> u64 {
        self.base.0 + self.len
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr.0 >= self.base.0 && addr.0 < self.end()
    }

    /// Whether this range overlaps `other`.
    pub fn overlaps(&self, other: &VirtRange) -> bool {
        self.base.0 < other.end() && other.base.0 < self.end()
    }

    /// Number of pages of size `ps` covering the range.
    pub fn page_count(&self, ps: PageSize) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let first = self.base.0 / ps.bytes();
        let last = (self.end() - 1) / ps.bytes();
        last - first + 1
    }
}

/// Identifier of a tenant (one colocated process) sharing the machine.
///
/// Every [`crate::Region`] carries the tenant that mapped it; a
/// single-process machine uses [`TenantId::SOLO`] everywhere, which is
/// why the tenant dimension is invisible to single-tenant runs.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The only tenant of a single-process machine.
    pub const SOLO: TenantId = TenantId(0);
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a managed memory region (one `mmap`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct RegionId(pub u32);

/// A page within a region: `(region, index-within-region)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct PageId {
    /// Owning region.
    pub region: RegionId,
    /// Page index within the region.
    pub index: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_bytes() {
        assert_eq!(PageSize::Base4K.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Giga1G.bytes(), 1024 * 1024 * 1024);
    }

    #[test]
    fn walk_depth_shrinks_with_page_size() {
        assert!(PageSize::Base4K.walk_levels() > PageSize::Huge2M.walk_levels());
        assert!(PageSize::Huge2M.walk_levels() > PageSize::Giga1G.walk_levels());
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(PageSize::Base4K.pages_for(1), 1);
        assert_eq!(PageSize::Base4K.pages_for(4096), 1);
        assert_eq!(PageSize::Base4K.pages_for(4097), 2);
        assert_eq!(PageSize::Huge2M.pages_for(0), 0);
    }

    #[test]
    fn range_contains_and_overlaps() {
        let r = VirtRange::new(0x1000, 0x1000);
        assert!(r.contains(VirtAddr(0x1000)));
        assert!(r.contains(VirtAddr(0x1FFF)));
        assert!(!r.contains(VirtAddr(0x2000)));
        assert!(r.overlaps(&VirtRange::new(0x1800, 0x1000)));
        assert!(!r.overlaps(&VirtRange::new(0x2000, 0x1000)));
        assert!(!r.overlaps(&VirtRange::new(0, 0x1000)));
    }

    #[test]
    fn page_counting_spans_boundaries() {
        let ps = PageSize::Base4K;
        assert_eq!(VirtRange::new(0, 4096).page_count(ps), 1);
        assert_eq!(VirtRange::new(100, 4096).page_count(ps), 2);
        assert_eq!(VirtRange::new(0, 0).page_count(ps), 0);
    }

    #[test]
    fn tier_other() {
        assert_eq!(Tier::Dram.other(), Tier::Nvm);
        assert_eq!(Tier::Nvm.other(), Tier::Dram);
        assert_eq!(Tier::Ssd.other(), Tier::Dram);
        assert_eq!(
            format!("{}/{}/{}", Tier::Dram, Tier::Nvm, Tier::Ssd),
            "DRAM/NVM/SSD"
        );
    }

    #[test]
    fn tier_table_is_ordered_by_rank() {
        for (i, t) in Tier::ALL.iter().enumerate() {
            assert_eq!(t.rank(), i);
        }
        assert_eq!(Tier::Dram.next_lower(), Some(Tier::Nvm));
        assert_eq!(Tier::Nvm.next_lower(), Some(Tier::Ssd));
        assert_eq!(Tier::Ssd.next_lower(), None);
    }

    #[test]
    fn virt_addr_page_math() {
        let a = VirtAddr(2 * 1024 * 1024 + 5);
        assert_eq!(a.page_index(PageSize::Huge2M), 1);
        assert_eq!(a.page_offset(PageSize::Huge2M), 5);
    }
}
