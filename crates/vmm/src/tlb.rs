//! TLB and page-table-walk cost model.
//!
//! Two costs matter to tiered memory management (§2.3): the page-table
//! walk on a TLB miss (deeper for smaller pages), and the TLB shootdown
//! required whenever mappings change or accessed/dirty bits are cleared —
//! an inter-processor interrupt to every core running the address space,
//! stalling them all.

use hemem_sim::Ns;

use crate::addr::PageSize;

/// TLB/walk cost parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TlbConfig {
    /// Cost of one page-table level reference during a walk.
    pub walk_level_cost: Ns,
    /// Fixed cost of initiating a shootdown (IPI send + local flush).
    pub shootdown_base: Ns,
    /// Additional cost per remote core interrupted.
    pub shootdown_per_core: Ns,
    /// TLB reach in entries; misses beyond this working set pay walks.
    pub entries: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            walk_level_cost: Ns::nanos(25),
            shootdown_base: Ns::micros(4),
            shootdown_per_core: Ns::micros(1),
            entries: 1536,
        }
    }
}

/// Cumulative TLB event counters.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct TlbStats {
    /// Shootdowns issued.
    pub shootdowns: u64,
    /// Total stall time charged for shootdowns.
    pub shootdown_stall: Ns,
}

/// The TLB model.
#[derive(Debug, Clone, Default)]
pub struct Tlb {
    config: TlbConfig,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with the given parameters.
    pub fn new(config: TlbConfig) -> Tlb {
        Tlb {
            config,
            stats: TlbStats::default(),
        }
    }

    /// Model parameters.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Cost of a full page-table walk for the given page size.
    pub fn walk_cost(&self, ps: PageSize) -> Ns {
        self.config.walk_level_cost.scale(ps.walk_levels() as f64)
    }

    /// Fraction of accesses that miss the TLB when randomly touching
    /// `pages` distinct pages.
    pub fn miss_fraction(&self, pages: u64) -> f64 {
        if pages == 0 {
            return 0.0;
        }
        let covered = (self.config.entries as f64 / pages as f64).min(1.0);
        1.0 - covered
    }

    /// Expected translation overhead per access over a working set of
    /// `pages` pages of size `ps`.
    pub fn translation_overhead(&self, pages: u64, ps: PageSize) -> Ns {
        self.walk_cost(ps).scale(self.miss_fraction(pages))
    }

    /// Charges one TLB shootdown covering `cores` cores; returns the stall
    /// each affected core experiences.
    pub fn shootdown(&mut self, cores: u32) -> Ns {
        let stall = self.config.shootdown_base
            + self
                .config
                .shootdown_per_core
                .scale(cores.saturating_sub(1) as f64);
        self.stats.shootdowns += 1;
        self.stats.shootdown_stall += stall;
        stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_cost_scales_with_depth() {
        let t = Tlb::default();
        assert!(t.walk_cost(PageSize::Base4K) > t.walk_cost(PageSize::Huge2M));
        assert_eq!(t.walk_cost(PageSize::Base4K), Ns(100));
        assert_eq!(t.walk_cost(PageSize::Giga1G), Ns(50));
    }

    #[test]
    fn miss_fraction_bounds() {
        let t = Tlb::default();
        assert_eq!(t.miss_fraction(0), 0.0);
        assert_eq!(t.miss_fraction(100), 0.0, "working set fits in TLB");
        let f = t.miss_fraction(1536 * 4);
        assert!((f - 0.75).abs() < 1e-12);
    }

    #[test]
    fn huge_pages_reduce_translation_overhead() {
        let t = Tlb::default();
        // 512 GB working set: 134M base pages vs 262K huge pages.
        let base = t.translation_overhead((512u64 << 30) / 4096, PageSize::Base4K);
        let huge = t.translation_overhead((512u64 << 30) >> 21, PageSize::Huge2M);
        assert!(base > huge);
    }

    #[test]
    fn shootdown_accounting() {
        let mut t = Tlb::default();
        let stall = t.shootdown(24);
        assert_eq!(stall, Ns::micros(4) + Ns::micros(23));
        assert_eq!(t.stats().shootdowns, 1);
        let single = t.shootdown(1);
        assert_eq!(single, Ns::micros(4));
        assert_eq!(t.stats().shootdowns, 2);
    }
}
