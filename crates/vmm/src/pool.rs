//! Physical page pools backed by per-tier DAX files.
//!
//! HeMem allocates both DRAM and NVM through DAX (direct-access) files
//! mapped at process startup (§3.2); the pool hands out fixed-size
//! physical pages from a file and takes them back on free. Allocation is
//! LIFO over a free list, which matches the prototype's FIFO free queues
//! closely enough for placement behaviour (what matters is *whether* a
//! DRAM page is free, not which one).
//!
//! The pool also tracks per-page write wear and supports *retiring* a
//! page: an NVM frame that takes a media error is pulled out of
//! circulation (the poisoned-page list real NVM drivers keep) and never
//! handed out again. `total = free + allocated + retired` always holds.

use crate::addr::{PageSize, Tier};

/// Index of a physical page within its tier's DAX file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct PhysPage(pub u64);

/// A fixed-capacity physical page allocator for one tier.
///
/// The pool is plain durable data (no derived indices), so it is
/// serializable as-is: [`PhysPool::snapshot`] captures a deep copy and
/// [`PhysPool::restore`] adopts one, which is what crash recovery uses.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PhysPool {
    tier: Tier,
    page_size: PageSize,
    total: u64,
    free: Vec<PhysPage>,
    allocated: u64,
    retired: Vec<PhysPage>,
    wear: Vec<u64>,
    /// Optional wear ceiling: [`PhysPool::note_write`] reports when a
    /// page's cumulative wear reaches it so the caller can retire the
    /// page at the boundary. `None` disables the check.
    #[serde(default)]
    retire_threshold: Option<u64>,
    /// Pages shed by a *device-health* retirement (a degraded device's
    /// accelerated wear retiring whole erase blocks), kept separate from
    /// the media-error `retired` list because these come back when the
    /// device is readmitted — media-poisoned pages never do.
    #[serde(default)]
    health_retired: Vec<PhysPage>,
    /// Of the `allocated` pages, how many are held as clean shadows
    /// (non-exclusive tiering) rather than by live mappings or journal
    /// entries. Shadows are reclaimable on demand, so this count is
    /// effectively free capacity; it never changes the conservation
    /// identity `total = free + allocated + retired + health_retired`.
    #[serde(default)]
    shadow_held: u64,
}

impl PhysPool {
    /// Creates a pool over `capacity_bytes` of tier memory, split into
    /// pages of `page_size`.
    pub fn new(tier: Tier, capacity_bytes: u64, page_size: PageSize) -> PhysPool {
        let total = capacity_bytes / page_size.bytes();
        // Free list initially in address order; pop from the back so the
        // first allocations get the lowest pages (deterministic layout).
        let free = (0..total).rev().map(PhysPage).collect();
        PhysPool {
            tier,
            page_size,
            total,
            free,
            allocated: 0,
            retired: Vec::new(),
            wear: vec![0; total as usize],
            retire_threshold: None,
            health_retired: Vec::new(),
            shadow_held: 0,
        }
    }

    /// The tier this pool allocates from.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Page size of this pool.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Total pages in the pool.
    pub fn total_pages(&self) -> u64 {
        self.total
    }

    /// Currently free pages.
    pub fn free_pages(&self) -> u64 {
        self.free.len() as u64
    }

    /// Currently allocated pages.
    pub fn allocated_pages(&self) -> u64 {
        self.allocated
    }

    /// Free bytes remaining.
    pub fn free_bytes(&self) -> u64 {
        self.free_pages() * self.page_size.bytes()
    }

    /// Allocated pages currently held as clean shadows.
    pub fn shadow_held_pages(&self) -> u64 {
        self.shadow_held
    }

    /// Marks one allocated page as shadow-held (its mapping was just
    /// promoted away and the frame retained as a clean copy).
    pub fn note_shadow(&mut self) {
        debug_assert!(
            self.shadow_held < self.allocated,
            "more shadows than allocated pages"
        );
        self.shadow_held += 1;
    }

    /// Marks one shadow-held page as no longer a shadow (it was freed,
    /// remapped onto, or dirtied away).
    pub fn note_unshadow(&mut self) {
        assert!(self.shadow_held > 0, "unshadow with no shadows held");
        self.shadow_held -= 1;
    }

    /// Allocates one page, or `None` when the tier is exhausted.
    pub fn alloc(&mut self) -> Option<PhysPage> {
        let p = self.free.pop()?;
        self.allocated += 1;
        Some(p)
    }

    /// Returns a page to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the page is out of range or the pool would exceed its
    /// capacity (double free).
    pub fn free(&mut self, page: PhysPage) {
        assert!(page.0 < self.total, "page {page:?} out of range");
        assert!(self.allocated > 0, "free with nothing allocated");
        debug_assert!(!self.free.contains(&page), "double free of {page:?}");
        self.allocated -= 1;
        self.free.push(page);
    }

    /// Records `writes` page-granularity writes of wear on an allocated
    /// page. Returns `true` when a retire threshold is set and the
    /// page's cumulative wear has reached it — true exactly at the
    /// boundary-crossing write, never one write late — so the caller
    /// retires the page at the threshold.
    ///
    /// # Panics
    ///
    /// Panics if the page is out of range.
    pub fn note_write(&mut self, page: PhysPage, writes: u64) -> bool {
        assert!(page.0 < self.total, "page {page:?} out of range");
        let worn = self.wear[page.0 as usize].saturating_add(writes);
        self.wear[page.0 as usize] = worn;
        self.retire_threshold.is_some_and(|t| worn >= t)
    }

    /// Sets or clears the wear ceiling [`PhysPool::note_write`] checks.
    pub fn set_retire_threshold(&mut self, threshold: Option<u64>) {
        self.retire_threshold = threshold;
    }

    /// The configured wear ceiling, if any.
    pub fn retire_threshold(&self) -> Option<u64> {
        self.retire_threshold
    }

    /// Write wear recorded on a page.
    pub fn wear(&self, page: PhysPage) -> u64 {
        assert!(page.0 < self.total, "page {page:?} out of range");
        self.wear[page.0 as usize]
    }

    /// Permanently retires an allocated page after a media error. The
    /// page moves to the poisoned list and is never allocated again.
    ///
    /// # Panics
    ///
    /// Panics if the page is out of range or nothing is allocated.
    pub fn retire(&mut self, page: PhysPage) {
        assert!(page.0 < self.total, "page {page:?} out of range");
        assert!(self.allocated > 0, "retire with nothing allocated");
        debug_assert!(!self.free.contains(&page), "retiring free page {page:?}");
        debug_assert!(!self.retired.contains(&page), "retiring {page:?} twice");
        self.allocated -= 1;
        self.retired.push(page);
    }

    /// Pages retired to the poisoned list.
    pub fn retired_pages(&self) -> u64 {
        self.retired.len() as u64
    }

    /// Sheds up to `n` *free* pages to the health-retired list (a
    /// degraded device's accelerated wear retirement shrinking usable
    /// capacity). Returns how many were actually shed — never more than
    /// the free list holds, so allocated pages are untouched.
    pub fn retire_free(&mut self, n: u64) -> u64 {
        let take = n.min(self.free_pages());
        for _ in 0..take {
            let p = self.free.pop().expect("bounded by free_pages");
            self.health_retired.push(p);
        }
        take
    }

    /// Returns every health-retired page to the free list (the device
    /// was readmitted) and reports how many came back. Media-retired
    /// pages stay poisoned.
    pub fn unretire_health(&mut self) -> u64 {
        let n = self.health_retired.len() as u64;
        // LIFO restore mirrors the LIFO shed: the free list returns to
        // its pre-degrade order.
        while let Some(p) = self.health_retired.pop() {
            self.free.push(p);
        }
        n
    }

    /// Pages currently shed by device-health retirement.
    pub fn health_retired_pages(&self) -> u64 {
        self.health_retired.len() as u64
    }

    /// Captures a serializable snapshot of the pool.
    pub fn snapshot(&self) -> PhysPool {
        self.clone()
    }

    /// Replaces this pool's state with a snapshot's.
    pub fn restore(&mut self, snap: PhysPool) {
        *self = snap;
    }

    /// Page-conservation invariant:
    /// `total = free + allocated + retired + health_retired`.
    pub fn conserved(&self) -> bool {
        self.total
            == self.free_pages()
                + self.allocated
                + self.retired_pages()
                + self.health_retired_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(pages: u64) -> PhysPool {
        PhysPool::new(
            Tier::Dram,
            pages * PageSize::Huge2M.bytes(),
            PageSize::Huge2M,
        )
    }

    #[test]
    fn alloc_until_exhausted() {
        let mut p = pool(3);
        assert_eq!(p.total_pages(), 3);
        let a = p.alloc().expect("page");
        let b = p.alloc().expect("page");
        let c = p.alloc().expect("page");
        assert_eq!(p.alloc(), None);
        assert_eq!(p.free_pages(), 0);
        assert_eq!(p.allocated_pages(), 3);
        assert_eq!(
            (a, b, c),
            (PhysPage(0), PhysPage(1), PhysPage(2)),
            "lowest pages first"
        );
    }

    #[test]
    fn free_makes_page_reusable() {
        let mut p = pool(1);
        let a = p.alloc().expect("page");
        assert_eq!(p.alloc(), None);
        p.free(a);
        assert_eq!(p.alloc(), Some(a));
    }

    #[test]
    fn free_bytes_tracks_page_size() {
        let mut p = pool(4);
        p.alloc();
        assert_eq!(p.free_bytes(), 3 * PageSize::Huge2M.bytes());
    }

    #[test]
    fn retired_pages_never_come_back() {
        let mut p = pool(2);
        let a = p.alloc().expect("page");
        p.retire(a);
        assert_eq!(p.retired_pages(), 1);
        assert_eq!(p.allocated_pages(), 0);
        let b = p.alloc().expect("page");
        assert_ne!(a, b, "retired page must not be reallocated");
        assert_eq!(p.alloc(), None, "capacity shrinks by the retired page");
        // total = free + allocated + retired.
        assert_eq!(
            p.total_pages(),
            p.free_pages() + p.allocated_pages() + p.retired_pages()
        );
    }

    #[test]
    fn wear_accumulates_per_page() {
        let mut p = pool(2);
        let a = p.alloc().expect("page");
        let b = p.alloc().expect("page");
        p.note_write(a, 3);
        p.note_write(a, 2);
        assert_eq!(p.wear(a), 5);
        assert_eq!(p.wear(b), 0, "wear is per page");
        // Wear survives free/realloc: it belongs to the physical cells.
        p.free(a);
        let a2 = p.alloc().expect("page");
        assert_eq!(a2, a);
        assert_eq!(p.wear(a2), 5);
    }

    #[test]
    fn snapshot_restore_round_trips_and_conserves() {
        let mut p = pool(4);
        let a = p.alloc().expect("page");
        let _b = p.alloc().expect("page");
        p.note_write(a, 7);
        p.retire(a);
        assert!(p.conserved());
        let snap = p.snapshot();
        p.alloc();
        p.alloc();
        assert_eq!(p.free_pages(), 0);
        p.restore(snap);
        assert_eq!(p.free_pages(), 2);
        assert_eq!(p.allocated_pages(), 1);
        assert_eq!(p.retired_pages(), 1);
        assert_eq!(p.wear(a), 7);
        assert!(p.conserved());
    }

    #[test]
    fn retire_signal_fires_exactly_at_threshold() {
        let mut p = pool(2);
        p.set_retire_threshold(Some(5));
        assert_eq!(p.retire_threshold(), Some(5));
        let a = p.alloc().expect("page");
        assert!(!p.note_write(a, 4), "below threshold: page stays");
        assert!(
            p.note_write(a, 1),
            "the write that reaches the threshold signals, not the next one"
        );
        assert_eq!(p.wear(a), 5, "signalled at the boundary, not past it");
        p.retire(a);
        assert!(p.conserved());
    }

    #[test]
    fn retire_signal_reports_overshoot_too() {
        let mut p = pool(1);
        p.set_retire_threshold(Some(3));
        let a = p.alloc().expect("page");
        assert!(p.note_write(a, 10), "a burst past the threshold signals");
    }

    #[test]
    fn no_threshold_never_signals() {
        let mut p = pool(1);
        let a = p.alloc().expect("page");
        assert!(!p.note_write(a, u64::MAX));
        assert_eq!(p.retire_threshold(), None);
    }

    #[test]
    fn health_retirement_sheds_and_restores_free_capacity() {
        let mut p = pool(8);
        let a = p.alloc().expect("page");
        // Shed half of the remaining free capacity.
        assert_eq!(p.retire_free(100), 7, "bounded by the free list");
        assert_eq!(p.health_retired_pages(), 7);
        assert_eq!(p.free_pages(), 0);
        assert_eq!(p.alloc(), None, "shed capacity is unallocatable");
        assert!(p.conserved());
        // A media error on the allocated page retires it for good.
        p.retire(a);
        // Readmit: health-shed pages come back, the poisoned one stays.
        assert_eq!(p.unretire_health(), 7);
        assert_eq!(p.free_pages(), 7);
        assert_eq!(p.health_retired_pages(), 0);
        assert_eq!(p.retired_pages(), 1);
        assert!(p.conserved());
        let b = p.alloc().expect("restored capacity allocates");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freeing_foreign_page_panics() {
        let mut p = pool(2);
        p.alloc();
        p.free(PhysPage(99));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let mut p = pool(2);
        let a = p.alloc().expect("page");
        let _b = p.alloc().expect("page");
        p.free(a);
        p.free(a);
    }
}
