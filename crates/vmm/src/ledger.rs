//! Access ledger: expected per-page access densities since the last
//! page-table scan.
//!
//! The simulator executes access *batches*, not individual loads and
//! stores, so page-table accessed/dirty bits cannot be set eagerly.
//! Instead every batch deposits its expected per-page access density here,
//! and scanning backends (Nimble, the HeMem-PT variants) sample the bits
//! lazily at scan time: a page with expected access count λ since the last
//! clear has its accessed bit set with probability `1 - exp(-λ)` — exactly
//! the probability a Poisson-distributed access stream touched it at
//! least once. This reproduces the paper's key page-table pathology: the
//! longer a scan interval (or the slower the scanner), the larger λ grows
//! and the more of memory *looks* hot (§2.3, Figure 8).

use std::collections::BTreeMap;

/// Per-page expected access densities accumulated over an interval.
#[derive(Debug, Clone, Default)]
pub struct AccessLedger {
    /// Difference map: at key `k`, the read/write density changes by the
    /// stored deltas. Densities are expected accesses *per page*.
    bounds: BTreeMap<u64, (f64, f64)>,
}

impl AccessLedger {
    /// Creates an empty ledger.
    pub fn new() -> AccessLedger {
        AccessLedger::default()
    }

    /// Adds `reads`/`writes` expected accesses spread uniformly over pages
    /// `[lo, hi)`.
    pub fn add(&mut self, lo: u64, hi: u64, reads: f64, writes: f64) {
        if hi <= lo || (reads == 0.0 && writes == 0.0) {
            return;
        }
        let pages = (hi - lo) as f64;
        let (r, w) = (reads / pages, writes / pages);
        let e = self.bounds.entry(lo).or_insert((0.0, 0.0));
        e.0 += r;
        e.1 += w;
        let e = self.bounds.entry(hi).or_insert((0.0, 0.0));
        e.0 -= r;
        e.1 -= w;
    }

    /// Expected (reads, writes) deposited on one page.
    pub fn probe(&self, page: u64) -> (f64, f64) {
        let mut r = 0.0;
        let mut w = 0.0;
        for (_, &(dr, dw)) in self.bounds.range(..=page) {
            r += dr;
            w += dw;
        }
        (r.max(0.0), w.max(0.0))
    }

    /// Iterates maximal constant-density segments `(lo, hi, reads_per_page,
    /// writes_per_page)` in address order, covering only non-zero spans.
    pub fn segments(&self) -> Vec<(u64, u64, f64, f64)> {
        let mut out = Vec::new();
        let mut r = 0.0;
        let mut w = 0.0;
        let mut prev: Option<u64> = None;
        for (&k, &(dr, dw)) in &self.bounds {
            if let Some(p) = prev {
                if k > p && (r > 1e-12 || w > 1e-12) {
                    out.push((p, k, r, w));
                }
            }
            r += dr;
            w += dw;
            prev = Some(k);
        }
        out
    }

    /// Total expected accesses recorded (reads, writes).
    pub fn totals(&self) -> (f64, f64) {
        self.segments()
            .iter()
            .fold((0.0, 0.0), |(ar, aw), &(lo, hi, r, w)| {
                let pages = (hi - lo) as f64;
                (ar + r * pages, aw + w * pages)
            })
    }

    /// Forgets everything (a scan cleared the accessed/dirty bits).
    pub fn clear(&mut self) {
        self.bounds.clear();
    }

    /// Whether anything was recorded since the last clear.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }
}

/// Probability that a Poisson stream with mean `lambda` produced at least
/// one event — the chance an accessed/dirty bit is set.
pub fn touched_probability(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        0.0
    } else {
        1.0 - (-lambda).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_range_uniform_density() {
        let mut l = AccessLedger::new();
        l.add(10, 20, 100.0, 50.0);
        assert_eq!(l.probe(10), (10.0, 5.0));
        assert_eq!(l.probe(19), (10.0, 5.0));
        assert_eq!(l.probe(9), (0.0, 0.0));
        assert_eq!(l.probe(20), (0.0, 0.0));
    }

    #[test]
    fn overlapping_ranges_accumulate() {
        let mut l = AccessLedger::new();
        l.add(0, 10, 10.0, 0.0);
        l.add(5, 15, 20.0, 10.0);
        assert_eq!(l.probe(3), (1.0, 0.0));
        assert_eq!(l.probe(7), (3.0, 1.0));
        assert_eq!(l.probe(12), (2.0, 1.0));
    }

    #[test]
    fn segments_partition_correctly() {
        let mut l = AccessLedger::new();
        l.add(0, 10, 10.0, 0.0);
        l.add(5, 15, 10.0, 10.0);
        let segs = l.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].0..segs[0].1, 0..5);
        assert_eq!(segs[1].0..segs[1].1, 5..10);
        assert_eq!(segs[2].0..segs[2].1, 10..15);
        let (r, w) = l.totals();
        assert!((r - 20.0).abs() < 1e-9);
        assert!((w - 10.0).abs() < 1e-9);
    }

    #[test]
    fn clear_resets() {
        let mut l = AccessLedger::new();
        l.add(0, 4, 8.0, 8.0);
        assert!(!l.is_empty());
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.probe(1), (0.0, 0.0));
    }

    #[test]
    fn empty_and_zero_adds_ignored() {
        let mut l = AccessLedger::new();
        l.add(5, 5, 100.0, 100.0);
        l.add(7, 6, 100.0, 100.0);
        l.add(0, 10, 0.0, 0.0);
        assert!(l.is_empty());
    }

    #[test]
    fn touched_probability_limits() {
        assert_eq!(touched_probability(0.0), 0.0);
        assert!(touched_probability(1e-9) < 1e-8);
        assert!((touched_probability(1.0) - 0.632).abs() < 0.001);
        assert!(touched_probability(100.0) > 0.999999);
    }

    #[test]
    fn long_interval_makes_everything_look_hot() {
        // The §2.3 pathology: double the interval, double λ, and the
        // touched probability saturates toward 1 for the whole range.
        let mut l = AccessLedger::new();
        l.add(0, 1000, 200.0, 0.0); // short interval: λ=0.2 per page
        let p_short = touched_probability(l.probe(0).0);
        l.add(0, 1000, 1800.0, 0.0); // 10x longer interval: λ=2.0
        let p_long = touched_probability(l.probe(0).0);
        assert!(p_short < 0.2);
        assert!(p_long > 0.85);
    }
}
