//! # hemem-vmm
//!
//! Virtual-memory substrate for the HeMem reproduction: address spaces and
//! managed regions with per-page tier residency ([`space`]), physical page
//! pools over DAX files ([`pool`]), the page-table scan cost model of
//! Figure 3 ([`ptscan`]), TLB/shootdown costs ([`tlb`]), lazily-sampled
//! accessed/dirty bits ([`ledger`]), and the userfaultfd-style fault
//! channel ([`fault`]).

#![warn(missing_docs)]

pub mod addr;
pub mod fault;
pub mod fenwick;
pub mod ledger;
pub mod pool;
pub mod ptscan;
pub mod space;
pub mod tlb;

pub use addr::{PageId, PageSize, RegionId, TenantId, Tier, VirtAddr, VirtRange};
pub use fault::{Fault, FaultConfig, FaultKind, FaultStats, FaultThread};
pub use fenwick::FlagTree;
pub use ledger::{touched_probability, AccessLedger};
pub use pool::{PhysPage, PhysPool};
pub use ptscan::ScanConfig;
pub use space::{
    AddressSpace, PageState, Region, RegionKind, RegionSnapshot, SpaceSnapshot, StateError,
    TenantFrames,
};
pub use tlb::{Tlb, TlbConfig, TlbStats};
