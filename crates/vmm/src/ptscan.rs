//! Page-table scan cost model (Figure 3).
//!
//! Traditional tiered-memory policy scans page tables for accessed/dirty
//! bits. The cost grows linearly in the number of leaf entries — which
//! explodes with base pages — and each entry reference on a deeper table
//! costs a bit more because more interior nodes stream through the cache.
//! Clearing bits additionally forces a TLB shootdown. With terabytes of
//! base-page-mapped memory a single scan takes seconds, which is the
//! scalability wall HeMem's sampling avoids (§2.3).

use hemem_sim::Ns;

use crate::addr::PageSize;
use crate::tlb::Tlb;

/// Scan cost parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScanConfig {
    /// Cost to check one leaf entry on a 4-level table (base pages).
    pub leaf_cost_4k: Ns,
    /// Cost per leaf entry at huge-page depth.
    pub leaf_cost_2m: Ns,
    /// Cost per leaf entry at giant-page depth.
    pub leaf_cost_1g: Ns,
}

impl Default for ScanConfig {
    fn default() -> Self {
        // Fitted so that scanning 1 TB of base pages takes ~1.6 s and huge
        // pages ~2.6 ms, matching Figure 3's orders of magnitude.
        ScanConfig {
            leaf_cost_4k: Ns::nanos(6),
            leaf_cost_2m: Ns::nanos(5),
            leaf_cost_1g: Ns::nanos(4),
        }
    }
}

impl ScanConfig {
    /// Cost to visit one leaf entry of the given page size.
    pub fn leaf_cost(&self, ps: PageSize) -> Ns {
        match ps {
            PageSize::Base4K => self.leaf_cost_4k,
            PageSize::Huge2M => self.leaf_cost_2m,
            PageSize::Giga1G => self.leaf_cost_1g,
        }
    }

    /// Pure scan time over `capacity_bytes` mapped with pages of `ps`.
    pub fn scan_time(&self, capacity_bytes: u64, ps: PageSize) -> Ns {
        let entries = ps.pages_for(capacity_bytes);
        Ns(self.leaf_cost(ps).as_nanos().saturating_mul(entries))
    }

    /// Scan time over an explicit number of entries.
    pub fn scan_entries(&self, entries: u64, ps: PageSize) -> Ns {
        Ns(self.leaf_cost(ps).as_nanos().saturating_mul(entries))
    }

    /// Full scan-and-clear pass: scan time plus the TLB shootdown charged
    /// on `tlb` for clearing accessed/dirty bits across `cores` cores.
    pub fn scan_and_clear(
        &self,
        capacity_bytes: u64,
        ps: PageSize,
        tlb: &mut Tlb,
        cores: u32,
    ) -> Ns {
        self.scan_time(capacity_bytes, ps) + tlb.shootdown(cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TB: u64 = 1 << 40;

    #[test]
    fn terabyte_base_scan_takes_seconds() {
        let c = ScanConfig::default();
        let t = c.scan_time(2 * TB, PageSize::Base4K);
        assert!(t >= Ns::secs(3), "2 TB base scan {t}");
        assert!(t < Ns::secs(5));
    }

    #[test]
    fn huge_pages_are_orders_faster() {
        let c = ScanConfig::default();
        let base = c.scan_time(TB, PageSize::Base4K);
        let huge = c.scan_time(TB, PageSize::Huge2M);
        let giga = c.scan_time(TB, PageSize::Giga1G);
        assert!(base.as_nanos() / huge.as_nanos() > 400, "4K/2M ratio");
        assert!(huge.as_nanos() / giga.as_nanos() > 400, "2M/1G ratio");
    }

    #[test]
    fn small_memory_scans_quickly_at_any_page_size() {
        // Figure 3: below a few tens of GB every page size scans fast.
        let c = ScanConfig::default();
        for ps in [PageSize::Base4K, PageSize::Huge2M, PageSize::Giga1G] {
            let t = c.scan_time(16 << 30, ps);
            assert!(t < Ns::millis(30), "{ps:?}: {t}");
        }
    }

    #[test]
    fn scan_and_clear_includes_shootdown() {
        let c = ScanConfig::default();
        let mut tlb = Tlb::default();
        let total = c.scan_and_clear(1 << 30, PageSize::Huge2M, &mut tlb, 24);
        assert!(total > c.scan_time(1 << 30, PageSize::Huge2M));
        assert_eq!(tlb.stats().shootdowns, 1);
    }

    #[test]
    fn scan_scales_linearly() {
        let c = ScanConfig::default();
        let one = c.scan_time(TB, PageSize::Base4K);
        let two = c.scan_time(2 * TB, PageSize::Base4K);
        assert_eq!(two.as_nanos(), 2 * one.as_nanos());
    }
}
