//! Arena-backed intrusive FIFO lists.
//!
//! HeMem tracks every managed page on exactly one of six FIFO queues (hot,
//! cold, free — per memory type). Pages move between queues on every PEBS
//! sample and policy pass, so O(1) unlink of an arbitrary element is
//! required. [`FifoArena`] stores `prev`/`next` indices per element in a
//! flat slab and lets any number of [`FifoList`]s thread through it; each
//! element may be on at most one list at a time, which the arena enforces.

/// Index of an element within a [`FifoArena`].
pub type Slot = u32;

/// Sentinel for "no element".
pub const NIL: Slot = u32::MAX;

/// Identifier of the list an element currently belongs to (opaque to the
/// arena; callers define the meaning).
pub type ListId = u8;

/// Marker for "not on any list".
pub const NO_LIST: ListId = u8::MAX;

#[derive(Debug, Clone, Copy)]
struct Links {
    prev: Slot,
    next: Slot,
    list: ListId,
}

/// Shared link storage for a set of FIFO lists over a dense slot space.
#[derive(Debug, Clone)]
pub struct FifoArena {
    links: Vec<Links>,
}

impl FifoArena {
    /// Creates an arena with `n` slots, all unlinked.
    pub fn new(n: usize) -> FifoArena {
        FifoArena {
            links: vec![
                Links {
                    prev: NIL,
                    next: NIL,
                    list: NO_LIST
                };
                n
            ],
        }
    }

    /// Empties the arena back to zero slots while keeping its allocated
    /// capacity, so a recycled tracker's next `grow_to` is a fill, not a
    /// reallocation. Logically identical to `FifoArena::new(0)`; any
    /// lists threaded through the arena must be re-created by the
    /// caller.
    pub fn reset(&mut self) {
        self.links.clear();
    }

    /// Pre-allocates capacity for `n` slots without creating them.
    pub fn reserve(&mut self, n: usize) {
        if n > self.links.len() {
            self.links.reserve(n - self.links.len());
        }
    }

    /// Grows the arena to at least `n` slots.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.links.len() {
            self.links.resize(
                n,
                Links {
                    prev: NIL,
                    next: NIL,
                    list: NO_LIST,
                },
            );
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the arena has no slots.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The list `slot` currently belongs to, or [`NO_LIST`].
    pub fn list_of(&self, slot: Slot) -> ListId {
        self.links[slot as usize].list
    }
}

/// One FIFO queue threaded through a [`FifoArena`].
///
/// Elements are pushed at the back and popped from the front; any element
/// can also be removed from the middle or pushed at the front (HeMem does
/// this to prioritize write-heavy pages for migration).
#[derive(Debug, Clone)]
pub struct FifoList {
    id: ListId,
    head: Slot,
    tail: Slot,
    len: usize,
}

impl FifoList {
    /// Creates an empty list with identity `id` (must be unique among the
    /// lists sharing an arena, and not [`NO_LIST`]).
    pub fn new(id: ListId) -> FifoList {
        assert_ne!(id, NO_LIST, "list id collides with the NO_LIST sentinel");
        FifoList {
            id,
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// This list's identity tag.
    pub fn id(&self) -> ListId {
        self.id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First element (next to pop), if any.
    pub fn front(&self) -> Option<Slot> {
        (self.head != NIL).then_some(self.head)
    }

    /// Last element, if any.
    pub fn back(&self) -> Option<Slot> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Appends `slot` at the back.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is already on a list.
    pub fn push_back(&mut self, arena: &mut FifoArena, slot: Slot) {
        let l = &mut arena.links[slot as usize];
        assert_eq!(l.list, NO_LIST, "slot {slot} already on list {}", l.list);
        l.list = self.id;
        l.prev = self.tail;
        l.next = NIL;
        if self.tail != NIL {
            arena.links[self.tail as usize].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        self.len += 1;
    }

    /// Inserts `slot` at the front (highest pop priority).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is already on a list.
    pub fn push_front(&mut self, arena: &mut FifoArena, slot: Slot) {
        let l = &mut arena.links[slot as usize];
        assert_eq!(l.list, NO_LIST, "slot {slot} already on list {}", l.list);
        l.list = self.id;
        l.next = self.head;
        l.prev = NIL;
        if self.head != NIL {
            arena.links[self.head as usize].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
        self.len += 1;
    }

    /// Removes and returns the front element.
    pub fn pop_front(&mut self, arena: &mut FifoArena) -> Option<Slot> {
        let slot = self.front()?;
        self.remove(arena, slot);
        Some(slot)
    }

    /// Unlinks `slot` from this list.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not on this list.
    pub fn remove(&mut self, arena: &mut FifoArena, slot: Slot) {
        let Links { prev, next, list } = arena.links[slot as usize];
        assert_eq!(
            list, self.id,
            "slot {slot} is on list {list}, not {}",
            self.id
        );
        if prev != NIL {
            arena.links[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            arena.links[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let l = &mut arena.links[slot as usize];
        l.prev = NIL;
        l.next = NIL;
        l.list = NO_LIST;
        self.len -= 1;
    }

    /// Moves `slot` (already on this list) to the front.
    pub fn move_to_front(&mut self, arena: &mut FifoArena, slot: Slot) {
        self.remove(arena, slot);
        self.push_front(arena, slot);
    }

    /// Moves `slot` (already on this list) to the back.
    pub fn move_to_back(&mut self, arena: &mut FifoArena, slot: Slot) {
        self.remove(arena, slot);
        self.push_back(arena, slot);
    }

    /// Iterates front-to-back without modifying the list.
    pub fn iter<'a>(&'a self, arena: &'a FifoArena) -> FifoIter<'a> {
        FifoIter {
            arena,
            cur: self.head,
        }
    }
}

/// Front-to-back iterator over a [`FifoList`].
pub struct FifoIter<'a> {
    arena: &'a FifoArena,
    cur: Slot,
}

impl Iterator for FifoIter<'_> {
    type Item = Slot;

    fn next(&mut self) -> Option<Slot> {
        if self.cur == NIL {
            return None;
        }
        let s = self.cur;
        self.cur = self.arena.links[s as usize].next;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut a = FifoArena::new(8);
        let mut l = FifoList::new(0);
        for s in [3, 1, 4, 1 + 4] {
            l.push_back(&mut a, s);
        }
        let got: Vec<Slot> = l.iter(&a).collect();
        assert_eq!(got, vec![3, 1, 4, 5]);
        assert_eq!(l.pop_front(&mut a), Some(3));
        assert_eq!(l.pop_front(&mut a), Some(1));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn push_front_prioritizes() {
        let mut a = FifoArena::new(4);
        let mut l = FifoList::new(1);
        l.push_back(&mut a, 0);
        l.push_back(&mut a, 1);
        l.push_front(&mut a, 2);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![2, 0, 1]);
    }

    #[test]
    fn remove_from_middle() {
        let mut a = FifoArena::new(5);
        let mut l = FifoList::new(2);
        for s in 0..5 {
            l.push_back(&mut a, s);
        }
        l.remove(&mut a, 2);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![0, 1, 3, 4]);
        assert_eq!(a.list_of(2), NO_LIST);
        l.remove(&mut a, 0);
        l.remove(&mut a, 4);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn element_moves_between_lists() {
        let mut a = FifoArena::new(3);
        let mut hot = FifoList::new(0);
        let mut cold = FifoList::new(1);
        hot.push_back(&mut a, 0);
        assert_eq!(a.list_of(0), 0);
        hot.remove(&mut a, 0);
        cold.push_back(&mut a, 0);
        assert_eq!(a.list_of(0), 1);
        assert!(hot.is_empty());
        assert_eq!(cold.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already on list")]
    fn double_insert_panics() {
        let mut a = FifoArena::new(2);
        let mut l = FifoList::new(0);
        l.push_back(&mut a, 0);
        l.push_back(&mut a, 0);
    }

    #[test]
    #[should_panic(expected = "is on list")]
    fn removing_from_wrong_list_panics() {
        let mut a = FifoArena::new(2);
        let mut l0 = FifoList::new(0);
        let mut l1 = FifoList::new(1);
        l0.push_back(&mut a, 0);
        l1.remove(&mut a, 0);
    }

    #[test]
    fn move_to_front_and_back() {
        let mut a = FifoArena::new(4);
        let mut l = FifoList::new(0);
        for s in 0..4 {
            l.push_back(&mut a, s);
        }
        l.move_to_front(&mut a, 2);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![2, 0, 1, 3]);
        l.move_to_back(&mut a, 0);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![2, 1, 3, 0]);
    }

    #[test]
    fn grow_preserves_links() {
        let mut a = FifoArena::new(2);
        let mut l = FifoList::new(0);
        l.push_back(&mut a, 0);
        l.push_back(&mut a, 1);
        a.grow_to(10);
        l.push_back(&mut a, 9);
        assert_eq!(l.iter(&a).collect::<Vec<_>>(), vec![0, 1, 9]);
    }
}
