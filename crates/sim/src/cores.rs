//! Proportional-share CPU core model.
//!
//! The evaluation socket has 24 cores. Application threads, the HeMem
//! background threads (page-fault handler, PEBS reader, policy thread) and
//! baseline kernel threads all compete for them. When the number of
//! runnable simulated threads exceeds the core count, CPU-bound work
//! dilates proportionally — this is what makes HeMem lose ~10% GUPS to
//! Memory Mode at 21+ threads in Figure 7 while a pure hardware approach
//! consumes no cores.

use crate::time::Ns;

/// Shared view of core occupancy.
#[derive(Debug, Clone)]
pub struct CoreModel {
    cores: u32,
    runnable: u32,
}

impl CoreModel {
    /// Creates a model of a socket with `cores` cores.
    pub fn new(cores: u32) -> CoreModel {
        assert!(cores > 0, "need at least one core");
        CoreModel { cores, runnable: 0 }
    }

    /// Number of physical cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Number of currently runnable simulated threads.
    pub fn runnable(&self) -> u32 {
        self.runnable
    }

    /// Marks one thread runnable for the duration of a work item.
    pub fn acquire(&mut self) {
        self.runnable += 1;
    }

    /// Marks one thread no longer runnable.
    pub fn release(&mut self) {
        debug_assert!(self.runnable > 0, "release without acquire");
        self.runnable = self.runnable.saturating_sub(1);
    }

    /// Current time-dilation factor for CPU-bound work: 1.0 while the
    /// machine is under-subscribed, `runnable / cores` once oversubscribed.
    pub fn dilation(&self) -> f64 {
        if self.runnable <= self.cores {
            1.0
        } else {
            self.runnable as f64 / self.cores as f64
        }
    }

    /// Dilates a CPU-bound work duration by the current oversubscription.
    pub fn dilate(&self, work: Ns) -> Ns {
        work.scale(self.dilation())
    }
}

/// RAII-free scoped helper: acquire on `begin`, pass the token back to
/// `end`. (The machine stores `CoreModel` inside a larger state struct, so
/// borrow-based RAII guards are impractical.)
#[derive(Debug)]
#[must_use = "a CoreToken must be returned via CoreModel-aware release"]
pub struct CoreToken(());

impl CoreModel {
    /// Acquires a core slot and returns a token the caller must pass to
    /// [`CoreModel::end`] when the work completes.
    pub fn begin(&mut self) -> CoreToken {
        self.acquire();
        CoreToken(())
    }

    /// Releases the slot associated with `token`.
    pub fn end(&mut self, token: CoreToken) {
        let CoreToken(()) = token;
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_dilation_until_oversubscribed() {
        let mut m = CoreModel::new(4);
        for _ in 0..4 {
            m.acquire();
        }
        assert_eq!(m.dilation(), 1.0);
        m.acquire();
        assert!((m.dilation() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn dilate_scales_work() {
        let mut m = CoreModel::new(2);
        for _ in 0..4 {
            m.acquire();
        }
        assert_eq!(m.dilate(Ns(100)), Ns(200));
        m.release();
        m.release();
        assert_eq!(m.dilate(Ns(100)), Ns(100));
    }

    #[test]
    fn token_round_trip() {
        let mut m = CoreModel::new(1);
        let t = m.begin();
        assert_eq!(m.runnable(), 1);
        m.end(t);
        assert_eq!(m.runnable(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "release without acquire")]
    fn unbalanced_release_panics_in_debug() {
        let mut m = CoreModel::new(1);
        m.release();
    }
}
