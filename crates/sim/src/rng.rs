//! Deterministic pseudo-random number generation.
//!
//! The simulation must be exactly reproducible from a seed across runs and
//! platforms, so we implement xoshiro256** (seeded via splitmix64) directly
//! rather than depending on an external generator whose stream might change
//! between versions. The helpers cover the distributions the machine model
//! needs: uniform integers/floats, Bernoulli trials, binomial counts (for
//! splitting access batches), and Zipf-like skewed choices.

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator; used to give each simulated
    /// thread or component its own stream.
    pub fn fork(&mut self, tag: u64) -> Rng {
        let base = self.next_u64();
        Rng::new(base ^ tag.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range bound must be non-zero");
        // Lemire's multiply-shift rejection method for unbiased bounded output.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo, "empty range");
        lo + self.gen_range(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` of success.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Rounds a fractional expectation to an integer count, preserving the
    /// expectation: `floor(x)` plus a Bernoulli trial on the fraction.
    pub fn round_stochastic(&mut self, x: f64) -> u64 {
        debug_assert!(x >= 0.0, "negative expectation");
        let base = x.floor();
        let frac = x - base;
        base as u64 + u64::from(self.bernoulli(frac))
    }

    /// Samples a binomial count of successes out of `n` trials each with
    /// probability `p`. Exact for small `n`; uses a normal approximation for
    /// large `n` where exact sampling would dominate runtime.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if p <= 0.0 || n == 0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        if n <= 64 {
            let mut c = 0;
            for _ in 0..n {
                c += u64::from(self.bernoulli(p));
            }
            return c;
        }
        // Normal approximation with continuity handling, clamped to [0, n].
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let z = self.gauss();
        let v = mean + sd * z;
        v.round().clamp(0.0, n as f64) as u64
    }

    /// Standard normal sample (Box-Muller).
    pub fn gauss(&mut self) -> f64 {
        let u1 = self.gen_f64().max(f64::MIN_POSITIVE);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "non-positive mean");
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Chooses an index according to a table of cumulative weights.
    ///
    /// `cumulative` must be non-decreasing with a positive final entry; the
    /// returned index is distributed proportionally to the weight deltas.
    pub fn choose_cumulative(&mut self, cumulative: &[f64]) -> usize {
        debug_assert!(!cumulative.is_empty(), "empty weight table");
        let total = *cumulative.last().expect("non-empty");
        debug_assert!(total > 0.0, "total weight must be positive");
        let x = self.gen_f64() * total;
        match cumulative.binary_search_by(|w| w.partial_cmp(&x).expect("weights must not be NaN")) {
            Ok(i) => (i + 1).min(cumulative.len() - 1),
            Err(i) => i.min(cumulative.len() - 1),
        }
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Precomputed Zipf(θ) sampler over `{0, .., n-1}` using the rejection
/// method of Gray et al., as used by YCSB.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Builds a sampler over `n` items with skew `theta` (0 = uniform-ish,
    /// 0.99 = YCSB default hot skew). `n` must be non-zero.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation for small n; Euler-Maclaurin style integral
        // approximation beyond a cutoff keeps construction O(1)-ish.
        const EXACT: u64 = 100_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // Integral of x^-theta from EXACT to n.
            let a = EXACT as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should differ");
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(17);
            assert!(v < 17);
        }
        for _ in 0..1_000 {
            let v = rng.gen_range_in(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn gen_f64_unit_interval_and_mean() {
        let mut rng = Rng::new(3);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut rng = Rng::new(11);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn round_stochastic_preserves_expectation() {
        let mut rng = Rng::new(5);
        let trials = 100_000;
        let total: u64 = (0..trials).map(|_| rng.round_stochastic(2.25)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 2.25).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn binomial_mean_small_and_large() {
        let mut rng = Rng::new(9);
        let trials = 20_000;
        let small: u64 = (0..trials).map(|_| rng.binomial(20, 0.25)).sum();
        let m = small as f64 / trials as f64;
        assert!((m - 5.0).abs() < 0.1, "small-n mean {m}");
        let large: u64 = (0..trials).map(|_| rng.binomial(10_000, 0.1)).sum();
        let m = large as f64 / trials as f64;
        assert!((m - 1000.0).abs() < 2.0, "large-n mean {m}");
    }

    #[test]
    fn binomial_edges() {
        let mut rng = Rng::new(13);
        assert_eq!(rng.binomial(100, 0.0), 0);
        assert_eq!(rng.binomial(100, 1.0), 100);
        assert_eq!(rng.binomial(0, 0.5), 0);
    }

    #[test]
    fn choose_cumulative_respects_weights() {
        let mut rng = Rng::new(21);
        // Weights 1, 3 -> cumulative 1, 4.
        let cum = [1.0, 4.0];
        let mut counts = [0u32; 2];
        for _ in 0..40_000 {
            counts[rng.choose_cumulative(&cum)] += 1;
        }
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac was {frac}");
    }

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let mut rng = Rng::new(31);
        let z = Zipf::new(1000, 0.99);
        let mut counts = vec![0u32; 1000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999] * 10);
    }

    #[test]
    fn zipf_stays_in_domain() {
        let mut rng = Rng::new(37);
        let z = Zipf::new(17, 0.5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(41);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::new(1);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(51);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean was {mean}");
    }
}
