//! Virtual time.
//!
//! All simulation time is expressed in integer nanoseconds wrapped in the
//! [`Ns`] newtype. Using an integer keeps event ordering exact and the
//! simulation deterministic; helper constructors keep call sites readable.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Ns(pub u64);

impl Ns {
    /// The zero instant.
    pub const ZERO: Ns = Ns(0);
    /// The largest representable instant; used as "never".
    pub const MAX: Ns = Ns(u64::MAX);

    /// Creates a time span of `n` nanoseconds.
    pub const fn nanos(n: u64) -> Ns {
        Ns(n)
    }

    /// Creates a time span of `n` microseconds.
    pub const fn micros(n: u64) -> Ns {
        Ns(n * 1_000)
    }

    /// Creates a time span of `n` milliseconds.
    pub const fn millis(n: u64) -> Ns {
        Ns(n * 1_000_000)
    }

    /// Creates a time span of `n` seconds.
    pub const fn secs(n: u64) -> Ns {
        Ns(n * 1_000_000_000)
    }

    /// Creates a time span from a fractional second count, rounding down.
    pub fn from_secs_f64(s: f64) -> Ns {
        debug_assert!(s >= 0.0, "negative time span");
        Ns((s * 1e9) as u64)
    }

    /// Creates a time span from fractional nanoseconds, rounding to nearest.
    pub fn from_nanos_f64(n: f64) -> Ns {
        debug_assert!(n >= 0.0, "negative time span");
        Ns((n + 0.5) as u64)
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; returns [`Ns::ZERO`] on underflow.
    pub fn saturating_sub(self, other: Ns) -> Ns {
        Ns(self.0.saturating_sub(other.0))
    }

    /// Saturating addition; returns [`Ns::MAX`] on overflow.
    pub fn saturating_add(self, other: Ns) -> Ns {
        Ns(self.0.saturating_add(other.0))
    }

    /// Scales this span by a non-negative factor, saturating on overflow.
    pub fn scale(self, factor: f64) -> Ns {
        debug_assert!(factor >= 0.0, "negative scale factor");
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            Ns::MAX
        } else {
            Ns(v as u64)
        }
    }
}

impl Add for Ns {
    type Output = Ns;

    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;

    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

/// Whole units a process running at `rate_per_sec` completes in `window`.
///
/// This is the single rounding rule for every rate-derived budget in the
/// simulator — migration bytes per policy period, PEBS records per drain
/// pass, PEBS burst headroom. The product is truncated toward zero
/// (floor for the non-negative inputs allowed here): a budget never
/// exceeds what the rate actually delivers in the window, so repeated
/// periods cannot creep ahead of the configured rate by a unit per
/// period. Callers that used to `ceil()` (the PEBS drain budget) see the
/// same values for every shipped configuration, where the products are
/// exact integers in `f64`.
pub fn rate_budget(rate_per_sec: f64, window: Ns) -> u64 {
    debug_assert!(rate_per_sec >= 0.0, "negative rate");
    (rate_per_sec * window.as_secs_f64()) as u64
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Ns::micros(1), Ns(1_000));
        assert_eq!(Ns::millis(1), Ns(1_000_000));
        assert_eq!(Ns::secs(1), Ns(1_000_000_000));
        assert_eq!(Ns::secs(2) + Ns::millis(500), Ns(2_500_000_000));
    }

    #[test]
    fn float_round_trips() {
        assert_eq!(Ns::from_secs_f64(1.5), Ns(1_500_000_000));
        assert!((Ns::secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
        assert_eq!(Ns::from_nanos_f64(10.6), Ns(11));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Ns(5).saturating_sub(Ns(10)), Ns::ZERO);
        assert_eq!(Ns::MAX.saturating_add(Ns(1)), Ns::MAX);
        assert_eq!(Ns::MAX.scale(2.0), Ns::MAX);
        assert_eq!(Ns(100).scale(0.5), Ns(50));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Ns(12)), "12ns");
        assert_eq!(format!("{}", Ns::micros(3)), "3.000us");
        assert_eq!(format!("{}", Ns::millis(3)), "3.000ms");
        assert_eq!(format!("{}", Ns::secs(3)), "3.000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ns(1) < Ns(2));
        assert!(Ns::ZERO < Ns::MAX);
    }

    #[test]
    fn rate_budget_floors_exact_products() {
        // The three shipped budget computations, all exact in f64:
        // migration 10 GB/s over 10 ms, PEBS drain 0.5M/s over 1 ms,
        // and the drain-budget test config 1M/s over 2 ms.
        assert_eq!(rate_budget(10.0e9, Ns::millis(10)), 100_000_000);
        assert_eq!(rate_budget(0.5e6, Ns::millis(1)), 500);
        assert_eq!(rate_budget(1.0e6, Ns::millis(2)), 2_000);
    }

    #[test]
    fn rate_budget_truncates_fractional_products() {
        assert_eq!(rate_budget(1.0, Ns::millis(500)), 0, "half a unit is zero");
        assert_eq!(rate_budget(1500.0, Ns::millis(1)), 1);
        assert_eq!(rate_budget(0.0, Ns::secs(10)), 0);
    }
}
