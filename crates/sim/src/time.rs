//! Virtual time.
//!
//! All simulation time is expressed in integer nanoseconds wrapped in the
//! [`Ns`] newtype. Using an integer keeps event ordering exact and the
//! simulation deterministic; helper constructors keep call sites readable.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Ns(pub u64);

impl Ns {
    /// The zero instant.
    pub const ZERO: Ns = Ns(0);
    /// The largest representable instant; used as "never".
    pub const MAX: Ns = Ns(u64::MAX);

    /// Creates a time span of `n` nanoseconds.
    pub const fn nanos(n: u64) -> Ns {
        Ns(n)
    }

    /// Creates a time span of `n` microseconds.
    pub const fn micros(n: u64) -> Ns {
        Ns(n * 1_000)
    }

    /// Creates a time span of `n` milliseconds.
    pub const fn millis(n: u64) -> Ns {
        Ns(n * 1_000_000)
    }

    /// Creates a time span of `n` seconds.
    pub const fn secs(n: u64) -> Ns {
        Ns(n * 1_000_000_000)
    }

    /// Creates a time span from a fractional second count, rounding down.
    pub fn from_secs_f64(s: f64) -> Ns {
        debug_assert!(s >= 0.0, "negative time span");
        Ns((s * 1e9) as u64)
    }

    /// Creates a time span from fractional nanoseconds, rounding to nearest.
    pub fn from_nanos_f64(n: f64) -> Ns {
        debug_assert!(n >= 0.0, "negative time span");
        Ns((n + 0.5) as u64)
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; returns [`Ns::ZERO`] on underflow.
    pub fn saturating_sub(self, other: Ns) -> Ns {
        Ns(self.0.saturating_sub(other.0))
    }

    /// Saturating addition; returns [`Ns::MAX`] on overflow.
    pub fn saturating_add(self, other: Ns) -> Ns {
        Ns(self.0.saturating_add(other.0))
    }

    /// Scales this span by a non-negative factor, saturating on overflow.
    pub fn scale(self, factor: f64) -> Ns {
        debug_assert!(factor >= 0.0, "negative scale factor");
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            Ns::MAX
        } else {
            Ns(v as u64)
        }
    }
}

impl Add for Ns {
    type Output = Ns;

    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;

    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Ns::micros(1), Ns(1_000));
        assert_eq!(Ns::millis(1), Ns(1_000_000));
        assert_eq!(Ns::secs(1), Ns(1_000_000_000));
        assert_eq!(Ns::secs(2) + Ns::millis(500), Ns(2_500_000_000));
    }

    #[test]
    fn float_round_trips() {
        assert_eq!(Ns::from_secs_f64(1.5), Ns(1_500_000_000));
        assert!((Ns::secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
        assert_eq!(Ns::from_nanos_f64(10.6), Ns(11));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Ns(5).saturating_sub(Ns(10)), Ns::ZERO);
        assert_eq!(Ns::MAX.saturating_add(Ns(1)), Ns::MAX);
        assert_eq!(Ns::MAX.scale(2.0), Ns::MAX);
        assert_eq!(Ns(100).scale(0.5), Ns(50));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Ns(12)), "12ns");
        assert_eq!(format!("{}", Ns::micros(3)), "3.000us");
        assert_eq!(format!("{}", Ns::millis(3)), "3.000ms");
        assert_eq!(format!("{}", Ns::secs(3)), "3.000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ns(1) < Ns(2));
        assert!(Ns::ZERO < Ns::MAX);
    }
}
