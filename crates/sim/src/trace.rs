//! Deterministic structured tracing: typed span/instant events on virtual
//! time, latency histograms per event class, and a Chrome-trace-event
//! (Perfetto-compatible) JSON exporter.
//!
//! The tracer is owned by the machine model and threaded through every
//! layer that does interesting work (policy passes, migrations, page
//! faults, write-protection stalls, PEBS drains, DMA batches). Two rules
//! keep it from perturbing the simulation it observes:
//!
//! - **Virtual time only.** Every event carries an [`Ns`] timestamp from
//!   the simulation clock; the tracer never reads a wall clock, so a
//!   traced run is reproducible from the seed like any other.
//! - **No side effects on simulation state.** Recording never touches the
//!   RNG, the event queue, or any device model, so enabling tracing
//!   cannot change a single scheduling decision or random draw. A traced
//!   run and an untraced run produce byte-identical machine stats.
//!
//! Event buffers are only populated while the tracer is enabled (the
//! default-off `trace` flag on the machine config); latency histograms
//! are cheap integer accumulators and stay live either way, which is what
//! lets the telemetry CSV report percentiles without a trace buffer.

use std::collections::BTreeMap;

use crate::stats::Histogram;
use crate::time::Ns;

/// Latency/backlog classes with a dedicated histogram each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyClass {
    /// End-to-end migration latency: policy issue (journal prepare) to
    /// commit (mapping flip).
    Migration,
    /// Page-fault service latency as seen by the faulting thread.
    Fault,
    /// Per-write write-protection stall duration (§3.2's "exceedingly
    /// rare" stalls).
    WpStall,
    /// Policy-pass CPU duration.
    PolicyPass,
    /// PEBS buffer backlog (records waiting) observed at each drain.
    PebsBacklog,
    /// DMA batch latency: ioctl submit to last descriptor landed.
    DmaBatch,
    /// Major-fault service latency: an access to an SSD-resident page,
    /// stalled behind the swap device's queue plus the promotion copy.
    MajorFault,
}

impl LatencyClass {
    /// Every class, indexable by [`LatencyClass::index`].
    pub const ALL: [LatencyClass; 7] = [
        LatencyClass::Migration,
        LatencyClass::Fault,
        LatencyClass::WpStall,
        LatencyClass::PolicyPass,
        LatencyClass::PebsBacklog,
        LatencyClass::DmaBatch,
        LatencyClass::MajorFault,
    ];

    /// Dense index of this class.
    pub fn index(self) -> usize {
        match self {
            LatencyClass::Migration => 0,
            LatencyClass::Fault => 1,
            LatencyClass::WpStall => 2,
            LatencyClass::PolicyPass => 3,
            LatencyClass::PebsBacklog => 4,
            LatencyClass::DmaBatch => 5,
            LatencyClass::MajorFault => 6,
        }
    }

    /// Stable short name (used in CSV column prefixes).
    pub fn name(self) -> &'static str {
        match self {
            LatencyClass::Migration => "migration",
            LatencyClass::Fault => "fault",
            LatencyClass::WpStall => "wp_stall",
            LatencyClass::PolicyPass => "policy_pass",
            LatencyClass::PebsBacklog => "pebs_backlog",
            LatencyClass::DmaBatch => "dma_batch",
            LatencyClass::MajorFault => "major_fault",
        }
    }
}

/// Chrome-trace phase of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Async span begin (`"b"`). Async — not duration — events are used
    /// so overlapping spans (concurrent migrations) nest correctly.
    Begin,
    /// Async span end (`"e"`), matched to its begin by `(name, id)`.
    End,
    /// Instant event (`"i"`).
    Instant,
}

/// One trace event on virtual time.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual timestamp.
    pub ts: Ns,
    /// Event name (`"migration"`, `"policy_pass"`, ...).
    pub name: &'static str,
    /// Category, for trace-viewer filtering.
    pub cat: &'static str,
    /// Span begin/end or instant.
    pub ph: Phase,
    /// Async-span correlation id (0 for instants).
    pub id: u64,
    /// Integer key/value payload.
    pub args: Vec<(&'static str, u64)>,
}

/// Per-policy-pass decision attribution, accumulated across passes.
///
/// `run_policy` classifies every decision it makes so a trace (or a plain
/// counter dump) can answer *why* pages moved: demoted to refill the
/// watermark, promoted for hotness, demoted to make room for a waiting
/// promotion, or suppressed by the in-flight throttle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyCounters {
    /// Policy passes executed.
    pub passes: u64,
    /// Demotions issued to refill the DRAM free watermark.
    pub demote_watermark: u64,
    /// Promotions of hot NVM pages issued.
    pub promote: u64,
    /// Demote-for-promotion swaps issued while the promotion itself was
    /// deferred to a later period (no free DRAM frame yet).
    pub swap_deferrals: u64,
    /// Passes that issued nothing because the in-flight page limit was
    /// already reached.
    pub throttled: u64,
}

/// The tracer: event buffer, open-span table, and per-class histograms.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
    /// Open async spans: `(name, id)` -> begin timestamp. Bounded by the
    /// in-flight migration limit, so it stays tiny even when disabled.
    open: BTreeMap<(&'static str, u64), Ns>,
    hists: Vec<Histogram>,
    /// Policy decision attribution (always accumulated).
    pub policy: PolicyCounters,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(false)
    }
}

impl Tracer {
    /// Creates a tracer; `enabled` controls event capture (histograms and
    /// policy counters accumulate regardless).
    pub fn new(enabled: bool) -> Tracer {
        Tracer {
            enabled,
            events: Vec::new(),
            open: BTreeMap::new(),
            hists: LatencyClass::ALL.iter().map(|_| Histogram::new()).collect(),
            policy: PolicyCounters::default(),
        }
    }

    /// Whether event capture is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Events captured so far (empty while disabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Histogram for one latency class.
    pub fn hist(&self, class: LatencyClass) -> &Histogram {
        &self.hists[class.index()]
    }

    /// Records `value` into `class`'s histogram (always, enabled or not).
    pub fn observe(&mut self, class: LatencyClass, value: u64) {
        self.hists[class.index()].record(value);
    }

    /// Records a duration into `class`'s histogram.
    pub fn observe_ns(&mut self, class: LatencyClass, d: Ns) {
        self.observe(class, d.as_nanos());
    }

    /// Records an instant event.
    pub fn instant(
        &mut self,
        ts: Ns,
        name: &'static str,
        cat: &'static str,
        args: &[(&'static str, u64)],
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                ts,
                name,
                cat,
                ph: Phase::Instant,
                id: 0,
                args: args.to_vec(),
            });
        }
    }

    /// Opens an async span. The begin timestamp is remembered even while
    /// disabled so [`Tracer::span_end`] can return the duration for
    /// histogram accounting.
    pub fn span_begin(&mut self, ts: Ns, name: &'static str, cat: &'static str, id: u64) {
        self.open.insert((name, id), ts);
        if self.enabled {
            self.events.push(TraceEvent {
                ts,
                name,
                cat,
                ph: Phase::Begin,
                id,
                args: Vec::new(),
            });
        }
    }

    /// Closes an async span, records its duration into `class`, and
    /// returns it. `None` when no matching begin exists (e.g. a
    /// completion event for a span rolled back by crash recovery).
    pub fn span_end(
        &mut self,
        ts: Ns,
        class: LatencyClass,
        name: &'static str,
        cat: &'static str,
        id: u64,
        args: &[(&'static str, u64)],
    ) -> Option<Ns> {
        let begin = self.open.remove(&(name, id))?;
        let d = ts.saturating_sub(begin);
        self.observe_ns(class, d);
        if self.enabled {
            self.events.push(TraceEvent {
                ts,
                name,
                cat,
                ph: Phase::End,
                id,
                args: args.to_vec(),
            });
        }
        Some(d)
    }

    /// Closes an async span without histogram accounting (aborted or
    /// rolled-back work whose duration is not a completed-operation
    /// latency). Keeps the exported trace's begin/end pairing intact.
    pub fn span_drop(
        &mut self,
        ts: Ns,
        name: &'static str,
        cat: &'static str,
        id: u64,
        args: &[(&'static str, u64)],
    ) {
        if self.open.remove(&(name, id)).is_some() && self.enabled {
            self.events.push(TraceEvent {
                ts,
                name,
                cat,
                ph: Phase::End,
                id,
                args: args.to_vec(),
            });
        }
    }

    /// Spans currently open (in-flight operations).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Checks the captured event stream: every span end has a begin,
    /// nothing is left open (unless `allow_open`), and the event list
    /// sorts into a valid nondecreasing-timestamp order (always true by
    /// construction; kept as a guard for future recording paths).
    pub fn validate(&self, allow_open: bool) -> Result<(), String> {
        if !allow_open && !self.open.is_empty() {
            return Err(format!("{} spans still open", self.open.len()));
        }
        let mut begins: BTreeMap<(&'static str, u64), u64> = BTreeMap::new();
        for e in &self.events {
            match e.ph {
                Phase::Begin => *begins.entry((e.name, e.id)).or_insert(0) += 1,
                Phase::End => {
                    let c = begins.entry((e.name, e.id)).or_insert(0);
                    if *c == 0 {
                        return Err(format!("end without begin: {} id {}", e.name, e.id));
                    }
                    *c -= 1;
                }
                Phase::Instant => {}
            }
        }
        let unmatched: u64 = begins.values().sum();
        let open = self.open.len() as u64;
        if unmatched != if self.enabled { open } else { 0 } {
            return Err(format!(
                "{unmatched} begins never ended ({open} legitimately open)"
            ));
        }
        Ok(())
    }

    /// Exports the captured events as Chrome trace-event JSON (the format
    /// `chrome://tracing` and Perfetto load directly). Events are sorted
    /// by virtual timestamp (stable, so same-instant events keep record
    /// order); timestamps are microseconds with nanosecond precision.
    pub fn export_chrome(&self) -> String {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| self.events[i].ts);
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (n, &i) in order.iter().enumerate() {
            let e = &self.events[i];
            if n > 0 {
                out.push(',');
            }
            let ph = match e.ph {
                Phase::Begin => "b",
                Phase::End => "e",
                Phase::Instant => "i",
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":1",
                e.name,
                e.cat,
                ph,
                e.ts.as_micros_f64()
            ));
            match e.ph {
                Phase::Begin | Phase::End => {
                    out.push_str(&format!(",\"id\":{}", e.id));
                }
                Phase::Instant => out.push_str(",\"s\":\"g\""),
            }
            out.push_str(",\"args\":{");
            for (k, (key, val)) in e.args.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{key}\":{val}"));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON well-formedness scanner (no external parser in this
/// workspace): checks string escapes and brace/bracket balance, and that
/// the document is one top-level object with no trailing garbage.
pub fn json_is_wellformed(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut stack: Vec<u8> = Vec::new();
    let mut in_str = false;
    let mut escaped = false;
    let mut seen_root = false;
    for &b in bytes.iter() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' | b'[' => {
                if stack.is_empty() {
                    if seen_root || b != b'{' {
                        return false;
                    }
                    seen_root = true;
                }
                stack.push(b);
            }
            b'}' => {
                if stack.pop() != Some(b'{') {
                    return false;
                }
            }
            b']' => {
                if stack.pop() != Some(b'[') {
                    return false;
                }
            }
            _ => {
                // Non-whitespace outside any container: leading or
                // trailing garbage around the root object.
                if stack.is_empty() && !b.is_ascii_whitespace() {
                    return false;
                }
            }
        }
    }
    seen_root && stack.is_empty() && !in_str
}

/// Validates an exported Chrome trace: well-formed JSON, the
/// `traceEvents` envelope, nondecreasing `ts` values, and as many span
/// ends as begins.
pub fn validate_chrome(json: &str) -> Result<(), String> {
    if !json_is_wellformed(json) {
        return Err("malformed JSON".into());
    }
    if !json.starts_with("{\"traceEvents\":[") {
        return Err("missing traceEvents envelope".into());
    }
    let mut last_ts = f64::NEG_INFINITY;
    let mut rest = json;
    while let Some(p) = rest.find("\"ts\":") {
        rest = &rest[p + 5..];
        let end = rest
            .find([',', '}'])
            .ok_or_else(|| "unterminated ts value".to_string())?;
        let ts: f64 = rest[..end]
            .trim()
            .parse()
            .map_err(|e| format!("bad ts value {:?}: {e}", &rest[..end]))?;
        if ts < last_ts {
            return Err(format!("ts not monotone: {ts} after {last_ts}"));
        }
        last_ts = ts;
    }
    let begins = json.matches("\"ph\":\"b\"").count();
    let ends = json.matches("\"ph\":\"e\"").count();
    if begins != ends {
        return Err(format!("{begins} span begins vs {ends} ends"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_keeps_histograms_but_no_events() {
        let mut t = Tracer::new(false);
        t.span_begin(Ns::nanos(10), "migration", "mig", 1);
        let d = t.span_end(
            Ns::nanos(40),
            LatencyClass::Migration,
            "migration",
            "mig",
            1,
            &[],
        );
        assert_eq!(d, Some(Ns::nanos(30)));
        assert!(t.events().is_empty());
        assert_eq!(t.hist(LatencyClass::Migration).count(), 1);
        assert_eq!(t.hist(LatencyClass::Migration).max(), 30);
    }

    #[test]
    fn span_pairing_and_validation() {
        let mut t = Tracer::new(true);
        t.span_begin(Ns::nanos(5), "migration", "mig", 7);
        t.instant(Ns::nanos(6), "policy_pass", "policy", &[("promote", 2)]);
        assert!(t.validate(true).is_ok());
        assert!(t.validate(false).is_err(), "span 7 still open");
        t.span_end(
            Ns::nanos(9),
            LatencyClass::Migration,
            "migration",
            "mig",
            7,
            &[],
        );
        assert!(t.validate(false).is_ok());
        assert_eq!(t.events().len(), 3);
    }

    #[test]
    fn span_end_without_begin_is_ignored() {
        let mut t = Tracer::new(true);
        let d = t.span_end(
            Ns::nanos(9),
            LatencyClass::Migration,
            "migration",
            "mig",
            3,
            &[],
        );
        assert_eq!(d, None);
        assert!(t.events().is_empty(), "no dangling end event");
        assert_eq!(t.hist(LatencyClass::Migration).count(), 0);
    }

    #[test]
    fn span_drop_closes_without_histogram() {
        let mut t = Tracer::new(true);
        t.span_begin(Ns::nanos(1), "migration", "mig", 1);
        t.span_drop(Ns::nanos(2), "migration", "mig", 1, &[("rollback", 1)]);
        assert!(t.validate(false).is_ok());
        assert_eq!(t.hist(LatencyClass::Migration).count(), 0);
    }

    #[test]
    fn export_is_wellformed_and_validates() {
        let mut t = Tracer::new(true);
        t.span_begin(Ns::micros(2), "migration", "mig", 1);
        t.span_begin(Ns::micros(3), "migration", "mig", 2);
        t.instant(Ns::micros(4), "fault", "fault", &[("stall_ns", 1234)]);
        t.span_end(
            Ns::micros(5),
            LatencyClass::Migration,
            "migration",
            "mig",
            2,
            &[],
        );
        t.span_end(
            Ns::micros(6),
            LatencyClass::Migration,
            "migration",
            "mig",
            1,
            &[],
        );
        let json = t.export_chrome();
        assert!(json_is_wellformed(&json));
        assert!(
            validate_chrome(&json).is_ok(),
            "{:?}",
            validate_chrome(&json)
        );
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"stall_ns\":1234"));
    }

    #[test]
    fn export_sorts_out_of_order_timestamps() {
        // populate() records fault events at projected future instants, so
        // raw append order is not ts order; the exporter must sort.
        let mut t = Tracer::new(true);
        t.instant(Ns::micros(50), "fault", "fault", &[]);
        t.instant(Ns::micros(10), "fault", "fault", &[]);
        let json = t.export_chrome();
        assert!(validate_chrome(&json).is_ok());
        let p10 = json.find("\"ts\":10.000").expect("early event present");
        let p50 = json.find("\"ts\":50.000").expect("late event present");
        assert!(p10 < p50);
    }

    #[test]
    fn wellformed_scanner_rejects_breakage() {
        assert!(json_is_wellformed("{\"a\":[1,2,{\"b\":\"x\\\"y\"}]}"));
        assert!(!json_is_wellformed("{\"a\":[1,2}"));
        assert!(!json_is_wellformed("{\"a\":1} trailing"));
        assert!(!json_is_wellformed("[1,2]"), "root must be an object");
        assert!(!json_is_wellformed("{\"a\":\"unterminated}"));
    }

    #[test]
    fn chrome_validator_rejects_non_monotone_and_unmatched() {
        let bad_ts = "{\"traceEvents\":[{\"ts\":5.0},{\"ts\":4.0}]}";
        assert!(validate_chrome(bad_ts).is_err());
        let bad_pair = "{\"traceEvents\":[{\"ph\":\"b\",\"ts\":1.0}]}";
        assert!(validate_chrome(bad_pair).is_err());
    }
}
