//! # hemem-sim
//!
//! Deterministic discrete-event simulation kernel underpinning the HeMem
//! reproduction. Provides:
//!
//! - [`time::Ns`] — integer virtual time;
//! - [`queue::EventQueue`] — time-ordered event queue with FIFO tie-break;
//! - [`rng::Rng`] / [`rng::Zipf`] — reproducible random streams;
//! - [`cores::CoreModel`] — proportional-share CPU contention;
//! - [`stats`] — histograms, running moments, windowed rate series;
//! - [`trace`] — deterministic span/instant tracing, latency histograms
//!   per event class, Chrome-trace-event export;
//! - [`list`] — arena-backed intrusive FIFO queues (HeMem's page lists).
//!
//! Everything here is domain-agnostic; the machine model lives in
//! `hemem-core` and the device models in `hemem-memdev`.

#![warn(missing_docs)]

pub mod cores;
pub mod faultplan;
pub mod list;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use cores::CoreModel;
pub use faultplan::{FaultPlan, FaultPlanConfig, FaultPlanStats, TenantKill, TierFault};
pub use queue::EventQueue;
pub use rng::{Rng, Zipf};
pub use stats::{Histogram, RateSeries, Running};
pub use time::{rate_budget, Ns};
pub use trace::{LatencyClass, PolicyCounters, Tracer};
