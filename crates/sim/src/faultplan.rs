//! Seeded, deterministic fault-injection plans.
//!
//! The paper's mechanisms are all reactions to hardware misbehaving:
//! PEBS buffers overflow and drop samples (§3.1), DMA may be busy or
//! absent so migration falls back to copy threads (§3.2), and the
//! userfaultfd handler saturates under fault storms (§5). A [`FaultPlan`]
//! makes those failures injectable: each decision point in the machine
//! model consults the plan, which draws from an independent, seeded
//! random stream per injection site. The same seed and rates therefore
//! reproduce the exact same fault sequence — a chaos run is as
//! deterministic as a clean one.
//!
//! The plan only *decides* that a fault fires and counts it; the layer
//! that consulted it owns the reaction (retry, fallback, retirement).

use crate::rng::Rng;
use crate::time::Ns;

/// Per-site fault rates. All rates are probabilities in `[0, 1]` drawn
/// once per decision point; zero disables the site entirely.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FaultPlanConfig {
    /// Seed of the plan's random streams (independent of the machine
    /// seed, so fault schedules can vary while the workload holds still).
    pub seed: u64,
    /// P(one DMA copy `ioctl` submission fails).
    pub dma_submit_fail: f64,
    /// P(a DMA submission finds its channels busy/lost and must run on a
    /// single surviving channel).
    pub dma_channel_loss: f64,
    /// Base P(an NVM page write hits a media error) at zero wear.
    pub nvm_media_error: f64,
    /// Additional media-error probability per recorded write of wear on
    /// the target page (media errors grow more likely as cells wear).
    pub nvm_media_wear_scale: f64,
    /// Base P(an SSD swap-device transfer hits a media error) at zero
    /// erase-block wear.
    #[serde(default)]
    pub ssd_media_error: f64,
    /// Additional SSD media-error probability per program cycle of wear
    /// on the target erase block.
    #[serde(default)]
    pub ssd_media_wear_scale: f64,
    /// P(one PEBS drain pass finds the buffer clobbered by an overflow
    /// storm and loses everything buffered).
    pub pebs_storm: f64,
    /// P(one managed-region fault finds the handler thread stalled).
    pub fault_thread_stall: f64,
    /// How long a stalled fault handler is unavailable.
    pub fault_thread_stall_for: Ns,
    /// Explicit sim instants at which the memory manager is killed (each
    /// fires once; the application and its memory survive, see the
    /// runtime's recovery path).
    #[serde(default)]
    pub manager_kill_at: Vec<Ns>,
    /// Number of additional seeded kill points, drawn uniformly over
    /// [`FaultPlanConfig::manager_kill_window`] from the plan's own
    /// stream.
    #[serde(default)]
    pub manager_kills: u32,
    /// Window over which drawn kill points are spread.
    #[serde(default)]
    pub manager_kill_window: Ns,
    /// Explicit sim instants at which individual *tenants* are killed
    /// (each fires once). Unlike a manager kill, the machine survives:
    /// the victim tenant is quarantined, drained, and its resources
    /// reclaimed. An explicit schedule needs no random stream, so
    /// configuring tenant kills never perturbs any other site's draws.
    #[serde(default)]
    pub tenant_kill_at: Vec<TenantKill>,
    /// Explicit sim instants at which a memory device *degrades*: its
    /// bandwidth throttles and accelerated wear retirement sheds a slice
    /// of its free capacity. Like the kill schedules this is purely
    /// explicit — no random stream is forked, so configuring tier faults
    /// never perturbs any other site's draws.
    #[serde(default)]
    pub tier_degrade_at: Vec<TierFault>,
    /// Explicit sim instants at which a memory device drops *offline*:
    /// the tier is quarantined against new allocations and its resident
    /// pages are evacuated (or poisoned, when evacuation is disabled).
    #[serde(default)]
    pub tier_fail_at: Vec<TierFault>,
    /// Explicit sim instants at which a degraded/offline device is
    /// *readmitted*: throttle lifted, shed capacity restored, the tier
    /// rejoins the placement cascade empty.
    #[serde(default)]
    pub tier_readmit_at: Vec<TierFault>,
}

/// One scheduled tenant kill: which tenant dies, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TenantKill {
    /// Tenant slot index to kill (the vmm `TenantId` payload).
    pub tenant: u32,
    /// Sim instant the kill fires.
    pub at: Ns,
}

/// One scheduled tier-health transition: which device, and when. The
/// tier is a rank into the machine's ordered tier vector (0 = DRAM,
/// 1 = NVM, 2 = SSD) — this crate cannot name the vmm tier enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TierFault {
    /// Tier rank the transition applies to.
    pub tier: u32,
    /// Sim instant the transition fires.
    pub at: Ns,
}

impl FaultPlanConfig {
    /// A plan that never fires: the default for every machine.
    pub fn none() -> FaultPlanConfig {
        FaultPlanConfig {
            seed: 0xC4A05,
            dma_submit_fail: 0.0,
            dma_channel_loss: 0.0,
            nvm_media_error: 0.0,
            nvm_media_wear_scale: 0.0,
            ssd_media_error: 0.0,
            ssd_media_wear_scale: 0.0,
            pebs_storm: 0.0,
            fault_thread_stall: 0.0,
            fault_thread_stall_for: Ns::millis(1),
            manager_kill_at: Vec::new(),
            manager_kills: 0,
            manager_kill_window: Ns::ZERO,
            tenant_kill_at: Vec::new(),
            tier_degrade_at: Vec::new(),
            tier_fail_at: Vec::new(),
            tier_readmit_at: Vec::new(),
        }
    }

    /// Whether every site is disabled.
    pub fn is_none(&self) -> bool {
        self.dma_submit_fail == 0.0
            && self.dma_channel_loss == 0.0
            && self.nvm_media_error == 0.0
            && self.nvm_media_wear_scale == 0.0
            && self.ssd_media_error == 0.0
            && self.ssd_media_wear_scale == 0.0
            && self.pebs_storm == 0.0
            && self.fault_thread_stall == 0.0
            && self.manager_kill_at.is_empty()
            && self.manager_kills == 0
            && self.tenant_kill_at.is_empty()
            && !self.has_tier_schedule()
    }

    /// Whether any tier-health transition is scheduled. Benches append
    /// their health fingerprint segment only when this holds, so
    /// schedule-free runs keep printing byte-identical fingerprints.
    pub fn has_tier_schedule(&self) -> bool {
        !self.tier_degrade_at.is_empty()
            || !self.tier_fail_at.is_empty()
            || !self.tier_readmit_at.is_empty()
    }
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig::none()
    }
}

/// Cumulative injected-fault counters, one per site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlanStats {
    /// DMA `ioctl` submissions failed.
    pub dma_submit_failures: u64,
    /// DMA submissions degraded to a single channel.
    pub dma_channel_losses: u64,
    /// NVM media errors fired.
    pub nvm_media_errors: u64,
    /// PEBS overflow storms fired.
    pub pebs_storms: u64,
    /// Fault-handler stalls fired.
    pub fault_thread_stalls: u64,
}

impl FaultPlanStats {
    /// Total faults injected across all sites.
    pub fn total(&self) -> u64 {
        self.dma_submit_failures
            + self.dma_channel_losses
            + self.nvm_media_errors
            + self.pebs_storms
            + self.fault_thread_stalls
    }
}

/// A live fault plan: per-site independent random streams plus counters.
///
/// Each site forks its own stream from the plan seed, so enabling one
/// site never perturbs the draw sequence of another — rate sweeps stay
/// comparable point to point.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    dma: Rng,
    chan: Rng,
    media: Rng,
    pebs: Rng,
    fault: Rng,
    media_ssd: Rng,
    stats: FaultPlanStats,
    /// Sorted manager-kill instants (explicit plus seeded draws),
    /// materialized at construction so the schedule is fixed up front.
    kill_times: Vec<Ns>,
    /// Tenant-kill schedule sorted by instant (ties by tenant index),
    /// materialized at construction. Purely explicit: no random stream
    /// is forked for it, so existing seeded sites are untouched.
    tenant_kills: Vec<TenantKill>,
    /// Tier-degrade schedule sorted by instant (ties by rank). Like the
    /// tenant-kill schedule these are purely explicit — no stream.
    tier_degrades: Vec<TierFault>,
    /// Tier-offline schedule, sorted the same way.
    tier_fails: Vec<TierFault>,
    /// Tier-readmit schedule, sorted the same way.
    tier_readmits: Vec<TierFault>,
}

impl FaultPlan {
    /// Builds a plan from its configuration.
    pub fn new(cfg: FaultPlanConfig) -> FaultPlan {
        let mut root = Rng::new(cfg.seed);
        let dma = root.fork(0xD3A);
        let chan = root.fork(0xC7A);
        let media = root.fork(0x3ED1A);
        let pebs = root.fork(0x9EB5);
        let fault = root.fork(0xFA17);
        let mut kill_times = cfg.manager_kill_at.clone();
        if cfg.manager_kills > 0 {
            // Forked after every existing site so adding kills never
            // perturbs their streams.
            let mut kill = root.fork(0x4B177);
            let window = cfg.manager_kill_window.as_nanos().max(1);
            for _ in 0..cfg.manager_kills {
                kill_times.push(Ns(kill.gen_range(window)));
            }
        }
        kill_times.sort();
        // Forked after every pre-existing site (including the kill
        // stream) so adding the SSD tier never perturbs their draws.
        let media_ssd = root.fork(0x55D);
        let mut tenant_kills = cfg.tenant_kill_at.clone();
        tenant_kills.sort_by_key(|k| (k.at, k.tenant));
        let sorted = |v: &[TierFault]| {
            let mut v = v.to_vec();
            v.sort_by_key(|f| (f.at, f.tier));
            v
        };
        let tier_degrades = sorted(&cfg.tier_degrade_at);
        let tier_fails = sorted(&cfg.tier_fail_at);
        let tier_readmits = sorted(&cfg.tier_readmit_at);
        FaultPlan {
            dma,
            chan,
            media,
            pebs,
            fault,
            media_ssd,
            cfg,
            stats: FaultPlanStats::default(),
            kill_times,
            tenant_kills,
            tier_degrades,
            tier_fails,
            tier_readmits,
        }
    }

    /// A plan that never fires.
    pub fn none() -> FaultPlan {
        FaultPlan::new(FaultPlanConfig::none())
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.cfg
    }

    /// Whether any site can fire.
    pub fn enabled(&self) -> bool {
        !self.cfg.is_none()
    }

    /// Injected-fault counters.
    pub fn stats(&self) -> FaultPlanStats {
        self.stats
    }

    /// Draws whether this DMA `ioctl` submission fails.
    pub fn dma_submit_fails(&mut self) -> bool {
        let hit = self.dma.bernoulli(self.cfg.dma_submit_fail);
        if hit {
            self.stats.dma_submit_failures += 1;
        }
        hit
    }

    /// Draws whether this DMA submission lost its channels and must run
    /// on a single surviving one.
    pub fn dma_channel_lost(&mut self) -> bool {
        let hit = self.chan.bernoulli(self.cfg.dma_channel_loss);
        if hit {
            self.stats.dma_channel_losses += 1;
        }
        hit
    }

    /// Draws whether an NVM page write with `wear` prior writes hits a
    /// media error. Probability scales linearly with wear and saturates
    /// at 1.
    pub fn nvm_media_error(&mut self, wear: u64) -> bool {
        let p = self.cfg.nvm_media_error + self.cfg.nvm_media_wear_scale * wear as f64;
        let hit = self.media.bernoulli(p.clamp(0.0, 1.0));
        if hit {
            self.stats.nvm_media_errors += 1;
        }
        hit
    }

    /// Draws whether an SSD swap transfer touching an erase block with
    /// `wear` program cycles hits a media error. Counts into the shared
    /// media-error tally alongside NVM (one counter per media class
    /// would change the frozen stats layout; consumers that need the
    /// split read the SSD device's own counters).
    pub fn ssd_media_error(&mut self, wear: u64) -> bool {
        let p = self.cfg.ssd_media_error + self.cfg.ssd_media_wear_scale * wear as f64;
        let hit = self.media_ssd.bernoulli(p.clamp(0.0, 1.0));
        if hit {
            self.stats.nvm_media_errors += 1;
        }
        hit
    }

    /// Draws whether this PEBS drain pass hits an overflow storm.
    pub fn pebs_storm(&mut self) -> bool {
        let hit = self.pebs.bernoulli(self.cfg.pebs_storm);
        if hit {
            self.stats.pebs_storms += 1;
        }
        hit
    }

    /// Draws whether the fault handler stalls for this fault; returns the
    /// stall duration when it does.
    pub fn fault_thread_stall(&mut self) -> Option<Ns> {
        if self.fault.bernoulli(self.cfg.fault_thread_stall) {
            self.stats.fault_thread_stalls += 1;
            Some(self.cfg.fault_thread_stall_for)
        } else {
            None
        }
    }

    /// The manager-kill schedule, sorted by instant. Empty when no kills
    /// are configured; the runtime never schedules anything for an empty
    /// list, so a kill-free plan stays zero-cost.
    pub fn kill_times(&self) -> &[Ns] {
        &self.kill_times
    }

    /// The tenant-kill schedule, sorted by instant (ties by tenant
    /// index). Empty when no tenant kills are configured, so churn-free
    /// plans stay zero-cost.
    pub fn tenant_kills(&self) -> &[TenantKill] {
        &self.tenant_kills
    }

    /// The tier-degrade schedule, sorted by instant (ties by rank).
    /// Empty schedules stay zero-cost: the runtime pushes no events.
    pub fn tier_degrades(&self) -> &[TierFault] {
        &self.tier_degrades
    }

    /// The tier-offline schedule, sorted by instant (ties by rank).
    pub fn tier_fails(&self) -> &[TierFault] {
        &self.tier_fails
    }

    /// The tier-readmit schedule, sorted by instant (ties by rank).
    pub fn tier_readmits(&self) -> &[TierFault] {
        &self.tier_readmits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(f: impl FnOnce(&mut FaultPlanConfig)) -> FaultPlan {
        let mut cfg = FaultPlanConfig::none();
        f(&mut cfg);
        FaultPlan::new(cfg)
    }

    #[test]
    fn disabled_plan_never_fires() {
        let mut p = FaultPlan::none();
        assert!(!p.enabled());
        for _ in 0..1000 {
            assert!(!p.dma_submit_fails());
            assert!(!p.dma_channel_lost());
            assert!(!p.nvm_media_error(u64::MAX / 2));
            assert!(!p.ssd_media_error(u64::MAX / 2));
            assert!(!p.pebs_storm());
            assert!(p.fault_thread_stall().is_none());
        }
        assert_eq!(p.stats().total(), 0);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut p = plan(|c| c.dma_submit_fail = 0.25);
        let hits = (0..10_000).filter(|_| p.dma_submit_fails()).count();
        assert!((2_000..3_000).contains(&hits), "{hits} hits at p=0.25");
        assert_eq!(p.stats().dma_submit_failures, hits as u64);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let mk = || {
            plan(|c| {
                c.seed = 77;
                c.dma_submit_fail = 0.1;
                c.pebs_storm = 0.3;
            })
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..500 {
            assert_eq!(a.dma_submit_fails(), b.dma_submit_fails());
            assert_eq!(a.pebs_storm(), b.pebs_storm());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn sites_draw_from_independent_streams() {
        // Enabling an unrelated site must not change another site's draws.
        let mut only_dma = plan(|c| c.dma_submit_fail = 0.5);
        let mut both = plan(|c| {
            c.dma_submit_fail = 0.5;
            c.pebs_storm = 0.9;
        });
        for _ in 0..200 {
            let a = only_dma.dma_submit_fails();
            both.pebs_storm(); // interleaved draws on the other site
            let b = both.dma_submit_fails();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn media_error_probability_scales_with_wear() {
        let count = |wear: u64| {
            let mut p = plan(|c| {
                c.nvm_media_error = 0.001;
                c.nvm_media_wear_scale = 0.001;
            });
            (0..20_000).filter(|_| p.nvm_media_error(wear)).count()
        };
        let fresh = count(0);
        let worn = count(100);
        assert!(
            worn > fresh * 10,
            "wear must raise the error rate: fresh={fresh} worn={worn}"
        );
    }

    #[test]
    fn ssd_site_never_perturbs_existing_streams() {
        // Enabling the SSD media site must leave every pre-existing
        // site's draw sequence unchanged — this is what keeps seeded
        // 2-tier chaos runs byte-identical after the tier-3 addition.
        let mut old = plan(|c| {
            c.nvm_media_error = 0.4;
            c.pebs_storm = 0.2;
        });
        let mut new = plan(|c| {
            c.nvm_media_error = 0.4;
            c.pebs_storm = 0.2;
            c.ssd_media_error = 0.9;
        });
        for _ in 0..300 {
            new.ssd_media_error(0); // interleaved SSD draws
            assert_eq!(old.nvm_media_error(3), new.nvm_media_error(3));
            assert_eq!(old.pebs_storm(), new.pebs_storm());
        }
    }

    #[test]
    fn ssd_media_error_scales_with_erase_wear() {
        let count = |wear: u64| {
            let mut p = plan(|c| {
                c.ssd_media_error = 0.001;
                c.ssd_media_wear_scale = 0.001;
            });
            (0..20_000).filter(|_| p.ssd_media_error(wear)).count()
        };
        let fresh = count(0);
        let worn = count(100);
        assert!(
            worn > fresh * 10,
            "erase wear must raise the rate: fresh={fresh} worn={worn}"
        );
        // And the shared tally records the hits.
        let mut p = plan(|c| c.ssd_media_error = 1.0);
        assert!(p.enabled());
        assert!(p.ssd_media_error(0));
        assert_eq!(p.stats().nvm_media_errors, 1);
    }

    #[test]
    fn kill_schedule_merges_explicit_and_seeded_points() {
        let p = plan(|c| {
            c.seed = 11;
            c.manager_kill_at = vec![Ns::secs(9), Ns::secs(1)];
            c.manager_kills = 3;
            c.manager_kill_window = Ns::secs(8);
        });
        let times = p.kill_times();
        assert_eq!(times.len(), 5);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(times.contains(&Ns::secs(1)) && times.contains(&Ns::secs(9)));
        // Deterministic: the same config reproduces the same schedule.
        let q = plan(|c| {
            c.seed = 11;
            c.manager_kill_at = vec![Ns::secs(9), Ns::secs(1)];
            c.manager_kills = 3;
            c.manager_kill_window = Ns::secs(8);
        });
        assert_eq!(p.kill_times(), q.kill_times());
    }

    #[test]
    fn kill_config_enables_plan_but_other_sites_stay_silent() {
        let mut p = plan(|c| c.manager_kill_at = vec![Ns::secs(1)]);
        assert!(p.enabled());
        for _ in 0..200 {
            assert!(!p.dma_submit_fails());
            assert!(!p.pebs_storm());
        }
        // And the seeded-kill stream never perturbs existing sites.
        let a = plan(|c| {
            c.dma_submit_fail = 0.5;
        });
        let b = plan(|c| {
            c.dma_submit_fail = 0.5;
            c.manager_kills = 4;
            c.manager_kill_window = Ns::secs(1);
        });
        let (mut a, mut b) = (a, b);
        for _ in 0..200 {
            assert_eq!(a.dma_submit_fails(), b.dma_submit_fails());
        }
    }

    #[test]
    fn tenant_kill_schedule_sorts_and_enables_the_plan() {
        let p = plan(|c| {
            c.tenant_kill_at = vec![
                TenantKill {
                    tenant: 2,
                    at: Ns::secs(3),
                },
                TenantKill {
                    tenant: 0,
                    at: Ns::secs(1),
                },
                TenantKill {
                    tenant: 1,
                    at: Ns::secs(1),
                },
            ];
        });
        assert!(p.enabled());
        let kills = p.tenant_kills();
        assert_eq!(kills.len(), 3);
        assert_eq!((kills[0].tenant, kills[0].at), (0, Ns::secs(1)));
        assert_eq!((kills[1].tenant, kills[1].at), (1, Ns::secs(1)));
        assert_eq!((kills[2].tenant, kills[2].at), (2, Ns::secs(3)));
        // Manager kills are unaffected.
        assert!(p.kill_times().is_empty());
    }

    #[test]
    fn tenant_kill_config_never_perturbs_other_streams() {
        // tenant_kill_at is an explicit schedule with no stream of its
        // own, so every other site's draw sequence must be bit-equal
        // with and without it — the property that keeps seeded chaos
        // runs comparable across churny and churn-free configs.
        let mut a = plan(|c| {
            c.dma_submit_fail = 0.5;
            c.nvm_media_error = 0.3;
            c.pebs_storm = 0.2;
        });
        let mut b = plan(|c| {
            c.dma_submit_fail = 0.5;
            c.nvm_media_error = 0.3;
            c.pebs_storm = 0.2;
            c.tenant_kill_at = vec![TenantKill {
                tenant: 1,
                at: Ns::secs(2),
            }];
        });
        for _ in 0..300 {
            assert_eq!(a.dma_submit_fails(), b.dma_submit_fails());
            assert_eq!(a.nvm_media_error(5), b.nvm_media_error(5));
            assert_eq!(a.pebs_storm(), b.pebs_storm());
        }
        // Other sites stay silent under a kill-only plan.
        let mut p = plan(|c| {
            c.tenant_kill_at = vec![TenantKill {
                tenant: 0,
                at: Ns::secs(1),
            }];
        });
        for _ in 0..200 {
            assert!(!p.dma_submit_fails());
            assert!(!p.pebs_storm());
        }
    }

    #[test]
    fn tier_schedules_sort_and_enable_the_plan() {
        let p = plan(|c| {
            c.tier_degrade_at = vec![TierFault {
                tier: 1,
                at: Ns::secs(2),
            }];
            c.tier_fail_at = vec![
                TierFault {
                    tier: 2,
                    at: Ns::secs(3),
                },
                TierFault {
                    tier: 1,
                    at: Ns::secs(3),
                },
            ];
            c.tier_readmit_at = vec![TierFault {
                tier: 1,
                at: Ns::secs(5),
            }];
        });
        assert!(p.enabled());
        assert!(p.config().has_tier_schedule());
        assert_eq!(p.tier_degrades().len(), 1);
        let fails = p.tier_fails();
        assert_eq!(
            (fails[0].tier, fails[1].tier),
            (1, 2),
            "ties at the same instant order by rank"
        );
        assert_eq!(p.tier_readmits()[0].at, Ns::secs(5));
        // And the kill schedules are unaffected.
        assert!(p.kill_times().is_empty());
        assert!(p.tenant_kills().is_empty());
    }

    #[test]
    fn tier_schedule_never_perturbs_other_streams() {
        // Tier schedules are explicit with no stream of their own, so
        // every seeded site's draw sequence must be bit-equal with and
        // without them — the property that keeps every pre-existing
        // chaos bench byte-identical after this PR.
        let mut a = plan(|c| {
            c.dma_submit_fail = 0.5;
            c.nvm_media_error = 0.3;
            c.ssd_media_error = 0.2;
            c.pebs_storm = 0.2;
        });
        let mut b = plan(|c| {
            c.dma_submit_fail = 0.5;
            c.nvm_media_error = 0.3;
            c.ssd_media_error = 0.2;
            c.pebs_storm = 0.2;
            c.tier_degrade_at = vec![TierFault {
                tier: 1,
                at: Ns::secs(1),
            }];
            c.tier_fail_at = vec![TierFault {
                tier: 1,
                at: Ns::secs(2),
            }];
            c.tier_readmit_at = vec![TierFault {
                tier: 1,
                at: Ns::secs(4),
            }];
        });
        for _ in 0..300 {
            assert_eq!(a.dma_submit_fails(), b.dma_submit_fails());
            assert_eq!(a.nvm_media_error(5), b.nvm_media_error(5));
            assert_eq!(a.ssd_media_error(5), b.ssd_media_error(5));
            assert_eq!(a.pebs_storm(), b.pebs_storm());
        }
        // Other sites stay silent under a schedule-only plan.
        let mut p = plan(|c| {
            c.tier_fail_at = vec![TierFault {
                tier: 1,
                at: Ns::secs(1),
            }];
        });
        for _ in 0..200 {
            assert!(!p.dma_submit_fails());
            assert!(!p.pebs_storm());
        }
    }

    #[test]
    fn stall_site_returns_configured_duration() {
        let mut p = plan(|c| {
            c.fault_thread_stall = 1.0;
            c.fault_thread_stall_for = Ns::micros(123);
        });
        assert_eq!(p.fault_thread_stall(), Some(Ns::micros(123)));
        assert_eq!(p.stats().fault_thread_stalls, 1);
    }
}
