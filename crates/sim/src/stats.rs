//! Measurement utilities: log-bucketed latency histograms, online
//! mean/variance accumulators, and windowed time series for instantaneous
//! throughput plots.

use crate::time::Ns;

/// HDR-style histogram with logarithmic buckets and linear sub-buckets.
///
/// Values are recorded in nanoseconds; percentile queries return the upper
/// bound of the bucket containing the requested rank, so relative error is
/// bounded by the sub-bucket resolution (1/32 by default).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets[log2][sub]` counts values with the given magnitude.
    buckets: Vec<[u64; Histogram::SUBS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    const SUBS: usize = 32;

    /// Creates an empty histogram covering the full `u64` range.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![[0; Histogram::SUBS]; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(value: u64) -> (usize, usize) {
        if value < Histogram::SUBS as u64 {
            return (0, value as usize);
        }
        let log = 63 - value.leading_zeros() as usize;
        // Use the SUBS sub-buckets below the leading bit for resolution.
        let shift = log.saturating_sub(5);
        let sub = ((value >> shift) as usize) & (Histogram::SUBS - 1);
        (log - 4, sub)
    }

    fn bucket_upper(log: usize, sub: usize) -> u64 {
        if log == 0 {
            return sub as u64;
        }
        let real_log = log + 4;
        let shift = real_log - 5;
        // Saturate: the top bucket's upper bound would overflow u64.
        (1u64 << real_log)
            .saturating_add(((sub as u64) + 1).saturating_mul(1u64 << shift))
            .saturating_sub(1)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let (log, sub) = Histogram::index(value);
        self.buckets[log][sub] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a duration in nanoseconds.
    pub fn record_ns(&mut self, value: Ns) {
        self.record(value.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (e.g. 0.5 = median, 0.999 = p99.9).
    ///
    /// Returns 0 for an empty histogram. The result is the upper bound of
    /// the bucket containing the rank, clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (log, subs) in self.buckets.iter().enumerate() {
            for (sub, &c) in subs.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Histogram::bucket_upper(log, sub).min(self.max);
                }
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Online mean / variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Running {
        Running::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance, or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Windowed counter producing an instantaneous-rate time series
/// (e.g. instantaneous GUPS for Figure 9).
#[derive(Debug, Clone)]
pub struct RateSeries {
    window: Ns,
    window_start: Ns,
    in_window: f64,
    points: Vec<(Ns, f64)>,
}

impl RateSeries {
    /// Creates a series that emits one point per `window` of virtual time.
    pub fn new(window: Ns) -> RateSeries {
        assert!(window > Ns::ZERO, "window must be positive");
        RateSeries {
            window,
            window_start: Ns::ZERO,
            in_window: 0.0,
            points: Vec::new(),
        }
    }

    /// Adds `amount` events at time `now`, closing windows as needed.
    pub fn add(&mut self, now: Ns, amount: f64) {
        self.roll_to(now);
        self.in_window += amount;
    }

    fn roll_to(&mut self, now: Ns) {
        while now.0 >= self.window_start.0 + self.window.0 {
            let end = Ns(self.window_start.0 + self.window.0);
            let rate = self.in_window / self.window.as_secs_f64();
            self.points.push((end, rate));
            self.in_window = 0.0;
            self.window_start = end;
        }
    }

    /// Flushes the current partial window and returns all points
    /// `(window_end, events_per_second)`.
    pub fn finish(mut self, now: Ns) -> Vec<(Ns, f64)> {
        self.roll_to(now);
        if self.in_window > 0.0 && now > self.window_start {
            let rate = self.in_window / (now - self.window_start).as_secs_f64();
            self.points.push((now, rate));
        }
        self.points
    }

    /// Points emitted so far.
    pub fn points(&self) -> &[(Ns, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(0.0), 0); // rank 1 lands in value 0's bucket
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "q={q}: got {got}, expected ~{expect}");
        }
    }

    #[test]
    fn histogram_quantile_rank_semantics_single_value() {
        // rank = max(1, ceil(q * count)): with count = 1 every quantile —
        // including q = 0.0, whose ceil is 0 before the max — must resolve
        // to the single recorded value.
        let mut h = Histogram::new();
        h.record(17);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 17, "q={q}");
        }
    }

    #[test]
    fn histogram_linear_to_log_transition_at_32() {
        // Values below SUBS (32) land in exact linear buckets; from 32 on
        // they move to log buckets whose upper bound may exceed the value.
        // The quantile clamp to the observed max keeps results exact here.
        let mut h = Histogram::new();
        for v in [31u64, 32, 33] {
            h.record(v);
        }
        // 32..63 keep exact one-value sub-buckets (shift 0), so the
        // transition loses no precision until values reach 64.
        assert_eq!(h.quantile(1.0 / 3.0), 31, "rank 1: exact linear bucket");
        assert_eq!(h.quantile(2.0 / 3.0), 32, "rank 2: first log bucket");
        assert_eq!(h.quantile(1.0), 33, "rank 3: observed max");
        // From 64 up, sub-buckets widen; the upper bound over-reports
        // within the bucket but the clamp to the observed max holds.
        let mut wide = Histogram::new();
        wide.record(64);
        assert_eq!(wide.quantile(0.5), 64, "upper bound 65 clamped to max");
    }

    #[test]
    fn histogram_mean_and_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        a.record(20);
        b.record(30);
        b.record(40);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 25.0).abs() < 1e-9);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 40);
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_large_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX / 2);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= u64::MAX / 2);
    }

    #[test]
    fn running_mean_variance() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.add(x);
        }
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert!((r.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rate_series_windows() {
        let mut s = RateSeries::new(Ns::secs(1));
        s.add(Ns::millis(100), 500.0);
        s.add(Ns::millis(900), 500.0);
        s.add(Ns::millis(1500), 2000.0);
        let pts = s.finish(Ns::secs(2));
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, Ns::secs(1));
        assert!((pts[0].1 - 1000.0).abs() < 1e-9);
        assert!((pts[1].1 - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn rate_series_skips_empty_windows_with_zero_rate() {
        let mut s = RateSeries::new(Ns::secs(1));
        s.add(Ns::millis(500), 100.0);
        s.add(Ns::millis(3500), 100.0);
        let pts = s.finish(Ns::secs(4));
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[1].1, 0.0);
        assert_eq!(pts[2].1, 0.0);
    }
}
