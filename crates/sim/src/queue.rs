//! Time-ordered event queue with deterministic FIFO tie-breaking.
//!
//! Events scheduled for the same instant fire in the order they were pushed
//! (a monotone sequence number breaks ties), which keeps the simulation
//! bit-exact regardless of heap internals.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Ns;

struct Entry<E> {
    at: Ns,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of `(time, event)` pairs.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Ns,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Ns::ZERO,
        }
    }

    /// The instant of the most recently popped event.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is in the past; the simulation never
    /// rewinds time.
    pub fn push_at(&mut self, at: Ns, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn push_after(&mut self, delay: Ns, event: E) {
        self.push_at(Ns(self.now.0.saturating_add(delay.0)), event);
    }

    /// Pops the earliest event, advancing the clock to its instant.
    pub fn pop(&mut self) -> Option<(Ns, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The instant of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Ns> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_at(Ns(30), "c");
        q.push_at(Ns(10), "a");
        q.push_at(Ns(20), "b");
        assert_eq!(q.pop(), Some((Ns(10), "a")));
        assert_eq!(q.pop(), Some((Ns(20), "b")));
        assert_eq!(q.pop(), Some((Ns(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push_at(Ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Ns(5), i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push_at(Ns(100), ());
        assert_eq!(q.now(), Ns::ZERO);
        q.pop();
        assert_eq!(q.now(), Ns(100));
        q.push_after(Ns(50), ());
        assert_eq!(q.peek_time(), Some(Ns(150)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push_at(Ns(10), 1u32);
        q.push_at(Ns(40), 4);
        assert_eq!(q.pop().expect("event").1, 1);
        q.push_at(Ns(20), 2);
        q.push_at(Ns(30), 3);
        assert_eq!(q.pop().expect("event").1, 2);
        assert_eq!(q.pop().expect("event").1, 3);
        assert_eq!(q.pop().expect("event").1, 4);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events_in_debug() {
        let mut q = EventQueue::new();
        q.push_at(Ns(100), ());
        q.pop();
        q.push_at(Ns(50), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push_at(Ns(1), ());
        q.push_at(Ns(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
