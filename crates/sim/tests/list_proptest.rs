//! Property tests: the arena-backed FIFO lists behave exactly like a
//! reference model built from `VecDeque`s under arbitrary operation
//! sequences.

use std::collections::VecDeque;

use proptest::prelude::*;

use hemem_sim::list::{FifoArena, FifoList, NO_LIST};

#[derive(Debug, Clone)]
enum Op {
    PushBack { list: u8, slot: u32 },
    PushFront { list: u8, slot: u32 },
    PopFront { list: u8 },
    Remove { slot: u32 },
    MoveToFront { slot: u32 },
}

fn op_strategy(slots: u32, lists: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..lists, 0..slots).prop_map(|(list, slot)| Op::PushBack { list, slot }),
        (0..lists, 0..slots).prop_map(|(list, slot)| Op::PushFront { list, slot }),
        (0..lists).prop_map(|list| Op::PopFront { list }),
        (0..slots).prop_map(|slot| Op::Remove { slot }),
        (0..slots).prop_map(|slot| Op::MoveToFront { slot }),
    ]
}

proptest! {
    #[test]
    fn matches_vecdeque_model(ops in prop::collection::vec(op_strategy(64, 3), 1..400)) {
        const SLOTS: usize = 64;
        const LISTS: usize = 3;
        let mut arena = FifoArena::new(SLOTS);
        let mut lists: Vec<FifoList> = (0..LISTS as u8).map(FifoList::new).collect();
        let mut model: Vec<VecDeque<u32>> = vec![VecDeque::new(); LISTS];
        let mut member: Vec<Option<u8>> = vec![None; SLOTS];

        for op in ops {
            match op {
                Op::PushBack { list, slot } => {
                    if member[slot as usize].is_none() {
                        lists[list as usize].push_back(&mut arena, slot);
                        model[list as usize].push_back(slot);
                        member[slot as usize] = Some(list);
                    }
                }
                Op::PushFront { list, slot } => {
                    if member[slot as usize].is_none() {
                        lists[list as usize].push_front(&mut arena, slot);
                        model[list as usize].push_front(slot);
                        member[slot as usize] = Some(list);
                    }
                }
                Op::PopFront { list } => {
                    let got = lists[list as usize].pop_front(&mut arena);
                    let expect = model[list as usize].pop_front();
                    prop_assert_eq!(got, expect);
                    if let Some(s) = got {
                        member[s as usize] = None;
                    }
                }
                Op::Remove { slot } => {
                    if let Some(list) = member[slot as usize] {
                        lists[list as usize].remove(&mut arena, slot);
                        model[list as usize].retain(|&s| s != slot);
                        member[slot as usize] = None;
                    }
                }
                Op::MoveToFront { slot } => {
                    if let Some(list) = member[slot as usize] {
                        lists[list as usize].move_to_front(&mut arena, slot);
                        model[list as usize].retain(|&s| s != slot);
                        model[list as usize].push_front(slot);
                    }
                }
            }
            // Full-state comparison + membership agreement.
            for (l, m) in lists.iter().zip(&model) {
                let got: Vec<u32> = l.iter(&arena).collect();
                let expect: Vec<u32> = m.iter().copied().collect();
                prop_assert_eq!(got, expect);
                prop_assert_eq!(l.len(), m.len());
            }
            for (slot, &mem) in member.iter().enumerate() {
                let on = arena.list_of(slot as u32);
                match mem {
                    Some(list) => prop_assert_eq!(on, list),
                    None => prop_assert_eq!(on, NO_LIST),
                }
            }
        }
    }
}
