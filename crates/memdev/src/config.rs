//! Device parameter sets.
//!
//! The presets encode Table 1 of the paper plus the microbenchmark-derived
//! effective bandwidths of §2.2 (Figures 1 and 2): DRAM scales with thread
//! count in every mode, while Optane's write bandwidth saturates at a few
//! threads and random reads below the 256 B media granularity pay
//! amplification.

use hemem_sim::Ns;

/// A load or a store, as seen by the memory device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MemOp {
    /// A read (load miss reaching the device).
    Read,
    /// A write (store / writeback reaching the device).
    Write,
}

/// Spatial access pattern of a request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Pattern {
    /// Consecutive addresses; prefetch and write-combining friendly.
    Sequential,
    /// Uniformly scattered addresses.
    Random,
}

/// Static description of one memory device (a DRAM or NVM pool).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DeviceConfig {
    /// Human-readable name used in reports.
    pub name: String,
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Idle read latency.
    pub read_latency: Ns,
    /// Idle write latency (to the write buffer, not media persistence).
    pub write_latency: Ns,
    /// Peak sequential read bandwidth, bytes/second.
    pub seq_read_bw: f64,
    /// Peak random read bandwidth at media granularity, bytes/second.
    pub rand_read_bw: f64,
    /// Peak sequential write bandwidth, bytes/second.
    pub seq_write_bw: f64,
    /// Peak random write bandwidth at media granularity, bytes/second.
    pub rand_write_bw: f64,
    /// Internal media access granularity in bytes: accesses smaller than
    /// this are amplified to it (Optane: 256 B).
    pub media_granularity: u64,
    /// Single-thread sequential-read bandwidth (bytes/s): how fast one
    /// core can pull a stream from this device. Aggregate device
    /// bandwidth divided by this gives the thread count at which the
    /// device saturates (Figure 1's curve knees).
    pub thread_seq_read_bw: f64,
    /// Single-thread random-read bandwidth.
    pub thread_rand_read_bw: f64,
    /// Single-thread sequential-write bandwidth.
    pub thread_seq_write_bw: f64,
    /// Single-thread random-write bandwidth.
    pub thread_rand_write_bw: f64,
    /// Whether to count media-level write traffic as wear (NVM only).
    pub tracks_wear: bool,
}

const GB: f64 = 1_000_000_000.0;
/// Binary gigabyte.
pub const GIB: u64 = 1 << 30;

impl DeviceConfig {
    /// DDR4 DRAM pool matching the evaluation socket (192 GB, 6 channels).
    ///
    /// Latency/bandwidth from Table 1; random-access bandwidths fitted to
    /// the Figure 1 microbenchmark (256 B blocks): random read tops out
    /// ~14% under Optane's sequential read × 1.14, random write well under
    /// sequential due to row-buffer misses.
    pub fn ddr4_dram(capacity: u64) -> DeviceConfig {
        DeviceConfig {
            name: "DDR4-DRAM".to_string(),
            capacity,
            read_latency: Ns::nanos(82),
            write_latency: Ns::nanos(62),
            seq_read_bw: 107.0 * GB,
            rand_read_bw: 28.0 * GB,
            seq_write_bw: 80.0 * GB,
            rand_write_bw: 40.0 * GB,
            media_granularity: 64,
            // DRAM keeps scaling to high thread counts: one thread drives
            // only a modest share of the channel bandwidth.
            thread_seq_read_bw: 7.0 * GB,
            thread_rand_read_bw: 1.9 * GB,
            thread_seq_write_bw: 5.2 * GB,
            thread_rand_write_bw: 2.6 * GB,
            tracks_wear: false,
        }
    }

    /// Intel Optane DC NVM pool (App Direct; 768 GB per socket).
    ///
    /// Asymmetric bandwidth from Table 1 and §2.2: sequential read 32 GB/s,
    /// write ~4.8 GB/s effective with cached 256 B stores (DRAM sequential
    /// write is 16.5× higher), random read ~10.5 GB/s (DRAM is 2.7×
    /// higher), random write ~3.7 GB/s (DRAM is 10.7× higher). 256 B media
    /// granularity amplifies smaller accesses.
    pub fn optane_dc(capacity: u64) -> DeviceConfig {
        DeviceConfig {
            name: "Optane-DC".to_string(),
            capacity,
            read_latency: Ns::nanos(175),
            write_latency: Ns::nanos(94),
            seq_read_bw: 32.0 * GB,
            rand_read_bw: 10.5 * GB,
            seq_write_bw: 4.85 * GB,
            rand_write_bw: 3.74 * GB,
            media_granularity: 256,
            // Optane saturates with very few threads (Figure 1): writes by
            // ~4 threads regardless of pattern; sequential reads also
            // saturate early, while random reads keep scaling longer.
            thread_seq_read_bw: 8.0 * GB,
            thread_rand_read_bw: 0.9 * GB,
            thread_seq_write_bw: 1.25 * GB,
            thread_rand_write_bw: 0.95 * GB,
            tracks_wear: true,
        }
    }

    /// NVMe SSD used as a swap device behind the memory tiers (§3.4:
    /// "swapping to a block device can provide an additional, slowest,
    /// memory tier").
    pub fn nvme_ssd(capacity: u64) -> DeviceConfig {
        DeviceConfig {
            name: "NVMe-SSD".to_string(),
            capacity,
            read_latency: Ns::micros(80),
            write_latency: Ns::micros(20),
            seq_read_bw: 3.5 * GB,
            rand_read_bw: 2.5 * GB,
            seq_write_bw: 2.0 * GB,
            rand_write_bw: 1.2 * GB,
            media_granularity: 4096,
            thread_seq_read_bw: 2.0 * GB,
            thread_rand_read_bw: 0.8 * GB,
            thread_seq_write_bw: 1.5 * GB,
            thread_rand_write_bw: 0.6 * GB,
            tracks_wear: false,
        }
    }

    /// Peak bandwidth for an op/pattern combination, bytes/second.
    pub fn bandwidth(&self, op: MemOp, pattern: Pattern) -> f64 {
        match (op, pattern) {
            (MemOp::Read, Pattern::Sequential) => self.seq_read_bw,
            (MemOp::Read, Pattern::Random) => self.rand_read_bw,
            (MemOp::Write, Pattern::Sequential) => self.seq_write_bw,
            (MemOp::Write, Pattern::Random) => self.rand_write_bw,
        }
    }

    /// Single-thread bandwidth for an op/pattern combination, bytes/s.
    pub fn thread_bandwidth(&self, op: MemOp, pattern: Pattern) -> f64 {
        match (op, pattern) {
            (MemOp::Read, Pattern::Sequential) => self.thread_seq_read_bw,
            (MemOp::Read, Pattern::Random) => self.thread_rand_read_bw,
            (MemOp::Write, Pattern::Sequential) => self.thread_seq_write_bw,
            (MemOp::Write, Pattern::Random) => self.thread_rand_write_bw,
        }
    }

    /// Idle latency for an op.
    pub fn latency(&self, op: MemOp) -> Ns {
        match op {
            MemOp::Read => self.read_latency,
            MemOp::Write => self.write_latency,
        }
    }

    /// Bytes the media actually moves for one access of `size` bytes.
    ///
    /// Random accesses below the media granularity are amplified to a full
    /// media block; sequential streams aggregate into full blocks so they
    /// pay no amplification.
    pub fn media_bytes(&self, size: u64, pattern: Pattern) -> u64 {
        match pattern {
            Pattern::Sequential => size,
            Pattern::Random => size.max(self.media_granularity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ratios_hold() {
        let dram = DeviceConfig::ddr4_dram(192 * GIB);
        let nvm = DeviceConfig::optane_dc(768 * GIB);
        // Capacity: 4x more NVM than DRAM on the socket (8x per module).
        assert_eq!(nvm.capacity / dram.capacity, 4);
        // Sequential write gap ~16.5x (Figure 1).
        let w_gap = dram.seq_write_bw / nvm.seq_write_bw;
        assert!((16.0..17.0).contains(&w_gap), "write gap {w_gap}");
        // Random read gap ~2.7x.
        let r_gap = dram.rand_read_bw / nvm.rand_read_bw;
        assert!((2.5..2.9).contains(&r_gap), "read gap {r_gap}");
        // Random write gap ~10.7x.
        let rw_gap = dram.rand_write_bw / nvm.rand_write_bw;
        assert!((10.3..11.1).contains(&rw_gap), "rand write gap {rw_gap}");
        // Optane sequential read ~14% above DRAM random read.
        let seq_vs_rand = nvm.seq_read_bw / dram.rand_read_bw;
        assert!(
            (1.1..1.2).contains(&seq_vs_rand),
            "seq-vs-rand {seq_vs_rand}"
        );
        // Latency inflation ~2.1x for reads.
        assert_eq!(nvm.read_latency, Ns::nanos(175));
        assert_eq!(dram.read_latency, Ns::nanos(82));
    }

    #[test]
    fn media_amplification_only_for_small_random() {
        let nvm = DeviceConfig::optane_dc(GIB);
        assert_eq!(nvm.media_bytes(64, Pattern::Random), 256);
        assert_eq!(nvm.media_bytes(256, Pattern::Random), 256);
        assert_eq!(nvm.media_bytes(4096, Pattern::Random), 4096);
        assert_eq!(nvm.media_bytes(64, Pattern::Sequential), 64);
    }

    #[test]
    fn bandwidth_lookup_matches_fields() {
        let d = DeviceConfig::ddr4_dram(GIB);
        assert_eq!(d.bandwidth(MemOp::Read, Pattern::Sequential), d.seq_read_bw);
        assert_eq!(d.bandwidth(MemOp::Write, Pattern::Random), d.rand_write_bw);
        assert_eq!(d.latency(MemOp::Read), d.read_latency);
        assert_eq!(d.latency(MemOp::Write), d.write_latency);
    }

    #[test]
    fn wear_tracked_only_on_nvm() {
        assert!(!DeviceConfig::ddr4_dram(GIB).tracks_wear);
        assert!(DeviceConfig::optane_dc(GIB).tracks_wear);
    }
}
