//! Queueing model of one memory device.
//!
//! Each device runs two work-conserving fluid servers, one per op class
//! (reads and writes largely use separate queues/buffers in both DDR4 and
//! Optane controllers). A reservation of `n` accesses occupies its server
//! for `media_bytes / bandwidth` of virtual time; when offered load
//! exceeds bandwidth the server backlog grows and completion times slide,
//! which is exactly the saturation behaviour of Figures 1 and 2.

use hemem_sim::Ns;

use crate::config::{DeviceConfig, MemOp, Pattern};

/// Result of reserving device time for a batch of accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the device begins serving this batch.
    pub start: Ns,
    /// When the last byte of the batch has been served.
    pub finish: Ns,
    /// Pure service time (backlog excluded).
    pub service: Ns,
}

/// Cumulative traffic counters for a device.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct DeviceStats {
    /// Application-visible bytes read.
    pub bytes_read: u64,
    /// Application-visible bytes written.
    pub bytes_written: u64,
    /// Bytes the media moved for reads (amplification included).
    pub media_bytes_read: u64,
    /// Bytes the media moved for writes (amplification included); this is
    /// the wear metric for NVM (Figure 16).
    pub media_bytes_written: u64,
    /// Number of read accesses.
    pub reads: u64,
    /// Number of write accesses.
    pub writes: u64,
    /// Integrated busy time across both servers.
    pub busy: Ns,
}

/// Runtime state of one memory device.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    read_free: Ns,
    write_free: Ns,
    /// Separate servers for bulk transfers (migrations, page fills): the
    /// controller interleaves them with demand traffic, so they use spare
    /// bandwidth instead of queueing demand accesses behind multi-
    /// megabyte copies (§2.2: spare bandwidth migrates data without
    /// affecting application performance).
    bulk_read_free: Ns,
    bulk_write_free: Ns,
    /// Health-lifecycle bandwidth multiplier; 1.0 when healthy, lowered
    /// while the device is in the `Degraded` state.
    throttle: f64,
    stats: DeviceStats,
}

impl Device {
    /// Creates an idle device.
    pub fn new(config: DeviceConfig) -> Device {
        Device {
            config,
            read_free: Ns::ZERO,
            write_free: Ns::ZERO,
            bulk_read_free: Ns::ZERO,
            bulk_write_free: Ns::ZERO,
            throttle: 1.0,
            stats: DeviceStats::default(),
        }
    }

    /// The device's static configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Health-lifecycle bandwidth multiplier in `(0, 1]`. A degraded device
    /// serves every access at `throttle * bandwidth`; `1.0` is exact
    /// identity with the healthy path.
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// Sets the health-lifecycle bandwidth multiplier.
    pub fn set_throttle(&mut self, throttle: f64) {
        assert!(throttle > 0.0 && throttle <= 1.0, "throttle out of range");
        self.throttle = throttle;
    }

    /// Cumulative traffic counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Idle latency of one access.
    pub fn latency(&self, op: MemOp) -> Ns {
        self.config.latency(op)
    }

    /// Current backlog delay an access of class `op` would see.
    pub fn queue_delay(&self, now: Ns, op: MemOp) -> Ns {
        let free = match op {
            MemOp::Read => self.read_free,
            MemOp::Write => self.write_free,
        };
        free.saturating_sub(now)
    }

    /// Current backlog of the bulk-transfer server for `op`.
    pub fn bulk_queue_delay(&self, now: Ns, op: MemOp) -> Ns {
        let free = match op {
            MemOp::Read => self.bulk_read_free,
            MemOp::Write => self.bulk_write_free,
        };
        free.saturating_sub(now)
    }

    /// Reserves service for `count` accesses of `size` bytes each.
    ///
    /// Returns when the batch starts and finishes on the device. Counters
    /// are updated including media-level amplification.
    pub fn reserve(
        &mut self,
        now: Ns,
        op: MemOp,
        pattern: Pattern,
        size: u64,
        count: u64,
    ) -> Reservation {
        if count == 0 {
            return Reservation {
                start: now,
                finish: now,
                service: Ns::ZERO,
            };
        }
        let app_bytes = size * count;
        let media_bytes = self.config.media_bytes(size, pattern) * count;
        let bw = self.config.bandwidth(op, pattern) * self.throttle;
        let service = Ns::from_secs_f64(media_bytes as f64 / bw);
        let free = match op {
            MemOp::Read => &mut self.read_free,
            MemOp::Write => &mut self.write_free,
        };
        let start = now.max(*free);
        let finish = start + service;
        *free = finish;
        self.stats.busy += service;
        match op {
            MemOp::Read => {
                self.stats.bytes_read += app_bytes;
                self.stats.media_bytes_read += media_bytes;
                self.stats.reads += count;
            }
            MemOp::Write => {
                self.stats.bytes_written += app_bytes;
                self.stats.media_bytes_written += media_bytes;
                self.stats.writes += count;
            }
        }
        Reservation {
            start,
            finish,
            service,
        }
    }

    /// Reserves a bulk sequential transfer (page migration / cache fill),
    /// optionally capped at `rate_cap` bytes/second (the paper caps
    /// migration at 10 GB/s so applications are not disturbed).
    pub fn reserve_bulk(
        &mut self,
        now: Ns,
        op: MemOp,
        bytes: u64,
        rate_cap: Option<f64>,
    ) -> Reservation {
        if bytes == 0 {
            return Reservation {
                start: now,
                finish: now,
                service: Ns::ZERO,
            };
        }
        // Bulk transfers are limited to roughly half the device's peak so
        // demand traffic keeps making progress; the external rate cap
        // (HeMem's 10 GB/s migration limit) applies on top.
        let bw = self.config.bandwidth(op, Pattern::Sequential) * 0.5 * self.throttle;
        let rate = rate_cap.map_or(bw, |cap| cap.min(bw));
        let service = Ns::from_secs_f64(bytes as f64 / rate);
        let free = match op {
            MemOp::Read => &mut self.bulk_read_free,
            MemOp::Write => &mut self.bulk_write_free,
        };
        let start = now.max(*free);
        let finish = start + service;
        *free = finish;
        self.stats.busy += service;
        match op {
            MemOp::Read => {
                self.stats.bytes_read += bytes;
                self.stats.media_bytes_read += bytes;
                self.stats.reads += 1;
            }
            MemOp::Write => {
                self.stats.bytes_written += bytes;
                self.stats.media_bytes_written += bytes;
                self.stats.writes += 1;
            }
        }
        Reservation {
            start,
            finish,
            service,
        }
    }

    /// Average throughput achieved over `[0, now]`, bytes/second, counting
    /// application-visible traffic in both directions.
    pub fn mean_throughput(&self, now: Ns) -> f64 {
        if now == Ns::ZERO {
            return 0.0;
        }
        (self.stats.bytes_read + self.stats.bytes_written) as f64 / now.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GIB;

    fn dram() -> Device {
        Device::new(DeviceConfig::ddr4_dram(192 * GIB))
    }

    fn nvm() -> Device {
        Device::new(DeviceConfig::optane_dc(768 * GIB))
    }

    #[test]
    fn throttle_scales_service_time() {
        let mut healthy = nvm();
        let mut degraded = nvm();
        degraded.set_throttle(0.25);
        let h = healthy.reserve(Ns::ZERO, MemOp::Read, Pattern::Random, 4096, 64);
        let d = degraded.reserve(Ns::ZERO, MemOp::Read, Pattern::Random, 4096, 64);
        let ratio = d.service.as_secs_f64() / h.service.as_secs_f64();
        assert!((ratio - 4.0).abs() < 1e-6, "quarter bandwidth = 4x time");
        let hb = healthy.reserve_bulk(Ns::ZERO, MemOp::Write, 2 << 20, None);
        let db = degraded.reserve_bulk(Ns::ZERO, MemOp::Write, 2 << 20, None);
        let bulk = db.service.as_secs_f64() / hb.service.as_secs_f64();
        // Integer-nanosecond quantization leaves a few ppm of slack.
        assert!(
            (bulk - 4.0).abs() < 1e-4,
            "bulk server throttles too: ratio {bulk}"
        );
    }

    #[test]
    fn empty_reservation_is_free() {
        let mut d = dram();
        let r = d.reserve(Ns(100), MemOp::Read, Pattern::Random, 64, 0);
        assert_eq!(r.start, Ns(100));
        assert_eq!(r.finish, Ns(100));
        assert_eq!(d.stats().reads, 0);
    }

    #[test]
    fn service_time_matches_bandwidth() {
        let mut d = dram();
        // 107 GB/s sequential read: 107 bytes take ~1 ns.
        let r = d.reserve(Ns::ZERO, MemOp::Read, Pattern::Sequential, 107_000, 1_000);
        let secs = r.service.as_secs_f64();
        let expect = 107_000_000.0 / (107.0 * 1e9);
        assert!(
            (secs - expect).abs() / expect < 1e-6,
            "service {secs} vs {expect}"
        );
    }

    #[test]
    fn backlog_accumulates_fifo() {
        let mut d = nvm();
        let r1 = d.reserve(Ns::ZERO, MemOp::Write, Pattern::Random, 256, 1_000_000);
        let r2 = d.reserve(Ns::ZERO, MemOp::Write, Pattern::Random, 256, 1_000_000);
        assert_eq!(r2.start, r1.finish);
        assert!(r2.finish > r1.finish);
        // Reads use a separate server: no backlog from the writes.
        let r3 = d.reserve(Ns::ZERO, MemOp::Read, Pattern::Random, 256, 1);
        assert_eq!(r3.start, Ns::ZERO);
    }

    #[test]
    fn media_amplification_charged_on_nvm_random() {
        let mut d = nvm();
        d.reserve(Ns::ZERO, MemOp::Write, Pattern::Random, 8, 1_000);
        assert_eq!(d.stats().bytes_written, 8_000);
        assert_eq!(d.stats().media_bytes_written, 256_000);
    }

    #[test]
    fn sequential_not_amplified() {
        let mut d = nvm();
        d.reserve(Ns::ZERO, MemOp::Read, Pattern::Sequential, 8, 1_000);
        assert_eq!(d.stats().media_bytes_read, 8_000);
    }

    #[test]
    fn bulk_does_not_delay_demand_traffic() {
        let mut d = nvm();
        d.reserve_bulk(Ns::ZERO, MemOp::Write, GIB, None);
        let r = d.reserve(Ns::ZERO, MemOp::Write, Pattern::Random, 256, 1);
        assert_eq!(r.start, Ns::ZERO, "demand write not queued behind bulk");
    }

    #[test]
    fn queue_delay_reflects_backlog() {
        let mut d = nvm();
        assert_eq!(d.queue_delay(Ns::ZERO, MemOp::Write), Ns::ZERO);
        let r = d.reserve(Ns::ZERO, MemOp::Write, Pattern::Random, 4096, 10_000);
        assert_eq!(d.queue_delay(Ns::ZERO, MemOp::Write), r.finish);
        assert_eq!(d.queue_delay(r.finish, MemOp::Write), Ns::ZERO);
    }

    #[test]
    fn bulk_respects_rate_cap() {
        let mut d = dram();
        // 10 GB/s cap over a 1 GiB copy: ~0.107 s at full rate, ~0.107 s... at
        // cap it is 1 GiB / 10 GB/s = 0.1074 s.
        let r = d.reserve_bulk(Ns::ZERO, MemOp::Write, GIB, Some(10.0 * 1e9));
        let expect = GIB as f64 / 10e9;
        assert!((r.service.as_secs_f64() - expect).abs() / expect < 1e-6);
        // Without a cap, half the device's own bandwidth applies (bulk
        // transfers leave headroom for demand traffic).
        let r2 = d.reserve_bulk(r.finish, MemOp::Write, GIB, None);
        let expect2 = GIB as f64 / (40.0 * 1e9);
        assert!((r2.service.as_secs_f64() - expect2).abs() / expect2 < 1e-6);
    }

    #[test]
    fn nvm_write_bandwidth_saturates_under_parallel_offers() {
        // Emulate 16 "threads" each offering 1 GB of random 256 B writes at
        // time zero; aggregate throughput must stay pinned at the device's
        // random write bandwidth.
        let mut d = nvm();
        let mut last = Ns::ZERO;
        for _ in 0..16 {
            let r = d.reserve(Ns::ZERO, MemOp::Write, Pattern::Random, 256, 4_000_000);
            last = last.max(r.finish);
        }
        let total_bytes = 16.0 * 4_000_000.0 * 256.0;
        let tput = total_bytes / last.as_secs_f64();
        let cap = d.config().rand_write_bw;
        assert!(
            (tput - cap).abs() / cap < 0.01,
            "throughput {tput} vs cap {cap}"
        );
    }

    #[test]
    fn mean_throughput_accounts_both_directions() {
        let mut d = dram();
        d.reserve(Ns::ZERO, MemOp::Read, Pattern::Sequential, 1024, 1024);
        d.reserve(Ns::ZERO, MemOp::Write, Pattern::Sequential, 1024, 1024);
        let t = d.mean_throughput(Ns::secs(1));
        assert!((t - 2.0 * 1024.0 * 1024.0).abs() < 1.0);
    }
}
