//! # hemem-memdev
//!
//! Memory-device models for the HeMem reproduction: DDR4 DRAM and Intel
//! Optane DC NVM queueing models with asymmetric bandwidth and media-
//! granularity amplification ([`device`]), a shared last-level cache
//! filter ([`llc`]), the direct-mapped DRAM cache behind Optane Memory
//! Mode ([`dramcache`]), and an I/OAT-style DMA copy engine ([`dma`]).
//!
//! These models substitute for the paper's physical testbed; DESIGN.md §1
//! records each substitution and why it preserves the relevant behaviour.

#![warn(missing_docs)]

pub mod config;
pub mod device;
pub mod dma;
pub mod dma_client;
pub mod dramcache;
pub mod llc;
pub mod ssd;

pub use config::{DeviceConfig, MemOp, Pattern, GIB};
pub use device::{Device, DeviceStats, Reservation};
pub use dma::{ChannelId, DmaConfig, DmaEngine, DmaError, DmaStats};
pub use dma_client::{CopyRequest, DmaClient};
pub use dramcache::{CacheOutcome, CacheStats, DramCache, DramCacheConfig};
pub use llc::Llc;
pub use ssd::{SsdConfig, SsdDevice, SsdStats};
