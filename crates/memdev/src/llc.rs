//! Last-level cache filter.
//!
//! The machine model does not simulate the on-chip cache hierarchy in
//! detail; it only needs to know what fraction of a workload's accesses
//! reach memory at all. For the big-data access patterns the paper studies
//! (random access over multi-gigabyte footprints) nearly everything
//! misses; for footprints at or below LLC capacity nearly everything hits.
//! We model the LLC as a fully-associative cache under independent random
//! accesses, for which the steady-state hit ratio over a footprint `F`
//! with capacity `C` is `min(1, C/F)`.

use hemem_sim::Ns;

/// Shared last-level cache model.
#[derive(Debug, Clone)]
pub struct Llc {
    capacity: u64,
    hit_latency: Ns,
}

impl Llc {
    /// Creates an LLC of `capacity` bytes with the given hit latency.
    pub fn new(capacity: u64, hit_latency: Ns) -> Llc {
        assert!(capacity > 0, "LLC capacity must be positive");
        Llc {
            capacity,
            hit_latency,
        }
    }

    /// The 33 MB LLC of the evaluation's Cascade Lake socket.
    pub fn cascade_lake() -> Llc {
        Llc::new(33 * 1024 * 1024, Ns::nanos(20))
    }

    /// Cache capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Latency of an access served by the LLC.
    pub fn hit_latency(&self) -> Ns {
        self.hit_latency
    }

    /// Fraction of random accesses over a `footprint`-byte working set that
    /// the LLC absorbs.
    pub fn hit_fraction(&self, footprint: u64) -> f64 {
        if footprint == 0 {
            return 1.0;
        }
        (self.capacity as f64 / footprint as f64).min(1.0)
    }

    /// Hit fraction for a streaming (sequential, no-reuse) scan: the LLC
    /// provides no reuse, only prefetch, which the device model already
    /// accounts for in its sequential bandwidth.
    pub fn streaming_hit_fraction(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_footprints_hit() {
        let llc = Llc::cascade_lake();
        assert_eq!(llc.hit_fraction(1024), 1.0);
        assert_eq!(llc.hit_fraction(llc.capacity()), 1.0);
        assert_eq!(llc.hit_fraction(0), 1.0);
    }

    #[test]
    fn large_footprints_mostly_miss() {
        let llc = Llc::cascade_lake();
        let f = llc.hit_fraction(512 << 30);
        assert!(f < 1e-3, "hit fraction {f}");
    }

    #[test]
    fn hit_fraction_is_capacity_ratio() {
        let llc = Llc::new(1000, Ns(10));
        assert!((llc.hit_fraction(4000) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn streaming_never_hits() {
        assert_eq!(Llc::cascade_lake().streaming_hit_fraction(), 0.0);
    }
}
