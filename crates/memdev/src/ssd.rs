//! Block-style SSD swap device: the third capacity tier (§3.4: "swapping
//! to a block device can provide an additional, slowest, memory tier").
//!
//! Unlike the byte-addressable [`crate::Device`] fluid servers, an NVMe
//! swap device is queue-depth-limited: the controller serves at most
//! `queue_depth` commands concurrently and every transfer moves whole
//! 4 KB sectors. Bandwidth and latency are asymmetric between reads and
//! writes (reads pay the full flash-array access, writes land in the
//! device write buffer), and wear is tracked per erase block rather than
//! per byte, because flash rewrites whole erase blocks.
//!
//! The model keeps one free-time per queue slot. A transfer picks the
//! earliest-free slot, starts when both the caller and the slot are
//! ready, and occupies the slot for `latency + sectors / bandwidth`.
//! With all slots busy a major fault therefore stalls behind the queue —
//! exactly the cost model `tierbench` measures.

use hemem_sim::Ns;

use crate::config::MemOp;
use crate::device::Reservation;

const GB: f64 = 1_000_000_000.0;

/// Static description of the SSD swap device.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SsdConfig {
    /// Human-readable name used in reports.
    pub name: String,
    /// Usable swap capacity in bytes.
    pub capacity: u64,
    /// Transfer granularity: every request is rounded up to whole
    /// sectors (NVMe logical block size, 4 KB).
    pub sector: u64,
    /// Maximum commands the controller serves concurrently.
    pub queue_depth: usize,
    /// Idle read latency (flash array access).
    pub read_latency: Ns,
    /// Idle write latency (device write buffer).
    pub write_latency: Ns,
    /// Peak read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Peak write bandwidth, bytes/second (asymmetric, below read).
    pub write_bw: f64,
    /// Erase-block size in bytes: wear is counted per erase block.
    pub erase_block: u64,
}

impl SsdConfig {
    /// Datacenter NVMe drive used as the tier-3 swap device.
    pub fn nvme(capacity: u64) -> SsdConfig {
        SsdConfig {
            name: "NVMe-swap".to_string(),
            capacity,
            sector: 4096,
            queue_depth: 32,
            read_latency: Ns::micros(80),
            write_latency: Ns::micros(20),
            read_bw: 3.2 * GB,
            write_bw: 1.4 * GB,
            erase_block: 8 << 20,
        }
    }

    /// Bandwidth for an op, bytes/second.
    pub fn bandwidth(&self, op: MemOp) -> f64 {
        match op {
            MemOp::Read => self.read_bw,
            MemOp::Write => self.write_bw,
        }
    }

    /// Idle latency for an op.
    pub fn latency(&self, op: MemOp) -> Ns {
        match op {
            MemOp::Read => self.read_latency,
            MemOp::Write => self.write_latency,
        }
    }

    /// Bytes the device actually transfers for a request of `bytes`:
    /// rounded up to whole sectors.
    pub fn sector_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.sector) * self.sector
    }
}

/// Cumulative traffic and wear counters for the SSD.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct SsdStats {
    /// Read commands served.
    pub reads: u64,
    /// Write commands served.
    pub writes: u64,
    /// Bytes moved by reads (sector-rounded).
    pub bytes_read: u64,
    /// Bytes moved by writes (sector-rounded).
    pub bytes_written: u64,
    /// Integrated command service time across all queue slots.
    pub busy: Ns,
    /// Total erase-block program cycles (sum over all blocks).
    pub erase_cycles: u64,
}

/// Runtime state of the SSD swap device.
#[derive(Debug, Clone)]
pub struct SsdDevice {
    config: SsdConfig,
    /// Free time of each controller queue slot.
    slots: Vec<Ns>,
    /// Program-cycle count per erase block.
    erase_wear: Vec<u64>,
    /// Health-lifecycle bandwidth multiplier; 1.0 when healthy, lowered
    /// while the device is in the `Degraded` state.
    throttle: f64,
    stats: SsdStats,
}

impl SsdDevice {
    /// Creates an idle device.
    pub fn new(config: SsdConfig) -> SsdDevice {
        let blocks = config.capacity.div_ceil(config.erase_block).max(1) as usize;
        SsdDevice {
            slots: vec![Ns::ZERO; config.queue_depth.max(1)],
            erase_wear: vec![0; blocks],
            config,
            throttle: 1.0,
            stats: SsdStats::default(),
        }
    }

    /// The device's static configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Health-lifecycle bandwidth multiplier in `(0, 1]`; `1.0` is exact
    /// identity with the healthy path.
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// Sets the health-lifecycle bandwidth multiplier.
    pub fn set_throttle(&mut self, throttle: f64) {
        assert!(throttle > 0.0 && throttle <= 1.0, "throttle out of range");
        self.throttle = throttle;
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// Idle latency of one command.
    pub fn latency(&self, op: MemOp) -> Ns {
        self.config.latency(op)
    }

    /// Delay until the earliest queue slot frees up: the stall a new
    /// command would see before the controller even starts it.
    pub fn queue_delay(&self, now: Ns) -> Ns {
        self.earliest_slot_free().saturating_sub(now)
    }

    fn earliest_slot_free(&self) -> Ns {
        *self.slots.iter().min().expect("queue_depth >= 1")
    }

    /// Reserves one transfer of `bytes` (rounded up to whole sectors) on
    /// the earliest-free queue slot. Returns when the command starts and
    /// finishes; `service` excludes the queue wait.
    pub fn transfer(&mut self, now: Ns, op: MemOp, bytes: u64) -> Reservation {
        let moved = self.config.sector_bytes(bytes);
        let service = self.config.latency(op)
            + Ns::from_secs_f64(moved as f64 / (self.config.bandwidth(op) * self.throttle));
        let slot = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, free)| **free)
            .map(|(i, _)| i)
            .expect("queue_depth >= 1");
        let start = self.slots[slot].max(now);
        let finish = start + service;
        self.slots[slot] = finish;
        match op {
            MemOp::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += moved;
            }
            MemOp::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += moved;
            }
        }
        self.stats.busy += service;
        Reservation {
            start,
            finish,
            service,
        }
    }

    /// Records one program cycle on every erase block covering
    /// `[offset, offset + len)`. Called by the tier manager when a page
    /// frame is written to the swap device; kept separate from
    /// [`SsdDevice::transfer`] because the queue model is offset-blind.
    pub fn note_block_write(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = (offset / self.config.erase_block) as usize;
        let last = ((offset + len - 1) / self.config.erase_block) as usize;
        for b in first..=last.min(self.erase_wear.len().saturating_sub(1)) {
            self.erase_wear[b] = self.erase_wear[b].saturating_add(1);
            self.stats.erase_cycles += 1;
        }
    }

    /// Program cycles recorded on erase block `block`.
    pub fn erase_wear(&self, block: usize) -> u64 {
        self.erase_wear.get(block).copied().unwrap_or(0)
    }

    /// Program cycles on the most-worn erase block.
    pub fn max_erase_wear(&self) -> u64 {
        self.erase_wear.iter().copied().max().unwrap_or(0)
    }

    /// Number of erase blocks the device tracks.
    pub fn erase_blocks(&self) -> usize {
        self.erase_wear.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> SsdDevice {
        SsdDevice::new(SsdConfig::nvme(1 << 30))
    }

    #[test]
    fn transfers_round_to_sectors() {
        let mut d = dev();
        let r = d.transfer(Ns::ZERO, MemOp::Write, 1);
        assert_eq!(d.stats().bytes_written, 4096, "1 byte moves a sector");
        assert!(r.service > d.latency(MemOp::Write));
        let r2 = d.transfer(Ns::ZERO, MemOp::Read, 4097);
        assert_eq!(d.stats().bytes_read, 8192);
        assert!(r2.service > r.service, "reads pay the flash-array latency");
    }

    #[test]
    fn read_write_asymmetry() {
        let mut d = dev();
        let size = 2 << 20;
        let w = d.transfer(Ns::ZERO, MemOp::Write, size);
        let r = d.transfer(Ns::ZERO, MemOp::Read, size);
        // Writes: lower latency but less bandwidth; at 2 MiB the
        // bandwidth term dominates, so the write takes longer.
        assert!(w.service > r.service, "write {:?} vs read {:?}", w, r);
    }

    #[test]
    fn queue_depth_limits_concurrency() {
        let mut d = SsdDevice::new(SsdConfig {
            queue_depth: 2,
            ..SsdConfig::nvme(1 << 30)
        });
        let a = d.transfer(Ns::ZERO, MemOp::Read, 4096);
        let b = d.transfer(Ns::ZERO, MemOp::Read, 4096);
        assert_eq!(a.start, Ns::ZERO);
        assert_eq!(b.start, Ns::ZERO, "two slots serve two commands at once");
        let c = d.transfer(Ns::ZERO, MemOp::Read, 4096);
        assert_eq!(c.start, a.finish, "third command waits for a slot");
        assert_eq!(d.queue_delay(Ns::ZERO), b.finish.saturating_sub(Ns::ZERO));
    }

    #[test]
    fn erase_block_wear_counts_blocks() {
        let mut d = dev();
        let eb = d.config().erase_block;
        d.note_block_write(0, 2 << 20);
        assert_eq!(d.erase_wear(0), 1);
        assert_eq!(d.erase_wear(1), 0);
        // A write spanning a block boundary wears both blocks.
        d.note_block_write(eb - 4096, 8192);
        assert_eq!(d.erase_wear(0), 2);
        assert_eq!(d.erase_wear(1), 1);
        assert_eq!(d.max_erase_wear(), 2);
        assert_eq!(d.stats().erase_cycles, 3);
    }

    #[test]
    fn throttle_slows_transfers() {
        let mut healthy = dev();
        let mut degraded = dev();
        degraded.set_throttle(0.25);
        let size = 2 << 20;
        let h = healthy.transfer(Ns::ZERO, MemOp::Read, size);
        let d = degraded.transfer(Ns::ZERO, MemOp::Read, size);
        assert!(
            d.service > h.service,
            "degraded serves at reduced bandwidth"
        );
        // Latency term is untouched, so the slowdown is bandwidth-only.
        let lat = healthy.latency(MemOp::Read);
        let h_bw = h.service.saturating_sub(lat);
        let d_bw = d.service.saturating_sub(lat);
        assert!(d_bw >= h_bw + h_bw + h_bw, "bandwidth term scales ~4x");
    }

    #[test]
    fn wear_is_clamped_to_tracked_blocks() {
        let mut d = dev();
        let cap = d.config().capacity;
        d.note_block_write(cap + (8 << 20), 4096);
        assert_eq!(d.erase_wear(d.erase_blocks()), 0, "out of range reads 0");
    }
}
